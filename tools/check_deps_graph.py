#!/usr/bin/env python3
"""Structural check of ``wsvcli deps --format=json``.

Runs the dependence-graph export on a specification (optionally with a
property, which adds cone-of-influence flags) and asserts the invariants
a consumer relies on:

  * node ids are dense and in order, edges reference declared nodes,
    and the summary counts match the arrays;
  * every non-null span resolves into the spec source (line within the
    file, column within that line);
  * the SCC condensation of the edge relation is acyclic (i.e. a
    topological order of the condensed graph exists) — cycles are fine
    *inside* a component (state feedback), but the condensation the
    slicer reasons over must be a DAG;
  * with ``--property``: every node carries an ``in_cone`` flag, the
    flagged set is closed under reads-edges (a cone member never reads a
    non-member — the defining property of a backward closure), and
    ``summary.cone_nodes`` matches.

Usage:
    check_deps_graph.py --wsvcli PATH --spec specs/ecommerce.wsv \
        [--property "G(!CP | logged_in)"]
"""

import argparse
import json
import subprocess
import sys


def fail(msg):
    print(f"deps graph check failed: {msg}", file=sys.stderr)
    sys.exit(1)


def sccs(n, adj):
    """Tarjan's algorithm, iterative (corpus graphs are small but the
    recursion limit is not worth trusting)."""
    index = [None] * n
    low = [0] * n
    on_stack = [False] * n
    stack = []
    comp = [None] * n
    counter = [0]
    ncomp = [0]
    for root in range(n):
        if index[root] is not None:
            continue
        work = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack[v] = True
            recurse = False
            for i in range(pi, len(adj[v])):
                w = adj[v][i]
                if index[w] is None:
                    work[-1] = (v, i + 1)
                    work.append((w, 0))
                    recurse = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if recurse:
                continue
            if low[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = ncomp[0]
                    if w == v:
                        break
                ncomp[0] += 1
            work.pop()
            if work:
                u, _ = work[-1]
                low[u] = min(low[u], low[v])
    return comp, ncomp[0]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--wsvcli", required=True)
    parser.add_argument("--spec", required=True)
    parser.add_argument("--property", default="")
    args = parser.parse_args()

    cmd = [args.wsvcli, "deps", args.spec, "--format=json"]
    if args.property:
        cmd += ["--property", args.property]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        fail(f"wsvcli deps exited {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"output is not valid JSON: {e}")

    nodes = doc.get("nodes")
    edges = doc.get("edges")
    summary = doc.get("summary")
    if not isinstance(nodes, list) or not nodes:
        fail("nodes must be a non-empty list")
    if not isinstance(edges, list):
        fail("edges must be a list")
    if not isinstance(summary, dict):
        fail("summary must be an object")

    n = len(nodes)
    for i, node in enumerate(nodes):
        if node.get("id") != i:
            fail(f"node {i} has id {node.get('id')} (ids must be dense)")
        if node.get("kind") not in {"relation", "constant", "rule"}:
            fail(f"node {i} has unknown kind {node.get('kind')!r}")
        if not node.get("name"):
            fail(f"node {i} has no name")
    if summary.get("nodes") != n:
        fail(f"summary.nodes={summary.get('nodes')}, want {n}")
    if summary.get("edges") != len(edges):
        fail(f"summary.edges={summary.get('edges')}, want {len(edges)}")

    adj = [[] for _ in range(n)]
    for e in edges:
        src, dst = e.get("from"), e.get("to")
        if not isinstance(src, int) or not 0 <= src < n:
            fail(f"edge source {src!r} out of range")
        if not isinstance(dst, int) or not 0 <= dst < n:
            fail(f"edge target {dst!r} out of range")
        adj[src].append(dst)

    # Spans must resolve into the spec source.
    with open(args.spec, encoding="utf-8") as f:
        lines = f.read().split("\n")
    for node in nodes:
        span = node.get("span")
        if span is None:
            continue
        line, col = span.get("line"), span.get("column")
        if not 1 <= line <= len(lines):
            fail(f"node {node['id']} span line {line} outside the spec")
        if not 1 <= col <= len(lines[line - 1]) + 1:
            fail(f"node {node['id']} span column {col} outside line {line}")

    # SCC condensation must be a DAG: Kahn over the condensed edges.
    comp, ncomp = sccs(n, adj)
    cadj = [set() for _ in range(ncomp)]
    for src in range(n):
        for dst in adj[src]:
            if comp[src] != comp[dst]:
                cadj[comp[src]].add(comp[dst])
    indeg = [0] * ncomp
    for src in range(ncomp):
        for dst in cadj[src]:
            indeg[dst] += 1
    ready = [c for c in range(ncomp) if indeg[c] == 0]
    seen = 0
    while ready:
        c = ready.pop()
        seen += 1
        for dst in cadj[c]:
            indeg[dst] -= 1
            if indeg[dst] == 0:
                ready.append(dst)
    if seen != ncomp:
        fail("SCC condensation has a cycle")

    if args.property:
        cone = []
        for node in nodes:
            if "in_cone" not in node:
                fail(f"node {node['id']} lacks in_cone under --property")
            cone.append(bool(node["in_cone"]))
        for src in range(n):
            for dst in adj[src]:
                if cone[src] and not cone[dst]:
                    fail(
                        f"cone not backward-closed: {src} in cone reads "
                        f"{dst} outside it"
                    )
        if summary.get("cone_nodes") != sum(cone):
            fail(
                f"summary.cone_nodes={summary.get('cone_nodes')}, "
                f"want {sum(cone)}"
            )
        if not any(cone):
            fail("cone is empty (target rules are always in the cone)")

    print(
        f"deps graph OK: {n} nodes, {len(edges)} edges, "
        f"{ncomp} SCCs" + (f", cone {sum(cone)}" if args.property else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
