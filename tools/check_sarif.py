#!/usr/bin/env python3
"""Sanity-checks the linter's SARIF 2.1.0 export.

Runs ``wsvcli lint <spec> --format=sarif``, parses the output as JSON,
and asserts the structural invariants a SARIF consumer relies on:
schema/version headers, a tool.driver with a rule table, and results
whose ruleId, level, message, and physical location are all populated
and cross-referenced against the rule table.

Usage:
    check_sarif.py --wsvcli PATH --spec specs/bad/thm37_state_atom.wsd
"""

import argparse
import json
import subprocess
import sys

LEVELS = {"error", "warning", "note"}


def fail(msg):
    print(f"SARIF check failed: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--wsvcli", required=True)
    parser.add_argument("--spec", required=True)
    args = parser.parse_args()

    proc = subprocess.run(
        [args.wsvcli, "lint", args.spec, "--format=sarif"],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"output is not valid JSON: {e}")

    if doc.get("version") != "2.1.0":
        fail(f"version is {doc.get('version')!r}, want '2.1.0'")
    if "sarif-2.1.0" not in doc.get("$schema", ""):
        fail(f"$schema {doc.get('$schema')!r} does not name sarif-2.1.0")
    runs = doc.get("runs")
    if not isinstance(runs, list) or len(runs) != 1:
        fail("runs must be a one-element list")
    run = runs[0]

    driver = run.get("tool", {}).get("driver", {})
    if driver.get("name") != "wsvcli":
        fail(f"tool.driver.name is {driver.get('name')!r}")
    rules = driver.get("rules", [])
    rule_ids = {r.get("id") for r in rules}
    for rule in rules:
        if not rule.get("shortDescription", {}).get("text"):
            fail(f"rule {rule.get('id')} lacks shortDescription.text")

    results = run.get("results")
    if not isinstance(results, list) or not results:
        fail("results must be a non-empty list")
    for res in results:
        rid = res.get("ruleId", "")
        if not rid.startswith("WSV-"):
            fail(f"result ruleId {rid!r} is not a WSV rule")
        if rid not in rule_ids:
            fail(f"result ruleId {rid} missing from tool.driver.rules")
        if res.get("level") not in LEVELS:
            fail(f"result level {res.get('level')!r} not in {sorted(LEVELS)}")
        if not res.get("message", {}).get("text"):
            fail(f"result {rid} lacks message.text")
        locs = res.get("locations")
        if not locs:
            fail(f"result {rid} has no locations")
        phys = locs[0].get("physicalLocation", {})
        if not phys.get("artifactLocation", {}).get("uri"):
            fail(f"result {rid} lacks artifactLocation.uri")
        region = phys.get("region", {})
        if not isinstance(region.get("startLine"), int) or region["startLine"] < 1:
            fail(f"result {rid} has bad region.startLine")

    print(f"SARIF ok: {len(results)} results, {len(rules)} rules")
    return 0


if __name__ == "__main__":
    sys.exit(main())
