# ctest driver for the trace-export round trip (label: obs). Runs
#
#   wsvcli verify <SPEC> <PROP> <DB> --pool <POOL> --jobs 2 \
#       --trace-out <TRACE_OUT> --stats-json <STATS_OUT>
#
# then validates the trace with tools/check_trace.py. Invoked as
#   cmake -DWSVCLI=... -DSPEC=... -P run_trace_check.cmake
# (see tools/CMakeLists.txt). The property is passed base64-ish-free via
# PROP; it may contain spaces and parentheses.

foreach(var WSVCLI SPEC PROP DB POOL PYTHON CHECKER TRACE_OUT STATS_OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_trace_check: missing -D${var}=")
  endif()
endforeach()

execute_process(
  COMMAND "${WSVCLI}" verify "${SPEC}" "${PROP}" "${DB}"
          --pool "${POOL}" --jobs 2
          --trace-out "${TRACE_OUT}" --stats-json "${STATS_OUT}"
  RESULT_VARIABLE verify_rc
  OUTPUT_VARIABLE verify_out
  ERROR_VARIABLE verify_err)
if(NOT verify_rc EQUAL 0)
  message(FATAL_ERROR
      "wsvcli verify failed (rc=${verify_rc}):\n${verify_out}\n${verify_err}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${TRACE_OUT}"
          # config_graph/build only exists on the eager path; the
          # on-the-fly default expands the graph inside the sweep span.
          --require-span verify/parallel_db_sweep
          --require-span verify/check_valuations
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected ${TRACE_OUT}")
endif()

# The stats JSON must parse too (a one-line sanity check on --stats-json).
execute_process(
  COMMAND "${PYTHON}" -c "import json,sys; json.load(open(sys.argv[1]))"
          "${STATS_OUT}"
  RESULT_VARIABLE stats_rc)
if(NOT stats_rc EQUAL 0)
  message(FATAL_ERROR "stats JSON ${STATS_OUT} does not parse")
endif()
