#!/usr/bin/env python3
"""Structural validator for the wide-event JSONL log (src/obs/events.h).

Checks, for a file produced by `wsvcli verify --log-json`:

  * every line is a self-contained JSON object;
  * required keys are present per event kind ("event", "ts_ns",
    "request"; phases carry "phase" and "duration_ns"; terminal
    "request" events carry "verdict", "outcome", and "counters");
  * "ts_ns" is non-decreasing over the whole file (the log stamps
    timestamps under its mutex, so any regression is a real bug);
  * every request id that appears has exactly one terminal "request"
    event, and it is the id's last event;
  * "outcome" values come from the documented vocabulary.

Optional cross-file assertions for the ctest drivers:

  --expect-outcome OUT     at least one terminal event has this outcome
  --expect-stall-before-terminal
                           at least one "stall" event exists, and one
                           precedes (file order) the terminal event of
                           the request it reports
  --require-phase NAME     some "phase" event has this phase (repeat)

Exit code 0 when the file validates, 1 with a reason otherwise.
"""

import argparse
import json
import sys

OUTCOMES = {
    "completed",
    "cancelled_early_exit",
    "resource_exhausted",
    "cancelled",
    "error",
}

EVENT_KINDS = {"phase", "stall", "heartbeat", "request"}


def fail(msg):
    print(f"check_events: {msg}", file=sys.stderr)
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("log", help="wide-event JSONL file")
    ap.add_argument("--expect-outcome", action="append", default=[])
    ap.add_argument("--expect-stall-before-terminal", action="store_true")
    ap.add_argument("--require-phase", action="append", default=[])
    args = ap.parse_args()

    try:
        with open(args.log, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(f"cannot read {args.log}: {e}")
    if not lines:
        return fail(f"{args.log} is empty")

    events = []
    for i, line in enumerate(lines, 1):
        if not line.strip():
            return fail(f"line {i}: blank line in JSONL stream")
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(f"line {i}: not valid JSON: {e}")
        if not isinstance(ev, dict):
            return fail(f"line {i}: not a JSON object")
        events.append((i, ev))

    last_ts = 0
    terminal_line = {}  # request id -> line of its "request" event
    last_line = {}      # request id -> line of its last event
    outcomes = []
    phases = set()
    stalls = []  # (line, request id)

    for i, ev in events:
        for key in ("event", "ts_ns", "request"):
            if key not in ev:
                return fail(f"line {i}: missing required key '{key}'")
        kind = ev["event"]
        if kind not in EVENT_KINDS:
            return fail(f"line {i}: unknown event kind '{kind}'")
        ts = ev["ts_ns"]
        if not isinstance(ts, int) or ts <= 0:
            return fail(f"line {i}: ts_ns must be a positive integer")
        if ts < last_ts:
            return fail(
                f"line {i}: ts_ns regressed ({ts} < {last_ts}); "
                "timestamps must be non-decreasing file-wide")
        last_ts = ts

        rid = ev["request"]
        if not isinstance(rid, int) or rid < 0:
            return fail(f"line {i}: request must be a non-negative integer")

        if kind == "phase":
            for key in ("phase", "duration_ns"):
                if key not in ev:
                    return fail(f"line {i}: phase event missing '{key}'")
            phases.add(ev["phase"])
        elif kind == "stall":
            if "phase" not in ev:
                return fail(f"line {i}: stall event missing 'phase'")
            stalls.append((i, rid))
        elif kind == "request":
            for key in ("verdict", "outcome", "counters", "duration_ns"):
                if key not in ev:
                    return fail(f"line {i}: terminal event missing '{key}'")
            if ev["outcome"] not in OUTCOMES:
                return fail(
                    f"line {i}: unknown outcome '{ev['outcome']}' "
                    f"(expected one of {sorted(OUTCOMES)})")
            if not isinstance(ev["counters"], dict):
                return fail(f"line {i}: 'counters' must be an object")
            if rid in terminal_line:
                return fail(
                    f"line {i}: second terminal event for request {rid} "
                    f"(first at line {terminal_line[rid]})")
            terminal_line[rid] = i
            outcomes.append(ev["outcome"])
        # Heartbeats may report request 0 (no single open request) — any
        # non-zero id they carry is bound by the terminal-event rule.
        if rid != 0 or kind == "request":
            last_line[rid] = i

    for rid, line_no in last_line.items():
        if rid not in terminal_line:
            return fail(
                f"request {rid} (last event at line {line_no}) has no "
                "terminal 'request' event")
        if terminal_line[rid] != line_no:
            return fail(
                f"request {rid}: terminal event at line "
                f"{terminal_line[rid]} is not its last event "
                f"(line {line_no})")

    for want in args.expect_outcome:
        if want not in outcomes:
            return fail(
                f"expected a terminal event with outcome '{want}'; "
                f"saw {outcomes}")
    for want in args.require_phase:
        if want not in phases:
            return fail(
                f"expected a phase event '{want}'; saw {sorted(phases)}")
    if args.expect_stall_before_terminal:
        ok = any(
            rid in terminal_line and line_no < terminal_line[rid]
            for line_no, rid in stalls)
        if not ok:
            return fail(
                "expected at least one stall event preceding its "
                f"request's terminal event; stalls={stalls}, "
                f"terminals={terminal_line}")

    n_req = len(terminal_line)
    print(f"check_events: OK ({len(events)} events, {n_req} request(s), "
          f"{len(stalls)} stall(s), phases: {', '.join(sorted(phases))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
