// wsvcli — the command-line front end of the verifier.
//
//   wsvcli validate <spec.wsv>
//       Parse and statically validate a specification.
//   wsvcli print <spec.wsv>
//       Pretty-print the parsed specification.
//   wsvcli classify <spec.wsv>
//       Report membership in the paper's decidable classes.
//   wsvcli run <spec.wsv> <db.wsd> [--steps N] [--seed S] [--pool a,b,c]
//       Simulate a pseudo-random user session and print the pages.
//   wsvcli check-errors <spec.wsv> [db.wsd] [--pool a,b,c] [--fresh N]
//       Search for runs that reach the error page (Definition 2.3's
//       conditions i-iii); without a database, enumerate databases up to
//       the bound.
//   wsvcli verify <spec.wsv> <property> [db.wsd] [--pool a,b,c]
//                 [--fresh N] [--unchecked] [--eager] [--jobs N]
//                 [--no-fo-bytecode] [--stats] [--stats-json FILE]
//                 [--trace-out FILE] [--progress]
//       Verify an LTL-FO property (Theorem 3.5); --unchecked skips the
//       input-boundedness gate. By default the product is searched
//       on-the-fly (configurations expanded only as the nested DFS
//       reaches them, stopping at the first accepting cycle); --eager
//       forces the classic pipeline — full configuration graph, full
//       product, SCC emptiness — as an oracle for A/B runs. --jobs N
//       fans the database/valuation sweep over N worker threads
//       (default: one per hardware thread; 1 = serial). Verdict and
//       witness are identical at any job count and in either mode.
//       --no-fo-bytecode evaluates FO formulas with the tree-walking
//       interpreter instead of the compiled bytecode engine (same
//       verdicts, slower; for debugging and A/B runs).
//       Telemetry: --stats prints the phase/counter table to stderr,
//       --stats-json writes the counter snapshot as JSON, --trace-out
//       writes a Chrome/Perfetto trace-event file of the pipeline spans,
//       and --progress prints a once-a-second heartbeat for long sweeps.
//       Telemetry is flushed on every outcome — PASS, counterexample,
//       error, or cancellation — so partial sweeps are still measurable.
//   wsvcli verify-ctl <spec.wsv> <property> <db.wsd> [--pool a,b,c]
//       Verify a propositional CTL / CTL* property on the service's
//       Kripke structure over the given database (Theorem 4.4).
//   wsvcli lint <spec.wsv> [--format=text|json|sarif] [--werror]
//       Static analysis: reports *every* finding in one pass — parse and
//       well-formedness errors (WSV-PARSE/VAL-*), decidability-frontier
//       notes anchored to the paper's theorems (WSV-IB-*), navigation
//       and dead-symbol warnings (WSV-NAV-*, WSV-DEAD-*, WSV-DOM-*).
//       Exit code: 2 on errors, 1 on warnings under --werror, else 0.
//
// Parse and validation failures exit non-zero on every subcommand, with
// annotated diagnostics on stderr rendered by the same engine as lint.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/lints.h"
#include "analysis/render.h"
#include "common/str_util.h"
#include "ctl/ctl_check.h"
#include "ctl/ctl_star_check.h"
#include "fo/bytecode/cache.h"
#include "ltl/ltl_parser.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "runtime/interpreter.h"
#include "verify/abstraction.h"
#include "verify/error_free.h"
#include "verify/ltl_verifier.h"
#include "verify/parallel.h"
#include "ws/classify.h"
#include "ws/data_parser.h"
#include "ws/spec_parser.h"
#include "ws/validate.h"

namespace wsv {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  wsvcli validate <spec.wsv>\n"
      "  wsvcli print <spec.wsv>\n"
      "  wsvcli classify <spec.wsv>\n"
      "  wsvcli run <spec.wsv> <db.wsd> [--steps N] [--seed S] "
      "[--pool a,b,c]\n"
      "  wsvcli check-errors <spec.wsv> [db.wsd] [--pool a,b,c] "
      "[--fresh N]\n"
      "  wsvcli verify <spec.wsv> <property> [db.wsd] [--pool a,b,c] "
      "[--fresh N] [--unchecked] [--eager] [--jobs N] [--no-fo-bytecode] "
      "[--stats] [--stats-json FILE] [--trace-out FILE] [--progress]\n"
      "  wsvcli verify-ctl <spec.wsv> <property> <db.wsd> "
      "[--pool a,b,c]\n"
      "  wsvcli lint <spec.wsv> [--format=text|json|sarif] [--werror]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Flags {
  std::vector<std::string> positional;
  int steps = 20;
  uint64_t seed = 0;
  int fresh = 1;
  bool unchecked = false;
  /// Force the eager verification pipeline (LtlVerifyOptions::force_eager).
  bool eager = false;
  /// Worker threads for `verify`; <= 0 = one per hardware thread.
  int jobs = 0;
  /// Evaluate FO formulas with the tree-walking interpreter instead of
  /// the compiled bytecode engine (same verdicts, slower; for debugging
  /// and differential runs).
  bool no_fo_bytecode = false;
  std::vector<Value> pool;
  /// Observability surface (verify): human table, JSON snapshot, Chrome
  /// trace file, heartbeat.
  bool stats = false;
  std::string stats_json;
  std::string trace_out;
  bool progress = false;
  /// Lint output format: "text", "json", or "sarif".
  std::string format = "text";
  /// Lint: treat warnings as errors (exit 1 when any warning fires).
  bool werror = false;
};

StatusOr<Flags> ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> StatusOr<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--steps") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.steps = std::atoi(v.c_str());
    } else if (arg == "--seed") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (arg == "--fresh") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.fresh = std::atoi(v.c_str());
    } else if (arg == "--unchecked") {
      flags.unchecked = true;
    } else if (arg == "--eager") {
      flags.eager = true;
    } else if (arg == "--jobs") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.jobs = std::atoi(v.c_str());
    } else if (arg == "--no-fo-bytecode") {
      flags.no_fo_bytecode = true;
    } else if (arg == "--stats") {
      flags.stats = true;
    } else if (arg == "--stats-json") {
      WSV_ASSIGN_OR_RETURN(flags.stats_json, next());
    } else if (arg == "--trace-out") {
      WSV_ASSIGN_OR_RETURN(flags.trace_out, next());
    } else if (arg == "--progress") {
      flags.progress = true;
    } else if (arg == "--werror") {
      flags.werror = true;
    } else if (arg == "--format") {
      WSV_ASSIGN_OR_RETURN(flags.format, next());
    } else if (StartsWith(arg, "--format=")) {
      flags.format = arg.substr(std::strlen("--format="));
    } else if (arg == "--pool") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      for (const std::string& piece : Split(v, ',')) {
        if (!piece.empty()) flags.pool.push_back(Value::Intern(piece));
      }
    } else if (StartsWith(arg, "--")) {
      return Status::InvalidArgument("unknown flag: " + arg);
    } else {
      flags.positional.push_back(arg);
    }
  }
  return flags;
}

// Loads and validates a service. On parse or validation failure, every
// diagnostic is rendered (annotated source) to stderr — the same engine
// `lint` uses — and the error status is returned so all subcommands exit
// non-zero consistently.
StatusOr<WebService> LoadService(const std::string& path) {
  WSV_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  StatusOr<WebService> service = ParseServiceSpec(text);
  if (!service.ok()) {
    analysis::DiagnosticSink sink;
    StatusOr<WebService> parsed = ParseServiceSpecWithoutValidation(text);
    if (!parsed.ok()) {
      sink.Report("WSV-PARSE-001", analysis::Severity::kError,
                  analysis::SpanFromMessage(parsed.status().message()),
                  parsed.status().message());
    } else {
      ValidateServiceDiagnostics(*parsed, &sink);
      sink.SortBySpan();
    }
    std::fputs(analysis::RenderText(sink.diagnostics(), text, path).c_str(),
               stderr);
  }
  return service;
}

StatusOr<Instance> LoadDatabase(const std::string& path,
                                const Vocabulary& vocab) {
  WSV_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseDataFile(text, &vocab);
}

int CmdValidate(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  std::printf("OK: %s (%zu pages)\n", service->name().c_str(),
              service->pages().size());
  return 0;
}

int CmdPrint(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  std::printf("%s", service->ToString().c_str());
  return 0;
}

int CmdClassify(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  std::printf("%s", ClassifyService(*service).ToString().c_str());
  return 0;
}

int CmdRun(const Flags& flags) {
  if (flags.positional.size() < 2) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  auto db = LoadDatabase(flags.positional[1], service->vocab());
  if (!db.ok()) return Fail(db.status());
  std::vector<Value> pool = flags.pool;
  if (pool.empty()) {
    pool.assign(db->domain().begin(), db->domain().end());
    if (pool.empty()) pool.push_back(Value::Intern("u0"));
  }
  RandomInputProvider provider(flags.seed, pool);
  Interpreter interp(&*service, &*db);
  auto run = interp.Run(provider, flags.steps);
  if (!run.ok()) return Fail(run.status());
  for (size_t i = 0; i < run->trace.size(); ++i) {
    std::printf("step %zu: %s\n", i, run->trace[i].ToString().c_str());
  }
  std::printf("pages:");
  for (const std::string& p : run->page_sequence) {
    std::printf(" %s", p.c_str());
  }
  std::printf("\nreached error page: %s\n",
              run->reached_error ? run->error_reason.c_str() : "no");
  return run->reached_error ? 3 : 0;
}

int CmdCheckErrors(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  ErrorFreeOptions options;
  options.graph.constant_pool = flags.pool;
  options.db.fresh_values = flags.fresh;
  StatusOr<ErrorFreeResult> result = Status::OK();
  if (flags.positional.size() >= 2) {
    auto db = LoadDatabase(flags.positional[1], service->vocab());
    if (!db.ok()) return Fail(db.status());
    result = CheckErrorFreeOnDatabase(*service, *db, options);
  } else {
    result = CheckErrorFree(*service, options);
  }
  if (!result.ok()) return Fail(result.status());
  if (result->error_free) {
    std::printf("error-free within bounds (%llu database(s), "
                "%llu configurations)%s\n",
                static_cast<unsigned long long>(result->databases_checked),
                static_cast<unsigned long long>(result->total_graph_nodes),
                result->complete_within_bounds ? "" : " [truncated]");
    return 0;
  }
  std::printf("NOT error-free; witness:\n%s",
              result->witness->ToString().c_str());
  return 3;
}

// Once-a-second counter heartbeat on stderr while a long sweep runs.
class ProgressHeartbeat {
 public:
  ProgressHeartbeat()
      : start_ns_(obs::MonotonicNowNs()),
        thread_([this] { Loop(); }) {}

  ~ProgressHeartbeat() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!done_) {
      if (cv_.wait_for(lock, std::chrono::seconds(1),
                       [this] { return done_; })) {
        return;
      }
      obs::MetricsSnapshot snap = obs::SnapshotMetrics();
      std::fprintf(
          stderr,
          "progress[%s]: dbs=%llu graph_nodes=%llu valuations=%llu "
          "product_states=%llu cex=%llu\n",
          obs::FormatDurationNs(obs::MonotonicNowNs() - start_ns_).c_str(),
          static_cast<unsigned long long>(
              snap.CounterValue("verify/databases")),
          static_cast<unsigned long long>(
              snap.CounterValue("config_graph/nodes")),
          static_cast<unsigned long long>(
              snap.CounterValue("ltl/valuations_checked")),
          static_cast<unsigned long long>(
              snap.CounterValue("ltl/product_states")),
          static_cast<unsigned long long>(
              snap.CounterValue("ltl/counterexamples_found")));
      std::fflush(stderr);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  uint64_t start_ns_;
  std::thread thread_;
};

// Flushes the telemetry the user asked for. Called on *every* verify
// outcome — clean PASS, counterexample, error, or cancellation — so a
// partial sweep still reports what it did before stopping.
void EmitVerifyTelemetry(const Flags& flags) {
  if (flags.stats || !flags.stats_json.empty()) {
    obs::MetricsSnapshot snap = obs::SnapshotMetrics();
    if (flags.stats) {
      std::fprintf(stderr, "%s", obs::FormatStatsTable(snap).c_str());
      std::fflush(stderr);
    }
    if (!flags.stats_json.empty()) {
      std::ofstream out(flags.stats_json);
      if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     flags.stats_json.c_str());
      } else {
        out << obs::StatsToJson(snap);
        out.flush();
      }
    }
  }
  if (!flags.trace_out.empty()) {
    obs::StopTracing();
    std::ofstream out(flags.trace_out);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   flags.trace_out.c_str());
    } else {
      obs::WriteChromeTrace(out);
      out.flush();
    }
  }
}

int CmdVerify(const Flags& flags) {
  if (flags.positional.size() < 2) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  auto prop = ParseTemporalProperty(flags.positional[1], &service->vocab());
  if (!prop.ok()) return Fail(prop.status());
  LtlVerifyOptions options;
  options.graph.constant_pool = flags.pool;
  options.db.fresh_values = flags.fresh;
  options.require_input_bounded = !flags.unchecked;
  options.force_eager = flags.eager;
  ParallelLtlVerifier verifier(&*service, options, flags.jobs);
  if (!flags.trace_out.empty()) obs::StartTracing();
  StatusOr<LtlVerifyResult> result = Status::OK();
  {
    std::optional<ProgressHeartbeat> heartbeat;
    if (flags.progress) heartbeat.emplace();
    if (flags.positional.size() >= 3) {
      auto db = LoadDatabase(flags.positional[2], service->vocab());
      if (!db.ok()) {
        EmitVerifyTelemetry(flags);
        return Fail(db.status());
      }
      result = verifier.VerifyOnDatabase(*prop, *db);
    } else {
      result = verifier.Verify(*prop);
    }
  }
  EmitVerifyTelemetry(flags);
  if (!result.ok()) return Fail(result.status());
  if (result->holds) {
    std::printf("HOLDS within bounds (%llu database(s), %llu graph nodes, "
                "%llu product states)%s\n",
                static_cast<unsigned long long>(result->databases_checked),
                static_cast<unsigned long long>(result->total_graph_nodes),
                static_cast<unsigned long long>(
                    result->total_product_states),
                result->complete_within_bounds ? "" : " [truncated]");
    return 0;
  }
  std::printf("VIOLATED; counterexample:\n%s",
              result->counterexample->ToString().c_str());
  return 3;
}

int CmdLint(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  if (flags.format != "text" && flags.format != "json" &&
      flags.format != "sarif") {
    return Fail(Status::InvalidArgument("unknown --format: " + flags.format));
  }
  const std::string& path = flags.positional[0];
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  analysis::DiagnosticSink sink;
  analysis::LintSpecText(*text, &sink);
  std::string out;
  if (flags.format == "json") {
    out = analysis::RenderJson(sink.diagnostics(), path);
  } else if (flags.format == "sarif") {
    out = analysis::RenderSarif(sink.diagnostics(), path);
  } else {
    out = analysis::RenderText(sink.diagnostics(), *text, path);
  }
  std::fputs(out.c_str(), stdout);
  if (sink.error_count() > 0) return 2;
  if (flags.werror && sink.warning_count() > 0) return 1;
  return 0;
}

int CmdVerifyCtl(const Flags& flags) {
  if (flags.positional.size() < 3) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  auto prop = ParseTemporalProperty(flags.positional[1], &service->vocab());
  if (!prop.ok()) return Fail(prop.status());
  auto db = LoadDatabase(flags.positional[2], service->vocab());
  if (!db.ok()) return Fail(db.status());
  KripkeBuildOptions options;
  options.graph.constant_pool = flags.pool;
  options.check_propositional = !flags.unchecked;
  auto kripke = BuildPropositionalKripke(*service, *db, options);
  if (!kripke.ok()) return Fail(kripke.status());
  auto holds = prop->formula->IsCtl()
                   ? CtlHolds(*kripke, *prop->formula)
                   : CtlStarHolds(*kripke, *prop->formula);
  if (!holds.ok()) return Fail(holds.status());
  std::printf("%s (Kripke structure: %zu states)\n",
              *holds ? "HOLDS" : "VIOLATED", kripke->size());
  return *holds ? 0 : 3;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto flags = ParseFlags(argc, argv);
  if (!flags.ok()) return Fail(flags.status());
  if (flags->no_fo_bytecode) fobc::SetBytecodeEnabled(false);
  std::string cmd = argv[1];
  if (cmd == "validate") return CmdValidate(*flags);
  if (cmd == "print") return CmdPrint(*flags);
  if (cmd == "classify") return CmdClassify(*flags);
  if (cmd == "run") return CmdRun(*flags);
  if (cmd == "check-errors") return CmdCheckErrors(*flags);
  if (cmd == "verify") return CmdVerify(*flags);
  if (cmd == "verify-ctl") return CmdVerifyCtl(*flags);
  if (cmd == "lint") return CmdLint(*flags);
  return Usage();
}

}  // namespace
}  // namespace wsv

int main(int argc, char** argv) { return wsv::Main(argc, argv); }
