// wsvcli — the command-line front end of the verifier.
//
//   wsvcli validate <spec.wsv>
//       Parse and statically validate a specification.
//   wsvcli print <spec.wsv>
//       Pretty-print the parsed specification.
//   wsvcli classify <spec.wsv>
//       Report membership in the paper's decidable classes.
//   wsvcli run <spec.wsv> <db.wsd> [--steps N] [--seed S] [--pool a,b,c]
//       Simulate a pseudo-random user session and print the pages.
//   wsvcli check-errors <spec.wsv> [db.wsd] [--pool a,b,c] [--fresh N]
//       Search for runs that reach the error page (Definition 2.3's
//       conditions i-iii); without a database, enumerate databases up to
//       the bound.
//   wsvcli verify <spec.wsv> <property> [db.wsd] [--pool a,b,c]
//                 [--fresh N] [--unchecked] [--eager] [--jobs N]
//                 [--no-fo-bytecode] [--stats] [--stats-json FILE]
//                 [--trace-out FILE] [--progress] [--log-json FILE]
//                 [--heartbeat SECS] [--watchdog-deadline SECS]
//                 [--step-budget N]
//       Verify an LTL-FO property (Theorem 3.5); --unchecked skips the
//       input-boundedness gate. By default the product is searched
//       on-the-fly (configurations expanded only as the nested DFS
//       reaches them, stopping at the first accepting cycle); --eager
//       forces the classic pipeline — full configuration graph, full
//       product, SCC emptiness — as an oracle for A/B runs. --jobs N
//       fans the database/valuation sweep over N worker threads
//       (default: one per hardware thread; 1 = serial). Verdict and
//       witness are identical at any job count and in either mode.
//       --no-fo-bytecode evaluates FO formulas with the tree-walking
//       interpreter instead of the compiled bytecode engine (same
//       verdicts, slower; for debugging and A/B runs).
//       Telemetry: --stats prints the phase/counter/memory table to
//       stderr, --stats-json writes the counter snapshot as JSON,
//       --trace-out writes a Chrome/Perfetto trace-event file of the
//       pipeline spans, and --progress prints a once-a-second heartbeat
//       for long sweeps. --log-json streams a wide-event JSONL log (one
//       self-contained event per request phase — parse, lint, db_enum,
//       product, emptiness, witness_check — plus a terminal "request"
//       event with the verdict, outcome, and the exact counter delta
//       attributed to this request; see src/obs/events.h). --heartbeat S
//       prints watchdog progress lines every S seconds;
//       --watchdog-deadline S reports any phase still open after S
//       seconds as a "stall" event (0 flags everything, for tests).
//       --step-budget N caps each bytecode-VM execution at N steps
//       (kResourceExhausted beyond it; the default is effectively
//       unlimited). JSON artifacts (--stats-json, --trace-out,
//       --log-json) are written to a temp sibling and published by
//       atomic rename, so a crashed run never leaves a truncated file.
//       Telemetry is flushed on every outcome — PASS, counterexample,
//       error, or cancellation — so partial sweeps are still measurable.
//       --cache-dir DIR consults the cross-request verification cache
//       (src/cache/) before running the verifier: an exact-fingerprint
//       hit or an edit-migrated warm entry is served verbatim (the
//       printed verdict is byte-identical to the cold run), a miss
//       verifies and publishes the verdict to DIR. --label NAME sets the
//       edit-chain identity used for incremental invalidation (default:
//       the spec path). WSV_DISABLE_VERIFY_CACHE=1 bypasses the cache.
//       --no-slice disables the property-directed cone slicer (see
//       `deps` below and DESIGN.md §10): every sweep then runs the full
//       spec directly instead of probing the reduced one first. Verdict
//       and witness are identical either way; the flag exists for A/B
//       runs and debugging. WSV_DISABLE_SLICE=1 is the env equivalent.
//       --search NAME picks the accepting-lasso search strategy
//       (automata/search_strategy.h): dfs (default, the CVWY nested
//       DFS), directed (greedy best-first on the Büchi accepting-
//       distance heuristic), restart (seeded random-restart DFS;
//       --search-seed N replays a recorded run), or portfolio (the
//       parallel engine races dfs and directed, first finisher wins).
//       --search-prune skips commuting interleavings of provably
//       unobserved inputs. Verdicts are identical under every strategy;
//       see DESIGN.md §11.
//   wsvcli deps <spec.wsv> [--property P] [--format=dot|json]
//       Dump the whole-spec dependence graph (src/analysis/depgraph.h):
//       relations, constants, and rules as nodes, reads-edges between
//       them. With --property, additionally mark each node as inside or
//       outside the property's cone of influence — exactly the cone the
//       verifier slices against — and print a summary to stderr. dot
//       renders for graphviz; json is machine-checkable (see
//       tools/check_deps_graph.py).
//   wsvcli replay <jobs.jsonl> [--cache-dir DIR] [--jobs N] [--eager]
//                 [--quiet] [--bench-json FILE] [--stats]
//                 [--stats-json FILE] [--log-json FILE] [--trace-out F]
//       Feed a JSONL request stream (one {"spec": ..., "property": ...}
//       object per line; see src/cache/replay.h for the schema) through
//       the verification cache and report hit rates, per-outcome counts,
//       and hit-latency percentiles. --bench-json writes the report in
//       google-benchmark JSON schema for tools/bench_guard.py budgets;
//       --quiet suppresses the per-request progress lines.
//   wsvcli verify-ctl <spec.wsv> <property> <db.wsd> [--pool a,b,c]
//       Verify a propositional CTL / CTL* property on the service's
//       Kripke structure over the given database (Theorem 4.4).
//   wsvcli lint <spec.wsv> [--format=text|json|sarif] [--werror]
//       Static analysis: reports *every* finding in one pass — parse and
//       well-formedness errors (WSV-PARSE/VAL-*), decidability-frontier
//       notes anchored to the paper's theorems (WSV-IB-*), navigation
//       and dead-symbol warnings (WSV-NAV-*, WSV-DEAD-*, WSV-DOM-*).
//       Exit code: 2 on errors, 1 on warnings under --werror, else 0.
//
// Parse and validation failures exit non-zero on every subcommand, with
// annotated diagnostics on stderr rendered by the same engine as lint.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/depgraph.h"
#include "analysis/lints.h"
#include "analysis/render.h"
#include "analysis/slice.h"
#include "cache/replay.h"
#include "cache/verify_cache.h"
#include "common/file_util.h"
#include "common/str_util.h"
#include "ctl/ctl_check.h"
#include "ctl/ctl_star_check.h"
#include "fo/bytecode/cache.h"
#include "fo/bytecode/vm.h"
#include "ltl/ltl_parser.h"
#include "obs/events.h"
#include "obs/report.h"
#include "obs/request.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "runtime/interpreter.h"
#include "verify/abstraction.h"
#include "verify/error_free.h"
#include "verify/ltl_verifier.h"
#include "verify/parallel.h"
#include "verify/witness_check.h"
#include "ws/classify.h"
#include "ws/data_parser.h"
#include "ws/spec_parser.h"
#include "ws/validate.h"

namespace wsv {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  wsvcli validate <spec.wsv>\n"
      "  wsvcli print <spec.wsv>\n"
      "  wsvcli classify <spec.wsv>\n"
      "  wsvcli run <spec.wsv> <db.wsd> [--steps N] [--seed S] "
      "[--pool a,b,c]\n"
      "  wsvcli check-errors <spec.wsv> [db.wsd] [--pool a,b,c] "
      "[--fresh N]\n"
      "  wsvcli verify <spec.wsv> <property> [db.wsd] [--pool a,b,c] "
      "[--fresh N] [--unchecked] [--eager] [--jobs N] [--no-fo-bytecode] "
      "[--stats] [--stats-json FILE] [--trace-out FILE] [--progress] "
      "[--log-json FILE] [--heartbeat SECS] [--watchdog-deadline SECS] "
      "[--step-budget N] [--cache-dir DIR] [--label NAME] [--no-slice]\n"
      "      [--search dfs|directed|restart|portfolio] [--search-seed N] "
      "[--search-prune]\n"
      "  wsvcli deps <spec.wsv> [--property P] [--format=dot|json]\n"
      "  wsvcli replay <jobs.jsonl> [--cache-dir DIR] [--jobs N] "
      "[--eager] [--quiet] [--bench-json FILE] [--stats] "
      "[--stats-json FILE] [--log-json FILE] [--trace-out FILE]\n"
      "  wsvcli verify-ctl <spec.wsv> <property> <db.wsd> "
      "[--pool a,b,c]\n"
      "  wsvcli lint <spec.wsv> [--format=text|json|sarif] [--werror]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Flags {
  std::vector<std::string> positional;
  int steps = 20;
  uint64_t seed = 0;
  int fresh = 1;
  bool unchecked = false;
  /// Force the eager verification pipeline (LtlVerifyOptions::force_eager).
  bool eager = false;
  /// Worker threads for `verify`; <= 0 = one per hardware thread.
  int jobs = 0;
  /// Evaluate FO formulas with the tree-walking interpreter instead of
  /// the compiled bytecode engine (same verdicts, slower; for debugging
  /// and differential runs).
  bool no_fo_bytecode = false;
  std::vector<Value> pool;
  /// Observability surface (verify): human table, JSON snapshot, Chrome
  /// trace file, heartbeat.
  bool stats = false;
  std::string stats_json;
  std::string trace_out;
  bool progress = false;
  /// Wide-event JSONL log (obs/events.h); empty = disabled.
  std::string log_json;
  /// Watchdog progress-line interval in seconds; 0 = disabled.
  double heartbeat_secs = 0.0;
  /// Watchdog stall deadline in seconds; < 0 = disabled, 0 flags every
  /// phase still open at the first sweep (deterministic for tests).
  double watchdog_deadline_secs = -1.0;
  /// Bytecode-VM step budget per execution; < 0 = keep the default.
  long long step_budget = -1;
  /// Cross-request verification cache root (verify/replay); empty =
  /// no cache for `verify`, memory-only for `replay`.
  std::string cache_dir;
  /// Edit-chain identity for the cache (default: the spec path).
  std::string label;
  /// Replay: write the report as google-benchmark JSON to this path.
  std::string bench_json;
  /// Replay: suppress per-request progress lines.
  bool quiet = false;
  /// Lint output format: "text", "json", or "sarif".
  std::string format = "text";
  /// Lint: treat warnings as errors (exit 1 when any warning fires).
  bool werror = false;
  /// Verify: disable the property-directed cone slicer for the process.
  bool no_slice = false;
  /// Deps: property whose cone of influence to highlight; empty = none.
  std::string property;
  /// Verify: accepting-lasso search strategy ("dfs", "directed",
  /// "restart", "portfolio"); empty = the verifier default (dfs).
  std::string search;
  /// Verify: base RNG seed for --search restart (0 = keep the recorded
  /// default, so runs replay deterministically).
  uint64_t search_seed = 0;
  /// Verify: enable commuting-input successor pruning.
  bool search_prune = false;
};

StatusOr<Flags> ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> StatusOr<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--steps") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.steps = std::atoi(v.c_str());
    } else if (arg == "--seed") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (arg == "--fresh") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.fresh = std::atoi(v.c_str());
    } else if (arg == "--unchecked") {
      flags.unchecked = true;
    } else if (arg == "--eager") {
      flags.eager = true;
    } else if (arg == "--jobs") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.jobs = std::atoi(v.c_str());
    } else if (arg == "--no-fo-bytecode") {
      flags.no_fo_bytecode = true;
    } else if (arg == "--stats") {
      flags.stats = true;
    } else if (arg == "--stats-json") {
      WSV_ASSIGN_OR_RETURN(flags.stats_json, next());
    } else if (arg == "--trace-out") {
      WSV_ASSIGN_OR_RETURN(flags.trace_out, next());
    } else if (arg == "--progress") {
      flags.progress = true;
    } else if (arg == "--log-json") {
      WSV_ASSIGN_OR_RETURN(flags.log_json, next());
    } else if (arg == "--heartbeat") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.heartbeat_secs = std::atof(v.c_str());
    } else if (arg == "--watchdog-deadline") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.watchdog_deadline_secs = std::atof(v.c_str());
    } else if (arg == "--step-budget") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.step_budget = std::atoll(v.c_str());
    } else if (arg == "--cache-dir") {
      WSV_ASSIGN_OR_RETURN(flags.cache_dir, next());
    } else if (arg == "--label") {
      WSV_ASSIGN_OR_RETURN(flags.label, next());
    } else if (arg == "--bench-json") {
      WSV_ASSIGN_OR_RETURN(flags.bench_json, next());
    } else if (arg == "--quiet") {
      flags.quiet = true;
    } else if (arg == "--werror") {
      flags.werror = true;
    } else if (arg == "--no-slice") {
      flags.no_slice = true;
    } else if (arg == "--search") {
      WSV_ASSIGN_OR_RETURN(flags.search, next());
    } else if (StartsWith(arg, "--search=")) {
      flags.search = arg.substr(std::strlen("--search="));
    } else if (arg == "--search-seed") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      flags.search_seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (arg == "--search-prune") {
      flags.search_prune = true;
    } else if (arg == "--property") {
      WSV_ASSIGN_OR_RETURN(flags.property, next());
    } else if (arg == "--format") {
      WSV_ASSIGN_OR_RETURN(flags.format, next());
    } else if (StartsWith(arg, "--format=")) {
      flags.format = arg.substr(std::strlen("--format="));
    } else if (arg == "--pool") {
      WSV_ASSIGN_OR_RETURN(std::string v, next());
      for (const std::string& piece : Split(v, ',')) {
        if (!piece.empty()) flags.pool.push_back(Value::Intern(piece));
      }
    } else if (StartsWith(arg, "--")) {
      return Status::InvalidArgument("unknown flag: " + arg);
    } else {
      flags.positional.push_back(arg);
    }
  }
  return flags;
}

// Loads and validates a service. On parse or validation failure, every
// diagnostic is rendered (annotated source) to stderr — the same engine
// `lint` uses — and the error status is returned so all subcommands exit
// non-zero consistently.
StatusOr<WebService> LoadService(const std::string& path,
                                 std::string* text_out = nullptr) {
  WSV_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  if (text_out != nullptr) *text_out = text;
  StatusOr<WebService> service = ParseServiceSpec(text);
  if (!service.ok()) {
    analysis::DiagnosticSink sink;
    StatusOr<WebService> parsed = ParseServiceSpecWithoutValidation(text);
    if (!parsed.ok()) {
      sink.Report("WSV-PARSE-001", analysis::Severity::kError,
                  analysis::SpanFromMessage(parsed.status().message()),
                  parsed.status().message());
    } else {
      ValidateServiceDiagnostics(*parsed, &sink);
      sink.SortBySpan();
    }
    std::fputs(analysis::RenderText(sink.diagnostics(), text, path).c_str(),
               stderr);
  }
  return service;
}

StatusOr<Instance> LoadDatabase(const std::string& path,
                                const Vocabulary& vocab) {
  WSV_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseDataFile(text, &vocab);
}

int CmdValidate(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  std::printf("OK: %s (%zu pages)\n", service->name().c_str(),
              service->pages().size());
  return 0;
}

int CmdPrint(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  std::printf("%s", service->ToString().c_str());
  return 0;
}

int CmdClassify(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  std::printf("%s", ClassifyService(*service).ToString().c_str());
  return 0;
}

int CmdRun(const Flags& flags) {
  if (flags.positional.size() < 2) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  auto db = LoadDatabase(flags.positional[1], service->vocab());
  if (!db.ok()) return Fail(db.status());
  std::vector<Value> pool = flags.pool;
  if (pool.empty()) {
    pool.assign(db->domain().begin(), db->domain().end());
    if (pool.empty()) pool.push_back(Value::Intern("u0"));
  }
  RandomInputProvider provider(flags.seed, pool);
  Interpreter interp(&*service, &*db);
  auto run = interp.Run(provider, flags.steps);
  if (!run.ok()) return Fail(run.status());
  for (size_t i = 0; i < run->trace.size(); ++i) {
    std::printf("step %zu: %s\n", i, run->trace[i].ToString().c_str());
  }
  std::printf("pages:");
  for (const std::string& p : run->page_sequence) {
    std::printf(" %s", p.c_str());
  }
  std::printf("\nreached error page: %s\n",
              run->reached_error ? run->error_reason.c_str() : "no");
  return run->reached_error ? 3 : 0;
}

int CmdCheckErrors(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  ErrorFreeOptions options;
  options.graph.constant_pool = flags.pool;
  options.db.fresh_values = flags.fresh;
  StatusOr<ErrorFreeResult> result = Status::OK();
  if (flags.positional.size() >= 2) {
    auto db = LoadDatabase(flags.positional[1], service->vocab());
    if (!db.ok()) return Fail(db.status());
    result = CheckErrorFreeOnDatabase(*service, *db, options);
  } else {
    result = CheckErrorFree(*service, options);
  }
  if (!result.ok()) return Fail(result.status());
  if (result->error_free) {
    std::printf("error-free within bounds (%llu database(s), "
                "%llu configurations)%s\n",
                static_cast<unsigned long long>(result->databases_checked),
                static_cast<unsigned long long>(result->total_graph_nodes),
                result->complete_within_bounds ? "" : " [truncated]");
    return 0;
  }
  std::printf("NOT error-free; witness:\n%s",
              result->witness->ToString().c_str());
  return 3;
}

// Once-a-second counter heartbeat on stderr while a long sweep runs.
class ProgressHeartbeat {
 public:
  ProgressHeartbeat()
      : start_ns_(obs::MonotonicNowNs()),
        thread_([this] { Loop(); }) {}

  ~ProgressHeartbeat() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!done_) {
      if (cv_.wait_for(lock, std::chrono::seconds(1),
                       [this] { return done_; })) {
        return;
      }
      obs::MetricsSnapshot snap = obs::SnapshotMetrics();
      std::fprintf(
          stderr,
          "progress[%s]: dbs=%llu graph_nodes=%llu valuations=%llu "
          "product_states=%llu cex=%llu\n",
          obs::FormatDurationNs(obs::MonotonicNowNs() - start_ns_).c_str(),
          static_cast<unsigned long long>(
              snap.CounterValue("verify/databases")),
          static_cast<unsigned long long>(
              snap.CounterValue("config_graph/nodes")),
          static_cast<unsigned long long>(
              snap.CounterValue("ltl/valuations_checked")),
          static_cast<unsigned long long>(
              snap.CounterValue("ltl/product_states")),
          static_cast<unsigned long long>(
              snap.CounterValue("ltl/counterexamples_found")));
      std::fflush(stderr);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  uint64_t start_ns_;
  std::thread thread_;
};

// Flushes the telemetry the user asked for. Called on *every* verify
// outcome — clean PASS, counterexample, error, or cancellation — so a
// partial sweep still reports what it did before stopping.
void EmitVerifyTelemetry(const Flags& flags) {
  if (flags.stats || !flags.stats_json.empty()) {
    obs::MetricsSnapshot snap = obs::SnapshotMetrics();
    if (flags.stats) {
      std::fprintf(stderr, "%s", obs::FormatStatsTable(snap).c_str());
      std::fflush(stderr);
    }
    if (!flags.stats_json.empty()) {
      Status st = WriteFileAtomic(flags.stats_json, obs::StatsToJson(snap));
      if (!st.ok()) {
        std::fprintf(stderr, "warning: %s\n", st.ToString().c_str());
      }
    }
  }
  if (!flags.trace_out.empty()) {
    obs::StopTracing();
    std::ostringstream trace;
    obs::WriteChromeTrace(trace);
    Status st = WriteFileAtomic(flags.trace_out, trace.str());
    if (!st.ok()) {
      std::fprintf(stderr, "warning: %s\n", st.ToString().c_str());
    }
  }
}

int CmdVerify(const Flags& flags) {
  if (flags.positional.size() < 2) return Usage();
  const bool log_enabled = !flags.log_json.empty();
  if (log_enabled) {
    Status st = obs::EventLog::Get().Open(flags.log_json);
    if (!st.ok()) return Fail(st);
  }

  // Everything from here runs under one request scope: counters and
  // spans recorded by this verification — including on pool workers —
  // are attributed to it, and the terminal wide event carries exactly
  // that delta even when other requests share the process.
  obs::RequestScope request(flags.positional[0]);
  std::vector<std::pair<std::string, std::string>> text_fields;

  // Closes the request and flushes every telemetry surface; called on
  // all outcomes so partial sweeps still report. The watchdog must be
  // stopped before this runs (its stall events precede the terminal
  // event in the log).
  auto finish = [&](const Status& status, std::string_view verdict) {
    const obs::MetricsSnapshot& delta = request.Close();
    EmitVerifyTelemetry(flags);
    if (log_enabled) {
      obs::EmitRequestSummary(request, delta, verdict,
                              obs::DeriveOutcome(status, delta),
                              text_fields);
      Status st = obs::EventLog::Get().Close();
      if (!st.ok()) {
        std::fprintf(stderr, "warning: %s\n", st.ToString().c_str());
      }
    }
  };
  auto emit_phase =
      [&](const char* phase, uint64_t start_ns,
          std::vector<std::pair<std::string, uint64_t>> nums = {}) {
        if (!log_enabled) return;
        obs::WideEvent ev;
        ev.phase = phase;
        ev.request = request.id();
        ev.label = request.label();
        ev.duration_ns = obs::MonotonicNowNs() - start_ns;
        ev.text = text_fields;
        ev.nums = std::move(nums);
        obs::EventLog::Get().Emit(ev);
      };

  const uint64_t parse_start = obs::MonotonicNowNs();
  std::string spec_text;
  auto service = LoadService(flags.positional[0], &spec_text);
  if (!service.ok()) {
    finish(service.status(), "ERROR");
    return Fail(service.status());
  }
  text_fields.emplace_back("spec_hash", obs::ContentHashHex(spec_text));
  auto prop = ParseTemporalProperty(flags.positional[1], &service->vocab());
  if (!prop.ok()) {
    finish(prop.status(), "ERROR");
    return Fail(prop.status());
  }
  text_fields.emplace_back("property_hash",
                           obs::ContentHashHex(flags.positional[1]));
  emit_phase("parse", parse_start);

  if (log_enabled) {
    // Lint findings ride along in the request record (events only; the
    // diagnostics themselves stay with `wsvcli lint`).
    const uint64_t lint_start = obs::MonotonicNowNs();
    analysis::DiagnosticSink sink;
    analysis::LintSpecText(spec_text, &sink);
    emit_phase("lint", lint_start,
               {{"errors", sink.error_count()},
                {"warnings", sink.warning_count()},
                {"notes", sink.note_count()}});
  }

  LtlVerifyOptions options;
  options.graph.constant_pool = flags.pool;
  options.db.fresh_values = flags.fresh;
  options.require_input_bounded = !flags.unchecked;
  options.force_eager = flags.eager;
  if (!flags.search.empty()) options.search.strategy = flags.search;
  if (flags.search_seed != 0) options.search.restart_seed = flags.search_seed;
  options.search.prune_commuting = flags.search_prune;

  std::optional<Instance> db;
  if (flags.positional.size() >= 3) {
    auto loaded = LoadDatabase(flags.positional[2], service->vocab());
    if (!loaded.ok()) {
      finish(loaded.status(), "ERROR");
      return Fail(loaded.status());
    }
    db = std::move(*loaded);
  }

  // Cross-request verification cache (--cache-dir): consult before
  // running the verifier. A hit or warm entry is served verbatim — the
  // printed verdict is the byte-identical text the populating cold run
  // produced — and no product is built.
  std::optional<cache::VerifyCache> vcache;
  cache::RequestKey cache_key;
  if (!flags.cache_dir.empty()) {
    cache::VerifyCache::Config cfg;
    cfg.dir = flags.cache_dir;
    vcache.emplace(std::move(cfg));
    cache_key = cache::MakeRequestKey(*service, *prop,
                                      db.has_value() ? &*db : nullptr,
                                      options, flags.jobs);
    const std::string cache_label =
        flags.label.empty() ? flags.positional[0] : flags.label;
    vcache->RegisterSpec(cache_key.spec, spec_text);
    cache::VerifyCache::LookupResult looked =
        vcache->Lookup(cache_key, cache_label, *service, *prop);
    text_fields.emplace_back("cache_outcome",
                             cache::OutcomeName(looked.outcome));
    if (looked.outcome == cache::Outcome::kHit ||
        looked.outcome == cache::Outcome::kWarm) {
      const cache::CachedVerdict& v = looked.verdict;
      finish(Status::OK(), v.holds ? "HOLDS" : "VIOLATED");
      if (v.holds) {
        std::printf("HOLDS within bounds (%llu database(s), "
                    "%llu graph nodes, %llu product states)%s\n",
                    static_cast<unsigned long long>(v.databases_checked),
                    static_cast<unsigned long long>(v.total_graph_nodes),
                    static_cast<unsigned long long>(v.total_product_states),
                    v.complete_within_bounds ? "" : " [truncated]");
        return 0;
      }
      std::printf("VIOLATED; counterexample:\n%s", v.witness_text.c_str());
      return 3;
    }
    if (db.has_value() && cache::VerifyCache::Enabled()) {
      options.leaf_store_context = cache::VerifyCache::LeafContext(
          cache_key, *service, *prop, *db, options,
          /*on_the_fly=*/!options.force_eager && OnTheFlyEnabled());
      options.leaf_store = vcache->leaf_store();
    }
  }

  ParallelLtlVerifier verifier(&*service, options, flags.jobs);
  if (!flags.trace_out.empty()) obs::StartTracing();
  StatusOr<LtlVerifyResult> result = Status::OK();
  {
    std::optional<ProgressHeartbeat> heartbeat;
    if (flags.progress) heartbeat.emplace();
    std::optional<obs::Watchdog> watchdog;
    if (flags.heartbeat_secs > 0 || flags.watchdog_deadline_secs >= 0) {
      obs::WatchdogOptions wopts;
      wopts.heartbeat_secs = flags.heartbeat_secs;
      if (flags.watchdog_deadline_secs >= 0) {
        wopts.stall_deadline_ns = static_cast<uint64_t>(
            flags.watchdog_deadline_secs * 1e9);
      }
      watchdog.emplace(wopts);
    }
    if (db.has_value()) {
      result = verifier.VerifyOnDatabase(*prop, *db);
    } else {
      result = verifier.Verify(*prop);
    }
  }  // watchdog final sweep + join: stall events land before the terminal
  if (vcache.has_value() && result.ok()) {
    cache::CachedVerdict v;
    v.holds = result->holds;
    if (!result->holds) v.witness_text = result->counterexample->ToString();
    v.databases_checked = result->databases_checked;
    v.total_graph_nodes = result->total_graph_nodes;
    v.total_product_states = result->total_product_states;
    v.complete_within_bounds = result->complete_within_bounds;
    vcache->Insert(cache_key, v);
  }
  if (result.ok() && !result->holds) {
    // Independently re-derive the witness through the runtime stepper
    // before presenting it (the same validation the tests apply).
    const uint64_t check_start = obs::MonotonicNowNs();
    Status witness_ok = Status::OK();
    {
      WSV_SPAN("verify/witness_check");
      witness_ok = ValidateWitness(*service, *prop, *result->counterexample);
    }
    emit_phase("witness_check", check_start,
               {{"valid", witness_ok.ok() ? uint64_t{1} : uint64_t{0}}});
    if (!witness_ok.ok()) {
      std::fprintf(stderr, "warning: witness failed validation: %s\n",
                   witness_ok.ToString().c_str());
    }
  }
  finish(result.ok() ? Status::OK() : result.status(),
         !result.ok() ? "ERROR" : (result->holds ? "HOLDS" : "VIOLATED"));
  if (!result.ok()) return Fail(result.status());
  if (result->holds) {
    std::printf("HOLDS within bounds (%llu database(s), %llu graph nodes, "
                "%llu product states)%s\n",
                static_cast<unsigned long long>(result->databases_checked),
                static_cast<unsigned long long>(result->total_graph_nodes),
                static_cast<unsigned long long>(
                    result->total_product_states),
                result->complete_within_bounds ? "" : " [truncated]");
    return 0;
  }
  std::printf("VIOLATED; counterexample:\n%s",
              result->counterexample->ToString().c_str());
  return 3;
}

// Batch replay: a JSONL request stream through the verification cache
// (src/cache/replay.h). Shares the verify telemetry surfaces — --stats,
// --stats-json, --trace-out, --log-json (per-request wide events).
int CmdReplay(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  auto jobs_text = ReadFile(flags.positional[0]);
  if (!jobs_text.ok()) return Fail(jobs_text.status());
  auto jobs = cache::ParseReplayJobs(*jobs_text);
  if (!jobs.ok()) return Fail(jobs.status());

  const bool log_enabled = !flags.log_json.empty();
  if (log_enabled) {
    Status st = obs::EventLog::Get().Open(flags.log_json);
    if (!st.ok()) return Fail(st);
  }
  if (!flags.trace_out.empty()) obs::StartTracing();

  cache::VerifyCache::Config cfg;
  cfg.dir = flags.cache_dir;
  cache::VerifyCache vcache(std::move(cfg));
  cache::ReplayOptions options;
  options.cache_dir = flags.cache_dir;
  options.jobs = flags.jobs > 0 ? flags.jobs : 1;
  options.eager = flags.eager;
  options.quiet = flags.quiet;
  options.log_events = log_enabled;
  auto report = cache::RunReplay(*jobs, options, &vcache);

  EmitVerifyTelemetry(flags);
  if (log_enabled) {
    Status st = obs::EventLog::Get().Close();
    if (!st.ok()) {
      std::fprintf(stderr, "warning: %s\n", st.ToString().c_str());
    }
  }
  if (!report.ok()) return Fail(report.status());
  std::fputs(report->ToText().c_str(), stdout);
  if (!flags.bench_json.empty()) {
    Status st = WriteFileAtomic(flags.bench_json, report->ToBenchJson());
    if (!st.ok()) return Fail(st);
  }
  return 0;
}

int CmdLint(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  if (flags.format != "text" && flags.format != "json" &&
      flags.format != "sarif") {
    return Fail(Status::InvalidArgument("unknown --format: " + flags.format));
  }
  const std::string& path = flags.positional[0];
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  analysis::DiagnosticSink sink;
  analysis::LintSpecText(*text, &sink);
  std::string out;
  if (flags.format == "json") {
    out = analysis::RenderJson(sink.diagnostics(), path);
  } else if (flags.format == "sarif") {
    out = analysis::RenderSarif(sink.diagnostics(), path);
  } else {
    out = analysis::RenderText(sink.diagnostics(), *text, path);
  }
  std::fputs(out.c_str(), stdout);
  if (sink.error_count() > 0) return 2;
  if (flags.werror && sink.warning_count() > 0) return 1;
  return 0;
}

// `wsvcli deps` — dump the dependence graph, optionally with one
// property's cone of influence marked. The cone is computed exactly the
// way the slicer computes it (property seeds + the always-observable
// navigation frame), so `deps --property P` explains what `verify`
// would keep.
int CmdDeps(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  if (flags.format != "text" && flags.format != "dot" &&
      flags.format != "json") {
    return Fail(Status::InvalidArgument("unknown --format: " + flags.format));
  }
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  analysis::DepGraph graph = analysis::DepGraph::Build(*service);

  std::vector<char> in_cone;
  if (!flags.property.empty()) {
    auto prop = ParseTemporalProperty(flags.property, &service->vocab());
    if (!prop.ok()) return Fail(prop.status());
    std::vector<int> seeds = graph.PropertySeeds(*prop);
    std::vector<int> targets = graph.TargetSeeds();
    seeds.insert(seeds.end(), targets.begin(), targets.end());
    in_cone = graph.BackwardCone(seeds);
    size_t kept = 0;
    for (char c : in_cone) kept += (c != 0);
    std::fprintf(stderr,
                 "cone of influence: %zu of %zu nodes (%llu edges)%s\n",
                 kept, graph.nodes().size(),
                 static_cast<unsigned long long>(graph.num_edges()),
                 graph.PropertyDomainIndependent(*prop)
                     ? ""
                     : " [property not domain-independent; the verifier "
                       "would not slice]");
  }

  const std::string out = flags.format == "json" ? graph.ToJson(in_cone)
                                                 : graph.ToDot(in_cone);
  std::fputs(out.c_str(), stdout);
  return 0;
}

int CmdVerifyCtl(const Flags& flags) {
  if (flags.positional.size() < 3) return Usage();
  auto service = LoadService(flags.positional[0]);
  if (!service.ok()) return Fail(service.status());
  auto prop = ParseTemporalProperty(flags.positional[1], &service->vocab());
  if (!prop.ok()) return Fail(prop.status());
  auto db = LoadDatabase(flags.positional[2], service->vocab());
  if (!db.ok()) return Fail(db.status());
  KripkeBuildOptions options;
  options.graph.constant_pool = flags.pool;
  options.check_propositional = !flags.unchecked;
  auto kripke = BuildPropositionalKripke(*service, *db, options);
  if (!kripke.ok()) return Fail(kripke.status());
  auto holds = prop->formula->IsCtl()
                   ? CtlHolds(*kripke, *prop->formula)
                   : CtlStarHolds(*kripke, *prop->formula);
  if (!holds.ok()) return Fail(holds.status());
  std::printf("%s (Kripke structure: %zu states)\n",
              *holds ? "HOLDS" : "VIOLATED", kripke->size());
  return *holds ? 0 : 3;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto flags = ParseFlags(argc, argv);
  if (!flags.ok()) return Fail(flags.status());
  if (flags->no_fo_bytecode) fobc::SetBytecodeEnabled(false);
  if (flags->no_slice) analysis::SetSliceEnabled(false);
  if (flags->step_budget >= 0) {
    fobc::SetStepBudget(static_cast<uint64_t>(flags->step_budget));
  }
  std::string cmd = argv[1];
  if (cmd == "validate") return CmdValidate(*flags);
  if (cmd == "print") return CmdPrint(*flags);
  if (cmd == "classify") return CmdClassify(*flags);
  if (cmd == "run") return CmdRun(*flags);
  if (cmd == "check-errors") return CmdCheckErrors(*flags);
  if (cmd == "verify") return CmdVerify(*flags);
  if (cmd == "deps") return CmdDeps(*flags);
  if (cmd == "replay") return CmdReplay(*flags);
  if (cmd == "verify-ctl") return CmdVerifyCtl(*flags);
  if (cmd == "lint") return CmdLint(*flags);
  return Usage();
}

}  // namespace
}  // namespace wsv

int main(int argc, char** argv) { return wsv::Main(argc, argv); }
