#!/usr/bin/env python3
"""Golden-output check for the spec linter.

For every ``*.wsd`` specification in the corpus directory, runs

    wsvcli lint <spec> --werror

with the corpus directory as the working directory (so the paths baked
into the output stay stable) and compares exit code + stdout against
``golden/<spec>.txt``.  The golden file's first line records the
expected exit code as ``# exit: N``; the rest is the verbatim renderer
output.

Usage:
    check_lint_golden.py --wsvcli PATH --dir specs/bad [--update]

``--update`` regenerates every golden file from the current linter
output instead of comparing.
"""

import argparse
import difflib
import os
import subprocess
import sys


def lint(wsvcli, corpus, name):
    proc = subprocess.run(
        [wsvcli, "lint", name, "--werror"],
        cwd=corpus,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    return proc.returncode, proc.stdout


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--wsvcli", required=True)
    parser.add_argument("--dir", required=True)
    parser.add_argument("--update", action="store_true")
    args = parser.parse_args()

    corpus = os.path.abspath(args.dir)
    wsvcli = os.path.abspath(args.wsvcli)
    golden_dir = os.path.join(corpus, "golden")
    specs = sorted(f for f in os.listdir(corpus) if f.endswith(".wsd"))
    if not specs:
        print(f"no *.wsd specs found in {corpus}", file=sys.stderr)
        return 1

    failures = 0
    for name in specs:
        code, out = lint(wsvcli, corpus, name)
        actual = f"# exit: {code}\n{out}"
        golden_path = os.path.join(golden_dir, name[: -len(".wsd")] + ".txt")
        if args.update:
            os.makedirs(golden_dir, exist_ok=True)
            with open(golden_path, "w") as f:
                f.write(actual)
            print(f"updated {golden_path}")
            continue
        try:
            with open(golden_path) as f:
                expected = f.read()
        except FileNotFoundError:
            print(f"FAIL {name}: missing golden file {golden_path}")
            failures += 1
            continue
        if actual != expected:
            print(f"FAIL {name}: output differs from {golden_path}")
            sys.stdout.writelines(
                difflib.unified_diff(
                    expected.splitlines(keepends=True),
                    actual.splitlines(keepends=True),
                    fromfile="golden",
                    tofile="actual",
                )
            )
            failures += 1
        else:
            print(f"ok   {name}")

    if failures:
        print(f"{failures} of {len(specs)} golden checks failed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
