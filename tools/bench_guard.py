#!/usr/bin/env python3
"""Work-counter regression guard for the benchmark suite.

Runs a Google-Benchmark binary in JSON mode and fails if any counter
exceeds its budget from a budgets file. Budgets are keyed by benchmark
name (exact match against the JSON "name" field, i.e. including any
"/arg" suffix) and map counter names to inclusive upper bounds:

    {
      "BM_Property4_PayBeforeShip": {"obs_products_built": 4},
      ...
    }

The budgeted counters are *work* counters (products built, nodes
expanded), not timings, so the guard is immune to machine noise: a
budget trips only when a code change makes the verifier do more work —
e.g. a regression in the valuation-class collapse would send
obs_products_built from 2 back to 9 on the pay-before-ship sweep.

Usage: bench_guard.py BENCH_BINARY BUDGETS_JSON [--min-time SECS]
Exit status: 0 = all budgets hold, 1 = violation or missing benchmark.
"""

import argparse
import json
import subprocess
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary", help="benchmark executable")
    ap.add_argument("budgets", help="budgets JSON file")
    ap.add_argument("--min-time", default="0.01",
                    help="--benchmark_min_time value (default 0.01)")
    args = ap.parse_args()

    with open(args.budgets) as f:
        budgets = json.load(f)
    if not budgets:
        print("bench_guard: empty budgets file, nothing to check")
        return 0

    # Only run the budgeted benchmarks: anchored alternation on the
    # base names (the part before any "/arg" suffix).
    bases = sorted({name.split("/")[0] for name in budgets})
    bench_filter = "^(" + "|".join(bases) + ")(/.*)?$"
    cmd = [
        args.binary,
        "--benchmark_format=json",
        "--benchmark_min_time=" + args.min_time,
        "--benchmark_filter=" + bench_filter,
    ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        print("bench_guard: %s exited with %d" % (cmd[0], proc.returncode))
        return 1
    report = json.loads(proc.stdout)

    by_name = {}
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        by_name[entry["name"]] = entry

    failures = []
    for name, counters in sorted(budgets.items()):
        entry = by_name.get(name)
        if entry is None:
            failures.append("benchmark %r not found in the report "
                            "(ran filter %s)" % (name, bench_filter))
            continue
        for counter, budget in sorted(counters.items()):
            if counter not in entry:
                failures.append("%s: counter %r missing from the report"
                                % (name, counter))
                continue
            value = entry[counter]
            status = "OK" if value <= budget else "OVER BUDGET"
            print("%-40s %-24s %10.1f <= %-10g %s"
                  % (name, counter, value, budget, status))
            if value > budget:
                failures.append("%s: %s = %.1f exceeds budget %g"
                                % (name, counter, value, budget))

    if failures:
        print("\nbench_guard: FAILED")
        for f in failures:
            print("  " + f)
        return 1
    print("\nbench_guard: all budgets hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
