#!/usr/bin/env python3
"""Work-counter regression guard for the benchmark suite.

Runs a Google-Benchmark binary in JSON mode and fails if any counter
leaves its budget from a budgets file. Budgets are keyed by benchmark
name (exact match against the JSON "name" field, i.e. including any
"/arg" suffix) and map counter names to either an inclusive upper bound
(a bare number) or a {"min": x, "max": y} object (each side optional) —
min bounds guard features that must keep *working* (e.g. the FO-leaf
memo must keep hitting), max bounds guard against doing more work:

    {
      "BM_Property4_PayBeforeShip": {"obs_products_built": 4},
      "BM_ScaleClosureArity/2": {"obs_leaf_memo_hits": {"min": 1}},
      ...
    }

The special "__compare__" key holds cross-benchmark ratio rules, each
asserting numerator-counter / denominator-counter <= max_ratio:

    "__compare__": [
      {"label": "on-the-fly beats eager on Property 1",
       "numerator": ["BM_Property1_Ecommerce", "obs_otf_states_created"],
       "denominator": ["BM_Property1_Ecommerce_Eager",
                       "obs_product_states"],
       "max_ratio": 0.2}
    ]

The budgeted counters are *work* counters (products built, nodes
expanded), not timings, so the guard is immune to machine noise: a
budget trips only when a code change makes the verifier do more work —
e.g. a regression in the valuation-class collapse would send
obs_products_built from 2 back to 9 on the pay-before-ship sweep, and a
regression in the on-the-fly early exit would push the Property-1 ratio
toward 1.

Usage: bench_guard.py BENCH_BINARY BUDGETS_JSON [--min-time SECS]
       bench_guard.py REPORT_JSON BUDGETS_JSON --json-report
Exit status: 0 = all budgets hold, 1 = violation or missing benchmark.

With --json-report the first argument is a pre-produced report in the
same JSON schema (e.g. BENCH_replay.json from `wsvcli replay
--bench-json`) and nothing is executed — the budgets are checked
against the file as-is.
"""

import argparse
import json
import subprocess
import sys


def parse_budget(budget):
    """Normalize a budget spec to a (min, max) pair (either side None)."""
    if isinstance(budget, dict):
        return budget.get("min"), budget.get("max")
    return None, budget


def describe_bounds(lo, hi):
    if lo is not None and hi is not None:
        return "in [%g, %g]" % (lo, hi)
    if lo is not None:
        return ">= %g" % lo
    return "<= %g" % hi


def lookup(by_name, name, counter, failures):
    entry = by_name.get(name)
    if entry is None:
        failures.append("benchmark %r not found in the report" % name)
        return None
    if counter not in entry:
        failures.append("%s: counter %r missing from the report"
                        % (name, counter))
        return None
    return entry[counter]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary", help="benchmark executable")
    ap.add_argument("budgets", help="budgets JSON file")
    ap.add_argument("--min-time", default="0.01",
                    help="--benchmark_min_time value (default 0.01)")
    ap.add_argument("--json-report", action="store_true",
                    help="treat BENCH_BINARY as a pre-produced JSON "
                         "report instead of an executable to run")
    args = ap.parse_args()

    with open(args.budgets) as f:
        budgets = json.load(f)
    if not budgets:
        print("bench_guard: empty budgets file, nothing to check")
        return 0

    compares = budgets.pop("__compare__", [])

    if args.json_report:
        bench_filter = "(pre-produced report %s)" % args.binary
        with open(args.binary) as f:
            report = json.load(f)
    else:
        # Only run the budgeted benchmarks: anchored alternation on the
        # base names (the part before any "/arg" suffix).
        names = set(budgets)
        for rule in compares:
            names.add(rule["numerator"][0])
            names.add(rule["denominator"][0])
        bases = sorted({name.split("/")[0] for name in names})
        bench_filter = "^(" + "|".join(bases) + ")(/.*)?$"
        cmd = [
            args.binary,
            "--benchmark_format=json",
            "--benchmark_min_time=" + args.min_time,
            "--benchmark_filter=" + bench_filter,
        ]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE, text=True)
        if proc.returncode != 0:
            print("bench_guard: %s exited with %d"
                  % (cmd[0], proc.returncode))
            return 1
        report = json.loads(proc.stdout)

    by_name = {}
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        by_name[entry["name"]] = entry

    failures = []
    for name, counters in sorted(budgets.items()):
        entry = by_name.get(name)
        if entry is None:
            failures.append("benchmark %r not found in the report "
                            "(ran filter %s)" % (name, bench_filter))
            continue
        for counter, budget in sorted(counters.items()):
            if counter not in entry:
                failures.append("%s: counter %r missing from the report"
                                % (name, counter))
                continue
            value = entry[counter]
            lo, hi = parse_budget(budget)
            ok = ((lo is None or value >= lo) and
                  (hi is None or value <= hi))
            bounds = describe_bounds(lo, hi)
            print("%-40s %-24s %10.1f %-18s %s"
                  % (name, counter, value, bounds,
                     "OK" if ok else "OUT OF BUDGET"))
            if not ok:
                failures.append("%s: %s = %.1f violates budget %s"
                                % (name, counter, value, bounds))

    for rule in compares:
        num_name, num_counter = rule["numerator"]
        den_name, den_counter = rule["denominator"]
        num = lookup(by_name, num_name, num_counter, failures)
        den = lookup(by_name, den_name, den_counter, failures)
        if num is None or den is None:
            continue
        label = rule.get("label", "%s/%s vs %s/%s" %
                         (num_name, num_counter, den_name, den_counter))
        if den == 0:
            failures.append("compare %r: denominator %s[%s] is zero"
                            % (label, den_name, den_counter))
            continue
        ratio = float(num) / float(den)
        ok = ratio <= rule["max_ratio"]
        print("compare: %-48s %10.4f <= %-10g %s"
              % (label, ratio, rule["max_ratio"],
                 "OK" if ok else "OUT OF BUDGET"))
        if not ok:
            failures.append(
                "compare %r: %s[%s]=%.1f / %s[%s]=%.1f = %.4f exceeds "
                "max ratio %g" % (label, num_name, num_counter, num,
                                  den_name, den_counter, den, ratio,
                                  rule["max_ratio"]))

    if failures:
        print("\nbench_guard: FAILED")
        for f in failures:
            print("  " + f)
        return 1
    print("\nbench_guard: all budgets hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
