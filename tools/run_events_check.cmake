# ctest driver for the wide-event JSONL log (label: events). Runs
#
#   wsvcli verify <SPEC> <PROP> <DB> --pool <POOL> --jobs 4 \
#       --log-json <LOG_OUT> [VERIFY_ARGS...]
#
# expecting exit code EXPECT_RC, then validates the log with
# tools/check_events.py passing CHECK_ARGS. Invoked as
#   cmake -DWSVCLI=... -DSPEC=... -P run_events_check.cmake
# (see tools/CMakeLists.txt). List-valued arguments (VERIFY_ARGS,
# CHECK_ARGS) are ';'-separated cmake lists; either may be empty.

foreach(var WSVCLI SPEC PROP DB POOL PYTHON CHECKER LOG_OUT EXPECT_RC)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_events_check: missing -D${var}=")
  endif()
endforeach()
if(NOT DEFINED VERIFY_ARGS)
  set(VERIFY_ARGS "")
endif()
if(NOT DEFINED CHECK_ARGS)
  set(CHECK_ARGS "")
endif()

# A stale log from a previous run must not mask a run that failed to
# publish one (the log lands by atomic rename at exit).
file(REMOVE "${LOG_OUT}")

execute_process(
  COMMAND "${WSVCLI}" verify "${SPEC}" "${PROP}" "${DB}"
          --pool "${POOL}" --jobs 4
          --log-json "${LOG_OUT}" ${VERIFY_ARGS}
  RESULT_VARIABLE verify_rc
  OUTPUT_VARIABLE verify_out
  ERROR_VARIABLE verify_err)
if(NOT verify_rc EQUAL ${EXPECT_RC})
  message(FATAL_ERROR
      "wsvcli verify exited ${verify_rc}, expected ${EXPECT_RC}:\n"
      "${verify_out}\n${verify_err}")
endif()

if(NOT EXISTS "${LOG_OUT}")
  message(FATAL_ERROR "wsvcli verify did not publish ${LOG_OUT}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${LOG_OUT}" ${CHECK_ARGS}
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR
      "check_events.py rejected ${LOG_OUT}:\n${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
