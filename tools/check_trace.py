#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file written by `wsvcli verify
--trace-out` (or obs::WriteChromeTrace generally).

Checks that the file parses as JSON, follows the trace-event schema
(https://chromium.googlesource.com/catapult -> tracing docs) closely
enough for chrome://tracing and Perfetto to load it, and optionally that
specific spans are present:

    check_trace.py trace.json [--require-span NAME ...]

Exit status 0 = valid, 1 = invalid, 2 = usage/IO error.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace-event JSON file to validate")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a complete ('X') event with this name exists",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_trace: cannot read {args.trace}: {e}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        return fail(f"not valid JSON: {e}")

    if not isinstance(doc, dict):
        return fail("top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("missing 'traceEvents' array")

    complete = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                return fail(f"event {i} missing required field '{key}'")
        ph = ev["ph"]
        if ph == "M":
            continue  # metadata events carry no timestamps
        if "ts" not in ev:
            return fail(f"event {i} ({ev['name']!r}) missing 'ts'")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            return fail(f"event {i} ({ev['name']!r}) has bad ts {ev['ts']!r}")
        if ph == "X":
            if "dur" not in ev:
                return fail(f"event {i} ({ev['name']!r}) is 'X' without 'dur'")
            if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                return fail(
                    f"event {i} ({ev['name']!r}) has bad dur {ev['dur']!r}"
                )
            complete.append(ev)

    if not complete:
        return fail("no complete ('X') events — nothing was traced")

    names = {ev["name"] for ev in complete}
    for want in args.require_span:
        if want not in names:
            return fail(
                f"required span {want!r} not found (have: {sorted(names)})"
            )

    print(
        f"check_trace: OK: {len(complete)} spans, "
        f"{len({ev['tid'] for ev in complete})} threads"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
