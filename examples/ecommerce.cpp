// The paper's running example (Example 2.2 / Figure 2): the full
// e-commerce site.
//
// Demonstrates, on the 20-page service:
//   * an end-to-end shopping session through the interpreter (login,
//     search for a laptop, inspect it, buy it, confirm the order — the
//     conf and ship actions fire together, as in Example 3.3),
//   * random-session simulation,
//   * error-freeness on the fixture database,
//   * the paper's properties: the navigational eventuality (1) of
//     Example 3.2 (violated: the user may idle or leave) and the
//     pay-before-ship property (4) of Example 3.4 (holds).

#include <cstdio>
#include <string>

#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "runtime/interpreter.h"
#include "verify/error_free.h"
#include "verify/ltl_verifier.h"

namespace {

wsv::Value V(const char* s) { return wsv::Value::Intern(s); }

wsv::UserChoice Button(const char* label) {
  wsv::UserChoice c;
  c.relation_choices["button"] = wsv::Tuple{V(label)};
  return c;
}

int Fail(const wsv::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace wsv;

  auto service_or = BuildEcommerceService();
  if (!service_or.ok()) return Fail(service_or.status());
  WebService service = std::move(service_or).value();
  std::printf("parsed %zu pages from the Figure 2 specification\n\n",
              service.pages().size());

  // --- A full shopping session. -----------------------------------------
  Instance db = EcommerceDatabase();
  Interpreter interp(&service, &db);
  std::vector<UserChoice> script;
  {
    UserChoice login = Button("login");
    login.constant_values["name"] = V("alice");
    login.constant_values["password"] = V("pw");
    script.push_back(login);
  }
  script.push_back(Button("laptop"));
  {
    UserChoice search = Button("search");
    search.relation_choices["laptopsearch"] =
        Tuple{V("4gb"), V("1tb"), V("13in")};
    script.push_back(search);
  }
  {
    UserChoice pick;
    pick.relation_choices["pickproduct"] = Tuple{V("p1"), V("100")};
    script.push_back(pick);
  }
  script.push_back(Button("buy"));
  {
    UserChoice pay = Button("submit");
    pay.relation_choices["payamount"] = Tuple{V("100")};
    script.push_back(pay);
  }
  script.push_back(Button("confirmorder"));
  script.push_back(Button("logout"));
  ScriptedInputProvider provider(std::move(script));
  auto run = interp.Run(provider, 9);
  if (!run.ok()) return Fail(run.status());
  std::printf("shopping session:");
  for (const std::string& page : run->page_sequence) {
    std::printf(" %s", page.c_str());
  }
  const TraceStep& after_confirm = run->trace[7];
  std::printf("\nactions after confirming: conf=%s ship=%s\n\n",
              after_confirm.actions.FindRelation("conf")->ToString().c_str(),
              after_confirm.actions.FindRelation("ship")->ToString().c_str());

  // --- Random sessions. ---------------------------------------------------
  std::vector<Value> pool{V("alice"), V("pw"), V("Admin"), V("root")};
  int errors = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    RandomInputProvider random(seed, pool);
    auto r = interp.Run(random, 20);
    if (!r.ok()) return Fail(r.status());
    if (r->reached_error) ++errors;
  }
  std::printf("random sessions: 50 x 20 steps, %d reached the error page\n\n",
              errors);

  // --- Error-freeness on the verification database. ----------------------
  Instance small = EcommerceSmallDatabase();
  ErrorFreeOptions ef_options;
  ef_options.graph.constant_pool = {V("alice"), V("pw")};
  auto ef = CheckErrorFreeOnDatabase(service, small, ef_options);
  if (!ef.ok()) return Fail(ef.status());
  std::printf("error-free on the fixture database: %s (%llu configurations)\n\n",
              ef->error_free ? "yes" : "no",
              static_cast<unsigned long long>(ef->total_graph_nodes));

  // --- The paper's properties. --------------------------------------------
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  options.require_input_bounded = false;  // the cart pages read state

  {
    // Example 3.2, property (1): reaching the product index forces an
    // eventual cart visit. Violated: the user may leave.
    LtlVerifier verifier(&service, options);
    auto prop = ParseTemporalProperty("G(!PIP) | F(PIP & F(CC))",
                                      &service.vocab());
    if (!prop.ok()) return Fail(prop.status());
    auto r = verifier.VerifyOnDatabase(*prop, small);
    if (!r.ok()) return Fail(r.status());
    std::printf("property (1) G(!PIP) | F(PIP & F(CC)): %s\n",
                r->holds ? "HOLDS" : "VIOLATED (as the paper expects — "
                                     "runs may idle)");
  }
  {
    // Example 3.4, property (4): pay-before-ship. Holds.
    LtlVerifyOptions o4 = options;
    o4.closure_candidates = {V("p1"), V("100")};
    LtlVerifier verifier(&service, o4);
    std::string beta =
        "(UPP & payamount(price) & button(\"submit\") & pick(pid, price) "
        "& prod_prices(pid, price))";
    auto prop = ParseTemporalProperty(
        "forall pid, price . (" + beta +
            " B !(conf(name, price) & ship(name, pid)))",
        &service.vocab());
    if (!prop.ok()) return Fail(prop.status());
    auto r = verifier.VerifyOnDatabase(*prop, small);
    if (!r.ok()) return Fail(r.status());
    std::printf("property (4) pay-before-ship:          %s\n",
                r->holds ? "HOLDS" : "VIOLATED");
  }
  return 0;
}
