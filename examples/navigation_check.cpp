// Branching-time navigation checking via propositional abstraction
// (Example 4.3 / Theorem 4.4 / Lemma A.12).
//
// The login service is abstracted to the propositional class (state,
// action, and database atoms become propositions; parameterized inputs
// stay), the Kripke structure is built per database, and CTL / CTL*
// properties are model-checked on it. The paper's flagship CTL examples
// — "from any page the user can return home" and "after login a payment
// page is reachable" — are instantiated on this navigation skeleton.

#include <cstdio>

#include "ctl/ctl_check.h"
#include "ctl/ctl_star_check.h"
#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "verify/abstraction.h"

namespace {

int Fail(const wsv::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace wsv;

  auto service_or = BuildLoginService();
  if (!service_or.ok()) return Fail(service_or.status());
  auto abs_or = AbstractToPropositional(*service_or);
  if (!abs_or.ok()) return Fail(abs_or.status());
  WebService abs = std::move(abs_or).value();
  std::printf("=== Abstracted service ===\n%s\n", abs.ToString().c_str());

  // The abstract database: the user table is either empty or not.
  for (bool has_users : {true, false}) {
    Instance db;
    if (!db.EnsureRelation("user", 0).ok()) return 1;
    db.MutableRelation("user")->SetBool(has_users);
    KripkeBuildOptions options;
    options.graph.constant_pool = {Value::Intern("c0")};
    auto kripke = BuildPropositionalKripke(abs, db, options);
    if (!kripke.ok()) return Fail(kripke.status());
    std::printf("=== database with %s user table: %zu Kripke states ===\n",
                has_users ? "a non-empty" : "an empty", kripke->size());

    struct Check {
      const char* text;
      bool is_ctl_star;
    };
    const Check checks[] = {
        // Logging in reaches the customer page (only with users).
        {"button(\"login\") -> E F(CP)", false},
        // Every session can terminate.
        {"A G(E F(BYE))", false},
        // The error state never co-exists with a successful login.
        {"A G(!(logged_in & error))", false},
        // CTL*: after pressing login, some run visits CP and stays
        // logged in forever after.
        {"button(\"login\") -> E (F(CP & G(logged_in)))", true},
    };
    for (const Check& check : checks) {
      auto prop = ParseTemporalProperty(check.text, &abs.vocab());
      if (!prop.ok()) return Fail(prop.status());
      auto holds = check.is_ctl_star
                       ? CtlStarHolds(*kripke, *prop->formula)
                       : CtlHolds(*kripke, *prop->formula);
      if (!holds.ok()) return Fail(holds.status());
      std::printf("  %-45s %s\n", check.text,
                  *holds ? "HOLDS" : "VIOLATED");
    }
    std::printf("\n");
  }
  return 0;
}
