// Example 4.8 / Figure 1: a Web service with input-driven search.
//
// The user browses the product-category hierarchy one node per step; the
// options offered are the RI-successors of the previous pick, filtered
// by in-stock unary relations and the new/used state proposition — the
// exact Definition 4.7 shape. Branching-time properties about the
// navigation are decided per Theorem 4.9 (here by the explicit
// label-Kripke verifier; the CTL-satisfiability tableau the theorem
// reduces to is exercised by bench_ctl_sat).

#include <cstdio>
#include <string>

#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "runtime/interpreter.h"
#include "verify/input_search_verifier.h"

namespace {

int Fail(const wsv::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace wsv;

  auto service_or = BuildInputDrivenSearchService(CatalogSearchSpec());
  if (!service_or.ok()) return Fail(service_or.status());
  WebService service = std::move(service_or).value();
  std::printf("=== The generated service ===\n%s\n",
              service.ToString().c_str());

  Status in_class = CheckInputDrivenSearch(service);
  std::printf("Definition 4.7 membership: %s\n\n",
              in_class.ok() ? "yes" : in_class.ToString().c_str());

  // Walk the Figure 1 hierarchy: products -> new -> laptops -> l1.
  Instance db = CatalogSearchDatabase();
  Interpreter interp(&service, &db);
  std::vector<UserChoice> script;
  for (const char* pick : {"products", "new", "laptops", "l1"}) {
    UserChoice c;
    c.relation_choices["I"] = Tuple{Value::Intern(pick)};
    script.push_back(c);
  }
  ScriptedInputProvider provider(std::move(script));
  auto run = interp.Run(provider, 4);
  if (!run.ok()) return Fail(run.status());
  std::printf("=== Browsing products -> new -> laptops -> l1 ===\n");
  for (const TraceStep& step : run->trace) {
    std::printf("picked: %s\n",
                step.inputs.FindRelation("I")->ToString().c_str());
  }
  std::printf("\n");

  // Branching-time navigation properties (Theorem 4.9's question).
  KripkeBuildOptions options;
  const char* properties[] = {
      // Engaging the search makes the in-stock laptop reachable.
      "I(\"products\") -> E F(I(\"l1\"))",
      // The hierarchy is acyclic: the root is never offered again.
      "A G(!I(\"products\") | A X(A G(!I(\"products\"))))",
      // Nothing out of stock ever shows up.
      "A G(!I(\"d2\"))",
      // CTL*: some navigation reaches d1 and keeps new_sel set forever
      // after (the user went through "new").
      "I(\"products\") -> E (F(I(\"d1\")) & F(G(new_sel)))",
  };
  for (const char* text : properties) {
    auto prop = ParseTemporalProperty(text, &service.vocab());
    if (!prop.ok()) return Fail(prop.status());
    auto r = VerifyInputDrivenSearchOnDatabase(service, *prop, db, options);
    if (!r.ok()) return Fail(r.status());
    std::printf("%-60s %s (Kripke: %llu states)\n", text,
                r->holds ? "HOLDS" : "VIOLATED",
                static_cast<unsigned long long>(r->total_kripke_states));
  }
  return 0;
}
