// Quickstart: specify a small Web service, run it, verify it.
//
// This walks the full pipeline of the library on a 4-page login service:
//   1. parse a .wsv specification (Definition 2.1),
//   2. classify it (input-bounded? propositional?),
//   3. execute a scripted run through the interpreter (Definition 2.3),
//   4. check error-freeness,
//   5. verify LTL-FO properties, printing a counterexample run when the
//      property fails (Theorem 3.5's question, answered by the
//      explicit-state verifier).

#include <cstdio>
#include <string>

#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "runtime/interpreter.h"
#include "verify/error_free.h"
#include "verify/ltl_verifier.h"
#include "ws/classify.h"

namespace {

wsv::Value V(const char* s) { return wsv::Value::Intern(s); }

int Fail(const wsv::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace wsv;

  // 1. Parse the specification.
  std::printf("=== The specification ===\n%s\n", LoginSpecText().c_str());
  auto service_or = BuildLoginService();
  if (!service_or.ok()) return Fail(service_or.status());
  WebService service = std::move(service_or).value();
  Instance db = LoginDatabase();

  // 2. Classify.
  std::printf("=== Classification ===\n%s\n",
              ClassifyService(service).ToString().c_str());

  // 3. A scripted run: alice logs in, then logs out.
  UserChoice login;
  login.constant_values["name"] = V("alice");
  login.constant_values["password"] = V("pw");
  login.relation_choices["button"] = Tuple{V("login")};
  UserChoice logout;
  logout.relation_choices["button"] = Tuple{V("logout")};
  ScriptedInputProvider script({login, logout});
  Interpreter interp(&service, &db);
  auto run = interp.Run(script, 3);
  if (!run.ok()) return Fail(run.status());
  std::printf("=== A run ===\npages:");
  for (const std::string& page : run->page_sequence) {
    std::printf(" %s", page.c_str());
  }
  std::printf("\nreached error page: %s\n\n",
              run->reached_error ? "yes" : "no");

  // 4. Error-freeness (Section 2, Theorem 3.5(i)).
  ErrorFreeOptions ef_options;
  ef_options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  auto ef = CheckErrorFreeOnDatabase(service, db, ef_options);
  if (!ef.ok()) return Fail(ef.status());
  std::printf("=== Error-freeness ===\nerror-free on this database: %s\n\n",
              ef->error_free ? "yes" : "no");

  // 5. LTL-FO verification.
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  LtlVerifier verifier(&service, options);
  const char* properties[] = {
      // CP is only reachable by a successful login: holds.
      "G(!CP | logged_in)",
      // The error state and a successful login are exclusive: holds.
      "forall m . G(!(logged_in & error(m)) )",
      // Login always eventually succeeds: fails (wrong password runs).
      "G(!MP)",
  };
  for (const char* text : properties) {
    auto prop = ParseTemporalProperty(text, &service.vocab());
    if (!prop.ok()) return Fail(prop.status());
    auto result = verifier.VerifyOnDatabase(*prop, db);
    if (!result.ok()) return Fail(result.status());
    std::printf("=== Verify: %s ===\n", text);
    if (result->holds) {
      std::printf("HOLDS (within bounds; %llu product states)\n\n",
                  static_cast<unsigned long long>(
                      result->total_product_states));
    } else {
      std::printf("VIOLATED; counterexample:\n%s\n",
                  result->counterexample->ToString().c_str());
    }
  }
  return 0;
}
