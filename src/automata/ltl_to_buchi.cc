#include "automata/ltl_to_buchi.h"

#include <map>
#include <optional>

#include "obs/trace.h"

namespace wsv {

namespace {

// A node of the flattened formula DAG. Structurally identical subformulas
// are shared (keyed by printed form).
struct Node {
  TFormula::Kind kind;
  int leaf_index = -1;             // kFo: index into leaves
  bool const_true = false;         // kFo that is the constant true
  bool const_false = false;        // kFo that is the constant false
  std::vector<int> children;       // node indices
};

class Tableau {
 public:
  StatusOr<BuchiAutomaton> Build(const TFormula& formula) {
    WSV_ASSIGN_OR_RETURN(root_, Flatten(formula));
    return Construct();
  }

 private:
  StatusOr<int> Flatten(const TFormula& f) {
    std::string key = f.ToString();
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    Node node;
    node.kind = f.kind();
    switch (f.kind()) {
      case TFormula::Kind::kFo: {
        const Formula& fo = *f.fo();
        if (fo.kind() == Formula::Kind::kTrue) {
          node.const_true = true;
        } else if (fo.kind() == Formula::Kind::kFalse) {
          node.const_false = true;
        } else {
          std::string leaf_key = fo.ToString();
          auto lit = leaf_index_.find(leaf_key);
          if (lit == leaf_index_.end()) {
            lit = leaf_index_.emplace(leaf_key,
                                      static_cast<int>(leaves_.size()))
                      .first;
            leaves_.push_back(f.fo());
          }
          node.leaf_index = lit->second;
        }
        break;
      }
      case TFormula::Kind::kE:
      case TFormula::Kind::kA:
        return Status::InvalidArgument(
            "path quantifier in LTL-to-Büchi input: " + f.ToString());
      default:
        for (const TFormulaPtr& c : f.children()) {
          WSV_ASSIGN_OR_RETURN(int ci, Flatten(*c));
          node.children.push_back(ci);
        }
    }
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    index_[key] = id;
    return id;
  }

  // Elementary nodes carry a free bit in a state; composite nodes derive.
  bool IsElementary(const Node& n) const {
    switch (n.kind) {
      case TFormula::Kind::kFo:
        return !n.const_true && !n.const_false;
      case TFormula::Kind::kX:
      case TFormula::Kind::kU:
      case TFormula::Kind::kB:
        return true;
      default:
        return false;
    }
  }

  // Derives composite values bottom-up for a fixed elementary assignment.
  // Nodes are created children-first by Flatten, so index order works.
  std::vector<char> DeriveValues(uint64_t elem_bits,
                                 const std::vector<int>& elem_pos) const {
    std::vector<char> val(nodes_.size(), 0);
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      if (IsElementary(n)) {
        int pos = elem_pos[i];
        val[i] = (elem_bits >> pos) & 1;
        continue;
      }
      switch (n.kind) {
        case TFormula::Kind::kFo:
          val[i] = n.const_true ? 1 : 0;
          break;
        case TFormula::Kind::kNot:
          val[i] = val[n.children[0]] ? 0 : 1;
          break;
        case TFormula::Kind::kAnd: {
          char v = 1;
          for (int c : n.children) v = v && val[c];
          val[i] = v;
          break;
        }
        case TFormula::Kind::kOr: {
          char v = 0;
          for (int c : n.children) v = v || val[c];
          val[i] = v;
          break;
        }
        default:
          break;  // unreachable
      }
    }
    return val;
  }

  StatusOr<BuchiAutomaton> Construct() {
    // Positions of elementary nodes in the enumeration bitmask.
    std::vector<int> elem_pos(nodes_.size(), -1);
    std::vector<int> elem_nodes;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (IsElementary(nodes_[i])) {
        elem_pos[i] = static_cast<int>(elem_nodes.size());
        elem_nodes.push_back(static_cast<int>(i));
      }
    }
    if (elem_nodes.size() > 24) {
      return Status::ResourceExhausted(
          "LTL formula has " + std::to_string(elem_nodes.size()) +
          " elementary subformulas; tableau would be too large");
    }

    // Enumerate locally consistent assignments.
    std::vector<std::vector<char>> state_vals;
    const uint64_t limit = uint64_t{1} << elem_nodes.size();
    for (uint64_t bits = 0; bits < limit; ++bits) {
      std::vector<char> val = DeriveValues(bits, elem_pos);
      bool consistent = true;
      for (size_t i = 0; i < nodes_.size() && consistent; ++i) {
        const Node& n = nodes_[i];
        if (n.kind == TFormula::Kind::kU) {
          char u = val[i], l = val[n.children[0]], r = val[n.children[1]];
          if (r && !u) consistent = false;          // psi -> U
          if (u && !r && !l) consistent = false;    // U & !psi -> phi
        } else if (n.kind == TFormula::Kind::kB) {
          char b = val[i], l = val[n.children[0]], r = val[n.children[1]];
          if (b && !r) consistent = false;          // B -> psi
          if (l && r && !b) consistent = false;     // phi & psi -> B
        }
      }
      if (consistent) state_vals.push_back(std::move(val));
    }

    BuchiAutomaton out;
    out.leaves = leaves_;
    out.states.reserve(state_vals.size());
    for (const std::vector<char>& val : state_vals) {
      std::vector<char> label(leaves_.size(), 0);
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].leaf_index >= 0) {
          label[static_cast<size_t>(nodes_[i].leaf_index)] = val[i];
        }
      }
      out.states.push_back(std::move(label));
    }
    out.succ.resize(state_vals.size());
    out.initial.resize(state_vals.size());

    // Transitions: A -> B allowed iff the expansion laws hold across the
    // pair for every X, U, and B node.
    for (size_t a = 0; a < state_vals.size(); ++a) {
      out.initial[a] = state_vals[a][static_cast<size_t>(root_)];
      for (size_t b = 0; b < state_vals.size(); ++b) {
        bool ok = true;
        for (size_t i = 0; i < nodes_.size() && ok; ++i) {
          const Node& n = nodes_[i];
          const std::vector<char>& va = state_vals[a];
          const std::vector<char>& vb = state_vals[b];
          switch (n.kind) {
            case TFormula::Kind::kX:
              ok = va[i] == vb[n.children[0]];
              break;
            case TFormula::Kind::kU:
              ok = va[i] == (va[n.children[1]] ||
                             (va[n.children[0]] && vb[i]));
              break;
            case TFormula::Kind::kB:
              ok = va[i] == (va[n.children[1]] &&
                             (va[n.children[0]] || vb[i]));
              break;
            default:
              break;
          }
        }
        if (ok) out.succ[a].push_back(static_cast<int>(b));
      }
    }

    // One accepting set per U node: states where the Until is fulfilled
    // or not asserted. Dually, a *false* B node asserts the until
    // !(a B b) == !a U !b, so each B node contributes the set of states
    // where it holds or its right argument is already false.
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].kind == TFormula::Kind::kU) {
        std::set<int> fset;
        for (size_t s = 0; s < state_vals.size(); ++s) {
          if (!state_vals[s][i] || state_vals[s][nodes_[i].children[1]]) {
            fset.insert(static_cast<int>(s));
          }
        }
        out.accepting_sets.push_back(std::move(fset));
      } else if (nodes_[i].kind == TFormula::Kind::kB) {
        std::set<int> fset;
        for (size_t s = 0; s < state_vals.size(); ++s) {
          if (state_vals[s][i] || !state_vals[s][nodes_[i].children[1]]) {
            fset.insert(static_cast<int>(s));
          }
        }
        out.accepting_sets.push_back(std::move(fset));
      }
    }
    return out;
  }

  std::vector<Node> nodes_;
  std::map<std::string, int> index_;
  std::map<std::string, int> leaf_index_;
  std::vector<FormulaPtr> leaves_;
  int root_ = -1;
};

}  // namespace

StatusOr<BuchiAutomaton> LtlToBuchi(const TFormula& formula) {
  WSV_SPAN("automata/ltl_to_buchi");
  Tableau tableau;
  StatusOr<BuchiAutomaton> out = tableau.Build(formula);
  if (out.ok()) WSV_COUNT("automata/gba_states", out->size());
  return out;
}

}  // namespace wsv
