// LTL -> generalized Büchi automaton via the classic tableau
// construction.
//
// States are consistent truth assignments to the *elementary* formulas of
// the input (FO leaves, X-, U-, and B-subformulas); composite boolean
// nodes derive their value. Transitions enforce the expansion laws
//   phi U psi  ==  psi | (phi & X(phi U psi))
//   phi B psi  ==  psi & (phi | X(phi B psi))
// and one accepting set per U-subformula rules out runs that defer an
// Until forever. The automaton accepts exactly the leaf-assignment words
// satisfying the formula.
//
// Exponential in the number of elementary subformulas (as any LTL->Büchi
// translation must be in the worst case); fine for the property sizes the
// verifier handles.

#ifndef WSV_AUTOMATA_LTL_TO_BUCHI_H_
#define WSV_AUTOMATA_LTL_TO_BUCHI_H_

#include "automata/buchi.h"
#include "common/status.h"
#include "ltl/ltl.h"

namespace wsv {

/// Translates an LTL formula (no path quantifiers) into a generalized
/// Büchi automaton over its FO leaves.
StatusOr<BuchiAutomaton> LtlToBuchi(const TFormula& formula);

}  // namespace wsv

#endif  // WSV_AUTOMATA_LTL_TO_BUCHI_H_
