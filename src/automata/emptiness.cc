#include "automata/emptiness.h"

#include <algorithm>
#include <queue>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsv {

namespace {

// BFS path from any source flagged in `from` to vertex `to`, restricted
// to vertices where allowed(v) holds. Returns the path including both
// endpoints, or empty if unreachable.
template <typename Allowed>
std::vector<int> BfsPath(const std::vector<std::vector<int>>& succ,
                         const std::vector<char>& from, int to,
                         const Allowed& allowed) {
  const int n = static_cast<int>(succ.size());
  std::vector<int> parent(n, -2);  // -2 unvisited, -1 source
  std::queue<int> q;
  for (int v = 0; v < n; ++v) {
    if (from[v] && allowed(v)) {
      parent[v] = -1;
      q.push(v);
    }
  }
  while (!q.empty()) {
    int v = q.front();
    q.pop();
    if (v == to) {
      std::vector<int> path;
      for (int u = v; u != -1; u = parent[u]) path.push_back(u);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (int w : succ[v]) {
      if (parent[w] == -2 && allowed(w)) {
        parent[w] = v;
        q.push(w);
      }
    }
  }
  return {};
}

}  // namespace

std::optional<Lasso> FindAcceptingLasso(
    const std::vector<std::vector<int>>& succ,
    const std::vector<char>& initial, const std::vector<char>& accepting) {
  WSV_SPAN("automata/emptiness");
  WSV_TIMER("automata/emptiness_ns");
  WSV_COUNT1("automata/emptiness_searches");
  const int n = static_cast<int>(succ.size());

  // Reachability from initial vertices.
  std::vector<char> reachable(n, 0);
  {
    std::queue<int> q;
    for (int v = 0; v < n; ++v) {
      if (initial[v]) {
        reachable[v] = 1;
        q.push(v);
      }
    }
    while (!q.empty()) {
      int v = q.front();
      q.pop();
      for (int w : succ[v]) {
        if (!reachable[w]) {
          reachable[w] = 1;
          q.push(w);
        }
      }
    }
  }

  // Iterative Tarjan SCC over the reachable subgraph.
  std::vector<int> index(n, -1), low(n, 0), comp(n, -1);
  std::vector<char> on_stack(n, 0);
  std::vector<int> stack;
  int next_index = 0, next_comp = 0;
  struct Frame {
    int v;
    size_t child;
  };
  for (int root = 0; root < n; ++root) {
    if (!reachable[root] || index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < succ[f.v].size()) {
        int w = succ[f.v][f.child++];
        if (!reachable[w]) continue;
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            comp[w] = next_comp;
            if (w == f.v) break;
          }
          ++next_comp;
        }
        int v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }

  // Does the SCC of `a` contain a cycle through `a`?
  auto cycle_through = [&](int a) -> std::vector<int> {
    // BFS from a's successors inside the SCC back to a.
    const int c = comp[a];
    std::vector<char> from(n, 0);
    bool self_loop = false;
    for (int w : succ[a]) {
      if (w == a) self_loop = true;
      if (comp[w] == c) from[w] = 1;
    }
    if (self_loop) return {a};
    std::vector<int> back = BfsPath(succ, from, a,
                                    [&](int v) { return comp[v] == c; });
    if (back.empty()) return {};
    // Cycle: a, back[0..end-1] (back ends at a).
    std::vector<int> cycle{a};
    cycle.insert(cycle.end(), back.begin(), back.end() - 1);
    return cycle;
  };

  for (int a = 0; a < n; ++a) {
    if (!reachable[a] || !accepting[a]) continue;
    std::vector<int> cycle = cycle_through(a);
    if (cycle.empty()) continue;
    std::vector<int> prefix =
        BfsPath(succ, initial, a, [&](int v) { return reachable[v]; });
    if (prefix.empty()) continue;  // should not happen: a is reachable
    Lasso lasso;
    lasso.prefix = std::move(prefix);
    lasso.cycle = std::move(cycle);
    WSV_COUNT1("automata/lassos_found");
    return lasso;
  }
  return std::nullopt;
}

StatusOr<std::optional<Lasso>> FindAcceptingLassoOnTheFly(
    const std::vector<int>& initial,
    const std::function<StatusOr<const std::vector<int>*>(int)>& succ,
    const std::function<bool(int)>& accepting,
    const std::function<bool()>& stop, NestedDfsStats* stats) {
  WSV_SPAN("automata/emptiness");
  WSV_TIMER("automata/emptiness_ns");
  WSV_COUNT1("automata/emptiness_searches");

  // CVWY colors. Invariants: cyan vertices are exactly the blue-DFS
  // stack; blue vertices are fully explored and non-accepting-cycle-free
  // so far; red vertices have been swept by some inner (red) DFS and
  // never need re-sweeping — the red set persists across seeds, which is
  // what makes the nested search linear.
  enum : char { kWhite = 0, kCyan = 1, kBlue = 2, kRed = 3 };
  std::vector<char> color;
  // Position on the blue stack while cyan (-1 otherwise): turns the
  // cycle-closing lookup at detection time into O(1).
  std::vector<int> stack_pos;
  auto ensure = [&](int v) {
    if (static_cast<size_t>(v) >= color.size()) {
      color.resize(static_cast<size_t>(v) + 1, kWhite);
      stack_pos.resize(static_cast<size_t>(v) + 1, -1);
    }
  };

  std::vector<int> blue_stack;
  struct Frame {
    int v;
    const std::vector<int>* succs;
    size_t child;
  };
  std::vector<Frame> blue;
  std::vector<Frame> red;

  uint64_t ops = 0;
  auto cancelled = [&]() { return stop && (++ops & 63) == 0 && stop(); };

  NestedDfsStats local;
  NestedDfsStats& st = stats != nullptr ? *stats : local;

  // The cycle was detected with the red DFS (frames in `red`, seed on
  // top of `blue_stack`) reaching the cyan vertex `w`: assemble
  //   prefix = blue stack (initial root .. seed s)
  //   cycle  = s, red path minus its endpoints' duplicates, then the
  //            blue-stack segment from w up to just below s.
  auto assemble = [&](int w) {
    Lasso lasso;
    lasso.prefix = blue_stack;
    const int top = static_cast<int>(blue_stack.size()) - 1;  // seed s
    for (size_t i = 0; i < red.size(); ++i) lasso.cycle.push_back(red[i].v);
    const int j = stack_pos[w];
    for (int i = j; i < top; ++i) lasso.cycle.push_back(blue_stack[i]);
    WSV_COUNT1("automata/lassos_found");
    return lasso;
  };

  // Inner (red) DFS from the accepting seed on top of the blue stack.
  // Returns the closing cyan vertex, -1 if no accepting cycle through
  // the seed, or an error (cancellation / implicit-graph failure).
  auto red_dfs = [&](int s) -> StatusOr<int> {
    WSV_ASSIGN_OR_RETURN(const std::vector<int>* s_succs, succ(s));
    red.assign(1, Frame{s, s_succs, 0});
    while (!red.empty()) {
      Frame& f = red.back();
      if (f.child < f.succs->size()) {
        int w = (*f.succs)[f.child++];
        ensure(w);
        if (color[w] == kCyan) return w;  // cycle back into the blue stack
        if (color[w] == kRed) continue;
        if (cancelled()) return Status::Cancelled("emptiness search cancelled");
        color[w] = kRed;
        WSV_ASSIGN_OR_RETURN(const std::vector<int>* w_succs, succ(w));
        red.push_back(Frame{w, w_succs, 0});
      } else {
        red.pop_back();
      }
    }
    return -1;
  };

  for (int root : initial) {
    ensure(root);
    if (color[root] != kWhite) continue;
    color[root] = kCyan;
    blue_stack.push_back(root);
    stack_pos[root] = 0;
    WSV_ASSIGN_OR_RETURN(const std::vector<int>* root_succs, succ(root));
    blue.assign(1, Frame{root, root_succs, 0});
    ++st.vertices_visited;
    st.max_depth = std::max<uint64_t>(st.max_depth, blue_stack.size());

    while (!blue.empty()) {
      Frame& f = blue.back();
      if (f.child < f.succs->size()) {
        int w = (*f.succs)[f.child++];
        ensure(w);
        if (color[w] != kWhite) continue;
        if (cancelled()) return Status::Cancelled("emptiness search cancelled");
        color[w] = kCyan;
        stack_pos[w] = static_cast<int>(blue_stack.size());
        blue_stack.push_back(w);
        WSV_ASSIGN_OR_RETURN(const std::vector<int>* w_succs, succ(w));
        blue.push_back(Frame{w, w_succs, 0});
        ++st.vertices_visited;
        st.max_depth = std::max<uint64_t>(st.max_depth, blue_stack.size());
      } else {
        // Post-order of v: accepting vertices seed the inner search
        // while still cyan (the seed itself closing the cycle is the
        // w == s case).
        const int v = f.v;
        if (accepting(v)) {
          WSV_ASSIGN_OR_RETURN(int w, red_dfs(v));
          if (w != -1) return std::optional<Lasso>(assemble(w));
        }
        color[v] = accepting(v) ? kRed : kBlue;
        stack_pos[v] = -1;
        blue_stack.pop_back();
        blue.pop_back();
      }
    }
  }
  return std::optional<Lasso>(std::nullopt);
}

}  // namespace wsv
