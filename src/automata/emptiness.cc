#include "automata/emptiness.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "automata/search_strategy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsv {

namespace {

// BFS path from any source flagged in `from` to vertex `to`, restricted
// to vertices where allowed(v) holds. Returns the path including both
// endpoints, or empty if unreachable.
template <typename Allowed>
std::vector<int> BfsPath(const std::vector<std::vector<int>>& succ,
                         const std::vector<char>& from, int to,
                         const Allowed& allowed) {
  const int n = static_cast<int>(succ.size());
  std::vector<int> parent(n, -2);  // -2 unvisited, -1 source
  std::queue<int> q;
  for (int v = 0; v < n; ++v) {
    if (from[v] && allowed(v)) {
      parent[v] = -1;
      q.push(v);
    }
  }
  while (!q.empty()) {
    int v = q.front();
    q.pop();
    if (v == to) {
      std::vector<int> path;
      for (int u = v; u != -1; u = parent[u]) path.push_back(u);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (int w : succ[v]) {
      if (parent[w] == -2 && allowed(w)) {
        parent[w] = v;
        q.push(w);
      }
    }
  }
  return {};
}

}  // namespace

std::optional<Lasso> FindAcceptingLasso(
    const std::vector<std::vector<int>>& succ,
    const std::vector<char>& initial, const std::vector<char>& accepting) {
  WSV_SPAN("automata/emptiness");
  WSV_TIMER("automata/emptiness_ns");
  WSV_COUNT1("automata/emptiness_searches");
  const int n = static_cast<int>(succ.size());

  // Reachability from initial vertices.
  std::vector<char> reachable(n, 0);
  {
    std::queue<int> q;
    for (int v = 0; v < n; ++v) {
      if (initial[v]) {
        reachable[v] = 1;
        q.push(v);
      }
    }
    while (!q.empty()) {
      int v = q.front();
      q.pop();
      for (int w : succ[v]) {
        if (!reachable[w]) {
          reachable[w] = 1;
          q.push(w);
        }
      }
    }
  }

  // Iterative Tarjan SCC over the reachable subgraph.
  std::vector<int> index(n, -1), low(n, 0), comp(n, -1);
  std::vector<char> on_stack(n, 0);
  std::vector<int> stack;
  int next_index = 0, next_comp = 0;
  struct Frame {
    int v;
    size_t child;
  };
  for (int root = 0; root < n; ++root) {
    if (!reachable[root] || index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < succ[f.v].size()) {
        int w = succ[f.v][f.child++];
        if (!reachable[w]) continue;
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            comp[w] = next_comp;
            if (w == f.v) break;
          }
          ++next_comp;
        }
        int v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }

  // Does the SCC of `a` contain a cycle through `a`?
  auto cycle_through = [&](int a) -> std::vector<int> {
    // BFS from a's successors inside the SCC back to a.
    const int c = comp[a];
    std::vector<char> from(n, 0);
    bool self_loop = false;
    for (int w : succ[a]) {
      if (w == a) self_loop = true;
      if (comp[w] == c) from[w] = 1;
    }
    if (self_loop) return {a};
    std::vector<int> back = BfsPath(succ, from, a,
                                    [&](int v) { return comp[v] == c; });
    if (back.empty()) return {};
    // Cycle: a, back[0..end-1] (back ends at a).
    std::vector<int> cycle{a};
    cycle.insert(cycle.end(), back.begin(), back.end() - 1);
    return cycle;
  };

  for (int a = 0; a < n; ++a) {
    if (!reachable[a] || !accepting[a]) continue;
    std::vector<int> cycle = cycle_through(a);
    if (cycle.empty()) continue;
    std::vector<int> prefix =
        BfsPath(succ, initial, a, [&](int v) { return reachable[v]; });
    if (prefix.empty()) continue;  // should not happen: a is reachable
    Lasso lasso;
    lasso.prefix = std::move(prefix);
    lasso.cycle = std::move(cycle);
    WSV_COUNT1("automata/lassos_found");
    return lasso;
  }
  return std::nullopt;
}

StatusOr<std::optional<Lasso>> FindAcceptingLassoOnTheFly(
    const std::vector<int>& initial,
    const std::function<StatusOr<const std::vector<int>*>(int)>& succ,
    const std::function<bool(int)>& accepting,
    const std::function<bool()>& stop, NestedDfsStats* stats) {
  // The CVWY implementation moved to automata/search_strategy.cc as the
  // registered "dfs" strategy; this entry point is the fixed default
  // policy over the same machinery.
  SearchOptions options;  // strategy = "dfs"
  WSV_ASSIGN_OR_RETURN(std::unique_ptr<SearchStrategy> strategy,
                       MakeSearchStrategy(options));
  SearchProblem problem;
  problem.initial = initial;
  problem.succ = succ;
  problem.accepting = accepting;
  problem.stop = stop;
  SearchStats st;
  WSV_ASSIGN_OR_RETURN(std::optional<Lasso> lasso,
                       strategy->FindLasso(problem, &st));
  if (stats != nullptr) {
    stats->max_depth = st.max_depth;
    stats->vertices_visited = st.vertices_visited;
  }
  return std::optional<Lasso>(std::move(lasso));
}

}  // namespace wsv
