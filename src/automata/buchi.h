// Büchi automata over FO-leaf truth assignments.
//
// The automata are *state-labeled*: every state carries a required truth
// value for each FO leaf of the property. A run of the automaton on a
// word (a sequence of leaf-truth assignments) may occupy a state at
// position i only if the state's label matches the assignment at i. This
// form makes the product with a configuration graph straightforward: a
// product state (node, q) is viable iff evaluating the leaves at the node
// matches q's label.
//
// Construction from LTL is in automata/ltl_to_buchi.h and produces a
// generalized automaton (one accepting set per Until subformula);
// Degeneralize() applies the standard counter construction.

#ifndef WSV_AUTOMATA_BUCHI_H_
#define WSV_AUTOMATA_BUCHI_H_

#include <set>
#include <string>
#include <vector>

#include "fo/formula.h"

namespace wsv {

class BuchiAutomaton {
 public:
  /// The FO leaves the labels range over.
  std::vector<FormulaPtr> leaves;
  /// states[s][k] == 1 iff state s requires leaf k to be true.
  std::vector<std::vector<char>> states;
  /// succ[s] lists successor state indices.
  std::vector<std::vector<int>> succ;
  /// initial[s] == 1 iff s is an initial state.
  std::vector<char> initial;
  /// Generalized acceptance: a run is accepting iff it visits each set
  /// infinitely often. Empty means "all runs accept".
  std::vector<std::set<int>> accepting_sets;

  size_t size() const { return states.size(); }

  /// The standard counter construction: returns an equivalent automaton
  /// with exactly one accepting set.
  BuchiAutomaton Degeneralize() const;

  /// Per state: length of the shortest transition path to a state of
  /// accepting_sets.front() (0 for accepting states themselves), or -1
  /// when no accepting state is reachable. Computed by one backward BFS
  /// over the reversed transition relation. An empty accepting_sets
  /// means "all runs accept", so every state gets distance 0.
  ///
  /// On the degeneralized automata the verifier searches, dist[q] is a
  /// lower bound on the number of product steps any run from a product
  /// vertex at q needs before reaching an accepting product vertex —
  /// the admissible heuristic behind the "directed" search strategy —
  /// and dist[q] == -1 states can never lie on an accepting lasso.
  std::vector<int> AcceptingDistance() const;

  std::string ToString() const;
};

}  // namespace wsv

#endif  // WSV_AUTOMATA_BUCHI_H_
