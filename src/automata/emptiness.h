// Accepting-lasso search on explicit graphs.
//
// Shared by the LTL-FO verifier (product of a configuration graph with a
// Büchi automaton) and the CTL* checker. Two algorithms:
//
//  * FindAcceptingLasso — eager, SCC-based (iterative Tarjan) over a
//    fully materialized graph: a Büchi-accepting run exists iff some SCC
//    reachable from an initial vertex contains an accepting vertex and a
//    cycle.
//  * FindAcceptingLassoOnTheFly — nested DFS (Courcoubetis–Vardi–Wolper–
//    Yannakakis, the SPIN strategy) over an *implicit* graph whose
//    successors the caller materializes on demand; the search creates
//    vertices only as the DFS reaches them and aborts at the first
//    accepting cycle.
//
// Either way a concrete lasso (prefix + cycle) is returned for
// counterexample reporting.

#ifndef WSV_AUTOMATA_EMPTINESS_H_
#define WSV_AUTOMATA_EMPTINESS_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"

namespace wsv {

/// How often cooperative cancellation is polled: every strategy that
/// searches an implicit graph (automata/search_strategy.h) checks its
/// `stop` hook once per this many vertex expansions. Shared so the
/// cancellation-drain latency is uniform across strategies.
inline constexpr uint64_t kCancellationPollInterval = 64;

/// A witness for non-emptiness: `prefix` leads from an initial vertex to
/// `cycle.front()`; `cycle` returns to its own front (the edge from
/// cycle.back() to cycle.front() exists). prefix.back() == cycle.front().
struct Lasso {
  std::vector<int> prefix;
  std::vector<int> cycle;
};

/// Finds an accepting lasso in the graph, or nullopt if the Büchi
/// language is empty. `succ[v]` lists v's successors; `initial` and
/// `accepting` are per-vertex flags (vectors of size |V|).
std::optional<Lasso> FindAcceptingLasso(
    const std::vector<std::vector<int>>& succ,
    const std::vector<char>& initial, const std::vector<char>& accepting);

/// Work accounting for one nested-DFS run, for telemetry.
struct NestedDfsStats {
  /// Deepest blue-DFS stack observed (lasso prefixes are at most this
  /// long).
  uint64_t max_depth = 0;
  /// Vertices the blue DFS entered (each exactly once).
  uint64_t vertices_visited = 0;
};

/// Nested-DFS (CVWY) emptiness over an implicit graph. Vertex ids are
/// assigned by the caller (typically by interning product states on
/// first discovery); the search asks for them strictly on demand:
///
///  * `initial` — the initial vertices, searched in order.
///  * `succ(v)` — v's successor list. May be asked for a vertex more
///    than once (callers should memoize); the returned pointer and the
///    list contents must stay valid and unchanged until the search
///    ends. Errors (e.g. cancellation from a lazily expanded graph)
///    abort the search.
///  * `accepting(v)` — Büchi acceptance of v.
///  * `stop` — optional cooperative cancellation, polled about every
///    kCancellationPollInterval vertex expansions; returning true
///    aborts with Status::Cancelled.
///
/// Returns the first accepting lasso in DFS order, or nullopt if the
/// (reachable part of the) language is empty. The lasso satisfies the
/// Lasso contract above and its cycle passes through the accepting seed
/// vertex (cycle.front()).
///
/// This is the compatibility entry point for the default policy: it
/// delegates to the registered "dfs" strategy of
/// automata/search_strategy.h, which is where the CVWY implementation
/// (and the heuristic / randomized alternatives) now live.
StatusOr<std::optional<Lasso>> FindAcceptingLassoOnTheFly(
    const std::vector<int>& initial,
    const std::function<StatusOr<const std::vector<int>*>(int)>& succ,
    const std::function<bool(int)>& accepting,
    const std::function<bool()>& stop, NestedDfsStats* stats);

}  // namespace wsv

#endif  // WSV_AUTOMATA_EMPTINESS_H_
