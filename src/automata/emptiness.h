// Accepting-lasso search on explicit graphs.
//
// Shared by the LTL-FO verifier (product of a configuration graph with a
// Büchi automaton) and the CTL* checker. The algorithm is SCC-based
// (iterative Tarjan): a Büchi-accepting run exists iff some SCC reachable
// from an initial vertex contains an accepting vertex and a cycle. When
// one exists, a concrete lasso (prefix + cycle) is returned for
// counterexample reporting.

#ifndef WSV_AUTOMATA_EMPTINESS_H_
#define WSV_AUTOMATA_EMPTINESS_H_

#include <optional>
#include <vector>

namespace wsv {

/// A witness for non-emptiness: `prefix` leads from an initial vertex to
/// `cycle.front()`; `cycle` returns to its own front (the edge from
/// cycle.back() to cycle.front() exists). prefix.back() == cycle.front().
struct Lasso {
  std::vector<int> prefix;
  std::vector<int> cycle;
};

/// Finds an accepting lasso in the graph, or nullopt if the Büchi
/// language is empty. `succ[v]` lists v's successors; `initial` and
/// `accepting` are per-vertex flags (vectors of size |V|).
std::optional<Lasso> FindAcceptingLasso(
    const std::vector<std::vector<int>>& succ,
    const std::vector<char>& initial, const std::vector<char>& accepting);

}  // namespace wsv

#endif  // WSV_AUTOMATA_EMPTINESS_H_
