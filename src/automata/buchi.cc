#include "automata/buchi.h"

#include <queue>

namespace wsv {

std::vector<int> BuchiAutomaton::AcceptingDistance() const {
  const int n = static_cast<int>(states.size());
  if (accepting_sets.empty()) return std::vector<int>(n, 0);

  std::vector<std::vector<int>> pred(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    for (int t : succ[static_cast<size_t>(s)]) {
      pred[static_cast<size_t>(t)].push_back(s);
    }
  }
  std::vector<int> dist(static_cast<size_t>(n), -1);
  std::queue<int> q;
  for (int s : accepting_sets.front()) {
    if (s >= 0 && s < n && dist[static_cast<size_t>(s)] == -1) {
      dist[static_cast<size_t>(s)] = 0;
      q.push(s);
    }
  }
  while (!q.empty()) {
    int s = q.front();
    q.pop();
    for (int p : pred[static_cast<size_t>(s)]) {
      if (dist[static_cast<size_t>(p)] == -1) {
        dist[static_cast<size_t>(p)] = dist[static_cast<size_t>(s)] + 1;
        q.push(p);
      }
    }
  }
  return dist;
}

BuchiAutomaton BuchiAutomaton::Degeneralize() const {
  BuchiAutomaton out;
  out.leaves = leaves;
  if (accepting_sets.size() <= 1) {
    out.states = states;
    out.succ = succ;
    out.initial = initial;
    if (accepting_sets.empty()) {
      // All runs accept: every state is accepting.
      std::set<int> all;
      for (size_t s = 0; s < states.size(); ++s) {
        all.insert(static_cast<int>(s));
      }
      out.accepting_sets.push_back(std::move(all));
    } else {
      out.accepting_sets = accepting_sets;
    }
    return out;
  }

  const int m = static_cast<int>(accepting_sets.size());
  const int n = static_cast<int>(states.size());
  auto encode = [&](int s, int i) { return s * m + i; };
  out.states.resize(static_cast<size_t>(n) * m);
  out.succ.resize(static_cast<size_t>(n) * m);
  out.initial.assign(static_cast<size_t>(n) * m, 0);
  std::set<int> accepting;
  for (int s = 0; s < n; ++s) {
    for (int i = 0; i < m; ++i) {
      int id = encode(s, i);
      out.states[id] = states[s];
      // The counter advances when leaving a state in the i-th set.
      bool in_fi = accepting_sets[i].count(s) > 0;
      int next_i = in_fi ? (i + 1) % m : i;
      for (int t : succ[s]) {
        out.succ[id].push_back(encode(t, next_i));
      }
      if (i == m - 1 && in_fi) accepting.insert(id);
      if (initial[s] && i == 0) out.initial[id] = 1;
    }
  }
  out.accepting_sets.push_back(std::move(accepting));
  return out;
}

std::string BuchiAutomaton::ToString() const {
  std::string out = "Buchi automaton: " + std::to_string(states.size()) +
                    " states, " + std::to_string(leaves.size()) +
                    " leaves, " + std::to_string(accepting_sets.size()) +
                    " accepting sets\n";
  for (size_t k = 0; k < leaves.size(); ++k) {
    out += "  leaf " + std::to_string(k) + ": " + leaves[k]->ToString() +
           "\n";
  }
  return out;
}

}  // namespace wsv
