#include "automata/search_strategy.h"

#include <algorithm>
#include <climits>
#include <map>
#include <mutex>
#include <queue>
#include <random>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsv {

namespace {

// Cooperative cancellation, shared by every strategy: polls `stop` once
// per kCancellationPollInterval expansions (emptiness.h).
class CancelPoller {
 public:
  explicit CancelPoller(const std::function<bool()>& stop) : stop_(stop) {}
  bool Cancelled() {
    return stop_ && (++ops_ % kCancellationPollInterval) == 0 && stop_();
  }

 private:
  const std::function<bool()>& stop_;
  uint64_t ops_ = 0;
};

// ---------------------------------------------------------------------
// CVWY nested DFS, parameterized for the "dfs" and "restart" strategies:
// an optional per-vertex successor permutation (seeded RNG) and an
// optional blue-visit budget whose exhaustion aborts the attempt.
// ---------------------------------------------------------------------

struct CvwyResult {
  std::optional<Lasso> lasso;
  bool budget_exhausted = false;
};

class CvwyRun {
 public:
  CvwyRun(const SearchProblem& p, std::mt19937_64* rng, uint64_t budget,
          SearchStats& st)
      : p_(p), rng_(rng), budget_(budget), st_(st), poll_(p.stop) {}

  StatusOr<CvwyResult> Run() {
    for (int root : p_.initial) {
      Ensure(root);
      if (color_[root] != kWhite) continue;
      color_[root] = kCyan;
      blue_stack_.push_back(root);
      stack_pos_[root] = 0;
      WSV_ASSIGN_OR_RETURN(const std::vector<int>* root_succs, Fetch(root));
      blue_.assign(1, Frame{root, root_succs, 0});
      if (!Visit()) return CvwyResult{std::nullopt, true};

      while (!blue_.empty()) {
        Frame& f = blue_.back();
        if (f.child < f.succs->size()) {
          int w = (*f.succs)[f.child++];
          Ensure(w);
          if (color_[w] != kWhite) continue;
          if (poll_.Cancelled()) {
            return Status::Cancelled("emptiness search cancelled");
          }
          color_[w] = kCyan;
          stack_pos_[w] = static_cast<int>(blue_stack_.size());
          blue_stack_.push_back(w);
          WSV_ASSIGN_OR_RETURN(const std::vector<int>* w_succs, Fetch(w));
          blue_.push_back(Frame{w, w_succs, 0});
          if (!Visit()) return CvwyResult{std::nullopt, true};
        } else {
          // Post-order of v: accepting vertices seed the inner search
          // while still cyan (the seed itself closing the cycle is the
          // w == s case).
          const int v = f.v;
          if (p_.accepting(v)) {
            WSV_ASSIGN_OR_RETURN(int w, RedDfs(v));
            if (w != -1) return CvwyResult{Assemble(w), false};
          }
          color_[v] = p_.accepting(v) ? kRed : kBlue;
          stack_pos_[v] = -1;
          blue_stack_.pop_back();
          blue_.pop_back();
        }
      }
    }
    return CvwyResult{std::nullopt, false};
  }

 private:
  // CVWY colors. Invariants: cyan vertices are exactly the blue-DFS
  // stack; blue vertices are fully explored and accepting-cycle-free so
  // far; red vertices have been swept by some inner (red) DFS and never
  // need re-sweeping — the red set persists across seeds, which is what
  // makes the nested search linear.
  enum : char { kWhite = 0, kCyan = 1, kBlue = 2, kRed = 3 };

  struct Frame {
    int v;
    const std::vector<int>* succs;
    size_t child;
  };

  void Ensure(int v) {
    if (static_cast<size_t>(v) >= color_.size()) {
      color_.resize(static_cast<size_t>(v) + 1, kWhite);
      stack_pos_.resize(static_cast<size_t>(v) + 1, -1);
    }
  }

  // Counts one blue visit; false when the attempt's budget is spent.
  bool Visit() {
    ++st_.vertices_visited;
    st_.max_depth = std::max<uint64_t>(st_.max_depth, blue_stack_.size());
    ++attempt_visits_;
    return budget_ == 0 || attempt_visits_ <= budget_;
  }

  // The successor list the *policy* sees: the caller's order, or a
  // per-attempt seeded permutation (cached so blue and red ask once).
  StatusOr<const std::vector<int>*> Fetch(int v) {
    if (rng_ == nullptr) return p_.succ(v);
    auto it = shuffled_.find(v);
    if (it != shuffled_.end()) return &it->second;
    WSV_ASSIGN_OR_RETURN(const std::vector<int>* s, p_.succ(v));
    std::vector<int> copy = *s;
    std::shuffle(copy.begin(), copy.end(), *rng_);
    return &shuffled_.emplace(v, std::move(copy)).first->second;
  }

  // The cycle was detected with the red DFS (frames in `red_`, seed on
  // top of `blue_stack_`) reaching the cyan vertex `w`: assemble
  //   prefix = blue stack (initial root .. seed s)
  //   cycle  = s, red path minus its endpoints' duplicates, then the
  //            blue-stack segment from w up to just below s.
  Lasso Assemble(int w) {
    Lasso lasso;
    lasso.prefix = blue_stack_;
    const int top = static_cast<int>(blue_stack_.size()) - 1;  // seed s
    for (size_t i = 0; i < red_.size(); ++i) lasso.cycle.push_back(red_[i].v);
    const int j = stack_pos_[w];
    for (int i = j; i < top; ++i) lasso.cycle.push_back(blue_stack_[i]);
    WSV_COUNT1("automata/lassos_found");
    return lasso;
  }

  // Inner (red) DFS from the accepting seed on top of the blue stack.
  // Returns the closing cyan vertex, -1 if no accepting cycle through
  // the seed, or an error (cancellation / implicit-graph failure).
  StatusOr<int> RedDfs(int s) {
    WSV_ASSIGN_OR_RETURN(const std::vector<int>* s_succs, Fetch(s));
    red_.assign(1, Frame{s, s_succs, 0});
    while (!red_.empty()) {
      Frame& f = red_.back();
      if (f.child < f.succs->size()) {
        int w = (*f.succs)[f.child++];
        Ensure(w);
        if (color_[w] == kCyan) return w;  // cycle back into the blue stack
        if (color_[w] == kRed) continue;
        if (poll_.Cancelled()) {
          return Status::Cancelled("emptiness search cancelled");
        }
        color_[w] = kRed;
        WSV_ASSIGN_OR_RETURN(const std::vector<int>* w_succs, Fetch(w));
        red_.push_back(Frame{w, w_succs, 0});
      } else {
        red_.pop_back();
      }
    }
    return -1;
  }

  const SearchProblem& p_;
  std::mt19937_64* rng_;
  const uint64_t budget_;
  SearchStats& st_;
  CancelPoller poll_;
  uint64_t attempt_visits_ = 0;

  std::vector<char> color_;
  // Position on the blue stack while cyan (-1 otherwise): turns the
  // cycle-closing lookup at detection time into O(1).
  std::vector<int> stack_pos_;
  std::vector<int> blue_stack_;
  std::vector<Frame> blue_;
  std::vector<Frame> red_;
  // Per-attempt permuted successor lists (node-stable map: the DFS holds
  // pointers into the mapped vectors across rehashes).
  std::unordered_map<int, std::vector<int>> shuffled_;
};

class DfsStrategy : public SearchStrategy {
 public:
  const char* name() const override { return "dfs"; }
  StatusOr<std::optional<Lasso>> FindLasso(const SearchProblem& problem,
                                           SearchStats* stats) override {
    WSV_SPAN("automata/emptiness");
    WSV_TIMER("automata/emptiness_ns");
    WSV_COUNT1("automata/emptiness_searches");
    SearchStats local;
    SearchStats& st = stats != nullptr ? *stats : local;
    CvwyRun run(problem, /*rng=*/nullptr, /*budget=*/0, st);
    WSV_ASSIGN_OR_RETURN(CvwyResult r, run.Run());
    return std::optional<Lasso>(std::move(r.lasso));
  }
};

// Seeded random-restart CVWY: attempt k walks the graph in a fresh
// seeded permutation under a doubling blue-visit budget; the final
// attempt is exhaustive, so the strategy decides emptiness exactly. The
// point: a DFS whose fixed successor order commits to a huge lasso-free
// region first can be beaten by re-rolling the order a few times.
class RestartStrategy : public SearchStrategy {
 public:
  explicit RestartStrategy(const SearchOptions& options)
      : seed_(options.restart_seed),
        budget_(options.restart_visit_budget),
        max_restarts_(options.max_restarts) {}

  const char* name() const override { return "restart"; }

  StatusOr<std::optional<Lasso>> FindLasso(const SearchProblem& problem,
                                           SearchStats* stats) override {
    WSV_SPAN("automata/emptiness");
    WSV_TIMER("automata/emptiness_ns");
    WSV_COUNT1("automata/emptiness_searches");
    SearchStats local;
    SearchStats& st = stats != nullptr ? *stats : local;
    for (uint32_t attempt = 0;; ++attempt) {
      // Distinct, reproducible stream per attempt (splitmix64 increment).
      std::mt19937_64 rng(seed_ + attempt * 0x9e3779b97f4a7c15ULL);
      const bool last = attempt >= max_restarts_ || budget_ == 0;
      const uint64_t budget =
          last ? 0 : budget_ << std::min<uint32_t>(attempt, 32);
      CvwyRun run(problem, &rng, budget, st);
      WSV_ASSIGN_OR_RETURN(CvwyResult r, run.Run());
      if (!r.budget_exhausted) {
        return std::optional<Lasso>(std::move(r.lasso));
      }
      ++st.restarts;
      WSV_COUNT1("search/restarts");
    }
  }

 private:
  const uint64_t seed_;
  const uint64_t budget_;
  const uint32_t max_restarts_;
};

// ---------------------------------------------------------------------
// Greedy best-first violation hunter: expand the open vertex with the
// smallest evaluator value (distance-to-accepting on the Büchi
// automaton; a null evaluator degenerates to the constant-0 evaluator
// and the search to insertion-order BFS). Every settled accepting
// vertex seeds an inner DFS looking for a path back to itself — a cycle
// containing an accepting vertex is a cycle *through* an accepting
// vertex, so seeding each settled accepting vertex exactly once is
// complete. Successors whose evaluator value is kInfiniteDistance can
// never reach an accepting vertex (the automaton component cannot) and
// are pruned.
// ---------------------------------------------------------------------

class DirectedStrategy : public SearchStrategy {
 public:
  const char* name() const override { return "directed"; }

  StatusOr<std::optional<Lasso>> FindLasso(const SearchProblem& problem,
                                           SearchStats* stats) override {
    WSV_SPAN("automata/emptiness");
    WSV_TIMER("automata/emptiness_ns");
    WSV_COUNT1("automata/emptiness_searches");
    SearchStats local;
    SearchStats& st = stats != nullptr ? *stats : local;
    CancelPoller poll(problem.stop);

    std::vector<int> h;        // memoized evaluator values
    std::vector<char> closed;  // settled vertices
    std::vector<int> parent;   // tree edge for prefix reconstruction
    std::vector<int> depth;
    std::vector<uint32_t> mark;  // inner-DFS visit stamps
    auto ensure = [&](int v) {
      if (static_cast<size_t>(v) >= closed.size()) {
        const size_t n = static_cast<size_t>(v) + 1;
        h.resize(n, INT_MIN);
        closed.resize(n, 0);
        parent.resize(n, -2);  // -2 = never reached, -1 = initial
        depth.resize(n, 0);
        mark.resize(n, 0);
      }
    };
    auto eval = [&](int v) {
      ensure(v);
      if (h[static_cast<size_t>(v)] == INT_MIN) {
        if (problem.evaluate) {
          ++st.heuristic_evals;
          h[static_cast<size_t>(v)] = problem.evaluate(v);
        } else {
          h[static_cast<size_t>(v)] = 0;
        }
      }
      return h[static_cast<size_t>(v)];
    };

    // Min-heap on (h, insertion seq): the seq ties break FIFO, keeping
    // the expansion order deterministic for a fixed succ order.
    using QItem = std::tuple<int, uint64_t, int>;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>> open;
    uint64_t seq = 0;
    for (int v : problem.initial) {
      ensure(v);
      if (eval(v) == kInfiniteDistance) continue;
      if (parent[static_cast<size_t>(v)] == -2) {
        parent[static_cast<size_t>(v)] = -1;
        depth[static_cast<size_t>(v)] = 1;
        open.emplace(eval(v), seq++, v);
      }
    }

    uint32_t stamp = 0;
    struct Frame {
      int v;
      const std::vector<int>* succs;
      size_t child;
    };
    std::vector<Frame> dfs;

    // Inner cycle search: a DFS from the settled accepting seed looking
    // for an edge back to the seed. Fresh visit stamps per seed (the
    // CVWY red-set persistence argument needs post-order seeds, which a
    // best-first expansion does not provide).
    auto find_cycle =
        [&](int s) -> StatusOr<std::optional<std::vector<int>>> {
      ++stamp;
      WSV_ASSIGN_OR_RETURN(const std::vector<int>* s_succs, problem.succ(s));
      dfs.assign(1, Frame{s, s_succs, 0});
      mark[static_cast<size_t>(s)] = stamp;
      while (!dfs.empty()) {
        Frame& f = dfs.back();
        if (f.child < f.succs->size()) {
          int w = (*f.succs)[f.child++];
          ensure(w);
          if (w == s) {
            std::vector<int> cycle;
            cycle.reserve(dfs.size());
            for (const Frame& fr : dfs) cycle.push_back(fr.v);
            return std::optional<std::vector<int>>(std::move(cycle));
          }
          if (mark[static_cast<size_t>(w)] == stamp) continue;
          // A vertex on a cycle through s can reach the accepting s, so
          // the infinite-distance prune is sound here too.
          if (eval(w) == kInfiniteDistance) continue;
          if (poll.Cancelled()) {
            return Status::Cancelled("emptiness search cancelled");
          }
          mark[static_cast<size_t>(w)] = stamp;
          WSV_ASSIGN_OR_RETURN(const std::vector<int>* w_succs,
                               problem.succ(w));
          dfs.push_back(Frame{w, w_succs, 0});
        } else {
          dfs.pop_back();
        }
      }
      return std::optional<std::vector<int>>(std::nullopt);
    };

    while (!open.empty()) {
      const int v = std::get<2>(open.top());
      open.pop();
      if (closed[static_cast<size_t>(v)]) continue;
      closed[static_cast<size_t>(v)] = 1;
      ++st.vertices_visited;
      st.max_depth =
          std::max<uint64_t>(st.max_depth, depth[static_cast<size_t>(v)]);
      if (poll.Cancelled()) {
        return Status::Cancelled("emptiness search cancelled");
      }

      if (problem.accepting(v)) {
        WSV_ASSIGN_OR_RETURN(std::optional<std::vector<int>> cycle,
                             find_cycle(v));
        if (cycle.has_value()) {
          Lasso lasso;
          for (int u = v; u != -1; u = parent[static_cast<size_t>(u)]) {
            lasso.prefix.push_back(u);
          }
          std::reverse(lasso.prefix.begin(), lasso.prefix.end());
          lasso.cycle = std::move(*cycle);
          WSV_COUNT1("automata/lassos_found");
          return std::optional<Lasso>(std::move(lasso));
        }
      }

      WSV_ASSIGN_OR_RETURN(const std::vector<int>* succs, problem.succ(v));
      for (int w : *succs) {
        ensure(w);
        if (closed[static_cast<size_t>(w)]) continue;
        if (eval(w) == kInfiniteDistance) continue;
        if (parent[static_cast<size_t>(w)] == -2) {
          parent[static_cast<size_t>(w)] = v;
          depth[static_cast<size_t>(w)] = depth[static_cast<size_t>(v)] + 1;
        }
        open.emplace(eval(w), seq++, w);
      }
    }
    return std::optional<Lasso>(std::nullopt);
  }
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SearchStrategyFactory> factories;
};

Registry& GetRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    r->factories["dfs"] = [](const SearchOptions&) {
      return std::make_unique<DfsStrategy>();
    };
    r->factories["directed"] = [](const SearchOptions&) {
      return std::make_unique<DirectedStrategy>();
    };
    r->factories["restart"] = [](const SearchOptions& o) {
      return std::make_unique<RestartStrategy>(o);
    };
    return r;
  }();
  return *registry;
}

}  // namespace

void RegisterSearchStrategy(const std::string& name,
                            SearchStrategyFactory factory) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.factories[name] = std::move(factory);
}

std::vector<std::string> RegisteredSearchStrategies() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  for (const auto& [name, factory] : r.factories) names.push_back(name);
  return names;
}

bool IsPortfolioSelection(const std::string& strategy) {
  return strategy == "portfolio";
}

StatusOr<std::unique_ptr<SearchStrategy>> MakeSearchStrategy(
    const SearchOptions& options) {
  const std::string name =
      IsPortfolioSelection(options.strategy) ? "dfs" : options.strategy;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.factories.find(name);
  if (it == r.factories.end()) {
    std::string known;
    for (const auto& [n, f] : r.factories) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::InvalidArgument("unknown search strategy '" + name +
                                   "' (registered: " + known +
                                   ", plus the engine-level 'portfolio')");
  }
  return it->second(options);
}

}  // namespace wsv
