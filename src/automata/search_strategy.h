// Pluggable accepting-lasso search strategies over implicit graphs.
//
// The on-the-fly verifier (verify/ltl_verifier.cc) searches the product
// of a lazily expanded configuration graph with a Büchi automaton for an
// accepting lasso. PR 5 hard-wired one algorithm — the CVWY nested DFS in
// automata/emptiness.cc. This header splits the *policy* (which vertex to
// expand next, when to give up and retry, which successors to bother
// with) from the *mechanism* (the implicit-graph callbacks that intern
// product states and expand the configuration graph on demand), in the
// style of Fast Downward's pluggable search components: a SearchProblem
// plays the role of the state space + EvaluationContext, an optional
// `evaluate` hook is the evaluator (a null hook behaves like Fast
// Downward's const_evaluator), and strategies are looked up by name in a
// registry so new policies — including a future symbolic backend — plug
// in without touching the verifier.
//
// Registered strategies:
//
//  * "dfs"      — the CVWY nested DFS, unchanged semantics: first lasso
//                 in DFS order, linear time, the default and the oracle
//                 every other strategy is differentially tested against.
//  * "directed" — greedy best-first over `evaluate` (distance-to-
//                 accepting precomputed on the Büchi automaton by
//                 BuchiAutomaton::AcceptingDistance); each accepting
//                 vertex settled seeds an inner cycle search. Vertices
//                 the evaluator maps to kInfiniteDistance can never
//                 reach an accepting vertex and are pruned soundly.
//  * "restart"  — seeded random-restart CVWY: per-attempt randomized
//                 successor order under a doubling visit budget, with a
//                 final exhaustive attempt guaranteeing completeness.
//                 Deterministic replay: same seed, same search.
//
// "portfolio" is a valid *selection* (SearchOptions::strategy) but not a
// registered strategy: the parallel engine (verify/parallel.cc) resolves
// it by racing "dfs" and "directed" legs with first-finisher-wins
// cancellation; serial sweeps run its deterministic "dfs" leg.
//
// Every strategy is sound and complete for lasso *existence*: they
// return a lasso iff the reachable product language is non-empty, and
// every returned lasso satisfies the Lasso contract in emptiness.h (so
// witness replay through verify/witness_check.h validates it). Which
// lasso is returned may differ per strategy — the verifier confines
// non-default strategies to phases where the verdict is lasso-choice-
// invariant (see DESIGN.md §11).

#ifndef WSV_AUTOMATA_SEARCH_STRATEGY_H_
#define WSV_AUTOMATA_SEARCH_STRATEGY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "automata/emptiness.h"
#include "common/status.h"

namespace wsv {

/// Evaluator value for "can never reach an accepting vertex". Successors
/// with this value are pruned by heuristic strategies (sound: no
/// accepting lasso passes through them).
inline constexpr int kInfiniteDistance = -1;

/// Strategy selection and tuning, carried inside LtlVerifyOptions so the
/// serial and parallel engines, the CLI, and the benches configure one
/// knob. Fields beyond `strategy` are ignored by strategies that do not
/// use them.
struct SearchOptions {
  /// Registered strategy name ("dfs", "directed", "restart") or the
  /// engine-level "portfolio" selection. Unknown names fail at
  /// MakeSearchStrategy time with the registered list in the message.
  std::string strategy = "dfs";
  /// Base RNG seed for "restart". Recorded in the options so a run is
  /// replayed deterministically by re-verifying with the same seed.
  uint64_t restart_seed = 20260809;
  /// Blue-DFS visit budget of the first "restart" attempt; doubles per
  /// restart. 0 means the first attempt is already exhaustive.
  uint64_t restart_visit_budget = 64;
  /// Randomized attempts before the final exhaustive one.
  uint32_t max_restarts = 6;
  /// Commuting-input successor pruning (verify layer): among successor
  /// edges that differ only in input relations whose write-cones are
  /// disjoint from every rule and from the property's cone
  /// (analysis/depgraph.h), only one interleaving is explored. Off by
  /// default; verdict-preserving (see DESIGN.md §11).
  bool prune_commuting = false;
};

/// One emptiness query over an implicit graph. Contract extends
/// FindAcceptingLassoOnTheFly's: `succ` must be memoizing (strategies may
/// ask for a vertex's successors more than once — restarts re-walk the
/// graph) and the returned pointers must stay valid until the search
/// ends. `stop` and `evaluate` may be null.
struct SearchProblem {
  std::vector<int> initial;
  std::function<StatusOr<const std::vector<int>*>(int)> succ;
  std::function<bool(int)> accepting;
  /// Cooperative cancellation, polled about every
  /// kCancellationPollInterval expansions (emptiness.h).
  std::function<bool()> stop;
  /// Lower bound on the number of steps from a vertex to an accepting
  /// vertex, or kInfiniteDistance when unreachable. Null: uninformed
  /// (treated as the constant-0 evaluator).
  std::function<int(int)> evaluate;
};

/// Work accounting for one strategy run (a superset of NestedDfsStats).
struct SearchStats {
  /// Deepest prefix the strategy tracked (blue stack / parent chain).
  uint64_t max_depth = 0;
  /// Vertex expansions, summed across restarts.
  uint64_t vertices_visited = 0;
  /// Randomized attempts that exhausted their budget ("restart" only).
  uint64_t restarts = 0;
  /// Calls into SearchProblem::evaluate.
  uint64_t heuristic_evals = 0;
};

/// A pluggable accepting-lasso search. Implementations are stateless
/// across FindLasso calls except for deterministic per-construction
/// seeding; one instance per search run keeps replay exact.
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  virtual const char* name() const = 0;
  /// Searches `problem` for an accepting lasso. Same result contract as
  /// FindAcceptingLassoOnTheFly (emptiness.h); `stats` may be null.
  virtual StatusOr<std::optional<Lasso>> FindLasso(
      const SearchProblem& problem, SearchStats* stats) = 0;
};

using SearchStrategyFactory =
    std::function<std::unique_ptr<SearchStrategy>(const SearchOptions&)>;

/// Registers a strategy under `name`, replacing any previous entry.
/// Builtins ("dfs", "directed", "restart") are pre-registered.
void RegisterSearchStrategy(const std::string& name,
                            SearchStrategyFactory factory);

/// Registered names, sorted (for --help and error messages).
std::vector<std::string> RegisteredSearchStrategies();

/// Instantiates the strategy `options.strategy` names. "portfolio" (an
/// engine-level selection, not a strategy) resolves to its deterministic
/// "dfs" leg; unknown names return InvalidArgument.
StatusOr<std::unique_ptr<SearchStrategy>> MakeSearchStrategy(
    const SearchOptions& options);

/// True for selections the serial sweep must resolve to "dfs"
/// ("portfolio" — the race lives in verify/parallel.cc).
bool IsPortfolioSelection(const std::string& strategy);

}  // namespace wsv

#endif  // WSV_AUTOMATA_SEARCH_STRATEGY_H_
