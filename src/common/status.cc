#include "common/status.h"

namespace wsv {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotInputBounded:
      return "NotInputBounded";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace wsv
