#include "common/fingerprint.h"

#include <cstdio>
#include <cstring>

#include "fo/formula.h"
#include "ltl/ltl.h"
#include "relational/instance.h"
#include "relational/value.h"
#include "ws/service.h"

namespace wsv {
namespace {

// Two independently seeded FNV-1a lanes; the second lane uses a
// different offset basis and absorbs each byte xored with a lane salt,
// so the lanes decorrelate even on short inputs.
constexpr uint64_t kFnvPrime = 1099511628211ull;
constexpr uint64_t kOffsetHi = 14695981039346656037ull;
constexpr uint64_t kOffsetLo = 0xa19ce6c42735397bull;

// Type tags framing every composite absorber. Values are arbitrary but
// fixed: changing them invalidates all persisted caches, which is what
// the store's version field is for — keep these stable and bump the
// store version instead when the *shape* of what is absorbed changes.
enum Tag : uint64_t {
  kTagTerm = 1,
  kTagAtom,
  kTagFormula,
  kTagTFormula,
  kTagProperty,
  kTagRelation,
  kTagInstance,
  kTagPage,
  kTagService,
  kTagRuleInput,
  kTagRuleState,
  kTagRuleAction,
  kTagRuleTarget,
  kTagValues,
  kTagVocab,
};

void AbsorbTerm(FingerprintBuilder& b, const Term& t) {
  b.AbsorbU64(kTagTerm);
  b.AbsorbU64(static_cast<uint64_t>(t.kind()));
  b.AbsorbString(t.name());
}

void AbsorbAtom(FingerprintBuilder& b, const Atom& a) {
  b.AbsorbU64(kTagAtom);
  b.AbsorbString(a.relation);
  b.AbsorbU64(a.prev ? 1 : 0);
  b.AbsorbU64(a.terms.size());
  for (const Term& t : a.terms) AbsorbTerm(b, t);
}

void AbsorbFormula(FingerprintBuilder& b, const Formula& f) {
  b.AbsorbU64(kTagFormula);
  b.AbsorbU64(static_cast<uint64_t>(f.kind()));
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      break;
    case Formula::Kind::kAtom:
      AbsorbAtom(b, f.atom());
      break;
    case Formula::Kind::kEquals:
      AbsorbTerm(b, f.lhs());
      AbsorbTerm(b, f.rhs());
      break;
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      b.AbsorbU64(f.variables().size());
      for (const std::string& v : f.variables()) b.AbsorbString(v);
      b.AbsorbU64(f.children().size());
      for (const FormulaPtr& child : f.children()) {
        if (child != nullptr) AbsorbFormula(b, *child);
      }
      break;
  }
}

void AbsorbTFormula(FingerprintBuilder& b, const TFormula& f) {
  b.AbsorbU64(kTagTFormula);
  b.AbsorbU64(static_cast<uint64_t>(f.kind()));
  if (f.kind() == TFormula::Kind::kFo) {
    AbsorbFormula(b, *f.fo());
    return;
  }
  b.AbsorbU64(f.children().size());
  for (const TFormulaPtr& child : f.children()) {
    if (child != nullptr) AbsorbTFormula(b, *child);
  }
}

void AbsorbInstance(FingerprintBuilder& b, const Instance& instance) {
  b.AbsorbU64(kTagInstance);
  b.AbsorbU64(instance.relations().size());
  for (const auto& [name, rel] : instance.relations()) {
    b.AbsorbU64(kTagRelation);
    b.AbsorbString(name);
    b.AbsorbU64(static_cast<uint64_t>(rel.arity()));
    // std::set<Tuple> orders by Value interning id, which is not stable
    // across processes; canonicalize by sorting the rendered names.
    std::vector<std::string> rows;
    rows.reserve(rel.tuples().size());
    for (const Tuple& t : rel.tuples()) {
      std::string row;
      for (const Value& v : t) {
        row += v.name();
        row += '\x1f';
      }
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());
    b.AbsorbU64(rows.size());
    for (const std::string& row : rows) b.AbsorbString(row);
  }
  b.AbsorbU64(instance.constants().size());
  for (const auto& [name, v] : instance.constants()) {
    b.AbsorbString(name);
    b.AbsorbString(v.name());
  }
  std::vector<std::string> dom;
  dom.reserve(instance.domain().size());
  for (const Value& v : instance.domain()) dom.push_back(v.name());
  std::sort(dom.begin(), dom.end());
  b.AbsorbU64(dom.size());
  for (const std::string& name : dom) b.AbsorbString(name);
}

void AbsorbRuleBody(FingerprintBuilder& b, const FormulaPtr& body) {
  if (body == nullptr) {
    b.AbsorbU64(0);
  } else {
    b.AbsorbU64(1);
    AbsorbFormula(b, *body);
  }
}

void AbsorbPage(FingerprintBuilder& b, const PageSchema& page) {
  b.AbsorbU64(kTagPage);
  b.AbsorbString(page.name);
  auto absorb_names = [&b](const std::vector<std::string>& names) {
    b.AbsorbU64(names.size());
    for (const std::string& n : names) b.AbsorbString(n);
  };
  absorb_names(page.inputs);
  absorb_names(page.input_constants);
  absorb_names(page.actions);
  absorb_names(page.targets);
  b.AbsorbU64(page.input_rules.size());
  for (const InputRule& r : page.input_rules) {
    b.AbsorbU64(kTagRuleInput);
    b.AbsorbString(r.input);
    absorb_names(r.head_vars);
    AbsorbRuleBody(b, r.body);
  }
  b.AbsorbU64(page.state_rules.size());
  for (const StateRule& r : page.state_rules) {
    b.AbsorbU64(kTagRuleState);
    b.AbsorbString(r.state);
    b.AbsorbU64(r.insert ? 1 : 0);
    absorb_names(r.head_vars);
    AbsorbRuleBody(b, r.body);
  }
  b.AbsorbU64(page.action_rules.size());
  for (const ActionRule& r : page.action_rules) {
    b.AbsorbU64(kTagRuleAction);
    b.AbsorbString(r.action);
    absorb_names(r.head_vars);
    AbsorbRuleBody(b, r.body);
  }
  b.AbsorbU64(page.target_rules.size());
  for (const TargetRule& r : page.target_rules) {
    b.AbsorbU64(kTagRuleTarget);
    b.AbsorbString(r.target);
    AbsorbRuleBody(b, r.body);
  }
}

}  // namespace

FingerprintBuilder::FingerprintBuilder() : hi_(kOffsetHi), lo_(kOffsetLo) {}

void FingerprintBuilder::AbsorbBytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t hi = hi_;
  uint64_t lo = lo_;
  for (size_t i = 0; i < n; ++i) {
    hi = (hi ^ p[i]) * kFnvPrime;
    lo = (lo ^ (p[i] ^ 0x5c)) * kFnvPrime;
  }
  hi_ = hi;
  lo_ = lo;
}

void FingerprintBuilder::AbsorbU64(uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = (v >> (8 * i)) & 0xff;
  AbsorbBytes(bytes, 8);
}

void FingerprintBuilder::AbsorbString(std::string_view s) {
  AbsorbU64(s.size());
  AbsorbBytes(s.data(), s.size());
}

void FingerprintBuilder::AbsorbFingerprint(const Fingerprint& f) {
  AbsorbU64(f.hi);
  AbsorbU64(f.lo);
}

Fingerprint FingerprintBuilder::Finish() const { return {hi_, lo_}; }

std::string Fingerprint::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf, 32);
}

bool Fingerprint::FromHex(std::string_view hex, Fingerprint* out) {
  if (hex.size() != 32) return false;
  uint64_t parts[2] = {0, 0};
  for (int half = 0; half < 2; ++half) {
    for (int i = 0; i < 16; ++i) {
      char c = hex[static_cast<size_t>(half * 16 + i)];
      uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint64_t>(c - 'A' + 10);
      } else {
        return false;
      }
      parts[half] = (parts[half] << 4) | digit;
    }
  }
  out->hi = parts[0];
  out->lo = parts[1];
  return true;
}

Fingerprint FingerprintFormula(const Formula& f) {
  FingerprintBuilder b;
  AbsorbFormula(b, f);
  return b.Finish();
}

Fingerprint FingerprintTFormula(const TFormula& f) {
  FingerprintBuilder b;
  AbsorbTFormula(b, f);
  return b.Finish();
}

Fingerprint FingerprintProperty(const TemporalProperty& prop) {
  FingerprintBuilder b;
  b.AbsorbU64(kTagProperty);
  b.AbsorbU64(prop.universal_vars.size());
  for (const std::string& v : prop.universal_vars) b.AbsorbString(v);
  if (prop.formula != nullptr) AbsorbTFormula(b, *prop.formula);
  return b.Finish();
}

Fingerprint FingerprintInstance(const Instance& instance) {
  FingerprintBuilder b;
  AbsorbInstance(b, instance);
  return b.Finish();
}

Fingerprint FingerprintService(const WebService& service) {
  FingerprintBuilder b;
  b.AbsorbU64(kTagService);
  b.AbsorbString(service.name());
  b.AbsorbU64(kTagVocab);
  const Vocabulary& vocab = service.vocab();
  b.AbsorbU64(vocab.relations().size());
  for (const RelationSymbol& sym : vocab.relations()) {
    b.AbsorbString(sym.name);
    b.AbsorbU64(static_cast<uint64_t>(sym.arity));
    b.AbsorbU64(static_cast<uint64_t>(sym.kind));
  }
  b.AbsorbU64(vocab.constants().size());
  for (const std::string& c : vocab.constants()) {
    b.AbsorbString(c);
    b.AbsorbU64(vocab.IsInputConstant(c) ? 1 : 0);
  }
  b.AbsorbU64(service.pages().size());
  for (const PageSchema& page : service.pages()) AbsorbPage(b, page);
  b.AbsorbString(service.home_page());
  b.AbsorbString(service.error_page());
  return b.Finish();
}

Fingerprint FingerprintValues(const std::vector<Value>& values) {
  FingerprintBuilder b;
  b.AbsorbU64(kTagValues);
  b.AbsorbU64(values.size());
  for (const Value& v : values) {
    b.AbsorbString(v.valid() ? v.name() : std::string());
  }
  return b.Finish();
}

bool StructurallyEqual(const Formula& a, const Formula& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return true;
    case Formula::Kind::kAtom: {
      const Atom& x = a.atom();
      const Atom& y = b.atom();
      return x.relation == y.relation && x.prev == y.prev &&
             x.terms == y.terms;
    }
    case Formula::Kind::kEquals:
      return a.lhs() == b.lhs() && a.rhs() == b.rhs();
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      if (a.variables() != b.variables()) return false;
      if (a.children().size() != b.children().size()) return false;
      for (size_t i = 0; i < a.children().size(); ++i) {
        const FormulaPtr& ca = a.children()[i];
        const FormulaPtr& cb = b.children()[i];
        if ((ca == nullptr) != (cb == nullptr)) return false;
        if (ca != nullptr && !StructurallyEqual(*ca, *cb)) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace wsv
