// Small string utilities shared across the wsv library.

#ifndef WSV_COMMON_STR_UTIL_H_
#define WSV_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace wsv {

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, trimming surrounding whitespace from each piece.
/// Empty pieces are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff the string is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view s);

/// Quotes a string for display: wraps in double quotes and escapes
/// backslash, quote, and newline characters.
std::string QuoteString(std::string_view s);

}  // namespace wsv

#endif  // WSV_COMMON_STR_UTIL_H_
