#include "common/file_util.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>

namespace wsv {

std::string AtomicTempPath(const std::string& path) {
  return path + ".tmp." + std::to_string(::getpid());
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = AtomicTempPath(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot open for writing: " + tmp);
    }
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("short write: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace wsv
