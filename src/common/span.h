// Source spans: half-open [start, end) regions of a specification file,
// 1-based lines and columns. A default-constructed Span (line 0) means
// "no source location" — rules assembled programmatically through
// ServiceBuilder carry no positions, and diagnostic renderers fall back
// to file-level reporting for them.

#ifndef WSV_COMMON_SPAN_H_
#define WSV_COMMON_SPAN_H_

#include <string>

namespace wsv {

struct Span {
  int line = 0;        // 1-based; 0 = unknown location
  int column = 0;      // 1-based
  int end_line = 0;    // inclusive line of the last character
  int end_column = 0;  // exclusive column one past the last character

  bool IsValid() const { return line > 0; }

  /// "12:5" (or "" when unknown). Columns only; renderers prepend paths.
  std::string ToString() const {
    if (!IsValid()) return "";
    return std::to_string(line) + ":" + std::to_string(column);
  }

  friend bool operator==(const Span& a, const Span& b) {
    return a.line == b.line && a.column == b.column &&
           a.end_line == b.end_line && a.end_column == b.end_column;
  }
  friend bool operator!=(const Span& a, const Span& b) { return !(a == b); }

  /// Orders by start position; used to sort diagnostics into source order.
  friend bool operator<(const Span& a, const Span& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.column < b.column;
  }
};

}  // namespace wsv

#endif  // WSV_COMMON_SPAN_H_
