// Status and StatusOr: error handling primitives for the wsv library.
//
// Following the Arrow/RocksDB idiom, functions that can fail for expected
// reasons (parse errors, ill-formed specifications, resource limits) return
// Status or StatusOr<T> instead of throwing. Exceptions are not used across
// public API boundaries.

#ifndef WSV_COMMON_STATUS_H_
#define WSV_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace wsv {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // textual input did not parse
  kNotInputBounded,   // spec or formula violates an input-boundedness rule
  kUnsupported,       // outside the decidable class handled by a procedure
  kResourceExhausted, // search exceeded a configured node/time budget
  kNotFound,          // named entity missing from a schema or service
  kCancelled,         // work abandoned because another worker already won
  kInternal,          // invariant violation inside the library
};

/// Human-readable name of a StatusCode, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail without a payload.
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// code plus message otherwise.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotInputBounded(std::string msg) {
    return Status(StatusCode::kNotInputBounded, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// The result of an operation returning a T on success.
template <typename T>
class StatusOr {
 public:
  // Implicit conversions from both T and Status keep call sites terse:
  //   return Status::ParseError(...);   or   return value;
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace wsv

/// Propagate a non-OK Status to the caller.
#define WSV_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::wsv::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluate a StatusOr expression, propagating errors, else bind the value.
#define WSV_ASSIGN_OR_RETURN(lhs, expr)      \
  WSV_ASSIGN_OR_RETURN_IMPL(                 \
      WSV_STATUS_CONCAT(_status_or_, __LINE__), lhs, expr)

#define WSV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define WSV_STATUS_CONCAT(a, b) WSV_STATUS_CONCAT_IMPL(a, b)
#define WSV_STATUS_CONCAT_IMPL(a, b) a##b

#endif  // WSV_COMMON_STATUS_H_
