#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/request.h"

namespace wsv {

int ResolveJobCount(int jobs) {
  if (jobs > 0) return jobs;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.clear();
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  WSV_COUNT1("pool/tasks_submitted");
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(
        QueuedTask{std::move(task), WSV_OBS_NOW(), obs::CurrentRequestId()});
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
  if (first_exception_) {
    std::exception_ptr e = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

size_t ThreadPool::CancelPending() {
  size_t dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped = queue_.size();
    queue_.clear();
  }
  WSV_COUNT("pool/tasks_cancelled", dropped);
  idle_cv_.notify_all();
  return dropped;
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + running_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    // Attribute the task's metric writes (including the pool's own
    // scheduling metrics) to the request that submitted it.
    obs::RequestBinding bind(task.request);
    WSV_COUNT1("pool/tasks_run");
    WSV_HIST("pool/queue_latency_ns", WSV_OBS_NOW() - task.enqueue_ns);
    try {
      task.fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_exception_) first_exception_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace wsv
