#include "common/str_util.h"

#include <cctype>

namespace wsv {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    std::string_view piece = (pos == std::string_view::npos)
                                 ? s.substr(start)
                                 : s.substr(start, pos - start);
    out.emplace_back(Trim(piece));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(head) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_') return false;
  }
  return true;
}

std::string QuoteString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace wsv
