// Canonical structural fingerprints for verification-cache keys.
//
// The cross-request verification cache (src/cache/) keys entries by
// *content*, not by address or source text: two requests whose parsed
// specs, properties, and databases are structurally identical must map
// to the same key even when they arrive as differently formatted files,
// in different processes, or with different value-interning orders. The
// fingerprints here therefore hash the parsed representations —
// formula trees, rule heads and bodies, page schemas, relation tuples
// by name — and deliberately ignore source spans, comments, whitespace,
// and Value interning ids.
//
// A fingerprint is 128 bits (two independently seeded 64-bit FNV-1a
// lanes over the same canonical byte stream). Collisions are
// negligible for cache keying; the one consumer that aliases *code* on
// fingerprint equality (the FO bytecode program cache) additionally
// guards with a deep structural comparison, see StructurallyEqual.

#ifndef WSV_COMMON_FINGERPRINT_H_
#define WSV_COMMON_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wsv {

class Formula;
class TFormula;
class Instance;
class WebService;
struct TemporalProperty;
class Value;

/// A 128-bit content hash. Value-comparable and hashable; renders as 32
/// lowercase hex digits (hi then lo).
struct Fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  std::string ToHex() const;
  /// Parses 32 hex digits; returns false on malformed input.
  static bool FromHex(std::string_view hex, Fingerprint* out);

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
  friend bool operator<(const Fingerprint& a, const Fingerprint& b) {
    if (a.hi != b.hi) return a.hi < b.hi;
    return a.lo < b.lo;
  }
};

struct FingerprintHash {
  size_t operator()(const Fingerprint& f) const {
    return static_cast<size_t>(f.hi ^ (f.lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Incremental fingerprint accumulator. Absorb* calls are
/// order-sensitive; strings are length-prefixed so adjacent fields
/// cannot alias ("ab","c" != "a","bc"), and every composite absorber
/// below frames its pieces with type tags for the same reason.
class FingerprintBuilder {
 public:
  FingerprintBuilder();

  void AbsorbBytes(const void* data, size_t n);
  void AbsorbU64(uint64_t v);
  void AbsorbString(std::string_view s);
  /// Absorbs another fingerprint (e.g. to combine component keys).
  void AbsorbFingerprint(const Fingerprint& f);

  Fingerprint Finish() const;

 private:
  uint64_t hi_;
  uint64_t lo_;
};

/// Structural hash of an FO formula: kinds, atom relation names and prev
/// flags, term kinds and names, quantifier variable lists, child order.
/// Everything the bytecode compiler and the evaluator read — and nothing
/// they do not (spans are ignored).
Fingerprint FingerprintFormula(const Formula& f);

/// Structural hash of a temporal formula (FO leaves included).
Fingerprint FingerprintTFormula(const TFormula& f);

/// Structural hash of a temporal property: universal closure variables
/// plus the formula.
Fingerprint FingerprintProperty(const TemporalProperty& prop);

/// Canonical hash of a relational instance: relations sorted by name
/// with sorted tuples of value *names*, constants, and the domain —
/// independent of interning order.
Fingerprint FingerprintInstance(const Instance& instance);

/// Structural hash of a parsed Web service: vocabulary, pages in
/// declaration order with all rules, home and error page. Whitespace,
/// comments, and source spans do not contribute, so reformatting a spec
/// keeps its fingerprint.
Fingerprint FingerprintService(const WebService& service);

/// Hash of a value list by name, order-sensitive.
Fingerprint FingerprintValues(const std::vector<Value>& values);

/// Deep structural equality of two formulas, consistent with
/// FingerprintFormula (equal formulas have equal fingerprints; this is
/// the collision guard for consumers that alias on fingerprint
/// equality).
bool StructurallyEqual(const Formula& a, const Formula& b);

}  // namespace wsv

#endif  // WSV_COMMON_FINGERPRINT_H_
