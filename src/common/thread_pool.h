// A fixed-size worker pool for the parallel verification engine.
//
// The pool owns N threads that drain a FIFO task queue. It is built for
// the verifier's fan-out pattern: a producer submits one task per
// independent unit of work (candidate database, valuation chunk), workers
// race, and the first counterexample cancels everything that cannot win
// anymore. Accordingly the pool supports dropping the queued backlog
// (CancelPending) while letting in-flight tasks finish — tasks observe
// finer-grained cancellation themselves through whatever flag the caller
// threads through them.
//
// Tasks must not throw across the pool boundary in normal operation (the
// library is Status-based); if one does, the first exception is captured
// and rethrown from Wait() so bugs surface instead of vanishing on a
// worker thread.

#ifndef WSV_COMMON_THREAD_POOL_H_
#define WSV_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace wsv {

/// Number of workers to use when the caller asked for `jobs` threads:
/// values <= 0 mean "one per hardware thread" (at least 1).
int ResolveJobCount(int jobs);

class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drops queued tasks and joins the workers. Does NOT wait for queued
  /// work to run — call Wait() first if completion matters.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called during or after destruction.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running, then
  /// rethrows the first exception any task threw (if any).
  void Wait();

  /// Drops all queued-but-not-started tasks; running tasks continue.
  /// Returns how many tasks were dropped, so producers doing their own
  /// outstanding-task accounting (backpressure) can settle their books.
  size_t CancelPending();

  size_t num_threads() const { return threads_.size(); }

  /// Queued + running tasks (approximate the instant it returns).
  size_t pending() const;

 private:
  void WorkerLoop();

  /// A queued task plus its enqueue timestamp, so the worker that
  /// dequeues it can report queue latency ("pool/queue_latency_ns"), and
  /// the submitter's request id, so the worker attributes the task's
  /// metric writes to the request that submitted it (obs/request.h).
  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
    obs::RequestId request = obs::kNoRequest;
  };

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): pool drained
  std::deque<QueuedTask> queue_;
  size_t running_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_exception_;
  std::vector<std::thread> threads_;
};

}  // namespace wsv

#endif  // WSV_COMMON_THREAD_POOL_H_
