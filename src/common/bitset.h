// A small dynamic bitset over 64-bit words.
//
// The product/emptiness hot path in the LTL-FO verifier packs FO-leaf
// truth columns (one bit per configuration-graph edge) and automaton
// state labels (one bit per leaf) as bitsets: equality becomes a word
// compare, hashing a word fold, and the containers that dedupe columns
// and labels key directly on the packed form. std::vector<bool> offers
// the packing but neither a cheap hash nor access to the words;
// std::bitset needs a compile-time size. This one is header-only and
// deliberately minimal — grow it only when a hot path needs more.

#ifndef WSV_COMMON_BITSET_H_
#define WSV_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace wsv {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t num_bits) { Resize(num_bits); }

  /// Sets the logical size to `num_bits` and clears every bit. Reuses
  /// the word buffer, so resizing a scratch bitset in a loop does not
  /// allocate once capacity has been reached.
  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  void ClearAll() { words_.assign(words_.size(), 0); }

  /// Grows the logical size to `num_bits`, preserving existing bits (new
  /// bits are zero). No-op if already at least that large. The on-the-fly
  /// verifier extends FO-leaf truth columns as configuration-graph edges
  /// materialize; Resize would wipe the prefix already evaluated.
  void GrowTo(size_t num_bits) {
    if (num_bits <= num_bits_) return;
    num_bits_ = num_bits;
    words_.resize((num_bits + 63) / 64, 0);
  }

  /// True iff the first `n` bits of `*this` and `other` coincide. Both
  /// bitsets must have size() >= n. Compares whole words, masking the
  /// tail word.
  bool PrefixEquals(const Bitset& other, size_t n) const {
    const size_t full = n / 64;
    for (size_t w = 0; w < full; ++w) {
      if (words_[w] != other.words_[w]) return false;
    }
    const size_t rest = n & 63;
    if (rest == 0) return true;
    const uint64_t mask = (uint64_t{1} << rest) - 1;
    return (words_[full] & mask) == (other.words_[full] & mask);
  }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Set(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
    }
  }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  size_t size() const { return num_bits_; }
  const std::vector<uint64_t>& words() const { return words_; }

  /// Bit-wise equality. Sizes must match for two bitsets to compare
  /// equal; trailing bits beyond size() are always zero by construction.
  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const Bitset& a, const Bitset& b) {
    return !(a == b);
  }

  size_t Hash() const {
    return HashRange(words_.begin(), words_.end(), num_bits_);
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Hasher for unordered containers keyed by Bitset.
struct BitsetHash {
  size_t operator()(const Bitset& b) const { return b.Hash(); }
};

}  // namespace wsv

#endif  // WSV_COMMON_BITSET_H_
