// Atomic file writes for telemetry artifacts.
//
// A cancelled or crashed run must never leave a truncated --trace-out /
// --stats-json / --log-json file behind: downstream tooling (CI
// validators, bench harvesters) treats the presence of the artifact as
// "complete and parseable". Both helpers therefore write to a sibling
// temp file and publish with std::rename, which is atomic within a
// filesystem — the final path either holds the complete content or does
// not exist.

#ifndef WSV_COMMON_FILE_UTIL_H_
#define WSV_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace wsv {

/// The sibling temp path used while writing `path` atomically
/// ("<path>.tmp.<pid>"). Exposed so tests can assert cleanup.
std::string AtomicTempPath(const std::string& path);

/// Writes `contents` to `path` atomically: temp file, flush, rename.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace wsv

#endif  // WSV_COMMON_FILE_UTIL_H_
