// Hash composition utilities.
//
// The verifiers deduplicate configurations, product vertices, and label
// sets on hot paths; ordered containers there cost a log factor plus a
// lexicographic comparison per probe. These helpers build the hashed
// replacements: HashCombine folds component hashes boost-style, HashRange
// folds an iterator range, and PackInts packs two non-negative 32-bit
// ints into a single unordered_map key (product vertices, edge pairs).

#ifndef WSV_COMMON_HASH_H_
#define WSV_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace wsv {

/// Folds `v` into `seed` (boost::hash_combine's mixing constant).
inline size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hashes a range of elements through std::hash of the value type.
template <typename It>
size_t HashRange(It begin, It end, size_t seed = 0) {
  using T = typename std::iterator_traits<It>::value_type;
  std::hash<T> h;
  for (It it = begin; it != end; ++it) seed = HashCombine(seed, h(*it));
  return seed;
}

/// Packs two non-negative ints into one 64-bit key (identity-preserving,
/// so an unordered_map<uint64_t, V> replaces map<pair<int,int>, V>).
inline uint64_t PackInts(int a, int b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

}  // namespace wsv

#endif  // WSV_COMMON_HASH_H_
