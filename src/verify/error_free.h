// Error-freeness checking (Section 2 / Theorem 3.5(i)).
//
// A Web service is error-free iff no run reaches the error page: no rule
// uses an input constant before it is provided (i), no page re-requests a
// provided constant (ii), and the next-page specification is never
// ambiguous (iii). This checker searches the configuration graph of each
// candidate database for a transition into the error page and reports the
// finite path witnessing it.
//
// Lemma A.5 reduces this to LTL-FO verification of G !W' on a transformed
// service; verify/transform.h implements that transformation, and the
// test suite checks both routes agree.

#ifndef WSV_VERIFY_ERROR_FREE_H_
#define WSV_VERIFY_ERROR_FREE_H_

#include <optional>

#include "common/status.h"
#include "verify/config_graph.h"
#include "verify/db_enum.h"

namespace wsv {

struct ErrorFreeOptions {
  DbEnumOptions db;
  ConfigGraphOptions graph;
  /// Fresh values available as user-typed input constants.
  int extra_constant_values = 1;
};

/// A finite run prefix that steps into the error page.
struct ErrorWitness {
  Instance database;
  std::vector<TraceStep> path;
  std::string reason;

  std::string ToString() const;
};

struct ErrorFreeResult {
  bool error_free = true;
  std::optional<ErrorWitness> witness;
  uint64_t databases_checked = 0;
  uint64_t total_graph_nodes = 0;
  bool complete_within_bounds = true;
};

StatusOr<ErrorFreeResult> CheckErrorFree(const WebService& service,
                                         const ErrorFreeOptions& options);

StatusOr<ErrorFreeResult> CheckErrorFreeOnDatabase(
    const WebService& service, const Instance& database,
    const ErrorFreeOptions& options);

}  // namespace wsv

#endif  // WSV_VERIFY_ERROR_FREE_H_
