// Database instance enumeration for verification.
//
// The paper's decision procedures quantify over *all* databases; our
// explicit-state verifier enumerates instances over the database schema
// up to configurable bounds (domain size, tuples per relation) and checks
// each. For input-bounded services the paper guarantees a small-model
// property (exponential bounds; Lemma A.11 for the propositional case),
// so bounded enumeration is a genuinely complete procedure once the bound
// is large enough; the default bounds catch the violations in all the
// paper's examples at tiny sizes.
//
// The enumeration domain always contains the literal values of the
// service's rules (they are schema constants — e.g. the catalog
// categories "laptop"/"ram" of Example 2.2 — and databases that omit
// them generate degenerate runs only), plus `fresh_values` anonymous
// elements. Non-input constant symbols of the vocabulary (like i0 of
// Definition 4.7) are enumerated over the domain as well.

#ifndef WSV_VERIFY_DB_ENUM_H_
#define WSV_VERIFY_DB_ENUM_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "relational/instance.h"
#include "ws/service.h"

namespace wsv {

struct DbEnumOptions {
  /// Values always present in the domain (rule literals are added
  /// automatically; put property literals here).
  std::vector<Value> base_values;
  /// Number of anonymous fresh elements added to the domain.
  int fresh_values = 1;
  /// Maximum number of tuples per database relation (-1: all subsets of
  /// the full cross product — beware, explodes quickly).
  int max_tuples_per_relation = 2;
  /// Safety cap on the number of instances visited.
  uint64_t max_instances = 1u << 22;
};

/// Calls `visit` on each database instance within the bounds; stops early
/// when `visit` returns true (and returns true). Returns false if the
/// enumeration completed without `visit` asking to stop.
StatusOr<bool> EnumerateDatabases(
    const WebService& service, const DbEnumOptions& options,
    const std::function<StatusOr<bool>(const Instance&)>& visit);

/// The literal values appearing in any rule of the service.
std::vector<Value> ServiceRuleLiterals(const WebService& service);

}  // namespace wsv

#endif  // WSV_VERIFY_DB_ENUM_H_
