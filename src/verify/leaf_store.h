// Persistence interface for FO-leaf truth columns.
//
// The PR 3 sweep machinery (verify/ltl_verifier) memoizes the truth of
// each FO leaf as a bit column over the configuration graph's edges —
// but the memo is call-local: every fresh verification re-evaluates
// every leaf from scratch. This interface lets a caller plug a
// cross-request store underneath the memo (the verification cache's
// disk tier, src/cache/), so a warm request whose context — spec,
// database, constant pool, tracked prev-relations, engine mode —
// matches an earlier one loads its columns instead of re-running the FO
// evaluator over every edge.
//
// Keys are opaque strings assembled by the verifier:
//   <context>|leaf:<formula-fp>|<binding>
// where <context> is LtlVerifyOptions::leaf_store_context (the caller's
// fingerprint of everything that determines the graph's edge order) and
// <binding> canonically renders the closure-variable values the column
// was evaluated under (by value *name*, so keys are process-portable).
//
// Columns are exchanged as (set-bit indices, upto): the bits are
// meaningful on edge indices [0, upto). Implementations must be
// thread-safe — eager sweeps may run chunked across pool workers.

#ifndef WSV_VERIFY_LEAF_STORE_H_
#define WSV_VERIFY_LEAF_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wsv {

class LeafColumnStore {
 public:
  virtual ~LeafColumnStore() = default;

  /// Fetches the column for `key`. Returns true and fills `set_bits`
  /// (ascending edge indices whose bit is 1) and `upto` (the exclusive
  /// evaluated bound) when present.
  virtual bool Lookup(const std::string& key,
                      std::vector<uint64_t>* set_bits, uint64_t* upto) = 0;

  /// Stores/extends the column for `key`. Implementations should keep
  /// the longest column seen (a shorter republish must not truncate).
  virtual void Publish(const std::string& key,
                       const std::vector<uint64_t>& set_bits,
                       uint64_t upto) = 0;
};

}  // namespace wsv

#endif  // WSV_VERIFY_LEAF_STORE_H_
