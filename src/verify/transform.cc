#include "verify/transform.h"

#include <algorithm>
#include <set>

#include "fo/rewrite.h"
#include "ws/validate.h"

namespace wsv {

namespace {

// Input constants used by any rule body of the page.
std::set<std::string> PageInputConstantsUsed(const PageSchema& page,
                                             const Vocabulary& vocab) {
  std::set<std::string> used;
  auto collect = [&](const FormulaPtr& body) {
    for (const std::string& c : body->ConstantSymbols()) {
      if (vocab.IsInputConstant(c)) used.insert(c);
    }
  };
  for (const InputRule& r : page.input_rules) collect(r.body);
  for (const StateRule& r : page.state_rules) collect(r.body);
  for (const ActionRule& r : page.action_rules) collect(r.body);
  for (const TargetRule& r : page.target_rules) collect(r.body);
  return used;
}

std::string ProvidedProp(const std::string& constant) {
  return "__prov_" + constant;
}

}  // namespace

StatusOr<ErrorFreeTransform> TransformErrorFree(const WebService& service) {
  const Vocabulary& vocab = service.vocab();
  const std::string trap = "__ErrTrap";

  ErrorFreeTransform out;
  out.trap_page = trap;
  WebService& ws = out.service;
  ws.set_name(service.name() + "_errorfree");
  ws.set_home_page(service.home_page());
  ws.set_error_page(service.error_page());

  // Vocabulary: original symbols plus one "provided" proposition per
  // input constant.
  Vocabulary& nv = ws.mutable_vocab();
  for (const RelationSymbol& sym : vocab.relations()) {
    if (sym.kind == SymbolKind::kPage) continue;  // re-registered below
    WSV_RETURN_IF_ERROR(nv.AddRelation(sym.name, sym.arity, sym.kind));
  }
  for (const std::string& c : vocab.constants()) {
    WSV_RETURN_IF_ERROR(nv.AddConstant(c, vocab.IsInputConstant(c)));
  }
  for (const std::string& c : vocab.InputConstants()) {
    WSV_RETURN_IF_ERROR(
        nv.AddRelation(ProvidedProp(c), 0, SymbolKind::kState));
  }

  // kappa_i membership of constant c while on page W: provided earlier
  // (the __prov proposition) or requested by W itself.
  auto provided_now = [&](const std::string& c,
                          const PageSchema& page) -> FormulaPtr {
    if (page.HasInputConstant(c)) return Formula::True();
    return Formula::MakeAtom(ProvidedProp(c), {});
  };

  // The home page is statically erroneous iff its own rules use an input
  // constant it does not request (condition (i) at step 0).
  const PageSchema* home = service.FindPage(service.home_page());
  if (home == nullptr) {
    return Status::NotFound("home page not found");
  }
  bool home_static_error = false;
  for (const std::string& c : PageInputConstantsUsed(*home, vocab)) {
    if (!home->HasInputConstant(c)) home_static_error = true;
  }

  for (const PageSchema& page : service.pages()) {
    PageSchema np;
    np.name = page.name;
    if (home_static_error && page.name == service.home_page()) {
      // Every run of the original errs at step 0; trap immediately.
      np.targets.push_back(trap);
      np.target_rules.push_back(TargetRule{trap, Formula::True(), Span{}});
      WSV_RETURN_IF_ERROR(ws.AddPage(std::move(np)));
      continue;
    }
    np.inputs = page.inputs;
    np.input_constants = page.input_constants;
    np.actions = page.actions;
    np.input_rules = page.input_rules;
    np.state_rules = page.state_rules;
    np.action_rules = page.action_rules;
    // Record constants provided on this page.
    for (const std::string& c : page.input_constants) {
      np.state_rules.push_back(
          StateRule{ProvidedProp(c), true, {}, Formula::True(), Span{}});
    }

    // Error condition Delta evaluated while on this page.
    std::vector<FormulaPtr> delta_parts;
    // (iii) ambiguity: two distinct target rules both fire.
    for (size_t i = 0; i < page.target_rules.size(); ++i) {
      for (size_t j = i + 1; j < page.target_rules.size(); ++j) {
        delta_parts.push_back(Formula::And(page.target_rules[i].body,
                                           page.target_rules[j].body));
      }
    }
    // (i)/(ii) one step early, per target page V.
    for (const TargetRule& rule : page.target_rules) {
      const PageSchema* target = service.FindPage(rule.target);
      if (target == nullptr) continue;  // validation rejects anyway
      std::vector<FormulaPtr> bad;
      for (const std::string& c : PageInputConstantsUsed(*target, vocab)) {
        if (target->HasInputConstant(c)) continue;
        // (i): V uses c, V does not request it, and it is not in kappa.
        bad.push_back(Formula::Not(provided_now(c, page)));
      }
      for (const std::string& c : target->input_constants) {
        // (ii): V re-requests a constant already in kappa.
        bad.push_back(provided_now(c, page));
      }
      if (!bad.empty()) {
        delta_parts.push_back(
            Formula::And(rule.body, Formula::Or(std::move(bad))));
      }
    }
    // (ii) on re-stay: no target fires and this page requests constants,
    // so the implicit self-transition re-requests them.
    if (!page.input_constants.empty()) {
      std::vector<FormulaPtr> none;
      for (const TargetRule& rule : page.target_rules) {
        none.push_back(Formula::Not(rule.body));
      }
      delta_parts.push_back(Formula::And(std::move(none)));
    }

    FormulaPtr delta = Simplify(*Formula::Or(std::move(delta_parts)));
    if (delta->kind() != Formula::Kind::kFalse) {
      np.targets.push_back(trap);
      np.target_rules.push_back(TargetRule{trap, delta, Span{}});
      for (const TargetRule& rule : page.target_rules) {
        np.targets.push_back(rule.target);
        np.target_rules.push_back(TargetRule{
            rule.target,
            Simplify(*Formula::And(rule.body, Formula::Not(delta))), Span{}});
      }
    } else {
      np.targets = page.targets;
      np.target_rules = page.target_rules;
    }
    // Deduplicate targets list.
    std::sort(np.targets.begin(), np.targets.end());
    np.targets.erase(std::unique(np.targets.begin(), np.targets.end()),
                     np.targets.end());
    WSV_RETURN_IF_ERROR(ws.AddPage(std::move(np)));
  }

  // The trap page: loops forever.
  PageSchema trap_page;
  trap_page.name = trap;
  trap_page.targets.push_back(trap);
  trap_page.target_rules.push_back(TargetRule{trap, Formula::True(), Span{}});
  WSV_RETURN_IF_ERROR(ws.AddPage(std::move(trap_page)));

  for (const PageSchema& page : ws.pages()) {
    WSV_RETURN_IF_ERROR(nv.AddRelation(page.name, 0, SymbolKind::kPage));
  }
  WSV_RETURN_IF_ERROR(nv.AddRelation(ws.error_page(), 0, SymbolKind::kPage));
  WSV_RETURN_IF_ERROR(ValidateService(ws));

  out.property.formula =
      TFormula::G(TFormula::Fo(Formula::Not(Formula::MakeAtom(trap, {}))));
  return out;
}

namespace {

std::string AtProp(const std::string& page) { return "__at_" + page; }

// Renames a rule's head variables to the canonical __x0..__x{k-1} so rule
// bodies from different pages can be merged into one disjunction.
FormulaPtr Canonicalize(const FormulaPtr& body,
                        const std::vector<std::string>& head_vars) {
  std::map<std::string, Term> subst;
  for (size_t i = 0; i < head_vars.size(); ++i) {
    subst.insert_or_assign(head_vars[i],
                           Term::Variable("__x" + std::to_string(i)));
  }
  return Substitute(*body, subst);
}

std::vector<std::string> CanonicalVars(int arity) {
  std::vector<std::string> out;
  for (int i = 0; i < arity; ++i) out.push_back("__x" + std::to_string(i));
  return out;
}

}  // namespace

StatusOr<SimpleTransform> TransformToSimple(const WebService& service) {
  const Vocabulary& vocab = service.vocab();
  SimpleTransform out;
  out.page = "Main";
  WebService& ws = out.service;
  ws.set_name(service.name() + "_simple");
  ws.set_home_page("Main");
  ws.set_error_page("__SimpleErr");

  // Propositional inputs observed through prev would change meaning
  // (the single page offers every input every step); reject them.
  for (const PageSchema& page : service.pages()) {
    auto scan = [&](const FormulaPtr& body) -> Status {
      for (const Atom& atom : body->Atoms()) {
        if (!atom.prev) continue;
        const RelationSymbol* sym = vocab.FindRelation(atom.relation);
        if (sym != nullptr && sym->arity == 0) {
          return Status::Unsupported(
              "TransformToSimple: prev. on propositional input " +
              atom.relation + " is not supported");
        }
      }
      return Status::OK();
    };
    for (const InputRule& r : page.input_rules) WSV_RETURN_IF_ERROR(scan(r.body));
    for (const StateRule& r : page.state_rules) WSV_RETURN_IF_ERROR(scan(r.body));
    for (const ActionRule& r : page.action_rules) WSV_RETURN_IF_ERROR(scan(r.body));
    for (const TargetRule& r : page.target_rules) WSV_RETURN_IF_ERROR(scan(r.body));
  }

  Vocabulary& nv = ws.mutable_vocab();
  for (const RelationSymbol& sym : vocab.relations()) {
    if (sym.kind == SymbolKind::kPage) continue;
    WSV_RETURN_IF_ERROR(nv.AddRelation(sym.name, sym.arity, sym.kind));
  }
  // Input constants become database constants (Lemma A.10 relies on
  // error-freeness: each is provided at most once, so fixing its value up
  // front is equivalent).
  for (const std::string& c : vocab.constants()) {
    WSV_RETURN_IF_ERROR(nv.AddConstant(c, /*is_input_constant=*/false));
  }
  for (const PageSchema& page : service.pages()) {
    out.page_prop[page.name] = AtProp(page.name);
    WSV_RETURN_IF_ERROR(
        nv.AddRelation(AtProp(page.name), 0, SymbolKind::kState));
  }

  // active_W: the run is currently at page W. At step 0 no page
  // proposition is set, so the home page is also active when none are.
  auto active = [&](const std::string& page_name) -> FormulaPtr {
    FormulaPtr at = Formula::MakeAtom(AtProp(page_name), {});
    if (page_name != service.home_page()) return at;
    std::vector<FormulaPtr> none;
    for (const PageSchema& p : service.pages()) {
      none.push_back(Formula::MakeAtom(AtProp(p.name), {}));
    }
    return Formula::Or(std::move(at), Formula::Not(Formula::Or(std::move(none))));
  };

  PageSchema main;
  main.name = "Main";
  main.targets.push_back("Main");
  main.target_rules.push_back(TargetRule{"Main", Formula::True(), Span{}});
  for (const RelationSymbol& sym : vocab.RelationsOfKind(SymbolKind::kInput)) {
    main.inputs.push_back(sym.name);
  }
  for (const RelationSymbol& sym :
       vocab.RelationsOfKind(SymbolKind::kAction)) {
    main.actions.push_back(sym.name);
  }

  // Merge rules across pages, guarded by the active propositions.
  std::map<std::string, std::vector<FormulaPtr>> options_parts;
  std::map<std::pair<std::string, bool>, std::vector<FormulaPtr>> state_parts;
  std::map<std::string, std::vector<FormulaPtr>> action_parts;
  for (const PageSchema& page : service.pages()) {
    FormulaPtr act = active(page.name);
    for (const InputRule& r : page.input_rules) {
      options_parts[r.input].push_back(
          Formula::And(Canonicalize(r.body, r.head_vars), act));
    }
    for (const StateRule& r : page.state_rules) {
      state_parts[{r.state, r.insert}].push_back(
          Formula::And(Canonicalize(r.body, r.head_vars), act));
    }
    for (const ActionRule& r : page.action_rules) {
      action_parts[r.action].push_back(
          Formula::And(Canonicalize(r.body, r.head_vars), act));
    }
    // Page transition bookkeeping.
    for (const TargetRule& r : page.target_rules) {
      state_parts[{AtProp(r.target), true}].push_back(
          Formula::And(r.body, act));
      state_parts[{AtProp(page.name), false}].push_back(
          Formula::And(r.body, act));
    }
  }
  for (auto& [input, parts] : options_parts) {
    const RelationSymbol* sym = vocab.FindRelation(input);
    main.input_rules.push_back(InputRule{input, CanonicalVars(sym->arity),
                                         Formula::Or(std::move(parts)),
                                         Span{}});
  }
  for (auto& [key, parts] : state_parts) {
    const auto& [state, insert] = key;
    const RelationSymbol* sym = nv.FindRelation(state);
    main.state_rules.push_back(StateRule{state, insert,
                                         CanonicalVars(sym->arity),
                                         Formula::Or(std::move(parts)),
                                         Span{}});
  }
  for (auto& [action, parts] : action_parts) {
    const RelationSymbol* sym = vocab.FindRelation(action);
    main.action_rules.push_back(ActionRule{action, CanonicalVars(sym->arity),
                                           Formula::Or(std::move(parts)),
                                           Span{}});
  }
  WSV_RETURN_IF_ERROR(ws.AddPage(std::move(main)));
  WSV_RETURN_IF_ERROR(nv.AddRelation("Main", 0, SymbolKind::kPage));
  WSV_RETURN_IF_ERROR(nv.AddRelation("__SimpleErr", 0, SymbolKind::kPage));
  WSV_RETURN_IF_ERROR(ValidateService(ws));
  return out;
}

namespace {

// Rewrites page propositions inside an FO formula.
FormulaPtr RewriteFoForSimple(const Formula& f, const WebService& original,
                              const SimpleTransform& transform) {
  switch (f.kind()) {
    case Formula::Kind::kAtom: {
      const RelationSymbol* sym =
          original.vocab().FindRelation(f.atom().relation);
      if (sym != nullptr && sym->kind == SymbolKind::kPage) {
        if (f.atom().relation == original.error_page()) {
          return Formula::False();  // the original is error-free
        }
        FormulaPtr at =
            Formula::MakeAtom(transform.page_prop.at(f.atom().relation), {});
        if (f.atom().relation == original.home_page()) {
          std::vector<FormulaPtr> none;
          for (const auto& [page, prop] : transform.page_prop) {
            none.push_back(Formula::MakeAtom(prop, {}));
          }
          return Formula::Or(std::move(at),
                             Formula::Not(Formula::Or(std::move(none))));
        }
        return at;
      }
      return Formula::MakeAtom(f.atom());
    }
    case Formula::Kind::kNot:
      return Formula::Not(
          RewriteFoForSimple(*f.children()[0], original, transform));
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<FormulaPtr> parts;
      for (const FormulaPtr& c : f.children()) {
        parts.push_back(RewriteFoForSimple(*c, original, transform));
      }
      return f.kind() == Formula::Kind::kAnd ? Formula::And(std::move(parts))
                                             : Formula::Or(std::move(parts));
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      FormulaPtr body =
          RewriteFoForSimple(*f.body(), original, transform);
      return f.kind() == Formula::Kind::kExists
                 ? Formula::Exists(f.variables(), std::move(body))
                 : Formula::Forall(f.variables(), std::move(body));
    }
    default:
      return f.kind() == Formula::Kind::kTrue
                 ? Formula::True()
                 : (f.kind() == Formula::Kind::kFalse
                        ? Formula::False()
                        : Formula::Equals(f.lhs(), f.rhs()));
  }
}

TFormulaPtr RewriteTemporalForSimple(const TFormula& f,
                                     const WebService& original,
                                     const SimpleTransform& transform) {
  if (f.kind() == TFormula::Kind::kFo) {
    return TFormula::Fo(RewriteFoForSimple(*f.fo(), original, transform));
  }
  std::vector<TFormulaPtr> children;
  for (const TFormulaPtr& c : f.children()) {
    children.push_back(RewriteTemporalForSimple(*c, original, transform));
  }
  switch (f.kind()) {
    case TFormula::Kind::kNot:
      return TFormula::Not(children[0]);
    case TFormula::Kind::kAnd:
      return TFormula::And(std::move(children));
    case TFormula::Kind::kOr:
      return TFormula::Or(std::move(children));
    case TFormula::Kind::kX:
      return TFormula::X(children[0]);
    case TFormula::Kind::kU:
      return TFormula::U(children[0], children[1]);
    case TFormula::Kind::kB:
      return TFormula::B(children[0], children[1]);
    case TFormula::Kind::kE:
      return TFormula::E(children[0]);
    case TFormula::Kind::kA:
      return TFormula::A(children[0]);
    case TFormula::Kind::kFo:
      break;
  }
  return TFormula::Fo(Formula::True());
}

}  // namespace

StatusOr<TemporalProperty> RewritePropertyForSimple(
    const TemporalProperty& property, const WebService& original,
    const SimpleTransform& transform) {
  TemporalProperty out;
  out.universal_vars = property.universal_vars;
  out.formula =
      RewriteTemporalForSimple(*property.formula, original, transform);
  return out;
}

}  // namespace wsv
