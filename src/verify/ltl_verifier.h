// The linear-time verifier (Theorem 3.5).
//
// Checks whether every run of a Web service satisfies an LTL-FO property.
// The procedure is the automata-theoretic one: negate the property,
// translate to a Büchi automaton over its FO leaves, and search the
// product of the configuration graph with the automaton for an accepting
// lasso — per candidate database and per valuation of the property's
// universal closure variables.
//
// Relation to the paper's proof: Theorem 3.5's upper bound reduces the
// existence of a violating run to finite satisfiability of an E+TC
// sentence (Spielmann's technique), giving PSPACE for fixed arity. Our
// procedure decides the same question on the bounded database space the
// enumerator covers: it searches the *same* periodic runs the Periodic
// Run Lemma talks about, explicitly rather than through a logic encoding.
// A found lasso is a genuine counterexample run; "holds" means no
// violation exists within the configured bounds (database size, input
// constant pool), which is complete once the bounds reach the paper's
// small-model sizes.

#ifndef WSV_VERIFY_LTL_VERIFIER_H_
#define WSV_VERIFY_LTL_VERIFIER_H_

#include <optional>

#include "automata/buchi.h"
#include "common/status.h"
#include "ltl/run_semantics.h"
#include "verify/config_graph.h"
#include "verify/db_enum.h"

namespace wsv {

struct LtlVerifyOptions {
  DbEnumOptions db;
  ConfigGraphOptions graph;
  /// Extra fresh values usable as input-constant values beyond the
  /// database's active domain (models users typing new data).
  int extra_constant_values = 1;
  /// Require the property and service to be input-bounded (the paper's
  /// decidable class); set false to run the bounded search anyway.
  bool require_input_bounded = true;
  /// Candidate values for the universal closure variables. Empty: use
  /// everything that can occur in a run (database active domain, rule
  /// and property literals, the input-constant pool) — complete but
  /// potentially slow. Non-empty: check only these valuations (sound for
  /// counterexamples; complete only if every violating valuation is
  /// covered).
  std::vector<Value> closure_candidates;
};

/// A violation witness: the database and the ultimately periodic run.
struct CounterExample {
  Instance database;
  LassoRun run;
  /// The closure-variable valuation under which the run violates the
  /// formula.
  Valuation valuation;

  std::string ToString() const;
};

struct LtlVerifyResult {
  /// True iff no violating run was found within the bounds.
  bool holds = true;
  std::optional<CounterExample> counterexample;
  uint64_t databases_checked = 0;
  uint64_t total_graph_nodes = 0;
  uint64_t total_product_states = 0;
  /// False if any configuration graph was truncated by a budget.
  bool complete_within_bounds = true;
};

class LtlVerifier {
 public:
  LtlVerifier(const WebService* service, LtlVerifyOptions options);

  /// Verifies over all databases within the enumeration bounds.
  StatusOr<LtlVerifyResult> Verify(const TemporalProperty& property);

  /// Verifies over one fixed database.
  StatusOr<LtlVerifyResult> VerifyOnDatabase(const TemporalProperty& property,
                                             const Instance& database);

 private:
  StatusOr<bool> CheckDatabase(const TemporalProperty& property,
                               const BuchiAutomaton& automaton,
                               const Instance& database,
                               LtlVerifyResult* result);

  const WebService* service_;
  LtlVerifyOptions options_;
};

}  // namespace wsv

#endif  // WSV_VERIFY_LTL_VERIFIER_H_
