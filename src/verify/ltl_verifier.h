// The linear-time verifier (Theorem 3.5).
//
// Checks whether every run of a Web service satisfies an LTL-FO property.
// The procedure is the automata-theoretic one: negate the property,
// translate to a Büchi automaton over its FO leaves, and search the
// product of the configuration graph with the automaton for an accepting
// lasso — per candidate database and per valuation of the property's
// universal closure variables.
//
// Relation to the paper's proof: Theorem 3.5's upper bound reduces the
// existence of a violating run to finite satisfiability of an E+TC
// sentence (Spielmann's technique), giving PSPACE for fixed arity. Our
// procedure decides the same question on the bounded database space the
// enumerator covers: it searches the *same* periodic runs the Periodic
// Run Lemma talks about, explicitly rather than through a logic encoding.
// A found lasso is a genuine counterexample run; "holds" means no
// violation exists within the configured bounds (database size, input
// constant pool), which is complete once the bounds reach the paper's
// small-model sizes.
//
// The per-database work is packaged as LtlDatabaseCheck so the serial
// verifier (below) and the parallel engine (verify/parallel.h) run the
// *same* decision procedure: one context per candidate database, built
// once, then a sweep over a range of closure-valuation indices. Contexts
// are immutable after Create, so concurrent CheckValuations calls on one
// context are safe.

#ifndef WSV_VERIFY_LTL_VERIFIER_H_
#define WSV_VERIFY_LTL_VERIFIER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/buchi.h"
#include "automata/search_strategy.h"
#include "common/bitset.h"
#include "common/status.h"
#include "ltl/run_semantics.h"
#include "verify/config_graph.h"
#include "verify/db_enum.h"

namespace wsv {

class LeafColumnStore;

struct LtlVerifyOptions {
  DbEnumOptions db;
  ConfigGraphOptions graph;
  /// Extra fresh values usable as input-constant values beyond the
  /// database's active domain (models users typing new data).
  int extra_constant_values = 1;
  /// Require the property and service to be input-bounded (the paper's
  /// decidable class); set false to run the bounded search anyway.
  bool require_input_bounded = true;
  /// Candidate values for the universal closure variables. Empty: use
  /// everything that can occur in a run (database active domain, rule
  /// and property literals, the input-constant pool) — complete but
  /// potentially slow. Non-empty: check only these valuations (sound for
  /// counterexamples; complete only if every violating valuation is
  /// covered).
  std::vector<Value> closure_candidates;
  /// Force the eager pipeline (full configuration graph + full product +
  /// SCC emptiness) even when the on-the-fly path is enabled. The CLI's
  /// `verify --eager`; equivalent to the WSV_DISABLE_ONTHEFLY=1
  /// environment toggle but scoped to this verifier.
  bool force_eager = false;
  /// Slice the spec against the property before building any
  /// configuration graph (analysis/slice.h): rules outside the
  /// property's cone of influence are dropped, configurations merge,
  /// and a full-spec re-check from the first sliced lasso keeps
  /// verdicts and witnesses bit-identical. The CLI's `--no-slice`;
  /// equivalent to WSV_DISABLE_SLICE=1 but scoped to this verifier.
  bool enable_slice = true;
  /// Internal (the sliced first phase): return at the first accepting
  /// lasso — faithful or spurious — as a `lasso_only` marker instead of
  /// running the Dom(rho) faithfulness check. Lasso existence is
  /// slicing-invariant; faithfulness is not, so the marker index is
  /// where the full-spec re-check resumes.
  bool abort_on_lasso = false;
  /// Accepting-lasso search strategy for the on-the-fly sweep
  /// (automata/search_strategy.h): "dfs" (default), "directed",
  /// "restart", or the engine-level "portfolio" (resolved by
  /// verify/parallel.cc; serial sweeps run its dfs leg). Non-default
  /// strategies run only in phases whose verdict is provably
  /// lasso-choice-invariant — abort-on-lasso probes and properties
  /// without universal closure variables; the faithfulness-sensitive
  /// canonical sweep of a quantified property pins the canonical DFS
  /// lasso so verdicts stay bit-identical across strategies (DESIGN.md
  /// §11). The eager pipeline ignores the strategy entirely.
  SearchOptions search;
  /// Optional cross-request persistence for FO-leaf truth columns
  /// (verify/leaf_store.h; the verification cache's disk tier plugs in
  /// here). Null disables persistence. Verdicts and witnesses are
  /// identical with or without a store — only FO re-evaluation is
  /// skipped.
  LeafColumnStore* leaf_store = nullptr;
  /// Opaque key prefix for leaf-store entries. Callers must fingerprint
  /// everything that fixes the configuration graph and its edge order:
  /// spec, database, resolved constant pool, tracked prev-relations,
  /// engine mode — and, for the on-the-fly engine, the property (its
  /// nested DFS drives edge discovery order).
  std::string leaf_store_context;
};

/// A violation witness: the database and the ultimately periodic run.
struct CounterExample {
  Instance database;
  LassoRun run;
  /// The closure-variable valuation under which the run violates the
  /// formula.
  Valuation valuation;

  std::string ToString() const;
};

struct LtlVerifyResult {
  /// True iff no violating run was found within the bounds.
  bool holds = true;
  std::optional<CounterExample> counterexample;
  uint64_t databases_checked = 0;
  uint64_t total_graph_nodes = 0;
  uint64_t total_product_states = 0;
  /// False if any configuration graph was truncated by a budget.
  bool complete_within_bounds = true;
};

/// A counterexample tagged with the valuation index it was found at, for
/// deterministic lowest-index-wins selection across workers.
struct IndexedCounterExample {
  uint64_t valuation_index = 0;
  CounterExample cex;
  /// Set by abort-on-lasso sweeps (LtlVerifyOptions::abort_on_lasso):
  /// an accepting lasso exists at this index, but `cex` is empty — the
  /// caller re-checks the full spec from `valuation_index` on.
  bool lasso_only = false;
};

/// The per-database half of the Theorem 3.5 procedure: the configuration
/// graph over one candidate database, the closure-valuation candidate
/// list, and the truth table of valuation-independent FO leaves.
///
/// Valuations are addressed by index in [0, NumValuations()): index i
/// denotes the valuation whose k-th variable takes candidate number
/// (i / |cand|^k) mod |cand| — exactly the odometer order the serial
/// sweep has always used, so "lowest index" and "found first serially"
/// coincide.
///
/// Thread-compatibility: immutable after Create; CheckValuations is
/// const and keeps all scratch state (including the FO-leaf memo) local
/// to the call, so any number of threads may sweep disjoint index ranges
/// of one context concurrently.
class LtlDatabaseCheck {
 public:
  /// Builds the context: configuration graph, candidate valuations, and
  /// static-leaf truth labels. Takes ownership of a copy of `database`
  /// (the enumerator reuses its instance buffer across visits).
  /// Honors `options.graph.cancel_check` during the graph build.
  static StatusOr<LtlDatabaseCheck> Create(const WebService* service,
                                           const LtlVerifyOptions& options,
                                           const TemporalProperty* property,
                                           const BuchiAutomaton* automaton,
                                           const Instance& database);

  /// Number of closure valuations to sweep. 1 when the property has no
  /// universal variables; 0 when it has variables but no candidates
  /// (vacuously no violation).
  uint64_t NumValuations() const { return num_valuations_; }

  const Instance& database() const { return *database_; }

  /// Configuration-graph size and truncation. Eager mode: properties of
  /// the one graph built at Create, valid immediately. On-the-fly mode:
  /// aggregates over the lazily expanded per-sweep graphs, so read them
  /// *after* the CheckValuations calls you care about.
  uint64_t graph_nodes() const {
    return on_the_fly_ ? otf_totals_->nodes.load(std::memory_order_relaxed)
                       : graph_.nodes.size();
  }
  bool truncated() const {
    return on_the_fly_
               ? otf_totals_->truncated.load(std::memory_order_relaxed)
               : graph_.truncated;
  }

  /// Sweeps valuation indices [begin, end) in increasing order and
  /// returns the lowest-index counterexample in the range, or nullopt if
  /// the range is violation-free. `stop` (optional) is polled with the
  /// upcoming index before each valuation: once it returns true the
  /// sweep aborts — with the counterexample found so far if any (later
  /// indices cannot beat it), else with Status::Cancelled.
  /// `product_states` (optional) accumulates product automaton sizes
  /// (of the products actually built — see ClassCollapseEnabled()).
  ///
  /// Valuations whose FO leaves all resolve to previously seen truth
  /// columns induce the *same* product, so the product build and
  /// emptiness run execute once per equivalence class; repeats reuse
  /// the cached verdict (and, for violating classes, the cached lasso),
  /// re-running only the valuation-specific Dom(rho) faithfulness
  /// check. The class table, like the FO-leaf memo, is local to the
  /// call: concurrent sweeps of one context never share mutable state.
  StatusOr<std::optional<IndexedCounterExample>> CheckValuations(
      uint64_t begin, uint64_t end,
      const std::function<bool(uint64_t)>& stop,
      uint64_t* product_states) const;

 private:
  LtlDatabaseCheck() = default;

  /// The on-the-fly sweep (see DESIGN.md §6e): per call, a lazy
  /// configuration graph is expanded by nested-DFS product searches run
  /// once per valuation equivalence class.
  StatusOr<std::optional<IndexedCounterExample>> CheckValuationsOtf(
      uint64_t begin, uint64_t end,
      const std::function<bool(uint64_t)>& stop,
      uint64_t* product_states) const;

  const WebService* service_ = nullptr;
  const TemporalProperty* property_ = nullptr;
  const BuchiAutomaton* automaton_ = nullptr;
  std::unique_ptr<Instance> database_;  // owned; address stable
  /// The bound stepper; owned so on-the-fly sweeps can generate
  /// successors after Create returns (address stable across moves).
  std::unique_ptr<Stepper> stepper_;
  /// Graph options with the input-constant pool resolved; the seed of
  /// every lazy per-sweep graph (and of the eager build).
  ConfigGraphOptions graph_options_;
  /// True: CheckValuations interleaves graph expansion, product
  /// construction, and nested-DFS emptiness. False: the eager pipeline
  /// over graph_.
  bool on_the_fly_ = false;
  /// Aggregates across on-the-fly sweeps (graph_nodes()/truncated());
  /// relaxed atomics because concurrent chunked sweeps finish
  /// independently. Heap-allocated so the context stays movable.
  struct OtfTotals {
    std::atomic<uint64_t> nodes{0};
    std::atomic<bool> truncated{false};
  };
  std::unique_ptr<OtfTotals> otf_totals_ = std::make_unique<OtfTotals>();
  /// Empty (unbuilt) in on-the-fly mode.
  ConfigGraph graph_;
  /// Candidate values for each closure variable.
  std::vector<Value> cand_;
  /// cand_.size()^k for each variable position k (odometer strides).
  std::vector<uint64_t> stride_;
  uint64_t num_valuations_ = 0;
  /// Per leaf: positions (into property_->universal_vars) of the closure
  /// variables free in the leaf. Empty = valuation-independent leaf.
  std::vector<std::vector<size_t>> leaf_vars_;
  /// Per *static* leaf k (leaf_vars_[k].empty()): truth per edge,
  /// evaluated once at Create. Empty bitset for dynamic leaves; empty in
  /// on-the-fly mode (columns are then grown lazily per sweep).
  std::vector<Bitset> static_cols_;
  /// Per leaf: quantifier-free? A QF leaf never iterates the active
  /// domain, so its truth is independent of which closure values extend
  /// the domain — the memo key can drop the domain-extension digits.
  std::vector<char> leaf_qfree_;
  /// Automaton states grouped by their leaf-truth label, packed as a
  /// bitset over the leaves. Built once per context: the product
  /// construction resolves an edge's matching states with one hash
  /// lookup instead of comparing the edge's truth against every state.
  std::unordered_map<Bitset, std::vector<int>, BitsetHash> label_index_;
  /// succ_bits_[q].Test(q2) iff q2 is a successor of q — replaces the
  /// linear scan of automaton_->succ[q] in the product edge relation.
  std::vector<Bitset> succ_bits_;
  /// Per leaf and candidate index: true iff binding any closure variable
  /// to that candidate extends the evaluation structure's active domain
  /// beyond what the database and the leaf's own literals provide — the
  /// only way one leaf's truth can depend on *another* variable's value.
  /// Lets the memo key include exactly the domain-relevant values, so
  /// memoized and direct evaluation agree bit-for-bit.
  std::vector<std::vector<char>> domain_relevant_;
  /// Cross-request column persistence (null = disabled; see
  /// LtlVerifyOptions::leaf_store). The eager sweep consults it for
  /// static and memoized dynamic columns; the on-the-fly sweep only on
  /// full uncancellable ranges, where edge discovery order is
  /// deterministic (chunked parallel sweeps expand chunk-local graphs
  /// whose edge orders differ).
  /// Copied from LtlVerifyOptions::abort_on_lasso: both sweeps return a
  /// lasso_only marker at the first accepting lasso instead of running
  /// the faithfulness check.
  bool abort_on_lasso_ = false;
  /// Copied from LtlVerifyOptions::search; dispatched per class search
  /// in CheckValuationsOtf.
  SearchOptions search_options_;
  /// Per automaton state: distance to the accepting set
  /// (BuchiAutomaton::AcceptingDistance), the "directed" strategy's
  /// evaluator. Built at Create only when a heuristic strategy is
  /// selected; empty otherwise.
  std::vector<int> accept_dist_;
  /// Input relations whose chosen tuples provably cannot influence
  /// anything the search observes: no rule reads them (directly or via
  /// prev), no property leaf names them, and both the property's leaves
  /// and every rule body are domain-independent. Successor edges that
  /// differ only in these relations' tuples are commuting interleavings
  /// — one representative is explored, the rest are pruned
  /// (search/pruned_successors). Populated only when
  /// search_options_.prune_commuting is set.
  std::set<std::string> invisible_inputs_;
  LeafColumnStore* leaf_store_ = nullptr;
  std::string leaf_ctx_;
  /// Per leaf: hex structural fingerprint — the leaf component of store
  /// keys. Populated only when leaf_store_ is set.
  std::vector<std::string> leaf_fp_;
};

class LtlVerifier {
 public:
  LtlVerifier(const WebService* service, LtlVerifyOptions options);

  /// Verifies over all databases within the enumeration bounds.
  StatusOr<LtlVerifyResult> Verify(const TemporalProperty& property);

  /// Verifies over one fixed database.
  StatusOr<LtlVerifyResult> VerifyOnDatabase(const TemporalProperty& property,
                                             const Instance& database);

 private:
  /// `sliced_service` (optional) is the property cone reduction of
  /// service_: the check first sweeps the sliced spec in abort-on-lasso
  /// mode and re-checks the full spec only from the first lasso index.
  StatusOr<bool> CheckDatabase(const TemporalProperty& property,
                               const BuchiAutomaton& automaton,
                               const Instance& database,
                               const WebService* sliced_service,
                               LtlVerifyResult* result);

  const WebService* service_;
  LtlVerifyOptions options_;
};

/// Whether the valuation sweep collapses equivalence classes of
/// valuations (same truth column for every FO leaf => same product, so
/// the emptiness verdict is computed once per class). On by default;
/// setting the environment variable WSV_DISABLE_CLASS_COLLAPSE forces
/// the naive one-product-per-valuation sweep (for tests and A/B runs).
/// Verdicts and counterexamples are identical either way.
bool ClassCollapseEnabled();

/// Whether LtlDatabaseCheck::CheckValuations runs the on-the-fly pipeline
/// (lazy configuration-graph expansion interleaved with nested-DFS
/// product emptiness, aborting at the first accepting cycle). On by
/// default; setting the environment variable WSV_DISABLE_ONTHEFLY forces
/// the eager pipeline (full graph + full product + SCC emptiness), as
/// does LtlVerifyOptions::force_eager per verifier. Verdicts and
/// counterexamples are identical either way.
bool OnTheFlyEnabled();

/// The resolved input-constant candidate pool for one (service,
/// property, database) context: the database's active domain, the rule
/// and property literals, plus `extra_constant_values` fresh values —
/// unless `options.graph.constant_pool` already pins the pool, in which
/// case that is returned unchanged. This is exactly the pool
/// LtlDatabaseCheck::Create resolves; exposed so cache keys and leaf
/// store contexts can fingerprint what the sweep will actually see.
std::vector<Value> ResolveConstantPool(const WebService& service,
                                       const TemporalProperty& property,
                                       const Instance& database,
                                       const LtlVerifyOptions& options);

/// The closure-valuation candidate list LtlDatabaseCheck::Create
/// resolves for one (service, property, database) context:
/// options.closure_candidates when non-empty, else the sorted set of
/// the resolved constant pool, the database's active domain, the
/// service's rule literals, and the property's literals. Exposed so a
/// sliced check can pin its candidate list (and hence its valuation
/// index space) to the *original* service's.
std::vector<Value> ResolveClosureCandidates(const WebService& service,
                                            const TemporalProperty& property,
                                            const Instance& database,
                                            const LtlVerifyOptions& options);

/// Options for the sliced first phase of a two-phase check: `base` with
/// the constant pool and closure candidates pinned to what the
/// *original* service resolves (identical valuation indexing), the leaf
/// store re-keyed into a sliced-column keyspace (sliced truth columns
/// differ from full-spec ones; disabled when the caller set no
/// context), and abort_on_lasso set.
LtlVerifyOptions SlicedCheckOptions(const LtlVerifyOptions& base,
                                    const WebService& original,
                                    const TemporalProperty& property,
                                    const Instance& database);

/// The prev-relation names a run of `service` must track so that both
/// the service's rules and the property's `prev` atoms can be evaluated.
/// Shared by the verifiers and the witness validator so replayed runs
/// carry the exact prev-state the original search saw.
std::set<std::string> TrackedPrevRelations(const WebService& service,
                                           const TemporalProperty& property);

/// Validates the property for the linear-time pipeline and builds the
/// degeneralized Büchi automaton for its negation. Shared by the serial
/// and parallel front ends.
StatusOr<BuchiAutomaton> BuildNegatedAutomaton(
    const WebService& service, const TemporalProperty& property,
    bool require_input_bounded);

}  // namespace wsv

#endif  // WSV_VERIFY_LTL_VERIFIER_H_
