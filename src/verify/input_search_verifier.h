// Web services with input-driven search (Definition 4.7, Theorem 4.9,
// Example 4.8 / Figure 1).
//
// The class: a single unary input relation I, propositional states
// (including not_start) and actions, a database with a constant i0 and a
// designated binary search relation RI, and input option rules of the
// canonical form
//
//   Options_I(y) :- (!not_start & y = i0)
//                 | (not_start & (exists x . prev.I(x) & RI(x, y))
//                    & phi(y))
//
// where phi is quantifier-free over the database and the propositional
// states. The user walks the RI graph (Figure 1's category hierarchy),
// one node per step.
//
// This module provides: a generator from a declarative spec (used by the
// catalog example and benches), a structural classifier, and the CTL /
// CTL* verifier for the class. Theorem 4.9 decides verification by
// reducing to CTL(*) satisfiability over labels that record the page
// propositions plus the *type* of the current input with respect to the
// unary database relations; our verifier materializes exactly those
// labels as Kripke states per candidate database, and the companion
// bench exercises the CTL-satisfiability tableau (ctl/ctl_sat.h) that
// the reduction targets.
//
// Naming: "search" here is the paper's *input-driven search* service
// class (the user searching a category hierarchy), not graph search.
// Accepting-lasso search strategies — the one search abstraction every
// emptiness check goes through — live in automata/search_strategy.h;
// this module's Kripke model checking rides on the same
// automata/emptiness.h primitives through ctl/ctl_star_check.h.

#ifndef WSV_VERIFY_INPUT_SEARCH_VERIFIER_H_
#define WSV_VERIFY_INPUT_SEARCH_VERIFIER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ctl/kripke.h"
#include "ltl/ltl.h"
#include "verify/abstraction.h"
#include "verify/db_enum.h"
#include "ws/service.h"

namespace wsv {

/// Declarative description of one page of an input-driven-search service.
struct SearchPageSpec {
  std::string name;
  /// Quantifier-free condition on the next input y, over the unary
  /// database relations and propositional states (free variable: y).
  std::string phi = "true";
  /// Target rules: (page, condition over props / current input I).
  std::vector<std::pair<std::string, std::string>> targets;
  /// Propositional state rules: (state, insert?, condition).
  struct StateUpdate {
    std::string state;
    bool insert = true;
    std::string condition;
  };
  std::vector<StateUpdate> states;
};

struct InputDrivenSearchSpec {
  std::string name = "Search";
  std::vector<std::string> unary_db;     // e.g. newDesktop, usedLaptop
  std::vector<std::string> prop_states;  // besides not_start
  std::vector<std::string> prop_actions;
  std::vector<SearchPageSpec> pages;
  std::string home;
  std::string error_page = "ERR";
};

/// Builds the Web service for the spec (canonical option-rule shape).
StatusOr<WebService> BuildInputDrivenSearchService(
    const InputDrivenSearchSpec& spec);

/// Structural membership check for Definition 4.7.
Status CheckInputDrivenSearch(const WebService& service);

struct SearchVerifyResult {
  bool holds = true;
  uint64_t databases_checked = 0;
  uint64_t total_kripke_states = 0;
  /// Database on which the property failed, when !holds.
  std::optional<Instance> failing_database;
};

struct SearchVerifyOptions {
  DbEnumOptions db;
  KripkeBuildOptions kripke;
};

/// Verifies a propositional CTL or CTL* property over all databases
/// within the bounds (Theorem 4.9's question, answered explicitly).
StatusOr<SearchVerifyResult> VerifyInputDrivenSearch(
    const WebService& service, const TemporalProperty& property,
    const SearchVerifyOptions& options);

/// Verifies over one fixed database (e.g. the Figure 1 hierarchy).
StatusOr<SearchVerifyResult> VerifyInputDrivenSearchOnDatabase(
    const WebService& service, const TemporalProperty& property,
    const Instance& database, const KripkeBuildOptions& options);

}  // namespace wsv

#endif  // WSV_VERIFY_INPUT_SEARCH_VERIFIER_H_
