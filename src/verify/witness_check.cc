#include "verify/witness_check.h"

#include <string>
#include <utility>
#include <vector>

#include "fo/bytecode/cache.h"
#include "ltl/run_semantics.h"
#include "obs/trace.h"
#include "runtime/successor.h"

namespace wsv {

namespace {

Status StepMismatch(size_t i, const std::string& what,
                    const std::string& expect, const std::string& got) {
  return Status::InvalidArgument(
      "witness step " + std::to_string(i) + ": " + what +
      " mismatch\n  recorded: " + expect + "\n  replayed: " + got);
}

std::string KappaToString(const std::map<std::string, Value>& kappa) {
  std::string out = "{";
  for (const auto& [name, v] : kappa) {
    if (out.size() > 1) out += ", ";
    out += name + "=" + v.name();
  }
  return out + "}";
}

// Rebuilds the user's decision at `config` from the inputs the witness
// recorded for this step. The stepper then re-validates it: constants
// must match the page's requests, relation picks must be among the
// computed options.
StatusOr<UserChoice> ReconstructChoice(const Stepper& stepper,
                                       const Config& config,
                                       const TraceStep& step, size_t i) {
  UserChoice choice;
  const WebService& service = stepper.service();
  if (config.page == service.error_page() ||
      stepper.StaticError(config).has_value()) {
    return choice;  // the single successor ignores the choice
  }
  const PageSchema* page = service.FindPage(config.page);
  if (page == nullptr) {
    return Status::InvalidArgument("witness step " + std::to_string(i) +
                                   ": unknown page " + config.page);
  }
  for (const std::string& name : page->input_constants) {
    auto it = step.kappa.find(name);
    if (it == step.kappa.end()) {
      return Status::InvalidArgument(
          "witness step " + std::to_string(i) + ": page " + page->name +
          " requests input constant " + name +
          " but the step's kappa does not provide it");
    }
    choice.constant_values[name] = it->second;
  }
  for (const std::string& in : page->inputs) {
    const RelationSymbol* sym = service.vocab().FindRelation(in);
    if (sym == nullptr) continue;
    const Relation* rel = step.inputs.FindRelation(in);
    if (sym->arity == 0) {
      choice.proposition_choices[in] = rel != nullptr && rel->AsBool();
      continue;
    }
    if (rel == nullptr || rel->empty()) continue;  // no pick
    if (rel->size() > 1) {
      return Status::InvalidArgument(
          "witness step " + std::to_string(i) + ": input relation " + in +
          " records " + std::to_string(rel->size()) +
          " tuples; a user picks at most one");
    }
    choice.relation_choices[in] = *rel->tuples().begin();
  }
  return choice;
}

}  // namespace

Status ValidateWitness(const WebService& service,
                       const TemporalProperty& property,
                       const CounterExample& cex) {
  WSV_SPAN("verify/witness_check");
  const LassoRun& run = cex.run;
  if (run.steps.empty()) {
    return Status::InvalidArgument("witness run has no steps");
  }
  if (run.loop_start >= run.steps.size()) {
    return Status::InvalidArgument(
        "witness loop_start " + std::to_string(run.loop_start) +
        " out of range (run has " + std::to_string(run.steps.size()) +
        " steps)");
  }
  for (const std::string& var : property.universal_vars) {
    if (cex.valuation.find(var) == cex.valuation.end()) {
      return Status::InvalidArgument(
          "witness valuation does not bind closure variable " + var);
    }
  }

  Stepper stepper(&service, &cex.database);
  stepper.SetTrackedPrev(TrackedPrevRelations(service, property));

  // Replay: each recorded step must (a) start at the configuration the
  // replay reached and (b) reproduce its trace element exactly.
  std::vector<Config> configs;
  configs.reserve(run.steps.size() + 1);
  Config config = stepper.InitialConfig();
  for (size_t i = 0; i < run.steps.size(); ++i) {
    const TraceStep& step = run.steps[i];
    if (step.page != config.page) {
      return StepMismatch(i, "page", step.page, config.page);
    }
    if (!(step.state == config.state)) {
      return StepMismatch(i, "state", step.state.ToString(),
                          config.state.ToString());
    }
    if (!(step.prev_inputs == config.prev_inputs)) {
      return StepMismatch(i, "prev_inputs", step.prev_inputs.ToString(),
                          config.prev_inputs.ToString());
    }
    if (!(step.actions == config.actions)) {
      return StepMismatch(i, "actions", step.actions.ToString(),
                          config.actions.ToString());
    }
    WSV_ASSIGN_OR_RETURN(UserChoice choice,
                         ReconstructChoice(stepper, config, step, i));
    WSV_ASSIGN_OR_RETURN(StepOutcome outcome, stepper.Step(config, choice));
    if (!(outcome.trace.inputs == step.inputs)) {
      return StepMismatch(i, "inputs", step.inputs.ToString(),
                          outcome.trace.inputs.ToString());
    }
    if (outcome.trace.kappa != step.kappa) {
      return StepMismatch(i, "kappa", KappaToString(step.kappa),
                          KappaToString(outcome.trace.kappa));
    }
    configs.push_back(std::move(config));
    config = std::move(outcome.next);
  }

  // Closure: the successor of the last step is where the lasso loops
  // back to, making the periodic extension a real run.
  if (!(config == configs[run.loop_start])) {
    return Status::InvalidArgument(
        "witness lasso does not close: the successor of the final step "
        "differs from the configuration at loop_start " +
        std::to_string(run.loop_start));
  }

  // Violation: under the witness valuation the property fails on this
  // run. (The verifier's faithfulness filter already checked the
  // valuation ranges over Dom(rho); semantic falsity subsumes what we
  // need here.) Re-checked with the tree-walking interpreter so the
  // validation stays an independent oracle for the bytecode engine.
  bool sat;
  {
    fobc::ScopedDisable no_bytecode;
    WSV_ASSIGN_OR_RETURN(
        sat, EvaluateLtlOnLassoWithValuation(*property.formula, run,
                                             cex.database, service,
                                             cex.valuation));
  }
  if (sat) {
    return Status::InvalidArgument(
        "witness run satisfies the property under the witness valuation; "
        "not a violation");
  }
  WSV_COUNT1("verify/witnesses_validated");
  return Status::OK();
}

}  // namespace wsv
