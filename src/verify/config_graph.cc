#include "verify/config_graph.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "obs/trace.h"
#include "verify/db_enum.h"

namespace wsv {

TraceView ConfigGraph::View(int e) const {
  const Edge& edge = edges[static_cast<size_t>(e)];
  const Config& from = nodes[static_cast<size_t>(edge.from)];
  const Config& to = nodes[static_cast<size_t>(edge.to)];
  TraceView view;
  view.page = &from.page;
  view.state = &from.state;
  view.inputs = &edge.inputs;
  view.prev_inputs = &from.prev_inputs;
  view.actions = &from.actions;
  // kappa_i includes the constants provided at this step, i.e. the
  // successor node's accumulated interpretation.
  view.kappa = &to.provided_constants;
  return view;
}

TraceStep ConfigGraph::Materialize(int e) const {
  TraceView view = View(e);
  TraceStep step;
  step.page = *view.page;
  step.state = *view.state;
  step.inputs = *view.inputs;
  step.prev_inputs = *view.prev_inputs;
  step.actions = *view.actions;
  step.kappa = *view.kappa;
  return step;
}

std::string ConfigGraph::Stats() const {
  // Thin formatting shim over the per-graph fields. The aggregate
  // numbers live in the metrics registry ("config_graph/*" counters,
  // recorded by BuildConfigGraph); prefer those for anything beyond a
  // one-off log line.
  return std::to_string(nodes.size()) + " nodes, " +
         std::to_string(edges.size()) + " edges" +
         (truncated ? " (truncated)" : "");
}

namespace {

// Enumerates every UserChoice available at `config` and hands it to `fn`.
class ChoiceEnumerator {
 public:
  ChoiceEnumerator(const Stepper& stepper,
                   const std::vector<Value>& constant_pool)
      : stepper_(stepper), constant_pool_(constant_pool) {}

  Status ForEachChoice(const Config& config,
                       const std::function<Status(const UserChoice&)>& fn) {
    const WebService& service = stepper_.service();
    if (config.page == service.error_page() ||
        stepper_.StaticError(config).has_value()) {
      // Exactly one successor; the choice is ignored.
      return fn(UserChoice{});
    }
    const PageSchema* page = service.FindPage(config.page);
    if (page == nullptr) {
      return Status::NotFound("unknown page " + config.page);
    }
    return EnumerateConstants(config, *page, 0, {}, fn);
  }

 private:
  Status EnumerateConstants(
      const Config& config, const PageSchema& page, size_t idx,
      std::map<std::string, Value> chosen,
      const std::function<Status(const UserChoice&)>& fn) {
    if (idx < page.input_constants.size()) {
      if (constant_pool_.empty()) {
        return Status::InvalidArgument(
            "page " + page.name + " requests input constants but the "
            "candidate constant pool is empty");
      }
      for (Value v : constant_pool_) {
        chosen[page.input_constants[idx]] = v;
        WSV_RETURN_IF_ERROR(
            EnumerateConstants(config, page, idx + 1, chosen, fn));
      }
      return Status::OK();
    }
    // Constants fixed; compute options, then enumerate relation picks and
    // proposition values.
    auto options_or = stepper_.ComputeOptions(config, chosen);
    if (!options_or.ok()) return options_or.status();
    const std::map<std::string, std::set<Tuple>>& options = *options_or;

    std::vector<std::string> props;
    for (const std::string& in : page.inputs) {
      const RelationSymbol* sym =
          stepper_.service().vocab().FindRelation(in);
      if (sym != nullptr && sym->arity == 0) props.push_back(in);
    }

    UserChoice choice;
    choice.constant_values = chosen;
    std::vector<std::pair<std::string, std::vector<std::optional<Tuple>>>>
        rel_alternatives;
    for (const auto& [rel, tuples] : options) {
      std::vector<std::optional<Tuple>> alts;
      alts.push_back(std::nullopt);
      for (const Tuple& t : tuples) alts.push_back(t);
      rel_alternatives.emplace_back(rel, std::move(alts));
    }
    return EnumeratePicks(rel_alternatives, 0, props, 0, choice, fn);
  }

  Status EnumeratePicks(
      const std::vector<
          std::pair<std::string, std::vector<std::optional<Tuple>>>>& rels,
      size_t rel_idx, const std::vector<std::string>& props, size_t prop_idx,
      UserChoice& choice,
      const std::function<Status(const UserChoice&)>& fn) {
    if (rel_idx < rels.size()) {
      for (const std::optional<Tuple>& alt : rels[rel_idx].second) {
        choice.relation_choices[rels[rel_idx].first] = alt;
        WSV_RETURN_IF_ERROR(
            EnumeratePicks(rels, rel_idx + 1, props, prop_idx, choice, fn));
      }
      choice.relation_choices.erase(rels[rel_idx].first);
      return Status::OK();
    }
    if (prop_idx < props.size()) {
      for (bool b : {false, true}) {
        choice.proposition_choices[props[prop_idx]] = b;
        WSV_RETURN_IF_ERROR(
            EnumeratePicks(rels, rel_idx, props, prop_idx + 1, choice, fn));
      }
      choice.proposition_choices.erase(props[prop_idx]);
      return Status::OK();
    }
    return fn(choice);
  }

  const Stepper& stepper_;
  const std::vector<Value>& constant_pool_;
};

}  // namespace

LazyConfigGraph::LazyConfigGraph(const Stepper* stepper,
                                 ConfigGraphOptions options)
    : stepper_(stepper), options_(std::move(options)) {
  pool_ = options_.constant_pool;
  if (pool_.empty()) {
    std::set<Value> p(stepper_->database().domain().begin(),
                      stepper_->database().domain().end());
    for (Value v : ServiceRuleLiterals(stepper_->service())) p.insert(v);
    pool_.assign(p.begin(), p.end());
  }
  graph_.initial = InternNode(stepper_->InitialConfig());
}

LazyConfigGraph::~LazyConfigGraph() {
  WSV_GAUGE_SUB("mem/config_graph_bytes", gauge_bytes_);
}

int LazyConfigGraph::InternNode(const Config& c) {
  auto it = node_index_.find(c);
  if (it != node_index_.end()) {
    WSV_COUNT1("config_graph/node_dedup_hits");
    return it->second;
  }
  WSV_COUNT1("config_graph/nodes");
  int id = static_cast<int>(graph_.nodes.size());
  node_index_.emplace(c, id);
  graph_.nodes.push_back(c);
  graph_.out_edges.emplace_back();
  expanded_.push_back(0);
  // Stored twice: once in the graph, once as the dedup-index key.
  const uint64_t node_bytes = 2 * c.ApproxBytes() + 4 * sizeof(void*);
  gauge_bytes_ += node_bytes;
  WSV_GAUGE_ADD("mem/config_graph_bytes", node_bytes);
  return id;
}

void LazyConfigGraph::MarkTruncated() {
  if (!graph_.truncated) {
    graph_.truncated = true;
    WSV_COUNT1("config_graph/builds_truncated");
  }
}

Status LazyConfigGraph::ExpandNode(int v) {
  WSV_COUNT1("config_graph/nodes_expanded");
  expanded_[static_cast<size_t>(v)] = 1;
  // Copy: InternNode may reallocate graph_.nodes during enumeration.
  Config current = graph_.nodes[static_cast<size_t>(v)];
  // Deduplicate parallel edges that lead to the same successor with the
  // same trace (different choices can be observationally identical).
  struct EdgeSigHash {
    size_t operator()(const std::pair<int, std::string>& p) const {
      return HashCombine(std::hash<std::string>()(p.second),
                         static_cast<size_t>(p.first));
    }
  };
  std::unordered_set<std::pair<int, std::string>, EdgeSigHash> seen;
  ChoiceEnumerator choices(*stepper_, pool_);
  return choices.ForEachChoice(
      current, [&](const UserChoice& choice) -> Status {
        WSV_ASSIGN_OR_RETURN(StepOutcome outcome,
                             stepper_->Step(current, choice));
        if (graph_.edges.size() >= options_.max_edges) {
          MarkTruncated();
          return Status::OK();
        }
        int to = InternNode(outcome.next);
        std::string sig = outcome.trace.inputs.ToString();
        if (!seen.insert({to, sig}).second) {
          WSV_COUNT1("config_graph/edge_dedup_hits");
          return Status::OK();
        }
        WSV_COUNT1("config_graph/edges");
        ConfigGraph::Edge edge;
        edge.from = v;
        edge.to = to;
        edge.inputs = std::move(outcome.trace.inputs);
        edge.to_error = outcome.to_error;
        edge.error_reason = std::move(outcome.error_reason);
        const uint64_t edge_bytes =
            sizeof(ConfigGraph::Edge) + edge.inputs.ApproxBytes() +
            edge.error_reason.capacity() + sizeof(int);
        gauge_bytes_ += edge_bytes;
        WSV_GAUGE_ADD("mem/config_graph_bytes", edge_bytes);
        graph_.out_edges[static_cast<size_t>(v)].push_back(
            static_cast<int>(graph_.edges.size()));
        graph_.edges.push_back(std::move(edge));
        return Status::OK();
      });
}

StatusOr<bool> LazyConfigGraph::EnsureExpanded(int v) {
  if (Expanded(v)) return true;
  if (options_.cancel_check && options_.cancel_check()) {
    WSV_COUNT1("config_graph/builds_cancelled");
    return Status::Cancelled("configuration graph build cancelled");
  }
  if (graph_.nodes.size() > options_.max_nodes ||
      graph_.edges.size() > options_.max_edges) {
    MarkTruncated();
    return false;
  }
  WSV_RETURN_IF_ERROR(ExpandNode(v));
  return true;
}

Status LazyConfigGraph::ExpandAll() {
  // Nodes are interned in BFS-discovery order and expanded in id order,
  // so this loop *is* the classic worklist BFS — budget and cancellation
  // behavior match the historical eager builder exactly.
  for (size_t v = 0; v < graph_.nodes.size(); ++v) {
    if (options_.cancel_check && options_.cancel_check()) {
      WSV_COUNT1("config_graph/builds_cancelled");
      return Status::Cancelled("configuration graph build cancelled");
    }
    if (graph_.nodes.size() > options_.max_nodes ||
        graph_.edges.size() > options_.max_edges) {
      MarkTruncated();
      break;
    }
    if (!Expanded(static_cast<int>(v))) {
      WSV_RETURN_IF_ERROR(ExpandNode(static_cast<int>(v)));
    }
  }
  return Status::OK();
}

StatusOr<ConfigGraph> BuildConfigGraph(const Stepper& stepper,
                                       const ConfigGraphOptions& options) {
  WSV_SPAN("config_graph/build");
  LazyConfigGraph lazy(&stepper, options);
  WSV_RETURN_IF_ERROR(lazy.ExpandAll());
  return lazy.TakeGraph();
}

}  // namespace wsv
