#include "verify/error_free.h"

#include <algorithm>
#include <queue>
#include <set>

namespace wsv {

std::string ErrorWitness::ToString() const {
  std::string out = "database:\n" + database.ToString();
  out += "reason: " + reason + "\n";
  out += "path to error page:\n";
  for (size_t i = 0; i < path.size(); ++i) {
    out += "  step " + std::to_string(i) + ": " + path[i].ToString() + "\n";
  }
  return out;
}

namespace {

StatusOr<bool> CheckOne(const WebService& service, const Instance& database,
                        const ErrorFreeOptions& options,
                        ErrorFreeResult* result) {
  Stepper stepper(&service, &database);
  stepper.SetTrackedPrev(Stepper::PrevRelationsInRules(service));
  ConfigGraphOptions graph_options = options.graph;
  if (graph_options.constant_pool.empty()) {
    std::set<Value> pool(database.domain().begin(), database.domain().end());
    for (Value v : ServiceRuleLiterals(service)) pool.insert(v);
    for (int i = 0; i < options.extra_constant_values; ++i) {
      pool.insert(Value::Intern("u" + std::to_string(i)));
    }
    graph_options.constant_pool.assign(pool.begin(), pool.end());
  }
  WSV_ASSIGN_OR_RETURN(ConfigGraph graph,
                       BuildConfigGraph(stepper, graph_options));
  if (graph.truncated) result->complete_within_bounds = false;
  result->total_graph_nodes += graph.nodes.size();

  // BFS over nodes, tracking the incoming edge, to find an error edge.
  std::vector<int> in_edge(graph.nodes.size(), -1);
  std::vector<char> visited(graph.nodes.size(), 0);
  std::queue<int> q;
  visited[graph.initial] = 1;
  q.push(graph.initial);
  int error_edge = -1;
  while (!q.empty() && error_edge < 0) {
    int v = q.front();
    q.pop();
    for (int e : graph.out_edges[v]) {
      if (graph.edges[e].to_error) {
        error_edge = e;
        break;
      }
      int w = graph.edges[e].to;
      if (!visited[w]) {
        visited[w] = 1;
        in_edge[w] = e;
        q.push(w);
      }
    }
  }
  if (error_edge < 0) return false;

  ErrorWitness witness;
  witness.database = database;
  witness.reason = graph.edges[error_edge].error_reason;
  std::vector<int> edges{error_edge};
  for (int v = graph.edges[error_edge].from; in_edge[v] >= 0;
       v = graph.edges[in_edge[v]].from) {
    edges.push_back(in_edge[v]);
  }
  std::reverse(edges.begin(), edges.end());
  for (int e : edges) witness.path.push_back(graph.Materialize(e));
  result->error_free = false;
  result->witness = std::move(witness);
  return true;
}

}  // namespace

StatusOr<ErrorFreeResult> CheckErrorFreeOnDatabase(
    const WebService& service, const Instance& database,
    const ErrorFreeOptions& options) {
  ErrorFreeResult result;
  result.databases_checked = 1;
  WSV_RETURN_IF_ERROR(
      CheckOne(service, database, options, &result).status());
  return result;
}

StatusOr<ErrorFreeResult> CheckErrorFree(const WebService& service,
                                         const ErrorFreeOptions& options) {
  ErrorFreeResult result;
  WSV_ASSIGN_OR_RETURN(
      bool stopped,
      EnumerateDatabases(service, options.db,
                         [&](const Instance& db) -> StatusOr<bool> {
                           ++result.databases_checked;
                           return CheckOne(service, db, options, &result);
                         }));
  (void)stopped;
  return result;
}

}  // namespace wsv
