#include "verify/input_search_verifier.h"

#include "ctl/ctl_check.h"
#include "ctl/ctl_star_check.h"
#include "ws/builder.h"

namespace wsv {

namespace {

constexpr char kInput[] = "I";
constexpr char kRi[] = "RI";
constexpr char kI0[] = "i0";
constexpr char kNotStart[] = "not_start";

// The canonical options body for a page with condition `phi`.
std::string OptionsBody(const std::string& phi) {
  return "(!" + std::string(kNotStart) + " & y = " + kI0 + ") | (" +
         kNotStart + " & (exists x . prev.I(x) & RI(x, y)) & (" + phi + "))";
}

}  // namespace

StatusOr<WebService> BuildInputDrivenSearchService(
    const InputDrivenSearchSpec& spec) {
  ServiceBuilder b(spec.name);
  b.Database(kRi, 2);
  for (const std::string& rel : spec.unary_db) b.Database(rel, 1);
  b.Constant(kI0);
  b.State(kNotStart, 0);
  for (const std::string& s : spec.prop_states) b.State(s, 0);
  for (const std::string& a : spec.prop_actions) b.Action(a, 0);
  b.Input(kInput, 1);
  for (const SearchPageSpec& page : spec.pages) {
    PageBuilder pb = b.Page(page.name);
    pb.Options(std::string(kInput) + "(y)", OptionsBody(page.phi));
    pb.Insert(kNotStart, std::string("!") + kNotStart);
    for (const SearchPageSpec::StateUpdate& u : page.states) {
      if (u.insert) {
        pb.Insert(u.state, u.condition);
      } else {
        pb.Delete(u.state, u.condition);
      }
    }
    for (const auto& [target, cond] : page.targets) {
      pb.Target(target, cond);
    }
  }
  b.Home(spec.home.empty() ? spec.pages.front().name : spec.home);
  b.Error(spec.error_page);
  return b.Build();
}

Status CheckInputDrivenSearch(const WebService& service) {
  const Vocabulary& vocab = service.vocab();
  // Exactly one input relation, unary, no input constants.
  std::vector<RelationSymbol> inputs =
      vocab.RelationsOfKind(SymbolKind::kInput);
  if (inputs.size() != 1 || inputs[0].arity != 1) {
    return Status::Unsupported(
        "input-driven search requires exactly one unary input relation");
  }
  if (!vocab.InputConstants().empty()) {
    return Status::Unsupported(
        "input-driven search services take no input constants");
  }
  const std::string input = inputs[0].name;
  // States and actions propositional; not_start present.
  for (const RelationSymbol& sym : vocab.relations()) {
    if ((sym.kind == SymbolKind::kState ||
         sym.kind == SymbolKind::kAction) &&
        sym.arity != 0) {
      return Status::Unsupported("relation " + sym.name +
                                 " must be propositional");
    }
  }
  const RelationSymbol* not_start = vocab.FindRelation(kNotStart);
  if (not_start == nullptr || not_start->kind != SymbolKind::kState) {
    return Status::Unsupported("missing the not_start state proposition");
  }
  const RelationSymbol* ri = vocab.FindRelation(kRi);
  if (ri == nullptr || ri->kind != SymbolKind::kDatabase || ri->arity != 2) {
    return Status::Unsupported("missing the binary database relation RI");
  }
  if (!vocab.IsConstant(kI0) || vocab.IsInputConstant(kI0)) {
    return Status::Unsupported("missing the database constant i0");
  }

  // Per page: the canonical option rule and the not_start flip rule.
  for (const PageSchema& page : service.pages()) {
    bool has_flip = false;
    for (const StateRule& r : page.state_rules) {
      if (r.state == kNotStart && r.insert &&
          r.body->ToString() == "!(" + std::string(kNotStart) + ")") {
        has_flip = true;
      }
    }
    if (!has_flip) {
      return Status::Unsupported("page " + page.name +
                                 " lacks the not_start :- !not_start rule");
    }
    if (page.input_rules.size() != 1 ||
        page.input_rules[0].input != input) {
      return Status::Unsupported("page " + page.name +
                                 " must have exactly one options rule for " +
                                 input);
    }
    // Canonical shape: Or( And(!not_start, y = i0),
    //                      And(not_start, exists..., phi...) ).
    const Formula& body = *page.input_rules[0].body;
    if (body.kind() != Formula::Kind::kOr || body.children().size() != 2) {
      return Status::Unsupported(
          "page " + page.name +
          ": options rule is not in the canonical two-branch form");
    }
    const Formula& start = *body.children()[0];
    const Formula& cont = *body.children()[1];
    auto bad = [&](const std::string& why) {
      return Status::Unsupported("page " + page.name + ": " + why);
    };
    if (start.kind() != Formula::Kind::kAnd ||
        start.children().size() != 2 ||
        start.children()[0]->kind() != Formula::Kind::kNot ||
        start.children()[1]->kind() != Formula::Kind::kEquals) {
      return bad("start branch is not (!not_start & y = i0)");
    }
    if (cont.kind() != Formula::Kind::kAnd || cont.children().size() < 2 ||
        cont.children()[0]->kind() != Formula::Kind::kAtom ||
        cont.children()[0]->atom().relation != kNotStart ||
        cont.children()[1]->kind() != Formula::Kind::kExists) {
      return bad("continuation branch is not "
                 "(not_start & exists x . prev.I(x) & RI(x,y) & phi)");
    }
    // phi: the remaining conjuncts, quantifier-free over D and S.
    for (size_t i = 2; i < cont.children().size(); ++i) {
      if (!cont.children()[i]->IsQuantifierFree()) {
        return bad("phi is not quantifier-free");
      }
      for (const Atom& atom : cont.children()[i]->Atoms()) {
        const RelationSymbol* sym = vocab.FindRelation(atom.relation);
        if (sym == nullptr || (sym->kind != SymbolKind::kDatabase &&
                               sym->kind != SymbolKind::kState)) {
          return bad("phi mentions " + atom.ToString() +
                     ", outside D and S");
        }
      }
    }
  }
  return Status::OK();
}

StatusOr<SearchVerifyResult> VerifyInputDrivenSearchOnDatabase(
    const WebService& service, const TemporalProperty& property,
    const Instance& database, const KripkeBuildOptions& options) {
  WSV_RETURN_IF_ERROR(CheckInputDrivenSearch(service));
  if (!property.universal_vars.empty()) {
    return Status::InvalidArgument(
        "branching-time properties here are propositional; no closure "
        "variables");
  }
  SearchVerifyResult result;
  result.databases_checked = 1;
  KripkeBuildOptions kripke_options = options;
  kripke_options.check_propositional = false;
  WSV_ASSIGN_OR_RETURN(
      Kripke kripke,
      BuildPropositionalKripke(service, database, kripke_options));
  result.total_kripke_states = kripke.size();
  WSV_ASSIGN_OR_RETURN(bool holds,
                       property.formula->IsCtl()
                           ? CtlHolds(kripke, *property.formula)
                           : CtlStarHolds(kripke, *property.formula));
  if (!holds) {
    result.holds = false;
    result.failing_database = database;
  }
  return result;
}

StatusOr<SearchVerifyResult> VerifyInputDrivenSearch(
    const WebService& service, const TemporalProperty& property,
    const SearchVerifyOptions& options) {
  WSV_RETURN_IF_ERROR(CheckInputDrivenSearch(service));
  if (!property.universal_vars.empty()) {
    return Status::InvalidArgument(
        "branching-time properties here are propositional; no closure "
        "variables");
  }
  bool is_ctl = property.formula->IsCtl();

  SearchVerifyResult result;
  KripkeBuildOptions kripke_options = options.kripke;
  kripke_options.check_propositional = false;

  WSV_ASSIGN_OR_RETURN(
      bool stopped,
      EnumerateDatabases(
          service, options.db,
          [&](const Instance& db) -> StatusOr<bool> {
            ++result.databases_checked;
            WSV_ASSIGN_OR_RETURN(
                Kripke kripke,
                BuildPropositionalKripke(service, db, kripke_options));
            result.total_kripke_states += kripke.size();
            WSV_ASSIGN_OR_RETURN(
                bool holds,
                is_ctl ? CtlHolds(kripke, *property.formula)
                       : CtlStarHolds(kripke, *property.formula));
            if (!holds) {
              result.holds = false;
              result.failing_database = db;
              return true;
            }
            return false;
          }));
  (void)stopped;
  return result;
}

}  // namespace wsv
