// Propositional abstraction and Kripke construction (Theorem 4.4 /
// Lemma A.12).
//
// BuildPropositionalKripke: for a *propositional* input-bounded service
// (states and actions of arity 0, no Prev_I) and a fixed database, builds
// the Kripke structure whose states are the proposition sets occurring in
// the run tree — pages, state propositions, action propositions,
// propositional inputs, and ground input atoms I(c1,...,ck) for the
// chosen input tuples. Lemma A.12 justifies merging configurations by
// label: in this class the label determines the successor labels, so CTL
// and CTL* truth are preserved.
//
// AbstractToPropositional: Example 4.3's abstraction — replaces every
// state, action, and database atom with a proposition of the same name
// (positive-arity state/action relations become propositions; rule heads
// are closed with existential quantifiers over their former parameters).
// Input atoms stay parameterized. The result over-approximates the
// original's navigation behavior and falls in the propositional class.

#ifndef WSV_VERIFY_ABSTRACTION_H_
#define WSV_VERIFY_ABSTRACTION_H_

#include "common/status.h"
#include "ctl/kripke.h"
#include "verify/config_graph.h"
#include "ws/service.h"

namespace wsv {

struct KripkeBuildOptions {
  ConfigGraphOptions graph;
  /// Fresh values available as user-typed input constants.
  int extra_constant_values = 1;
  /// Verify the service is in the propositional class first. The
  /// input-driven-search verifier disables this: its services use Prev_I,
  /// but their labels include the chosen input tuple, which again
  /// determines successor labels, so label-merging stays sound.
  bool check_propositional = true;
};

/// Builds the propositional Kripke structure of the service over `db`.
/// The service must be in the propositional class (ws/classify.h).
StatusOr<Kripke> BuildPropositionalKripke(const WebService& service,
                                          const Instance& database,
                                          const KripkeBuildOptions& options);

/// Abstracts an arbitrary service to the propositional class; fails with
/// Unsupported on constructs that cannot be abstracted (Prev_I atoms).
StatusOr<WebService> AbstractToPropositional(const WebService& service);

/// Kripke structure with one state per configuration-graph *edge* and no
/// label merging: sound bounded branching-time checking for services
/// outside the propositional class (where merging by label would be
/// unsound because hidden positive-arity state distinguishes behaviors).
/// Used by the Theorem 4.2 reduction tests; exponential in the service.
StatusOr<Kripke> BuildUnmergedKripke(const WebService& service,
                                     const Instance& database,
                                     const KripkeBuildOptions& options);

}  // namespace wsv

#endif  // WSV_VERIFY_ABSTRACTION_H_
