#include "verify/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "analysis/slice.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace wsv {

namespace {

// The winning event of a sweep: the lowest-index counterexample or task
// error seen so far. `best_index` doubles as the cancellation signal the
// workers poll (UINT64_MAX = no event yet); the full event payload is
// only touched under `mu`.
struct EventBoard {
  std::mutex mu;
  std::atomic<uint64_t> best_index{UINT64_MAX};
  bool is_error = false;
  Status error = Status::OK();
  std::optional<CounterExample> cex;
  // When the first event landed (for time-to-first-counterexample and
  // cancellation-drain telemetry). 0 = no event yet.
  uint64_t first_event_ns = 0;

  // Installs the event if it beats the current best. Returns true if it
  // won (callers then cancel work that can no longer win).
  bool Record(uint64_t index, bool is_err, Status st,
              std::optional<CounterExample> c) {
    std::lock_guard<std::mutex> lock(mu);
    if (index >= best_index.load(std::memory_order_relaxed)) return false;
    if (first_event_ns == 0) first_event_ns = WSV_OBS_NOW();
    best_index.store(index, std::memory_order_relaxed);
    is_error = is_err;
    error = std::move(st);
    cex = std::move(c);
    return true;
  }
};

}  // namespace

ParallelLtlVerifier::ParallelLtlVerifier(const WebService* service,
                                         LtlVerifyOptions options, int jobs)
    : service_(service),
      options_(std::move(options)),
      jobs_(ResolveJobCount(jobs)) {}

StatusOr<LtlVerifyResult> ParallelLtlVerifier::Verify(
    const TemporalProperty& property) {
  // The multi-database sweep parallelizes across databases, not inside
  // one: a "portfolio" selection resolves to its deterministic dfs leg
  // here (MakeSearchStrategy's documented fallback), exactly as in the
  // serial verifier. The race lives in VerifyOnDatabase.
  if (jobs_ == 1) {
    return LtlVerifier(service_, options_).Verify(property);
  }
  WSV_SPAN("verify/parallel_sweep");
  [[maybe_unused]] const uint64_t sweep_start = WSV_OBS_NOW();

  WSV_ASSIGN_OR_RETURN(
      BuchiAutomaton automaton,
      BuildNegatedAutomaton(*service_, property,
                            options_.require_input_bounded));

  // Property cone reduction, shared by every per-database task: each
  // task sweeps the sliced spec first (abort-on-lasso) and re-checks
  // the full spec only from the first lasso index (see ltl_verifier.h).
  std::unique_ptr<WebService> sliced;
  if (analysis::SliceEnabled() && options_.enable_slice) {
    sliced = analysis::SlicePropertyCone(*service_, property).service;
  }

  DbEnumOptions db_options = options_.db;
  for (Value v : property.formula->Literals()) {
    db_options.base_values.push_back(v);
  }

  EventBoard board;
  std::mutex stats_mu;
  uint64_t total_graph_nodes = 0;
  uint64_t total_product_states = 0;
  bool complete = true;

  // Backpressure: the enumerator runs far ahead of the workers, so cap
  // the number of submitted-but-unfinished tasks to keep memory (each
  // task holds a database copy) bounded.
  std::condition_variable slot_cv;
  std::mutex slot_mu;
  uint64_t outstanding = 0;
  const uint64_t max_outstanding = static_cast<uint64_t>(jobs_) * 2;

  ThreadPool pool(jobs_);

  auto cancelled_below = [&board](uint64_t d) {
    return board.best_index.load(std::memory_order_relaxed) < d;
  };
  auto record = [&](uint64_t d, bool is_err, Status st,
                    std::optional<CounterExample> c) {
    if (board.Record(d, is_err, std::move(st), std::move(c))) {
      WSV_COUNT1("verify/cancellations_signalled");
      size_t dropped = pool.CancelPending();
      if (dropped > 0) {
        std::lock_guard<std::mutex> lock(slot_mu);
        outstanding -= dropped;
      }
      slot_cv.notify_all();
    }
  };

  uint64_t db_index = 0;
  auto enum_result = EnumerateDatabases(
      *service_, db_options,
      [&](const Instance& db) -> StatusOr<bool> {
        const uint64_t d = db_index++;
        if (cancelled_below(d)) {
          WSV_COUNT1("verify/dbs_pruned_by_cancel");
          return true;  // stop enumerating
        }
        {
          std::unique_lock<std::mutex> lock(slot_mu);
          slot_cv.wait(lock, [&] {
            return outstanding < max_outstanding ||
                   board.best_index.load(std::memory_order_relaxed) !=
                       UINT64_MAX;
          });
          if (cancelled_below(d)) return true;
          ++outstanding;
        }
        // The enumerator reuses its instance buffer, so the task gets a
        // copy.
        auto db_copy = std::make_shared<Instance>(db);
        pool.Submit([&, d, db_copy] {
          struct SlotGuard {
            std::mutex& mu;
            uint64_t& outstanding;
            std::condition_variable& cv;
            ~SlotGuard() {
              {
                std::lock_guard<std::mutex> lock(mu);
                --outstanding;
              }
              cv.notify_all();
            }
          } guard{slot_mu, outstanding, slot_cv};
          if (cancelled_below(d)) return;

          LtlVerifyOptions opts = options_;
          // The leaf-column store context cannot bind an enumerated
          // database's identity (the caller fingerprints one concrete
          // database), so persisted columns would alias across the
          // sweep. Drop the store here; enumerated verifies always
          // evaluate leaves fresh.
          opts.leaf_store = nullptr;
          opts.graph.cancel_check = [&board, d] {
            return board.best_index.load(std::memory_order_relaxed) < d;
          };

          uint64_t sweep_begin = 0;
          if (sliced != nullptr) {
            // Phase 1: the sliced spec in abort-on-lasso mode. Lasso-
            // free means this database holds (the sliced graph is a
            // quotient of the full one); otherwise the full sweep
            // resumes at the marker index.
            LtlVerifyOptions sliced_opts =
                SlicedCheckOptions(opts, *service_, property, *db_copy);
            auto sliced_or = LtlDatabaseCheck::Create(
                sliced.get(), sliced_opts, &property, &automaton, *db_copy);
            if (!sliced_or.ok()) {
              if (sliced_or.status().code() != StatusCode::kCancelled) {
                record(d, true, sliced_or.status(), std::nullopt);
              }
              return;
            }
            uint64_t sliced_product_states = 0;
            auto marker_or = sliced_or->CheckValuations(
                0, sliced_or->NumValuations(),
                [&board, d](uint64_t) {
                  return board.best_index.load(std::memory_order_relaxed) < d;
                },
                &sliced_product_states);
            {
              std::lock_guard<std::mutex> lock(stats_mu);
              total_graph_nodes += sliced_or->graph_nodes();
              total_product_states += sliced_product_states;
              if (sliced_or->truncated()) complete = false;
            }
            if (!marker_or.ok()) {
              if (marker_or.status().code() != StatusCode::kCancelled) {
                record(d, true, marker_or.status(), std::nullopt);
              }
              return;
            }
            if (!marker_or->has_value()) return;  // holds on this database
            sweep_begin = (**marker_or).valuation_index;
          }

          auto check_or = LtlDatabaseCheck::Create(service_, opts, &property,
                                                   &automaton, *db_copy);
          if (!check_or.ok()) {
            if (check_or.status().code() != StatusCode::kCancelled) {
              record(d, true, check_or.status(), std::nullopt);
            }
            return;
          }
          uint64_t product_states = 0;
          auto found_or = check_or->CheckValuations(
              sweep_begin, check_or->NumValuations(),
              [&board, d](uint64_t) {
                return board.best_index.load(std::memory_order_relaxed) < d;
              },
              &product_states);
          {
            std::lock_guard<std::mutex> lock(stats_mu);
            total_graph_nodes += check_or->graph_nodes();
            total_product_states += product_states;
            if (check_or->truncated()) complete = false;
          }
          if (!found_or.ok()) {
            if (found_or.status().code() != StatusCode::kCancelled) {
              record(d, true, found_or.status(), std::nullopt);
            }
            return;
          }
          if (found_or->has_value()) {
            record(d, false, Status::OK(), std::move((**found_or).cex));
          }
        });
        return false;
      });
  pool.Wait();
  if (board.first_event_ns != 0) {
    if (!board.is_error) {
      WSV_HIST("verify/time_to_first_cex_ns",
               board.first_event_ns - sweep_start);
    }
    // How long in-flight work took to drain after the winner was known —
    // the latency the three-layer cancellation is supposed to keep small.
    WSV_HIST("verify/cancel_drain_ns", WSV_OBS_NOW() - board.first_event_ns);
  }

  LtlVerifyResult result;
  {
    std::lock_guard<std::mutex> lock(stats_mu);
    result.total_graph_nodes = total_graph_nodes;
    result.total_product_states = total_product_states;
    result.complete_within_bounds = complete;
  }
  const uint64_t best = board.best_index.load();
  if (best != UINT64_MAX) {
    if (board.is_error) return board.error;
    result.holds = false;
    result.counterexample = std::move(board.cex);
    // What the serial sweep would have visited before stopping.
    result.databases_checked = best + 1;
    return result;
  }
  // No event anywhere: an enumerator failure (e.g. the instance cap) is
  // the outcome, exactly as in the serial verifier.
  if (!enum_result.ok()) return enum_result.status();
  result.databases_checked = db_index;
  return result;
}

StatusOr<LtlVerifyResult> ParallelLtlVerifier::VerifyOnDatabase(
    const TemporalProperty& property, const Instance& database) {
  // "portfolio" races a dfs leg against a directed leg over the same
  // valuation space; the race needs the pool even at jobs == 1.
  const bool portfolio = IsPortfolioSelection(options_.search.strategy);
  if (jobs_ == 1 && !portfolio) {
    return LtlVerifier(service_, options_).VerifyOnDatabase(property,
                                                            database);
  }
  WSV_SPAN("verify/parallel_db_sweep");
  [[maybe_unused]] const uint64_t sweep_start = WSV_OBS_NOW();

  WSV_ASSIGN_OR_RETURN(
      BuchiAutomaton automaton,
      BuildNegatedAutomaton(*service_, property,
                            options_.require_input_bounded));
  LtlVerifyOptions opts = options_;
  // Chunked on-the-fly sweeps expand chunk-local lazy graphs whose edge
  // order depends on the visited range, so persisted columns from one
  // cut would be garbage under another. The sweep itself refuses
  // partial-range stores, but gate here too so the intent is explicit:
  // only the eager engine (fixed edge order from Create) shares columns
  // across chunked sweeps.
  if (OnTheFlyEnabled() && !opts.force_eager) opts.leaf_store = nullptr;

  LtlVerifyResult result;
  result.databases_checked = 1;
  std::mutex stats_mu;
  uint64_t total_product_states = 0;

  // One chunked sweep of [from, n) over each context in `legs`,
  // lowest-index-wins on `board`. The contexts are immutable; chunks
  // share them freely. Each chunk's sweep keeps its own FO-leaf memo and
  // valuation-class table (call-local state in CheckValuations), so
  // chunking trades collapse for balance: with class collapsing on, one
  // contiguous shard per worker maximizes the per-shard collapse rate
  // (and repeats cost next to nothing, so imbalance matters little);
  // with the naive sweep forced, oversubscribe 4x so uneven valuation
  // costs load-balance. Work counters sum exactly across shards either
  // way — only the per-shard split (memo hits vs misses, classes vs
  // hits) depends on the cut.
  //
  // Two legs implement the "portfolio" selection: both sweep the same
  // index space under different search strategies, interleaved in one
  // pool, and the first event at the lowest index cancels every chunk of
  // either leg that can no longer win (best_index is one shared signal).
  // Verdict and witness *valuation* stay deterministic — any recorded
  // index is a genuine violation index, and the chunk containing the
  // true minimum is never cancelled before sweeping it — but the witness
  // run at that index may come from either leg (both replay through
  // verify/witness_check.h).
  auto run_chunked = [&](const std::vector<const LtlDatabaseCheck*>& legs,
                         uint64_t from, EventBoard& board) {
    const uint64_t n = legs.front()->NumValuations();
    if (from >= n) return;
    const uint64_t range = n - from;
    const uint64_t num_chunks = std::min<uint64_t>(
        range,
        static_cast<uint64_t>(jobs_) * (ClassCollapseEnabled() ? 1 : 4));
    const uint64_t chunk = (range + num_chunks - 1) / num_chunks;
    // A portfolio race needs both legs in flight even at jobs == 1.
    ThreadPool pool(legs.size() > 1 ? std::max(jobs_, 2) : jobs_);
    for (uint64_t begin = from; begin < n; begin += chunk) {
      const uint64_t end = std::min(n, begin + chunk);
      for (const LtlDatabaseCheck* chk : legs) {
        WSV_COUNT1("verify/valuation_chunks");
        pool.Submit([&, chk, begin, end] {
          if (board.best_index.load(std::memory_order_relaxed) <= begin) {
            return;
          }
          uint64_t product_states = 0;
          auto found_or = chk->CheckValuations(
              begin, end,
              [&board](uint64_t i) {
                return board.best_index.load(std::memory_order_relaxed) <= i;
              },
              &product_states);
          {
            std::lock_guard<std::mutex> lock(stats_mu);
            total_product_states += product_states;
          }
          if (!found_or.ok()) {
            if (found_or.status().code() != StatusCode::kCancelled) {
              // Key the error by the chunk's first index (a lower bound
              // on where it occurred).
              if (board.Record(begin, true, found_or.status(),
                               std::nullopt)) {
                WSV_COUNT1("verify/cancellations_signalled");
                pool.CancelPending();
              }
            }
            return;
          }
          if (found_or->has_value()) {
            if (board.Record((**found_or).valuation_index, false,
                             Status::OK(), std::move((**found_or).cex))) {
              WSV_COUNT1("verify/cancellations_signalled");
              pool.CancelPending();
            }
          }
        });
      }
    }
    pool.Wait();
  };

  // The portfolio's legs: the deterministic dfs leg plus a directed
  // hunter. Non-portfolio selections run one leg with the options as
  // given (per-shard strategies flow through the shared context).
  LtlVerifyOptions leg_opts = opts;
  if (portfolio) leg_opts.search.strategy = "dfs";
  LtlVerifyOptions directed_opts = opts;
  directed_opts.search.strategy = "directed";

  // Phase 1 (when slicing applies): chunked abort-on-lasso sweep of the
  // sliced spec. The lowest marker index is exactly the first index
  // with an accepting lasso — chunks below it ran to completion without
  // one — so the full-spec phase resumes there; no marker anywhere
  // decides HOLDS outright.
  uint64_t sweep_begin = 0;
  std::unique_ptr<WebService> sliced;
  if (analysis::SliceEnabled() && options_.enable_slice) {
    sliced = analysis::SlicePropertyCone(*service_, property).service;
  }
  if (sliced != nullptr) {
    LtlVerifyOptions sliced_opts =
        SlicedCheckOptions(leg_opts, *service_, property, database);
    WSV_ASSIGN_OR_RETURN(
        LtlDatabaseCheck sliced_check,
        LtlDatabaseCheck::Create(sliced.get(), sliced_opts, &property,
                                 &automaton, database));
    std::optional<LtlDatabaseCheck> sliced_directed;
    std::vector<const LtlDatabaseCheck*> sliced_legs{&sliced_check};
    if (portfolio) {
      LtlVerifyOptions sliced_dir_opts =
          SlicedCheckOptions(directed_opts, *service_, property, database);
      auto dir_or = LtlDatabaseCheck::Create(sliced.get(), sliced_dir_opts,
                                             &property, &automaton, database);
      if (!dir_or.ok()) return dir_or.status();
      sliced_directed.emplace(std::move(*dir_or));
      sliced_legs.push_back(&*sliced_directed);
    }
    EventBoard marker_board;
    run_chunked(sliced_legs, 0, marker_board);
    for (const LtlDatabaseCheck* leg : sliced_legs) {
      result.total_graph_nodes += leg->graph_nodes();
      if (leg->truncated()) result.complete_within_bounds = false;
    }
    if (marker_board.best_index.load() != UINT64_MAX) {
      if (marker_board.is_error) return marker_board.error;
      sweep_begin = marker_board.best_index.load();
    } else {
      result.total_product_states = total_product_states;
      return result;  // lasso-free everywhere: holds
    }
  }

  WSV_ASSIGN_OR_RETURN(
      LtlDatabaseCheck check,
      LtlDatabaseCheck::Create(service_, leg_opts, &property, &automaton,
                               database));
  std::optional<LtlDatabaseCheck> check_directed;
  std::vector<const LtlDatabaseCheck*> full_legs{&check};
  if (portfolio) {
    auto dir_or = LtlDatabaseCheck::Create(service_, directed_opts, &property,
                                           &automaton, database);
    if (!dir_or.ok()) return dir_or.status();
    check_directed.emplace(std::move(*dir_or));
    full_legs.push_back(&*check_directed);
  }

  const uint64_t n = check.NumValuations();
  if (n == 0) {
    result.total_graph_nodes += check.graph_nodes();
    if (check.truncated()) result.complete_within_bounds = false;
    return result;
  }

  EventBoard board;
  run_chunked(full_legs, sweep_begin, board);
  if (board.first_event_ns != 0) {
    if (!board.is_error) {
      WSV_HIST("verify/time_to_first_cex_ns",
               board.first_event_ns - sweep_start);
    }
    WSV_HIST("verify/cancel_drain_ns", WSV_OBS_NOW() - board.first_event_ns);
  }

  // Graph accounting after the sweeps: in on-the-fly mode the graphs are
  // expanded (and possibly truncated) by the per-shard sweeps.
  for (const LtlDatabaseCheck* leg : full_legs) {
    result.total_graph_nodes += leg->graph_nodes();
    if (leg->truncated()) result.complete_within_bounds = false;
  }
  result.total_product_states = total_product_states;
  if (board.best_index.load() != UINT64_MAX) {
    if (board.is_error) return board.error;
    result.holds = false;
    result.counterexample = std::move(board.cex);
  }
  return result;
}

}  // namespace wsv
