// Independent validation of violation witnesses.
//
// A counterexample produced by either verification pipeline (eager or
// on-the-fly) is an ultimately periodic run. This validator re-derives
// the run through the runtime stepper — the single source of truth for
// Definition 2.3's successor semantics — and checks, without trusting
// any verifier state:
//
//  1. Replay: starting from the initial configuration, the user choice
//     reconstructed from each step's inputs produces exactly the
//     recorded trace element, step by step.
//  2. Closure: the successor of the final step is the configuration the
//     lasso loops back to, so the periodic run is real.
//  3. Violation: the property, evaluated on the lasso under the
//     witness's closure valuation, is false.
//
// Tests run this on every VIOLATED verdict, which is what lets the
// on-the-fly early exit be aggressive: a bogus lasso cannot survive.

#ifndef WSV_VERIFY_WITNESS_CHECK_H_
#define WSV_VERIFY_WITNESS_CHECK_H_

#include "common/status.h"
#include "verify/ltl_verifier.h"

namespace wsv {

/// Validates `cex` as a genuine violating run of `service` on its
/// database. Returns OK for a valid witness; InvalidArgument with a
/// step-level reason otherwise.
Status ValidateWitness(const WebService& service,
                       const TemporalProperty& property,
                       const CounterExample& cex);

}  // namespace wsv

#endif  // WSV_VERIFY_WITNESS_CHECK_H_
