#include "verify/db_enum.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsv {

std::vector<Value> ServiceRuleLiterals(const WebService& service) {
  std::set<Value> lits;
  auto collect = [&](const FormulaPtr& body) {
    std::set<Value> sub = body->Literals();
    lits.insert(sub.begin(), sub.end());
  };
  for (const PageSchema& page : service.pages()) {
    for (const InputRule& r : page.input_rules) collect(r.body);
    for (const StateRule& r : page.state_rules) collect(r.body);
    for (const ActionRule& r : page.action_rules) collect(r.body);
    for (const TargetRule& r : page.target_rules) collect(r.body);
  }
  return std::vector<Value>(lits.begin(), lits.end());
}

namespace {

// Enumerates subsets of `tuples` of size <= max_tuples (or all subsets if
// max_tuples < 0) into the relation named `name`, recursing into `next`.
class DbEnumerator {
 public:
  DbEnumerator(const WebService& service, const DbEnumOptions& options,
               const std::function<StatusOr<bool>(const Instance&)>& visit)
      : options_(options), visit_(visit) {
    std::set<Value> dom;
    for (Value v : ServiceRuleLiterals(service)) dom.insert(v);
    for (Value v : options.base_values) dom.insert(v);
    for (int i = 0; i < options.fresh_values; ++i) {
      Value v = Value::Intern("d" + std::to_string(i));
      // Only values the rules/property cannot name are interchangeable;
      // a "fresh" value that collides with a literal is pinned.
      if (dom.insert(v).second) fresh_.push_back(v);
    }
    domain_.assign(dom.begin(), dom.end());
    relations_ = service.vocab().RelationsOfKind(SymbolKind::kDatabase);
    for (const std::string& c : service.vocab().constants()) {
      if (!service.vocab().IsInputConstant(c)) db_constants_.push_back(c);
    }
  }

  StatusOr<bool> Run() {
    Instance current;
    for (Value v : domain_) current.AddDomainValue(v);
    return FillRelation(0, current);
  }

 private:
  std::vector<Tuple> AllTuples(int arity) const {
    std::vector<Tuple> out;
    if (arity == 0) {
      out.push_back(Tuple{});
      return out;
    }
    if (domain_.empty()) return out;
    std::vector<size_t> idx(arity, 0);
    while (true) {
      Tuple t(arity);
      for (int i = 0; i < arity; ++i) t[i] = domain_[idx[i]];
      out.push_back(std::move(t));
      int k = 0;
      while (k < arity) {
        if (++idx[k] < domain_.size()) break;
        idx[k] = 0;
        ++k;
      }
      if (k == arity) break;
    }
    return out;
  }

  StatusOr<bool> FillRelation(size_t rel_idx, Instance& current) {
    if (rel_idx == relations_.size()) return FillConstant(0, current);
    const RelationSymbol& sym = relations_[rel_idx];
    WSV_RETURN_IF_ERROR(current.EnsureRelation(sym.name, sym.arity));
    std::vector<Tuple> tuples = AllTuples(sym.arity);
    Relation* rel = current.MutableRelation(sym.name);
    // Enumerate subsets up to the cap via choose-k recursion.
    std::vector<size_t> chosen;
    size_t cap = options_.max_tuples_per_relation < 0
                     ? tuples.size()
                     : static_cast<size_t>(options_.max_tuples_per_relation);
    return ChooseTuples(rel_idx, current, rel, tuples, chosen, 0, cap);
  }

  StatusOr<bool> ChooseTuples(size_t rel_idx, Instance& current,
                              Relation* rel,
                              const std::vector<Tuple>& tuples,
                              std::vector<size_t>& chosen, size_t start,
                              size_t cap) {
    // Visit the current subset, then try extending it.
    {
      rel->Clear();
      for (size_t i : chosen) rel->Insert(tuples[i]);
      WSV_ASSIGN_OR_RETURN(bool stop, FillRelation(rel_idx + 1, current));
      if (stop) return true;
    }
    if (chosen.size() >= cap) return false;
    for (size_t i = start; i < tuples.size(); ++i) {
      chosen.push_back(i);
      WSV_ASSIGN_OR_RETURN(
          bool stop,
          ChooseTuples(rel_idx, current, rel, tuples, chosen, i + 1, cap));
      chosen.pop_back();
      if (stop) return true;
    }
    return false;
  }

  // Nothing in the service, the property, or the run semantics can name
  // a purely fresh value, so instances that differ only by a permutation
  // of fresh_ are isomorphic and get identical verdicts. Visit exactly
  // one representative per orbit: the instance that is minimal under
  // every fresh-value permutation (in particular, any instance using d1
  // before d0 relabels to a strictly smaller one and is skipped). With
  // <= 2 interchangeable values this costs one relabel+compare per
  // candidate; the factorial is bounded by the tiny fresh_values option.
  bool IsOrbitMinimal(const Instance& current) const {
    if (fresh_.size() < 2) return true;
    std::vector<size_t> perm(fresh_.size());
    std::iota(perm.begin(), perm.end(), 0);
    while (std::next_permutation(perm.begin(), perm.end())) {
      if (RelabeledIsSmaller(current, perm)) return false;
    }
    return true;
  }

  bool RelabeledIsSmaller(const Instance& current,
                          const std::vector<size_t>& perm) const {
    auto map_value = [&](Value v) {
      for (size_t i = 0; i < fresh_.size(); ++i) {
        if (v == fresh_[i]) return fresh_[perm[i]];
      }
      return v;
    };
    Instance relabeled;
    for (Value v : current.domain()) relabeled.AddDomainValue(v);
    for (const auto& [name, rel] : current.relations()) {
      (void)relabeled.EnsureRelation(name, rel.arity());
      Relation* out = relabeled.MutableRelation(name);
      Tuple mapped;
      for (const Tuple& t : rel.tuples()) {
        mapped.assign(t.begin(), t.end());
        for (Value& v : mapped) v = map_value(v);
        out->Insert(mapped);
      }
    }
    for (const auto& [name, v] : current.constants()) {
      relabeled.SetConstant(name, map_value(v));
    }
    // Lexicographic instance order: relations (name-sorted maps compare
    // element-wise; Relation orders by tuple set), then constants. Any
    // fixed total order works — it only has to pick one orbit element.
    if (relabeled.relations() != current.relations()) {
      return relabeled.relations() < current.relations();
    }
    return relabeled.constants() < current.constants();
  }

  StatusOr<bool> FillConstant(size_t const_idx, Instance& current) {
    if (const_idx == db_constants_.size()) {
      if (!IsOrbitMinimal(current)) {
        WSV_COUNT1("db_enum/symmetry_pruned");
        return false;
      }
      if (++visited_ > options_.max_instances) {
        WSV_COUNT1("db_enum/cap_exhausted");
        return Status::ResourceExhausted(
            "database enumeration exceeded max_instances = " +
            std::to_string(options_.max_instances));
      }
      WSV_COUNT1("db_enum/instances_enumerated");
      return visit_(current);
    }
    for (Value v : domain_) {
      current.SetConstant(db_constants_[const_idx], v);
      WSV_ASSIGN_OR_RETURN(bool stop, FillConstant(const_idx + 1, current));
      if (stop) return true;
    }
    return false;
  }

  const DbEnumOptions& options_;
  const std::function<StatusOr<bool>(const Instance&)>& visit_;
  std::vector<Value> domain_;
  /// The interchangeable anonymous values, in d0..dn order.
  std::vector<Value> fresh_;
  std::vector<RelationSymbol> relations_;
  std::vector<std::string> db_constants_;
  uint64_t visited_ = 0;
};

}  // namespace

StatusOr<bool> EnumerateDatabases(
    const WebService& service, const DbEnumOptions& options,
    const std::function<StatusOr<bool>(const Instance&)>& visit) {
  WSV_SPAN("verify/db_enum");
  DbEnumerator en(service, options, visit);
  return en.Run();
}

}  // namespace wsv
