#include "verify/abstraction.h"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "fo/rewrite.h"
#include "verify/db_enum.h"
#include "ws/classify.h"
#include "ws/validate.h"

namespace wsv {

namespace {

// The proposition set of one trace element.
std::set<std::string> TraceLabel(const TraceView& trace,
                                 const WebService& service) {
  std::set<std::string> label;
  label.insert(*trace.page);
  const Vocabulary& vocab = service.vocab();
  for (const RelationSymbol& sym : vocab.relations()) {
    switch (sym.kind) {
      case SymbolKind::kState: {
        const Relation* rel = trace.state->FindRelation(sym.name);
        if (rel != nullptr && rel->AsBool()) label.insert(sym.name);
        break;
      }
      case SymbolKind::kAction: {
        const Relation* rel = trace.actions->FindRelation(sym.name);
        if (rel != nullptr && rel->AsBool()) label.insert(sym.name);
        break;
      }
      case SymbolKind::kInput: {
        const Relation* rel = trace.inputs->FindRelation(sym.name);
        if (rel == nullptr || rel->empty()) break;
        if (sym.arity == 0) {
          label.insert(sym.name);
        } else {
          // Ground input atoms: one proposition per chosen tuple.
          for (const Tuple& t : rel->tuples()) {
            Atom atom;
            atom.relation = sym.name;
            for (Value v : t) atom.terms.push_back(Term::Literal(v));
            label.insert(atom.ToString());
            // Also the bare relation name: "some tuple was input".
            label.insert(sym.name);
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return label;
}

// Hash for label sets (ordered, so iteration order is canonical).
struct LabelSetHash {
  size_t operator()(const std::set<std::string>& names) const {
    return HashRange(names.begin(), names.end());
  }
};

}  // namespace

StatusOr<Kripke> BuildPropositionalKripke(const WebService& service,
                                          const Instance& database,
                                          const KripkeBuildOptions& options) {
  if (options.check_propositional) {
    WSV_RETURN_IF_ERROR(CheckPropositionalService(service));
  }

  Stepper stepper(&service, &database);
  stepper.SetTrackedPrev(Stepper::PrevRelationsInRules(service));
  ConfigGraphOptions graph_options = options.graph;
  if (graph_options.constant_pool.empty()) {
    std::set<Value> pool(database.domain().begin(), database.domain().end());
    for (Value v : ServiceRuleLiterals(service)) pool.insert(v);
    for (int i = 0; i < options.extra_constant_values; ++i) {
      pool.insert(Value::Intern("u" + std::to_string(i)));
    }
    graph_options.constant_pool.assign(pool.begin(), pool.end());
  }
  WSV_ASSIGN_OR_RETURN(ConfigGraph graph,
                       BuildConfigGraph(stepper, graph_options));
  if (graph.truncated) {
    return Status::ResourceExhausted(
        "configuration graph truncated while building the Kripke "
        "structure; raise the budgets");
  }

  Kripke kripke;
  // Map each config-graph edge to a Kripke state keyed by its label.
  std::unordered_map<std::set<std::string>, int, LabelSetHash> state_of_label;
  std::vector<int> edge_state(graph.edges.size());
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    std::set<std::string> names =
        TraceLabel(graph.View(static_cast<int>(e)), service);
    std::set<int> label;
    for (const std::string& n : names) label.insert(kripke.InternProp(n));
    auto it = state_of_label.find(names);
    if (it == state_of_label.end()) {
      int s = kripke.AddState(std::move(label));
      it = state_of_label.emplace(std::move(names), s).first;
    }
    edge_state[e] = it->second;
  }
  // Edges between consecutive trace elements; initial states are the
  // labels of the first step.
  std::unordered_set<uint64_t> added;
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    if (graph.edges[e].from == graph.initial) {
      kripke.SetInitial(edge_state[e]);
    }
    for (int e2 : graph.out_edges[graph.edges[e].to]) {
      if (added.insert(PackInts(edge_state[e], edge_state[e2])).second) {
        kripke.AddEdge(edge_state[e], edge_state[e2]);
      }
    }
  }
  WSV_RETURN_IF_ERROR(kripke.CheckTotal());
  return kripke;
}

StatusOr<Kripke> BuildUnmergedKripke(const WebService& service,
                                     const Instance& database,
                                     const KripkeBuildOptions& options) {
  Stepper stepper(&service, &database);
  stepper.SetTrackedPrev(Stepper::PrevRelationsInRules(service));
  ConfigGraphOptions graph_options = options.graph;
  if (graph_options.constant_pool.empty()) {
    std::set<Value> pool(database.domain().begin(), database.domain().end());
    for (Value v : ServiceRuleLiterals(service)) pool.insert(v);
    for (int i = 0; i < options.extra_constant_values; ++i) {
      pool.insert(Value::Intern("u" + std::to_string(i)));
    }
    graph_options.constant_pool.assign(pool.begin(), pool.end());
  }
  WSV_ASSIGN_OR_RETURN(ConfigGraph graph,
                       BuildConfigGraph(stepper, graph_options));
  if (graph.truncated) {
    return Status::ResourceExhausted(
        "configuration graph truncated while building the Kripke "
        "structure; raise the budgets");
  }
  Kripke kripke;
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    std::set<std::string> names =
        TraceLabel(graph.View(static_cast<int>(e)), service);
    std::set<int> label;
    for (const std::string& n : names) label.insert(kripke.InternProp(n));
    int s = kripke.AddState(std::move(label));
    if (graph.edges[e].from == graph.initial) kripke.SetInitial(s);
  }
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    for (int e2 : graph.out_edges[graph.edges[e].to]) {
      kripke.AddEdge(static_cast<int>(e), e2);
    }
  }
  WSV_RETURN_IF_ERROR(kripke.CheckTotal());
  return kripke;
}

namespace {

// Rewrites a formula: database/state/action atoms become propositions;
// input atoms and equalities stay; Prev_I atoms are rejected.
StatusOr<FormulaPtr> AbstractFo(const Formula& f, const Vocabulary& vocab) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      return Formula::True();
    case Formula::Kind::kFalse:
      return Formula::False();
    case Formula::Kind::kEquals:
      return Formula::Equals(f.lhs(), f.rhs());
    case Formula::Kind::kAtom: {
      const Atom& atom = f.atom();
      if (atom.prev) {
        return Status::Unsupported(
            "cannot abstract Prev_I atom " + atom.ToString() +
            " (propositional services admit no Prev_I)");
      }
      const RelationSymbol* sym = vocab.FindRelation(atom.relation);
      if (sym != nullptr && sym->kind == SymbolKind::kInput) {
        return Formula::MakeAtom(atom);
      }
      return Formula::MakeAtom(atom.relation, {});
    }
    case Formula::Kind::kNot: {
      WSV_ASSIGN_OR_RETURN(FormulaPtr c, AbstractFo(*f.children()[0], vocab));
      return Formula::Not(std::move(c));
    }
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<FormulaPtr> parts;
      for (const FormulaPtr& c : f.children()) {
        WSV_ASSIGN_OR_RETURN(FormulaPtr a, AbstractFo(*c, vocab));
        parts.push_back(std::move(a));
      }
      return f.kind() == Formula::Kind::kAnd ? Formula::And(std::move(parts))
                                             : Formula::Or(std::move(parts));
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      WSV_ASSIGN_OR_RETURN(FormulaPtr body, AbstractFo(*f.body(), vocab));
      return f.kind() == Formula::Kind::kExists
                 ? Formula::Exists(f.variables(), std::move(body))
                 : Formula::Forall(f.variables(), std::move(body));
    }
  }
  return Status::Internal("bad formula kind");
}

// Collects top-level conjuncts that equate a variable with a ground term
// (produced by rule-head desugaring), for substitution before closing.
void GroundEqualities(const Formula& f,
                      std::map<std::string, Term>* subst) {
  if (f.kind() == Formula::Kind::kAnd) {
    for (const FormulaPtr& c : f.children()) GroundEqualities(*c, subst);
    return;
  }
  if (f.kind() != Formula::Kind::kEquals) return;
  const Term* var = nullptr;
  const Term* ground = nullptr;
  for (const Term* t : {&f.lhs(), &f.rhs()}) {
    if (t->is_variable()) {
      var = t;
    } else {
      ground = t;
    }
  }
  if (var != nullptr && ground != nullptr) {
    subst->emplace(var->name(), *ground);
  }
}

// Close the abstracted body over the former head variables that still
// occur free (they can only occur in input atoms / equalities now).
// Variables pinned by a ground equality conjunct are substituted away
// first, so e.g. the desugared +error("failed login") closes to a
// quantifier-free proposition rule.
StatusOr<FormulaPtr> AbstractRuleBody(const FormulaPtr& body,
                                      const std::vector<std::string>& head,
                                      const Vocabulary& vocab) {
  WSV_ASSIGN_OR_RETURN(FormulaPtr abs, AbstractFo(*body, vocab));
  std::map<std::string, Term> pinned;
  GroundEqualities(*abs, &pinned);
  std::map<std::string, Term> subst;
  for (const std::string& v : head) {
    auto it = pinned.find(v);
    if (it != pinned.end()) subst.emplace(v, it->second);
  }
  if (!subst.empty()) abs = Simplify(*Substitute(*abs, subst));
  std::set<std::string> free = abs->FreeVariables();
  std::vector<std::string> close;
  for (const std::string& v : head) {
    if (free.count(v) > 0) close.push_back(v);
  }
  return Formula::Exists(std::move(close), std::move(abs));
}

}  // namespace

StatusOr<WebService> AbstractToPropositional(const WebService& service) {
  const Vocabulary& vocab = service.vocab();
  WebService ws;
  ws.set_name(service.name() + "_abs");
  ws.set_home_page(service.home_page());
  ws.set_error_page(service.error_page());
  Vocabulary& nv = ws.mutable_vocab();
  for (const RelationSymbol& sym : vocab.relations()) {
    if (sym.kind == SymbolKind::kPage) continue;
    int arity = sym.kind == SymbolKind::kState ||
                        sym.kind == SymbolKind::kAction ||
                        sym.kind == SymbolKind::kDatabase
                    ? 0
                    : sym.arity;
    WSV_RETURN_IF_ERROR(nv.AddRelation(sym.name, arity, sym.kind));
  }
  for (const std::string& c : vocab.constants()) {
    WSV_RETURN_IF_ERROR(nv.AddConstant(c, vocab.IsInputConstant(c)));
  }

  for (const PageSchema& page : service.pages()) {
    PageSchema np;
    np.name = page.name;
    np.inputs = page.inputs;
    np.input_constants = page.input_constants;
    np.actions = page.actions;
    np.targets = page.targets;
    for (const InputRule& r : page.input_rules) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr abs, AbstractFo(*r.body, vocab));
      np.input_rules.push_back(InputRule{r.input, r.head_vars, abs, Span{}});
    }
    for (const StateRule& r : page.state_rules) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr body,
                           AbstractRuleBody(r.body, r.head_vars, vocab));
      np.state_rules.push_back(StateRule{r.state, r.insert, {}, body, Span{}});
    }
    for (const ActionRule& r : page.action_rules) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr body,
                           AbstractRuleBody(r.body, r.head_vars, vocab));
      np.action_rules.push_back(ActionRule{r.action, {}, body, Span{}});
    }
    for (const TargetRule& r : page.target_rules) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr body, AbstractFo(*r.body, vocab));
      np.target_rules.push_back(TargetRule{r.target, body, Span{}});
    }
    WSV_RETURN_IF_ERROR(ws.AddPage(std::move(np)));
  }
  for (const PageSchema& page : ws.pages()) {
    WSV_RETURN_IF_ERROR(nv.AddRelation(page.name, 0, SymbolKind::kPage));
  }
  WSV_RETURN_IF_ERROR(nv.AddRelation(ws.error_page(), 0, SymbolKind::kPage));
  WSV_RETURN_IF_ERROR(ValidateService(ws));
  return ws;
}

}  // namespace wsv
