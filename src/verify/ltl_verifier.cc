#include "verify/ltl_verifier.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <set>
#include <unordered_map>
#include <utility>

#include "analysis/depgraph.h"
#include "analysis/slice.h"
#include "automata/emptiness.h"
#include "automata/ltl_to_buchi.h"
#include "common/fingerprint.h"
#include "common/hash.h"
#include "fo/input_bounded.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "verify/leaf_store.h"
#include "ws/classify.h"

namespace wsv {

std::string CounterExample::ToString() const {
  std::string out = "database:\n" + database.ToString();
  if (!valuation.empty()) {
    out += "valuation:";
    for (const auto& [var, v] : valuation) {
      out += " " + var + "=" + v.name();
    }
    out += "\n";
  }
  out += "violating run (lasso):\n" + run.ToString();
  return out;
}

LtlVerifier::LtlVerifier(const WebService* service, LtlVerifyOptions options)
    : service_(service), options_(std::move(options)) {}

namespace {

// All values occurring anywhere in a lasso run or the database — Dom(rho)
// for the closure-variable range check.
std::set<Value> LassoDomain(const LassoRun& run, const Instance& database) {
  std::set<Value> dom(database.domain().begin(), database.domain().end());
  for (const TraceStep& step : run.steps) {
    for (const Instance* inst :
         {&step.state, &step.inputs, &step.prev_inputs, &step.actions}) {
      dom.insert(inst->domain().begin(), inst->domain().end());
    }
    for (const auto& [name, v] : step.kappa) dom.insert(v);
  }
  return dom;
}

// Input relations whose chosen tuple nothing in the search can observe:
// no rule reads the relation, directly or through prev (prev atoms
// resolve to the base relation, so "no reader in the dependence graph"
// also means the relation is untracked and absent from successor
// configurations); no property leaf names it; and neither the property
// leaves nor any rule body is domain-dependent (a domain-dependent
// formula ranges over the active domain, which contains every chosen
// input value). Successor edges differing only in such relations' tuples
// are commuting interleavings of the same future — the "prune_commuting"
// option explores one representative (DESIGN.md §11).
std::set<std::string> ComputeInvisibleInputs(const WebService& service,
                                             const TemporalProperty& property) {
  analysis::DepGraph dep = analysis::DepGraph::Build(service);
  if (!dep.PropertyDomainIndependent(property)) return {};
  for (const analysis::DepNode& n : dep.nodes()) {
    if (n.kind == analysis::DepNodeKind::kRule && !n.domain_independent) {
      return {};
    }
  }
  std::vector<char> in_property(dep.nodes().size(), 0);
  for (int s : dep.PropertySeeds(property)) {
    in_property[static_cast<size_t>(s)] = 1;
  }
  std::set<std::string> invisible;
  for (size_t id = 0; id < dep.nodes().size(); ++id) {
    const analysis::DepNode& n = dep.nodes()[id];
    if (n.kind != analysis::DepNodeKind::kRelation ||
        n.symbol_kind != SymbolKind::kInput || in_property[id]) {
      continue;
    }
    std::vector<char> reach = dep.ForwardReach({static_cast<int>(id)});
    bool unread = true;
    for (size_t j = 0; j < reach.size() && unread; ++j) {
      if (reach[j] != 0 && j != id) unread = false;
    }
    if (unread) invisible.insert(n.name);
  }
  return invisible;
}

// Everything the product search can observe about one configuration-graph
// edge when `invisible` input relations are pruned: the target node,
// error routing, provided constants, and the tuples of every *visible*
// input relation. Edges sharing a key are interchangeable interleavings.
std::string EdgeVisibleKey(const ConfigGraph::Edge& edge,
                           const std::set<std::string>& invisible) {
  std::string key = std::to_string(edge.to);
  key += edge.to_error ? "|E|" : "|.|";
  key += edge.error_reason;
  for (const auto& [name, value] : edge.inputs.constants()) {
    key += '|';
    key += name;
    key += '=';
    key += value.name();
  }
  for (const auto& [name, rel] : edge.inputs.relations()) {
    if (invisible.count(name) > 0) continue;
    key += '|';
    key += name;
    key += ':';
    for (const Tuple& t : rel.tuples()) {
      for (const Value& v : t) {
        key += v.name();
        key += ',';
      }
      key += ';';
    }
  }
  return key;
}

// Hash for vector-valued keys: the FO-leaf memo (projected valuation
// digits) and the valuation class table (leaf-column id tuples).
template <typename T>
struct VectorKeyHash {
  size_t operator()(const std::vector<T>& key) const {
    return HashRange(key.begin(), key.end());
  }
};

// Matching-state list for edge labels no automaton state carries.
const std::vector<int> kNoMatchingStates;

// Rebuilds a truth column from its stored set-bit representation.
void ColumnFromSetBits(const std::vector<uint64_t>& set_bits, uint64_t upto,
                       Bitset* col) {
  col->Resize(static_cast<size_t>(upto));
  for (uint64_t e : set_bits) {
    if (e < upto) col->Set(static_cast<size_t>(e), true);
  }
}

std::vector<uint64_t> SetBitsOf(const Bitset& col, uint64_t upto) {
  std::vector<uint64_t> out;
  for (uint64_t e = 0; e < upto; ++e) {
    if (col.Test(static_cast<size_t>(e))) out.push_back(e);
  }
  return out;
}

std::string LeafStoreKey(const std::string& ctx, const std::string& leaf_fp,
                         const std::string& binding) {
  std::string key = ctx;
  key += "|leaf:";
  key += leaf_fp;
  key += '|';
  key += binding;
  return key;
}

// Canonical, process-portable rendering of the binding a dynamic leaf
// column is evaluated under: the closure values projected onto the
// leaf's free variables (in variable order) plus the sorted set of
// domain-relevant extension values — the exact key the in-call memo
// uses, but by value *name* instead of candidate digit, so two
// processes with different interning orders agree.
std::string LeafBinding(const std::vector<size_t>& leaf_vars,
                        const std::vector<int32_t>& digits,
                        const std::vector<Value>& cand,
                        const std::vector<char>& domain_relevant,
                        bool qfree) {
  std::string b = "b:";
  for (size_t p : leaf_vars) {
    b += cand[static_cast<size_t>(digits[p])].name();
    b += ',';
  }
  b += "|e:";
  if (!qfree) {
    std::vector<std::string> ext;
    for (int32_t d : digits) {
      if (domain_relevant[static_cast<size_t>(d)]) {
        ext.push_back(cand[static_cast<size_t>(d)].name());
      }
    }
    std::sort(ext.begin(), ext.end());
    ext.erase(std::unique(ext.begin(), ext.end()), ext.end());
    for (const std::string& n : ext) {
      b += n;
      b += ',';
    }
  }
  return b;
}

}  // namespace

bool ClassCollapseEnabled() {
  return std::getenv("WSV_DISABLE_CLASS_COLLAPSE") == nullptr;
}

bool OnTheFlyEnabled() {
  return std::getenv("WSV_DISABLE_ONTHEFLY") == nullptr;
}

std::vector<Value> ResolveConstantPool(const WebService& service,
                                       const TemporalProperty& property,
                                       const Instance& database,
                                       const LtlVerifyOptions& options) {
  if (!options.graph.constant_pool.empty()) {
    return options.graph.constant_pool;
  }
  std::set<Value> pool(database.domain().begin(), database.domain().end());
  for (Value v : ServiceRuleLiterals(service)) pool.insert(v);
  for (Value v : property.formula->Literals()) pool.insert(v);
  for (int i = 0; i < options.extra_constant_values; ++i) {
    pool.insert(Value::Intern("u" + std::to_string(i)));
  }
  return std::vector<Value>(pool.begin(), pool.end());
}

std::vector<Value> ResolveClosureCandidates(const WebService& service,
                                            const TemporalProperty& property,
                                            const Instance& database,
                                            const LtlVerifyOptions& options) {
  if (!options.closure_candidates.empty()) {
    return options.closure_candidates;
  }
  std::vector<Value> pool =
      ResolveConstantPool(service, property, database, options);
  std::set<Value> candidates(pool.begin(), pool.end());
  candidates.insert(database.domain().begin(), database.domain().end());
  for (Value v : ServiceRuleLiterals(service)) candidates.insert(v);
  for (Value v : property.formula->Literals()) candidates.insert(v);
  return std::vector<Value>(candidates.begin(), candidates.end());
}

LtlVerifyOptions SlicedCheckOptions(const LtlVerifyOptions& base,
                                    const WebService& original,
                                    const TemporalProperty& property,
                                    const Instance& database) {
  LtlVerifyOptions opts = base;
  // Pin the pool and the candidate list to what the *original* service
  // resolves: the sliced service has fewer rule literals, and a
  // different candidate list would renumber the valuation index space.
  opts.graph.constant_pool =
      ResolveConstantPool(original, property, database, base);
  opts.closure_candidates =
      ResolveClosureCandidates(original, property, database, base);
  // The sliced phase only decides lasso existence, so it always runs
  // the early-exiting on-the-fly engine (unless the environment forces
  // eager): under --eager the canonical phase stays eager while the
  // probe's cost is one nested DFS on the reduced graph.
  opts.force_eager = false;
  // Sliced truth columns differ from full-spec ones, so they live in
  // their own store keyspace: the sliced graph is a pure function of
  // (spec, database, pool — all in the caller's context) plus the
  // property (which the eager context omits) and the probe engine —
  // add both explicitly, plus a slicer version tag so algorithm changes
  // invalidate cleanly.
  if (base.leaf_store != nullptr && !base.leaf_store_context.empty()) {
    opts.leaf_store_context += std::string("|sliced-v1|") +
                               (OnTheFlyEnabled() ? "otf|" : "eager|") +
                               FingerprintProperty(property).ToHex();
  } else {
    opts.leaf_store = nullptr;
    opts.leaf_store_context.clear();
  }
  opts.abort_on_lasso = true;
  return opts;
}

std::set<std::string> TrackedPrevRelations(const WebService& service,
                                           const TemporalProperty& property) {
  // Track only the Prev_I relations the rules or the property observe.
  std::set<std::string> tracked = Stepper::PrevRelationsInRules(service);
  for (const FormulaPtr& leaf : property.formula->FoLeaves()) {
    for (const Atom& atom : leaf->Atoms()) {
      if (atom.prev) tracked.insert(atom.relation);
    }
  }
  return tracked;
}

StatusOr<BuchiAutomaton> BuildNegatedAutomaton(
    const WebService& service, const TemporalProperty& property,
    bool require_input_bounded) {
  if (!property.formula->IsLtl()) {
    return Status::InvalidArgument(
        "property contains path quantifiers; use the branching-time "
        "checkers");
  }
  if (require_input_bounded) {
    WSV_RETURN_IF_ERROR(CheckInputBoundedService(service));
    WSV_RETURN_IF_ERROR(CheckInputBoundedProperty(property, service.vocab()));
  }
  WSV_SPAN("automata/build_negated");
  TFormulaPtr negated =
      ToNegationNormalForm(*TFormula::Not(property.formula));
  WSV_ASSIGN_OR_RETURN(BuchiAutomaton gba, LtlToBuchi(*negated));
  BuchiAutomaton automaton = gba.Degeneralize();
  WSV_COUNT("automata/buchi_states", automaton.size());
  WSV_COUNT("automata/fo_leaves", automaton.leaves.size());
  return automaton;
}

StatusOr<LtlDatabaseCheck> LtlDatabaseCheck::Create(
    const WebService* service, const LtlVerifyOptions& options,
    const TemporalProperty* property, const BuchiAutomaton* automaton,
    const Instance& database) {
  WSV_SPAN("verify/db_check_create");
  WSV_COUNT1("verify/databases");
  LtlDatabaseCheck check;
  check.service_ = service;
  check.property_ = property;
  check.automaton_ = automaton;
  check.database_ = std::make_unique<Instance>(database);
  const Instance& db = *check.database_;

  // The stepper is owned by the context: on-the-fly sweeps generate
  // successors long after Create returns.
  check.stepper_ = std::make_unique<Stepper>(service, check.database_.get());
  check.stepper_->SetTrackedPrev(TrackedPrevRelations(*service, *property));
  const Stepper& stepper = *check.stepper_;

  // Candidate values for input constants: the database's active domain,
  // the rule/property literals, plus fresh "typed by the user" values.
  ConfigGraphOptions graph_options = options.graph;
  graph_options.constant_pool =
      ResolveConstantPool(*service, *property, db, options);
  check.graph_options_ = graph_options;

  check.on_the_fly_ = OnTheFlyEnabled() && !options.force_eager;
  if (!check.on_the_fly_) {
    WSV_ASSIGN_OR_RETURN(check.graph_,
                         BuildConfigGraph(stepper, graph_options));
  }

  check.leaf_store_ = options.leaf_store;
  check.leaf_ctx_ = options.leaf_store_context;
  if (check.leaf_store_ != nullptr) {
    check.leaf_fp_.reserve(automaton->leaves.size());
    for (const FormulaPtr& leaf : automaton->leaves) {
      check.leaf_fp_.push_back(FingerprintFormula(*leaf).ToHex());
    }
  }

  check.abort_on_lasso_ = options.abort_on_lasso;

  // Search-strategy plumbing (on-the-fly only: the eager pipeline's SCC
  // emptiness has no expansion policy to steer). The accepting-distance
  // table feeds the "directed" evaluator — also built for "portfolio",
  // whose directed leg shares this context's options. Invisible-input
  // detection is pure spec analysis, done once per context.
  check.search_options_ = options.search;
  if (check.on_the_fly_ &&
      (options.search.strategy == "directed" ||
       IsPortfolioSelection(options.search.strategy))) {
    check.accept_dist_ = automaton->AcceptingDistance();
  }
  if (check.on_the_fly_ && options.search.prune_commuting) {
    check.invisible_inputs_ = ComputeInvisibleInputs(*service, *property);
  }

  // Valuation candidates for the universal closure variables: everything
  // that can occur in a run's active domain — the database, rule and
  // property literals, and the input-constant pool — unless the caller
  // restricted them.
  check.cand_ = ResolveClosureCandidates(*service, *property, db, options);

  const std::vector<std::string>& vars = property->universal_vars;
  const uint64_t c = check.cand_.size();
  check.stride_.assign(vars.size(), 1);
  if (vars.empty()) {
    check.num_valuations_ = 1;
  } else if (c == 0) {
    check.num_valuations_ = 0;  // vacuously no violating valuation
  } else {
    uint64_t n = 1;
    for (size_t k = 0; k < vars.size(); ++k) {
      check.stride_[k] = n;
      if (n > UINT64_MAX / c) {
        return Status::ResourceExhausted(
            "closure valuation space overflows a 64-bit index; restrict "
            "closure_candidates");
      }
      n *= c;
    }
    check.num_valuations_ = n;
  }

  // Classify leaves by the closure variables they mention, and evaluate
  // the valuation-independent ones once per database.
  const size_t num_leaves = automaton->leaves.size();
  const size_t num_edges = check.graph_.edges.size();
  check.leaf_vars_.resize(num_leaves);
  check.static_cols_.resize(num_leaves);
  check.leaf_qfree_.resize(num_leaves, 0);
  check.domain_relevant_.resize(num_leaves);
  // Database-domain membership of each candidate is leaf-independent;
  // scan the domain once instead of once per leaf.
  std::vector<char> cand_in_db(check.cand_.size(), 0);
  for (size_t i = 0; i < check.cand_.size(); ++i) {
    cand_in_db[i] = db.domain().count(check.cand_[i]) > 0 ? 1 : 0;
  }
  for (size_t k = 0; k < num_leaves; ++k) {
    std::set<std::string> free = automaton->leaves[k]->FreeVariables();
    check.leaf_vars_[k].reserve(vars.size());
    for (size_t p = 0; p < vars.size(); ++p) {
      if (free.count(vars[p]) > 0) check.leaf_vars_[k].push_back(p);
    }
    check.leaf_qfree_[k] = automaton->leaves[k]->IsQuantifierFree() ? 1 : 0;
    if (check.leaf_vars_[k].empty() && !check.on_the_fly_) {
      Bitset& col = check.static_cols_[k];
      bool loaded = false;
      if (check.leaf_store_ != nullptr) {
        std::vector<uint64_t> set_bits;
        uint64_t upto = 0;
        if (check.leaf_store_->Lookup(
                LeafStoreKey(check.leaf_ctx_, check.leaf_fp_[k], "static"),
                &set_bits, &upto) &&
            upto == num_edges) {
          ColumnFromSetBits(set_bits, upto, &col);
          loaded = true;
          WSV_COUNT1("cache/leaf_cols_loaded");
          WSV_COUNT("cache/leaf_evals_saved", num_edges);
        }
      }
      if (!loaded) {
        [[maybe_unused]] const uint64_t eval_start = WSV_OBS_NOW();
        col.Resize(num_edges);
        for (size_t e = 0; e < num_edges; ++e) {
          TraceView view = check.graph_.View(static_cast<int>(e));
          WSV_ASSIGN_OR_RETURN(bool b,
                               EvalFoAtStep(automaton->leaves[k], view, db,
                                            *service, {}));
          col.Set(e, b);
        }
        WSV_COUNT("ltl/fo_leaf_evals", num_edges);
        WSV_HIST("ltl/leaf_col_eval_ns", WSV_OBS_NOW() - eval_start);
        if (check.leaf_store_ != nullptr) {
          check.leaf_store_->Publish(
              LeafStoreKey(check.leaf_ctx_, check.leaf_fp_[k], "static"),
              SetBitsOf(col, num_edges), num_edges);
          WSV_COUNT1("cache/leaf_cols_published");
        }
      }
      WSV_COUNT1("ltl/static_leaf_cols");
    }
    // A candidate value can influence this leaf through the active
    // domain only if neither the database nor the leaf's own literals
    // already provide it (every evaluation context contains both).
    const std::set<Value> lits = automaton->leaves[k]->Literals();
    std::vector<char>& relevant = check.domain_relevant_[k];
    relevant.assign(check.cand_.size(), 0);
    for (size_t i = 0; i < check.cand_.size(); ++i) {
      relevant[i] =
          (!cand_in_db[i] && lits.count(check.cand_[i]) == 0) ? 1 : 0;
    }
  }

  // Index the automaton for the product hot path: states grouped by
  // their packed leaf-truth label, and the successor relation as
  // per-state bitsets.
  const size_t num_states = automaton->size();
  Bitset label(num_leaves);
  for (size_t q = 0; q < num_states; ++q) {
    label.Resize(num_leaves);
    for (size_t k = 0; k < num_leaves; ++k) {
      if (automaton->states[q][k]) label.Set(k);
    }
    check.label_index_[label].push_back(static_cast<int>(q));
  }
  check.succ_bits_.resize(num_states);
  for (size_t q = 0; q < num_states; ++q) {
    check.succ_bits_[q].Resize(num_states);
    for (int s : automaton->succ[q]) check.succ_bits_[q].Set(s);
  }
  return check;
}

StatusOr<std::optional<IndexedCounterExample>>
LtlDatabaseCheck::CheckValuations(uint64_t begin, uint64_t end,
                                  const std::function<bool(uint64_t)>& stop,
                                  uint64_t* product_states) const {
  if (on_the_fly_) return CheckValuationsOtf(begin, end, stop, product_states);
  WSV_SPAN("verify/check_valuations");
  const std::vector<std::string>& vars = property_->universal_vars;
  const size_t num_leaves = automaton_->leaves.size();
  const size_t num_edges = graph_.edges.size();
  const uint64_t c = cand_.size();
  if (end > num_valuations_) end = num_valuations_;
  const bool collapse = ClassCollapseEnabled();

  // All sweep state is local to this call: concurrent sweeps of one
  // context never share mutable state.
  //
  // Truth columns are interned by content: every distinct column gets a
  // dense id, and the column store (a node-based map, so key addresses
  // are stable) owns the bits. Two valuations whose leaves resolve to
  // the same id tuple induce the *same* product — the equivalence
  // classes the sweep collapses.
  std::unordered_map<Bitset, uint32_t, BitsetHash> col_ids;
  std::vector<const Bitset*> col_by_id;
  auto intern_col = [&](const Bitset& col) -> uint32_t {
    auto it = col_ids.find(col);
    if (it == col_ids.end()) {
      it = col_ids.emplace(col, static_cast<uint32_t>(col_by_id.size()))
               .first;
      col_by_id.push_back(&it->first);
    }
    return it->second;
  };

  // Memoized column ids per dynamic leaf, keyed by the projection of
  // the valuation onto the leaf's free variables plus the sorted set of
  // domain-relevant candidate digits (the only other channel a closure
  // value can reach the leaf through).
  std::vector<std::unordered_map<std::vector<int32_t>, uint32_t,
                                 VectorKeyHash<int32_t>>>
      memo(num_leaves);

  // The emptiness verdict of each first-of-class product. For violating
  // classes the accepting lasso and its Dom(rho) are cached too: repeats
  // skip the product entirely but still re-run the valuation-specific
  // faithfulness check (spuriousness depends on the concrete bindings).
  struct ClassOutcome {
    bool violating = false;
    LassoRun run;
    std::set<Value> dom;
  };
  std::unordered_map<std::vector<uint32_t>, ClassOutcome,
                     VectorKeyHash<uint32_t>>
      classes;

  // Reusable per-sweep scratch: steady-state iterations (memoized
  // columns, repeated class) allocate nothing, and even first-of-class
  // product builds reuse the buffers' capacity.
  std::vector<int32_t> digits(vars.size(), 0);
  std::vector<uint32_t> cols(num_leaves, 0);  // column id per leaf
  std::vector<uint32_t> static_ids(num_leaves, 0);
  for (size_t k = 0; k < num_leaves; ++k) {
    if (leaf_vars_[k].empty()) static_ids[k] = intern_col(static_cols_[k]);
  }
  std::vector<int32_t> memo_key;
  memo_key.reserve(2 * vars.size() + 1);
  Bitset col_scratch;
  Bitset label_scratch;
  std::vector<const std::vector<int>*> matching(num_edges,
                                                &kNoMatchingStates);
  std::vector<std::pair<int, int>> verts;  // (edge, q)
  std::unordered_map<uint64_t, int> vert_index;
  std::vector<std::vector<int>> succ;
  std::vector<char> initial;
  std::vector<char> accepting;

  for (uint64_t i = begin; i < end; ++i) {
    // Sweeping ascending means the first faithful counterexample is the
    // range minimum, so we return the moment we find one; a stop only
    // ever fires while still empty-handed.
    if (stop && stop(i)) {
      WSV_COUNT1("ltl/valuation_sweeps_cancelled");
      return Status::Cancelled("valuation sweep cancelled at index " +
                               std::to_string(i));
    }
    WSV_COUNT1("ltl/valuations_checked");
    for (size_t k = 0; k < vars.size(); ++k) {
      digits[k] = static_cast<int32_t>((i / stride_[k]) % c);
    }
    // The full var -> value map is only needed off the fast path (FO
    // evaluation on a memo miss, counterexample assembly); everything
    // else works from the digits.
    Valuation valuation;
    auto ensure_valuation = [&] {
      if (valuation.empty() && !vars.empty()) {
        for (size_t k = 0; k < vars.size(); ++k) {
          valuation[vars[k]] = cand_[static_cast<size_t>(digits[k])];
        }
      }
    };

    // Resolve the truth-column id of every FO leaf under the valuation.
    for (size_t k = 0; k < num_leaves; ++k) {
      if (leaf_vars_[k].empty()) {
        cols[k] = static_ids[k];
        continue;
      }
      memo_key.clear();
      for (size_t p : leaf_vars_[k]) memo_key.push_back(digits[p]);
      memo_key.push_back(-1);  // separator: bindings | domain extension
      if (!leaf_qfree_[k]) {
        // The extension is the sorted deduped set of domain-relevant
        // digits; the handful of closure variables makes insertion
        // sort on the scratch tail the cheap way to canonicalize.
        // Quantifier-free leaves skip it: they never iterate the active
        // domain, so extending it cannot change their truth.
        const size_t ext_begin = memo_key.size();
        for (int32_t d : digits) {
          if (domain_relevant_[k][static_cast<size_t>(d)]) {
            memo_key.push_back(d);
          }
        }
        std::sort(memo_key.begin() + ext_begin, memo_key.end());
        memo_key.erase(
            std::unique(memo_key.begin() + ext_begin, memo_key.end()),
            memo_key.end());
      }
      auto it = memo[k].find(memo_key);
      if (it == memo[k].end()) {
        WSV_COUNT1("ltl/leaf_memo_misses");
        std::string store_key;
        bool loaded = false;
        if (leaf_store_ != nullptr) {
          store_key = LeafStoreKey(
              leaf_ctx_, leaf_fp_[k],
              LeafBinding(leaf_vars_[k], digits, cand_, domain_relevant_[k],
                          leaf_qfree_[k] != 0));
          std::vector<uint64_t> set_bits;
          uint64_t upto = 0;
          if (leaf_store_->Lookup(store_key, &set_bits, &upto) &&
              upto == num_edges) {
            ColumnFromSetBits(set_bits, upto, &col_scratch);
            loaded = true;
            WSV_COUNT1("cache/leaf_cols_loaded");
            WSV_COUNT("cache/leaf_evals_saved", num_edges);
          }
        }
        if (!loaded) {
          [[maybe_unused]] const uint64_t eval_start = WSV_OBS_NOW();
          ensure_valuation();
          col_scratch.Resize(num_edges);
          for (size_t e = 0; e < num_edges; ++e) {
            TraceView view = graph_.View(static_cast<int>(e));
            WSV_ASSIGN_OR_RETURN(bool b,
                                 EvalFoAtStep(automaton_->leaves[k], view,
                                              *database_, *service_,
                                              valuation));
            col_scratch.Set(e, b);
          }
          WSV_COUNT("ltl/fo_leaf_evals", num_edges);
          WSV_HIST("ltl/leaf_col_eval_ns", WSV_OBS_NOW() - eval_start);
          if (leaf_store_ != nullptr) {
            leaf_store_->Publish(store_key, SetBitsOf(col_scratch, num_edges),
                                 num_edges);
            WSV_COUNT1("cache/leaf_cols_published");
          }
        }
        it = memo[k].emplace(memo_key, intern_col(col_scratch)).first;
        WSV_COUNT1("ltl/leaf_memo_entries");
      } else {
        WSV_COUNT1("ltl/leaf_memo_hits");
      }
      cols[k] = it->second;
    }

    // Look up the valuation's equivalence class. A repeat skips the
    // product build and emptiness run; its cached outcome is handled
    // below exactly like a fresh one.
    ClassOutcome naive_outcome;
    ClassOutcome* outcome = nullptr;
    bool first_of_class = true;
    if (collapse) {
      auto [it, inserted] = classes.try_emplace(cols);
      outcome = &it->second;
      first_of_class = inserted;
      if (inserted) {
        WSV_COUNT1("ltl/valuation_classes");
      } else {
        WSV_COUNT1("ltl/class_hits");
        WSV_COUNT1("ltl/products_skipped");
      }
    } else {
      outcome = &naive_outcome;
    }

    if (first_of_class) {
      // First of its class (or naive mode): build the product — vertices
      // are (edge, automaton state) pairs where the state label matches
      // the edge's leaf truth — and run emptiness.
      WSV_SPAN("ltl/product");
      verts.clear();
      vert_index.clear();
      for (size_t e = 0; e < num_edges; ++e) {
        label_scratch.Resize(num_leaves);
        for (size_t k = 0; k < num_leaves; ++k) {
          if (col_by_id[cols[k]]->Test(e)) label_scratch.Set(k);
        }
        auto it = label_index_.find(label_scratch);
        matching[e] = it == label_index_.end() ? &kNoMatchingStates
                                               : &it->second;
      }
      auto vid = [&](int e, int q) {
        uint64_t key = PackInts(e, q);
        auto it = vert_index.find(key);
        if (it != vert_index.end()) return it->second;
        int id = static_cast<int>(verts.size());
        vert_index.emplace(key, id);
        verts.emplace_back(e, q);
        return id;
      };
      for (size_t e = 0; e < num_edges; ++e) {
        for (int q : *matching[e]) vid(static_cast<int>(e), q);
      }
      const size_t nv = verts.size();
      succ.resize(nv);
      for (size_t v = 0; v < nv; ++v) succ[v].clear();
      initial.assign(nv, 0);
      accepting.assign(nv, 0);
      const std::set<int>& acc_set = automaton_->accepting_sets.front();
      for (size_t v = 0; v < nv; ++v) {
        auto [e, q] = verts[v];
        if (graph_.edges[e].from == graph_.initial &&
            automaton_->initial[q]) {
          initial[v] = 1;
        }
        if (acc_set.count(q) > 0) accepting[v] = 1;
        const Bitset& q_succ = succ_bits_[q];
        for (int e2 : graph_.out_edges[graph_.edges[e].to]) {
          for (int q2 : *matching[e2]) {
            if (q_succ.Test(q2)) succ[v].push_back(vid(e2, q2));
          }
        }
      }
      if (product_states != nullptr) *product_states += nv;
      WSV_COUNT1("ltl/products_built");
      WSV_COUNT("ltl/product_states", nv);

      std::optional<Lasso> lasso =
          FindAcceptingLasso(succ, initial, accepting);
      if (lasso.has_value()) {
        // Reconstruct the run: prefix vertices then cycle[1..], looping
        // back to the prefix's last vertex.
        LassoRun run;
        for (int v : lasso->prefix) {
          run.steps.push_back(graph_.Materialize(verts[v].first));
        }
        run.loop_start = lasso->prefix.size() - 1;
        for (size_t j = 1; j < lasso->cycle.size(); ++j) {
          run.steps.push_back(
              graph_.Materialize(verts[lasso->cycle[j]].first));
        }
        outcome->violating = true;
        outcome->dom = LassoDomain(run, *database_);
        std::set<Value> lits = property_->formula->Literals();
        outcome->dom.insert(lits.begin(), lits.end());
        outcome->run = std::move(run);
      }
    }
    if (!outcome->violating) continue;

    if (abort_on_lasso_) {
      // Sliced first phase: an accepting lasso exists here, but its
      // faithfulness is not slicing-invariant — report the index and
      // let the caller re-check the full spec from it.
      WSV_COUNT1("slice/lasso_bailouts");
      IndexedCounterExample found;
      found.valuation_index = i;
      found.lasso_only = true;
      return std::optional<IndexedCounterExample>(std::move(found));
    }

    // Faithfulness check: the closure valuation must range over
    // Dom(rho); discard spurious witnesses using pool values that never
    // occur in the run or database. The product (and so the lasso) is
    // class-invariant, but spuriousness is not — every valuation of a
    // violating class takes this check individually.
    bool in_dom = true;
    for (size_t k = 0; k < vars.size(); ++k) {
      if (outcome->dom.count(cand_[static_cast<size_t>(digits[k])]) == 0) {
        in_dom = false;
      }
    }
    if (!in_dom) {
      WSV_COUNT1("ltl/spurious_witnesses");
      continue;
    }
    WSV_COUNT1("ltl/counterexamples_found");
    ensure_valuation();
    IndexedCounterExample found;
    found.valuation_index = i;
    found.cex.database = *database_;
    found.cex.run = outcome->run;
    found.cex.valuation = std::move(valuation);
    return std::optional<IndexedCounterExample>(std::move(found));
  }
  return std::optional<IndexedCounterExample>(std::nullopt);
}

StatusOr<std::optional<IndexedCounterExample>>
LtlDatabaseCheck::CheckValuationsOtf(
    uint64_t begin, uint64_t end, const std::function<bool(uint64_t)>& stop,
    uint64_t* product_states) const {
  WSV_SPAN("verify/check_valuations");
  const std::vector<std::string>& vars = property_->universal_vars;
  const size_t num_leaves = automaton_->leaves.size();
  const uint64_t c = cand_.size();
  if (end > num_valuations_) end = num_valuations_;
  const bool collapse = ClassCollapseEnabled();

  // One lazy graph per sweep call: configurations are stepped only when
  // a nested DFS reaches them, and everything this call expands stays
  // local to it — concurrent sweeps of one context never share mutable
  // state. The graph's cancellation hook additionally honors `stop` with
  // the index currently being swept, so a mid-search better-witness
  // signal aborts expansion too.
  uint64_t current_index = begin;
  ConfigGraphOptions gopts = graph_options_;
  const std::function<bool()> base_cancel = gopts.cancel_check;
  const std::function<bool(uint64_t)>& stop_ref = stop;
  gopts.cancel_check = [&base_cancel, &stop_ref, &current_index]() {
    if (base_cancel && base_cancel()) return true;
    return stop_ref && stop_ref(current_index);
  };
  LazyConfigGraph lazy(stepper_.get(), gopts);
  const ConfigGraph& graph = lazy.graph();

  // Fold this call's graph into the context-wide totals on every exit
  // path (counterexample, cancellation, error, clean finish).
  struct GraphAccounting {
    const LazyConfigGraph& lazy;
    OtfTotals* totals;
    ~GraphAccounting() {
      totals->nodes.fetch_add(lazy.graph().nodes.size(),
                              std::memory_order_relaxed);
      if (lazy.truncated()) {
        totals->truncated.store(true, std::memory_order_relaxed);
      }
    }
  } accounting{lazy, otf_totals_.get()};

  // Truth columns over the *prefix* of edges evaluated so far. Columns
  // are identified by address (the deque keeps them stable) and extended
  // on demand: a column's bits are meaningful on [0, upto).
  struct LeafCol {
    Bitset bits;
    size_t upto = 0;
    /// The binding the column is evaluated under. Only the projection
    /// onto the leaf's free variables (plus the domain extension — see
    /// the memo key) can influence the truth, so sharing the column
    /// across valuations with the same key is exact.
    Valuation val;
    /// Cross-request persistence (empty key = not persisted): the bound
    /// the column was loaded at, so only net-new prefix is republished.
    std::string store_key;
    size_t loaded_upto = 0;
  };
  std::deque<LeafCol> col_store;
  std::vector<LeafCol*> static_col(num_leaves, nullptr);
  std::vector<std::unordered_map<std::vector<int32_t>, LeafCol*,
                                 VectorKeyHash<int32_t>>>
      memo(num_leaves);

  // The column store is only sound on full serial sweeps: a chunked
  // parallel sweep expands a chunk-local lazy graph whose edge
  // discovery order depends on the chunk's valuation range, so its
  // column indices are not comparable across requests. (The eager
  // engine has no such restriction — its columns cover the one full
  // graph regardless of range.)
  const bool use_store = leaf_store_ != nullptr && begin == 0 &&
                         end >= num_valuations_ && !stop;
  auto attach_store = [&](size_t k, LeafCol* col,
                          const std::string& binding) {
    col->store_key = LeafStoreKey(leaf_ctx_, leaf_fp_[k], binding);
    std::vector<uint64_t> set_bits;
    uint64_t upto = 0;
    if (leaf_store_->Lookup(col->store_key, &set_bits, &upto) && upto > 0) {
      col->bits.GrowTo(static_cast<size_t>(upto));
      for (uint64_t e : set_bits) {
        if (e < upto) col->bits.Set(static_cast<size_t>(e));
      }
      col->upto = static_cast<size_t>(upto);
      col->loaded_upto = col->upto;
      WSV_COUNT1("cache/leaf_cols_loaded");
      WSV_COUNT("cache/leaf_evals_saved", upto);
    }
  };
  auto publish_cols = [&] {
    if (!use_store) return;
    for (LeafCol& col : col_store) {
      if (col.store_key.empty() || col.upto <= col.loaded_upto) continue;
      leaf_store_->Publish(col.store_key, SetBitsOf(col.bits, col.upto),
                           col.upto);
      col.loaded_upto = col.upto;
      WSV_COUNT1("cache/leaf_cols_published");
    }
  };

  auto extend_col = [&](size_t k, LeafCol* col, size_t n) -> Status {
    if (col->upto >= n) return Status::OK();
    [[maybe_unused]] const uint64_t eval_start = WSV_OBS_NOW();
    col->bits.GrowTo(n);
    for (size_t e = col->upto; e < n; ++e) {
      TraceView view = graph.View(static_cast<int>(e));
      WSV_ASSIGN_OR_RETURN(bool b,
                           EvalFoAtStep(automaton_->leaves[k], view,
                                        *database_, *service_, col->val));
      col->bits.Set(e, b);
    }
    WSV_COUNT("ltl/fo_leaf_evals", n - col->upto);
    WSV_HIST("ltl/leaf_col_eval_ns", WSV_OBS_NOW() - eval_start);
    col->upto = n;
    return Status::OK();
  };

  // Valuation equivalence classes, on-the-fly flavor: a class remembers
  // its leaf columns and how many edges existed right after its
  // representative's search (`edges_at_close`). The search only ever
  // consulted labels of edges below that bound, and per-node out-edge
  // lists don't depend on expansion timing — so a later valuation whose
  // columns agree with the class on [0, edges_at_close) would reproduce
  // the search verbatim and inherits its verdict (and lasso). At most
  // one class can match: classes are closed in sweep order, and a new
  // class differs from every earlier one within the earlier bound.
  struct OtfClass {
    std::vector<LeafCol*> cols;
    size_t edges_at_close = 0;
    bool violating = false;
    LassoRun run;
    std::set<Value> dom;
  };
  std::deque<OtfClass> classes;  // deque: outcome pointers stay stable

  // Automaton-side lookups hoisted out of the sweep.
  const std::set<int>& acc_set = automaton_->accepting_sets.front();
  std::vector<char> q_acc(automaton_->size(), 0);
  for (int q : acc_set) q_acc[static_cast<size_t>(q)] = 1;

  // Strategy resolution for this sweep (DESIGN.md §11). Phases whose
  // verdict depends on *which* lasso is found — the faithfulness-checked
  // sweep of a property with universal closure variables — pin the
  // canonical DFS with no pruning, so verdicts stay bit-identical across
  // strategies. Phases that only need lasso *existence* (ground
  // properties, where any lasso is already a faithful witness, and the
  // abort-on-lasso slice probe, which discards the lasso and returns an
  // index) are free to hunt with whatever strategy was selected.
  const bool lasso_choice_invariant = vars.empty() || abort_on_lasso_;
  SearchOptions search_opts = search_options_;
  if (!lasso_choice_invariant) search_opts.strategy = "dfs";
  WSV_ASSIGN_OR_RETURN(std::unique_ptr<SearchStrategy> strategy,
                       MakeSearchStrategy(search_opts));
  obs::GetCounter(std::string("search/strategy_") + strategy->name())
      .Increment();
  const bool prune = search_opts.prune_commuting && lasso_choice_invariant &&
                     !invisible_inputs_.empty();

  std::vector<int32_t> digits(vars.size(), 0);
  std::vector<LeafCol*> leaf_cols(num_leaves, nullptr);
  std::vector<int32_t> memo_key;
  memo_key.reserve(2 * vars.size() + 1);
  Bitset label_scratch;

  for (uint64_t i = begin; i < end; ++i) {
    current_index = i;
    if (stop && stop(i)) {
      WSV_COUNT1("ltl/valuation_sweeps_cancelled");
      return Status::Cancelled("valuation sweep cancelled at index " +
                               std::to_string(i));
    }
    WSV_COUNT1("ltl/valuations_checked");
    for (size_t k = 0; k < vars.size(); ++k) {
      digits[k] = static_cast<int32_t>((i / stride_[k]) % c);
    }
    Valuation valuation;
    auto ensure_valuation = [&] {
      if (valuation.empty() && !vars.empty()) {
        for (size_t k = 0; k < vars.size(); ++k) {
          valuation[vars[k]] = cand_[static_cast<size_t>(digits[k])];
        }
      }
    };

    // Resolve each leaf's column (same memo discipline as the eager
    // sweep; only the representation changed from eager bits to a lazily
    // extended prefix).
    for (size_t k = 0; k < num_leaves; ++k) {
      if (leaf_vars_[k].empty()) {
        if (static_col[k] == nullptr) {
          col_store.emplace_back();
          static_col[k] = &col_store.back();
          if (use_store) attach_store(k, static_col[k], "static");
          WSV_COUNT1("ltl/static_leaf_cols");
        }
        leaf_cols[k] = static_col[k];
        continue;
      }
      memo_key.clear();
      for (size_t p : leaf_vars_[k]) memo_key.push_back(digits[p]);
      memo_key.push_back(-1);  // separator: bindings | domain extension
      if (!leaf_qfree_[k]) {
        const size_t ext_begin = memo_key.size();
        for (int32_t d : digits) {
          if (domain_relevant_[k][static_cast<size_t>(d)]) {
            memo_key.push_back(d);
          }
        }
        std::sort(memo_key.begin() + ext_begin, memo_key.end());
        memo_key.erase(
            std::unique(memo_key.begin() + ext_begin, memo_key.end()),
            memo_key.end());
      }
      auto it = memo[k].find(memo_key);
      if (it == memo[k].end()) {
        WSV_COUNT1("ltl/leaf_memo_misses");
        ensure_valuation();
        col_store.emplace_back();
        col_store.back().val = valuation;
        if (use_store) {
          attach_store(k, &col_store.back(),
                       LeafBinding(leaf_vars_[k], digits, cand_,
                                   domain_relevant_[k],
                                   leaf_qfree_[k] != 0));
        }
        it = memo[k].emplace(memo_key, &col_store.back()).first;
        WSV_COUNT1("ltl/leaf_memo_entries");
      } else {
        WSV_COUNT1("ltl/leaf_memo_hits");
      }
      leaf_cols[k] = it->second;
    }

    // Class lookup by column prefix (pointer equality short-circuits the
    // common case of a shared memoized column).
    OtfClass* outcome = nullptr;
    if (collapse) {
      for (OtfClass& cls : classes) {
        bool same = true;
        for (size_t k = 0; k < num_leaves && same; ++k) {
          if (cls.cols[k] == leaf_cols[k]) continue;
          WSV_RETURN_IF_ERROR(
              extend_col(k, cls.cols[k], cls.edges_at_close));
          WSV_RETURN_IF_ERROR(
              extend_col(k, leaf_cols[k], cls.edges_at_close));
          if (!cls.cols[k]->bits.PrefixEquals(leaf_cols[k]->bits,
                                              cls.edges_at_close)) {
            same = false;
          }
        }
        if (same) {
          outcome = &cls;
          break;
        }
      }
    }

    OtfClass local;  // the outcome buffer in naive (no-collapse) mode
    if (outcome != nullptr) {
      WSV_COUNT1("ltl/class_hits");
      WSV_COUNT1("ltl/products_skipped");
    } else {
      if (collapse) WSV_COUNT1("ltl/valuation_classes");
      WSV_SPAN("ltl/product");

      // The on-the-fly product search. Vertices (edge, automaton state)
      // are interned as the nested DFS reaches them; asking for a
      // vertex's successors is what expands the configuration graph.
      std::vector<std::pair<int, int>> verts;
      std::unordered_map<uint64_t, int> vert_index;
      std::deque<std::vector<int>> vsucc;  // stable addresses for the DFS
      std::vector<char> vsucc_done;
      std::vector<const std::vector<int>*> matching;

      auto vid = [&](int e, int q) {
        uint64_t key = PackInts(e, q);
        auto it = vert_index.find(key);
        if (it != vert_index.end()) return it->second;
        int id = static_cast<int>(verts.size());
        vert_index.emplace(key, id);
        verts.emplace_back(e, q);
        return id;
      };

      // The automaton states whose label matches edge e's leaf truth.
      // Requires every leaf column to cover e; cached per search.
      auto edge_matching =
          [&](size_t e) -> StatusOr<const std::vector<int>*> {
        if (e < matching.size() && matching[e] != nullptr) {
          return matching[e];
        }
        if (matching.size() <= e) matching.resize(e + 1, nullptr);
        for (size_t k = 0; k < num_leaves; ++k) {
          WSV_RETURN_IF_ERROR(extend_col(k, leaf_cols[k], e + 1));
        }
        label_scratch.Resize(num_leaves);
        for (size_t k = 0; k < num_leaves; ++k) {
          if (leaf_cols[k]->bits.Test(e)) label_scratch.Set(k);
        }
        auto it = label_index_.find(label_scratch);
        matching[e] =
            it == label_index_.end() ? &kNoMatchingStates : &it->second;
        return matching[e];
      };

      auto ensure_slot = [&](size_t v) {
        while (vsucc.size() <= v) {
          vsucc.emplace_back();
          vsucc_done.push_back(0);
        }
      };

      // Commuting-input pruning: among a node's out-edges, keep one
      // representative per visible-observation key (EdgeVisibleKey).
      // Pruned edges differ only in invisible input relations' tuples,
      // so they reach the same node with the same leaf labels — every
      // lasso through a pruned edge maps to one through its
      // representative. Node-stable map: callers hold pointers into the
      // mapped vectors. Only consulted after the node is expanded, when
      // its out-edge list is final.
      std::unordered_map<int, std::vector<int>> kept_edges;
      auto out_edges_of = [&](int node) -> const std::vector<int>* {
        const std::vector<int>& all =
            graph.out_edges[static_cast<size_t>(node)];
        if (!prune) return &all;
        auto it = kept_edges.find(node);
        if (it != kept_edges.end()) return &it->second;
        std::vector<int> kept;
        std::set<std::string> seen_keys;
        uint64_t dropped = 0;
        for (int e2 : all) {
          if (seen_keys
                  .insert(EdgeVisibleKey(graph.edges[static_cast<size_t>(e2)],
                                         invisible_inputs_))
                  .second) {
            kept.push_back(e2);
          } else {
            ++dropped;
          }
        }
        if (dropped > 0) WSV_COUNT("search/pruned_successors", dropped);
        return &kept_edges.emplace(node, std::move(kept)).first->second;
      };

      auto succ_fn = [&](int v) -> StatusOr<const std::vector<int>*> {
        ensure_slot(static_cast<size_t>(v));
        if (vsucc_done[static_cast<size_t>(v)]) {
          return &vsucc[static_cast<size_t>(v)];
        }
        const auto [e, q] = verts[static_cast<size_t>(v)];
        const int to = graph.edges[static_cast<size_t>(e)].to;
        // An unexpanded node (budget hit) is a dead end — exactly the
        // truncated-prefix semantics of the eager build.
        WSV_ASSIGN_OR_RETURN(bool expanded, lazy.EnsureExpanded(to));
        (void)expanded;
        std::vector<int> out;
        const Bitset& q_succ = succ_bits_[q];
        for (int e2 : *out_edges_of(to)) {
          WSV_ASSIGN_OR_RETURN(const std::vector<int>* m,
                               edge_matching(static_cast<size_t>(e2)));
          for (int q2 : *m) {
            if (q_succ.Test(q2)) out.push_back(vid(e2, q2));
          }
        }
        vsucc[static_cast<size_t>(v)] = std::move(out);
        vsucc_done[static_cast<size_t>(v)] = 1;
        return &vsucc[static_cast<size_t>(v)];
      };

      // Initial vertices: the initial configuration's out-edges paired
      // with initial automaton states whose label matches.
      auto init_or = lazy.EnsureExpanded(lazy.initial());
      std::vector<int> initial_verts;
      Status search_status = init_or.status();
      std::optional<Lasso> lasso;
      SearchStats search_stats;
      if (search_status.ok()) {
        for (int e : *out_edges_of(lazy.initial())) {
          auto m_or = edge_matching(static_cast<size_t>(e));
          if (!m_or.ok()) {
            search_status = m_or.status();
            break;
          }
          for (int q : **m_or) {
            if (automaton_->initial[static_cast<size_t>(q)]) {
              initial_verts.push_back(vid(e, q));
            }
          }
        }
      }
      if (search_status.ok()) {
        SearchProblem problem;
        problem.initial = std::move(initial_verts);
        problem.succ = succ_fn;
        problem.accepting = [&](int v) {
          return q_acc[static_cast<size_t>(
                     verts[static_cast<size_t>(v)].second)] != 0;
        };
        problem.stop = [&]() { return stop && stop(current_index); };
        if (!accept_dist_.empty()) {
          // Admissible product heuristic: the automaton component's
          // distance to the accepting set lower-bounds any run's
          // remaining steps; kInfiniteDistance states prune.
          problem.evaluate = [&](int v) {
            return accept_dist_[static_cast<size_t>(
                verts[static_cast<size_t>(v)].second)];
          };
        }
        auto lasso_or = strategy->FindLasso(problem, &search_stats);
        if (lasso_or.ok()) {
          lasso = std::move(*lasso_or);
        } else {
          search_status = lasso_or.status();
        }
      }
      if (!search_status.ok()) {
        if (search_status.code() == StatusCode::kCancelled) {
          WSV_COUNT1("ltl/valuation_sweeps_cancelled");
        }
        return search_status;
      }

      const size_t nv = verts.size();
      if (product_states != nullptr) *product_states += nv;
      WSV_COUNT1("ltl/products_built");
      WSV_COUNT("ltl/product_states", nv);
      WSV_COUNT("ltl/otf_states_created", nv);
      WSV_HIST("ltl/peak_product_states", nv);
      WSV_HIST("ltl/otf_dfs_depth", search_stats.max_depth);
      if (search_stats.heuristic_evals > 0) {
        WSV_COUNT("search/heuristic_evals", search_stats.heuristic_evals);
      }

      if (lasso.has_value()) {
        WSV_COUNT1("ltl/otf_early_exits");
        LassoRun run;
        for (int v : lasso->prefix) {
          run.steps.push_back(
              graph.Materialize(verts[static_cast<size_t>(v)].first));
        }
        run.loop_start = lasso->prefix.size() - 1;
        for (size_t j = 1; j < lasso->cycle.size(); ++j) {
          run.steps.push_back(graph.Materialize(
              verts[static_cast<size_t>(lasso->cycle[j])].first));
        }
        local.violating = true;
        local.dom = LassoDomain(run, *database_);
        std::set<Value> lits = property_->formula->Literals();
        local.dom.insert(lits.begin(), lits.end());
        local.run = std::move(run);
      }
      if (collapse) {
        local.cols = leaf_cols;
        local.edges_at_close = graph.edges.size();
        classes.push_back(std::move(local));
        outcome = &classes.back();
      } else {
        outcome = &local;
      }
    }

    if (!outcome->violating) continue;

    if (abort_on_lasso_) {
      // Sliced first phase (see the eager sweep): lasso existence is
      // slicing-invariant, faithfulness is not — hand the index back.
      WSV_COUNT1("slice/lasso_bailouts");
      IndexedCounterExample found;
      found.valuation_index = i;
      found.lasso_only = true;
      publish_cols();
      return std::optional<IndexedCounterExample>(std::move(found));
    }

    // Faithfulness: identical to the eager sweep — the valuation must
    // range over Dom(rho) ∪ property literals or the witness is spurious
    // for this particular binding.
    bool in_dom = true;
    for (size_t k = 0; k < vars.size(); ++k) {
      if (outcome->dom.count(cand_[static_cast<size_t>(digits[k])]) == 0) {
        in_dom = false;
      }
    }
    if (!in_dom) {
      WSV_COUNT1("ltl/spurious_witnesses");
      continue;
    }
    WSV_COUNT1("ltl/counterexamples_found");
    ensure_valuation();
    IndexedCounterExample found;
    found.valuation_index = i;
    found.cex.database = *database_;
    found.cex.run = outcome->run;
    found.cex.valuation = std::move(valuation);
    publish_cols();
    return std::optional<IndexedCounterExample>(std::move(found));
  }
  publish_cols();
  return std::optional<IndexedCounterExample>(std::nullopt);
}

StatusOr<bool> LtlVerifier::CheckDatabase(const TemporalProperty& property,
                                          const BuchiAutomaton& automaton,
                                          const Instance& database,
                                          const WebService* sliced_service,
                                          LtlVerifyResult* result) {
  uint64_t sweep_begin = 0;
  if (sliced_service != nullptr) {
    // Phase 1: sweep the sliced spec in abort-on-lasso mode. A range
    // with no accepting lasso on the sliced graph has none on the full
    // graph either (the sliced graph is its quotient), so a lasso-free
    // sweep decides HOLDS for this database outright; otherwise the
    // full-spec sweep resumes at the first lasso index.
    LtlVerifyOptions sliced_opts =
        SlicedCheckOptions(options_, *service_, property, database);
    WSV_ASSIGN_OR_RETURN(
        LtlDatabaseCheck sliced_check,
        LtlDatabaseCheck::Create(sliced_service, sliced_opts, &property,
                                 &automaton, database));
    uint64_t sliced_product_states = 0;
    auto marker =
        sliced_check.CheckValuations(0, sliced_check.NumValuations(), nullptr,
                                     &sliced_product_states);
    if (sliced_check.truncated()) result->complete_within_bounds = false;
    result->total_graph_nodes += sliced_check.graph_nodes();
    result->total_product_states += sliced_product_states;
    if (!marker.ok()) return marker.status();
    if (!marker->has_value()) return false;  // no lasso anywhere: holds
    sweep_begin = (**marker).valuation_index;
  }

  WSV_ASSIGN_OR_RETURN(
      LtlDatabaseCheck check,
      LtlDatabaseCheck::Create(service_, options_, &property, &automaton,
                               database));

  uint64_t product_states = 0;
  auto found = check.CheckValuations(sweep_begin, check.NumValuations(),
                                     nullptr, &product_states);
  // Graph accounting after the sweep: in on-the-fly mode the graph is
  // expanded (and possibly truncated) by the sweep itself.
  if (check.truncated()) result->complete_within_bounds = false;
  result->total_graph_nodes += check.graph_nodes();
  result->total_product_states += product_states;
  if (!found.ok()) return found.status();
  if (found->has_value()) {
    result->holds = false;
    result->counterexample = std::move((**found).cex);
    return true;
  }
  return false;
}

StatusOr<LtlVerifyResult> LtlVerifier::VerifyOnDatabase(
    const TemporalProperty& property, const Instance& database) {
  WSV_ASSIGN_OR_RETURN(
      BuchiAutomaton automaton,
      BuildNegatedAutomaton(*service_, property,
                            options_.require_input_bounded));
  std::unique_ptr<WebService> sliced;
  if (analysis::SliceEnabled() && options_.enable_slice) {
    sliced = analysis::SlicePropertyCone(*service_, property).service;
  }
  LtlVerifyResult result;
  result.databases_checked = 1;
  WSV_RETURN_IF_ERROR(
      CheckDatabase(property, automaton, database, sliced.get(), &result)
          .status());
  return result;
}

StatusOr<LtlVerifyResult> LtlVerifier::Verify(
    const TemporalProperty& property) {
  WSV_ASSIGN_OR_RETURN(
      BuchiAutomaton automaton,
      BuildNegatedAutomaton(*service_, property,
                            options_.require_input_bounded));
  std::unique_ptr<WebService> sliced;
  if (analysis::SliceEnabled() && options_.enable_slice) {
    sliced = analysis::SlicePropertyCone(*service_, property).service;
  }

  DbEnumOptions db_options = options_.db;
  for (Value v : property.formula->Literals()) {
    db_options.base_values.push_back(v);
  }

  LtlVerifyResult result;
  WSV_ASSIGN_OR_RETURN(
      bool stopped,
      EnumerateDatabases(
          *service_, db_options,
          [&](const Instance& db) -> StatusOr<bool> {
            ++result.databases_checked;
            return CheckDatabase(property, automaton, db, sliced.get(),
                                 &result);
          }));
  (void)stopped;
  return result;
}

}  // namespace wsv
