#include "verify/ltl_verifier.h"

#include <set>
#include <unordered_map>
#include <utility>

#include "automata/emptiness.h"
#include "automata/ltl_to_buchi.h"
#include "common/hash.h"
#include "fo/input_bounded.h"
#include "obs/trace.h"
#include "ws/classify.h"

namespace wsv {

std::string CounterExample::ToString() const {
  std::string out = "database:\n" + database.ToString();
  if (!valuation.empty()) {
    out += "valuation:";
    for (const auto& [var, v] : valuation) {
      out += " " + var + "=" + v.name();
    }
    out += "\n";
  }
  out += "violating run (lasso):\n" + run.ToString();
  return out;
}

LtlVerifier::LtlVerifier(const WebService* service, LtlVerifyOptions options)
    : service_(service), options_(std::move(options)) {}

namespace {

// All values occurring anywhere in a lasso run or the database — Dom(rho)
// for the closure-variable range check.
std::set<Value> LassoDomain(const LassoRun& run, const Instance& database) {
  std::set<Value> dom(database.domain().begin(), database.domain().end());
  for (const TraceStep& step : run.steps) {
    for (const Instance* inst :
         {&step.state, &step.inputs, &step.prev_inputs, &step.actions}) {
      dom.insert(inst->domain().begin(), inst->domain().end());
    }
    for (const auto& [name, v] : step.kappa) dom.insert(v);
  }
  return dom;
}

// Hash for the FO-leaf memo keys (projected valuation digits).
struct DigitsKeyHash {
  size_t operator()(const std::vector<int32_t>& key) const {
    return HashRange(key.begin(), key.end());
  }
};

}  // namespace

StatusOr<BuchiAutomaton> BuildNegatedAutomaton(
    const WebService& service, const TemporalProperty& property,
    bool require_input_bounded) {
  if (!property.formula->IsLtl()) {
    return Status::InvalidArgument(
        "property contains path quantifiers; use the branching-time "
        "checkers");
  }
  if (require_input_bounded) {
    WSV_RETURN_IF_ERROR(CheckInputBoundedService(service));
    WSV_RETURN_IF_ERROR(CheckInputBoundedProperty(property, service.vocab()));
  }
  WSV_SPAN("automata/build_negated");
  TFormulaPtr negated =
      ToNegationNormalForm(*TFormula::Not(property.formula));
  WSV_ASSIGN_OR_RETURN(BuchiAutomaton gba, LtlToBuchi(*negated));
  BuchiAutomaton automaton = gba.Degeneralize();
  WSV_COUNT("automata/buchi_states", automaton.size());
  WSV_COUNT("automata/fo_leaves", automaton.leaves.size());
  return automaton;
}

StatusOr<LtlDatabaseCheck> LtlDatabaseCheck::Create(
    const WebService* service, const LtlVerifyOptions& options,
    const TemporalProperty* property, const BuchiAutomaton* automaton,
    const Instance& database) {
  WSV_SPAN("verify/db_check_create");
  WSV_COUNT1("verify/databases");
  LtlDatabaseCheck check;
  check.service_ = service;
  check.property_ = property;
  check.automaton_ = automaton;
  check.database_ = std::make_unique<Instance>(database);
  const Instance& db = *check.database_;

  Stepper stepper(service, check.database_.get());
  // Track only the Prev_I relations the rules or the property observe.
  {
    std::set<std::string> tracked = Stepper::PrevRelationsInRules(*service);
    for (const FormulaPtr& leaf : property->formula->FoLeaves()) {
      for (const Atom& atom : leaf->Atoms()) {
        if (atom.prev) tracked.insert(atom.relation);
      }
    }
    stepper.SetTrackedPrev(std::move(tracked));
  }

  // Candidate values for input constants: the database's active domain,
  // the rule/property literals, plus fresh "typed by the user" values.
  ConfigGraphOptions graph_options = options.graph;
  if (graph_options.constant_pool.empty()) {
    std::set<Value> pool(db.domain().begin(), db.domain().end());
    for (Value v : ServiceRuleLiterals(*service)) pool.insert(v);
    for (Value v : property->formula->Literals()) pool.insert(v);
    for (int i = 0; i < options.extra_constant_values; ++i) {
      pool.insert(Value::Intern("u" + std::to_string(i)));
    }
    graph_options.constant_pool.assign(pool.begin(), pool.end());
  }

  WSV_ASSIGN_OR_RETURN(check.graph_,
                       BuildConfigGraph(stepper, graph_options));

  // Valuation candidates for the universal closure variables: everything
  // that can occur in a run's active domain — the database, rule and
  // property literals, and the input-constant pool — unless the caller
  // restricted them.
  if (!options.closure_candidates.empty()) {
    check.cand_ = options.closure_candidates;
  } else {
    std::set<Value> candidates(graph_options.constant_pool.begin(),
                               graph_options.constant_pool.end());
    candidates.insert(db.domain().begin(), db.domain().end());
    for (Value v : ServiceRuleLiterals(*service)) candidates.insert(v);
    for (Value v : property->formula->Literals()) candidates.insert(v);
    check.cand_.assign(candidates.begin(), candidates.end());
  }

  const std::vector<std::string>& vars = property->universal_vars;
  const uint64_t c = check.cand_.size();
  check.stride_.assign(vars.size(), 1);
  if (vars.empty()) {
    check.num_valuations_ = 1;
  } else if (c == 0) {
    check.num_valuations_ = 0;  // vacuously no violating valuation
  } else {
    uint64_t n = 1;
    for (size_t k = 0; k < vars.size(); ++k) {
      check.stride_[k] = n;
      if (n > UINT64_MAX / c) {
        return Status::ResourceExhausted(
            "closure valuation space overflows a 64-bit index; restrict "
            "closure_candidates");
      }
      n *= c;
    }
    check.num_valuations_ = n;
  }

  // Classify leaves by the closure variables they mention, and evaluate
  // the valuation-independent ones once per database.
  const size_t num_leaves = automaton->leaves.size();
  check.leaf_vars_.resize(num_leaves);
  check.static_cols_.resize(num_leaves);
  check.domain_relevant_.resize(num_leaves);
  for (size_t k = 0; k < num_leaves; ++k) {
    std::set<std::string> free = automaton->leaves[k]->FreeVariables();
    for (size_t p = 0; p < vars.size(); ++p) {
      if (free.count(vars[p]) > 0) check.leaf_vars_[k].push_back(p);
    }
    if (check.leaf_vars_[k].empty()) {
      [[maybe_unused]] const uint64_t eval_start = WSV_OBS_NOW();
      std::vector<char>& col = check.static_cols_[k];
      col.assign(check.graph_.edges.size(), 0);
      for (size_t e = 0; e < check.graph_.edges.size(); ++e) {
        TraceView view = check.graph_.View(static_cast<int>(e));
        WSV_ASSIGN_OR_RETURN(bool b,
                             EvalFoAtStep(*automaton->leaves[k], view, db,
                                          *service, {}));
        col[e] = b ? 1 : 0;
      }
      WSV_COUNT("ltl/fo_leaf_evals", check.graph_.edges.size());
      WSV_COUNT1("ltl/static_leaf_cols");
      WSV_HIST("ltl/leaf_col_eval_ns", WSV_OBS_NOW() - eval_start);
    }
    // A candidate value can influence this leaf through the active
    // domain only if neither the database nor the leaf's own literals
    // already provide it (every evaluation context contains both).
    std::set<Value> lits = automaton->leaves[k]->Literals();
    std::vector<char>& relevant = check.domain_relevant_[k];
    relevant.assign(check.cand_.size(), 0);
    for (size_t i = 0; i < check.cand_.size(); ++i) {
      Value v = check.cand_[i];
      relevant[i] = (db.domain().count(v) == 0 && lits.count(v) == 0) ? 1 : 0;
    }
  }
  return check;
}

StatusOr<std::optional<IndexedCounterExample>>
LtlDatabaseCheck::CheckValuations(uint64_t begin, uint64_t end,
                                  const std::function<bool(uint64_t)>& stop,
                                  uint64_t* product_states) const {
  WSV_SPAN("verify/check_valuations");
  const std::vector<std::string>& vars = property_->universal_vars;
  const size_t num_leaves = automaton_->leaves.size();
  const size_t num_edges = graph_.edges.size();
  const uint64_t c = cand_.size();
  if (end > num_valuations_) end = num_valuations_;

  // Memoized truth columns per dynamic leaf, keyed by the projection of
  // the valuation onto the leaf's free variables plus the sorted set of
  // domain-relevant candidate digits (the only other channel a closure
  // value can reach the leaf through). Local to this call: concurrent
  // sweeps of one context never share mutable state.
  std::vector<
      std::unordered_map<std::vector<int32_t>, std::vector<char>,
                         DigitsKeyHash>>
      memo(num_leaves);

  std::vector<int32_t> digits(vars.size(), 0);
  std::vector<const std::vector<char>*> cols(num_leaves, nullptr);

  for (uint64_t i = begin; i < end; ++i) {
    // Sweeping ascending means the first faithful counterexample is the
    // range minimum, so we return the moment we find one; a stop only
    // ever fires while still empty-handed.
    if (stop && stop(i)) {
      WSV_COUNT1("ltl/valuation_sweeps_cancelled");
      return Status::Cancelled("valuation sweep cancelled at index " +
                               std::to_string(i));
    }
    WSV_COUNT1("ltl/valuations_checked");
    Valuation valuation;
    for (size_t k = 0; k < vars.size(); ++k) {
      digits[k] = static_cast<int32_t>((i / stride_[k]) % c);
      valuation[vars[k]] = cand_[static_cast<size_t>(digits[k])];
    }

    // Resolve the truth column of every FO leaf under `valuation`.
    for (size_t k = 0; k < num_leaves; ++k) {
      if (leaf_vars_[k].empty()) {
        cols[k] = &static_cols_[k];
        continue;
      }
      std::vector<int32_t> key;
      key.reserve(leaf_vars_[k].size() + 1 + digits.size());
      for (size_t p : leaf_vars_[k]) key.push_back(digits[p]);
      key.push_back(-1);  // separator: bindings | domain extension
      {
        std::set<int32_t> extension;
        for (int32_t d : digits) {
          if (domain_relevant_[k][static_cast<size_t>(d)]) {
            extension.insert(d);
          }
        }
        key.insert(key.end(), extension.begin(), extension.end());
      }
      auto it = memo[k].find(key);
      if (it == memo[k].end()) {
        WSV_COUNT1("ltl/leaf_memo_misses");
        [[maybe_unused]] const uint64_t eval_start = WSV_OBS_NOW();
        std::vector<char> col(num_edges, 0);
        for (size_t e = 0; e < num_edges; ++e) {
          TraceView view = graph_.View(static_cast<int>(e));
          WSV_ASSIGN_OR_RETURN(bool b,
                               EvalFoAtStep(*automaton_->leaves[k], view,
                                            *database_, *service_,
                                            valuation));
          col[e] = b ? 1 : 0;
        }
        WSV_COUNT("ltl/fo_leaf_evals", num_edges);
        WSV_HIST("ltl/leaf_col_eval_ns", WSV_OBS_NOW() - eval_start);
        it = memo[k].emplace(std::move(key), std::move(col)).first;
        WSV_COUNT1("ltl/leaf_memo_entries");
      } else {
        WSV_COUNT1("ltl/leaf_memo_hits");
      }
      cols[k] = &it->second;
    }

    // Label each edge with the truth of every FO leaf under `valuation`.
    std::vector<std::vector<char>> edge_truth(num_edges);
    for (size_t e = 0; e < num_edges; ++e) {
      edge_truth[e].resize(num_leaves);
      for (size_t k = 0; k < num_leaves; ++k) {
        edge_truth[e][k] = (*cols[k])[e];
      }
    }

    // Product: vertices are (edge, automaton state) pairs where the state
    // label matches the edge's leaf truth.
    std::vector<std::vector<int>> matching(num_edges);
    for (size_t e = 0; e < num_edges; ++e) {
      for (size_t q = 0; q < automaton_->size(); ++q) {
        if (automaton_->states[q] == edge_truth[e]) {
          matching[e].push_back(static_cast<int>(q));
        }
      }
    }
    std::vector<std::pair<int, int>> verts;  // (edge, q)
    std::unordered_map<uint64_t, int> vert_index;
    auto vid = [&](int e, int q) {
      uint64_t key = PackInts(e, q);
      auto it = vert_index.find(key);
      if (it != vert_index.end()) return it->second;
      int id = static_cast<int>(verts.size());
      vert_index.emplace(key, id);
      verts.emplace_back(e, q);
      return id;
    };
    for (size_t e = 0; e < num_edges; ++e) {
      for (int q : matching[e]) vid(static_cast<int>(e), q);
    }
    std::vector<std::vector<int>> succ(verts.size());
    std::vector<char> initial(verts.size(), 0);
    std::vector<char> accepting(verts.size(), 0);
    const std::set<int>& acc_set = automaton_->accepting_sets.front();
    for (size_t v = 0; v < verts.size(); ++v) {
      auto [e, q] = verts[v];
      if (graph_.edges[e].from == graph_.initial &&
          automaton_->initial[q]) {
        initial[v] = 1;
      }
      if (acc_set.count(q) > 0) accepting[v] = 1;
      for (int e2 : graph_.out_edges[graph_.edges[e].to]) {
        for (int q2 : matching[e2]) {
          bool q2_succ = false;
          for (int s : automaton_->succ[q]) {
            if (s == q2) {
              q2_succ = true;
              break;
            }
          }
          if (q2_succ) succ[v].push_back(vid(e2, q2));
        }
      }
    }
    if (product_states != nullptr) *product_states += verts.size();
    WSV_COUNT1("ltl/products_built");
    WSV_COUNT("ltl/product_states", verts.size());

    std::optional<Lasso> lasso = FindAcceptingLasso(succ, initial, accepting);
    if (lasso.has_value()) {
      // Reconstruct the run: prefix vertices then cycle[1..], looping back
      // to the prefix's last vertex.
      LassoRun run;
      for (int v : lasso->prefix) {
        run.steps.push_back(graph_.Materialize(verts[v].first));
      }
      run.loop_start = lasso->prefix.size() - 1;
      for (size_t j = 1; j < lasso->cycle.size(); ++j) {
        run.steps.push_back(graph_.Materialize(verts[lasso->cycle[j]].first));
      }
      // Faithfulness check: the closure valuation must range over
      // Dom(rho); discard spurious witnesses using pool values that never
      // occur in the run or database.
      std::set<Value> dom = LassoDomain(run, *database_);
      std::set<Value> lits = property_->formula->Literals();
      dom.insert(lits.begin(), lits.end());
      bool in_dom = true;
      for (const auto& [var, v] : valuation) {
        if (dom.count(v) == 0) in_dom = false;
      }
      if (!in_dom) {
        WSV_COUNT1("ltl/spurious_witnesses");
      } else {
        WSV_COUNT1("ltl/counterexamples_found");
        IndexedCounterExample found;
        found.valuation_index = i;
        found.cex.database = *database_;
        found.cex.run = std::move(run);
        found.cex.valuation = std::move(valuation);
        return std::optional<IndexedCounterExample>(std::move(found));
      }
    }
  }
  return std::optional<IndexedCounterExample>(std::nullopt);
}

StatusOr<bool> LtlVerifier::CheckDatabase(const TemporalProperty& property,
                                          const BuchiAutomaton& automaton,
                                          const Instance& database,
                                          LtlVerifyResult* result) {
  WSV_ASSIGN_OR_RETURN(
      LtlDatabaseCheck check,
      LtlDatabaseCheck::Create(service_, options_, &property, &automaton,
                               database));
  if (check.truncated()) result->complete_within_bounds = false;
  result->total_graph_nodes += check.graph_nodes();

  uint64_t product_states = 0;
  auto found = check.CheckValuations(0, check.NumValuations(), nullptr,
                                     &product_states);
  result->total_product_states += product_states;
  if (!found.ok()) return found.status();
  if (found->has_value()) {
    result->holds = false;
    result->counterexample = std::move((**found).cex);
    return true;
  }
  return false;
}

StatusOr<LtlVerifyResult> LtlVerifier::VerifyOnDatabase(
    const TemporalProperty& property, const Instance& database) {
  WSV_ASSIGN_OR_RETURN(
      BuchiAutomaton automaton,
      BuildNegatedAutomaton(*service_, property,
                            options_.require_input_bounded));
  LtlVerifyResult result;
  result.databases_checked = 1;
  WSV_RETURN_IF_ERROR(
      CheckDatabase(property, automaton, database, &result).status());
  return result;
}

StatusOr<LtlVerifyResult> LtlVerifier::Verify(
    const TemporalProperty& property) {
  WSV_ASSIGN_OR_RETURN(
      BuchiAutomaton automaton,
      BuildNegatedAutomaton(*service_, property,
                            options_.require_input_bounded));

  DbEnumOptions db_options = options_.db;
  for (Value v : property.formula->Literals()) {
    db_options.base_values.push_back(v);
  }

  LtlVerifyResult result;
  WSV_ASSIGN_OR_RETURN(
      bool stopped,
      EnumerateDatabases(
          *service_, db_options,
          [&](const Instance& db) -> StatusOr<bool> {
            ++result.databases_checked;
            return CheckDatabase(property, automaton, db, &result);
          }));
  (void)stopped;
  return result;
}

}  // namespace wsv
