#include "verify/ltl_verifier.h"

#include <set>

#include "automata/emptiness.h"
#include "automata/ltl_to_buchi.h"
#include "fo/input_bounded.h"
#include "ws/classify.h"

namespace wsv {

std::string CounterExample::ToString() const {
  std::string out = "database:\n" + database.ToString();
  if (!valuation.empty()) {
    out += "valuation:";
    for (const auto& [var, v] : valuation) {
      out += " " + var + "=" + v.name();
    }
    out += "\n";
  }
  out += "violating run (lasso):\n" + run.ToString();
  return out;
}

LtlVerifier::LtlVerifier(const WebService* service, LtlVerifyOptions options)
    : service_(service), options_(std::move(options)) {}

namespace {

// All values occurring anywhere in a lasso run or the database — Dom(rho)
// for the closure-variable range check.
std::set<Value> LassoDomain(const LassoRun& run, const Instance& database) {
  std::set<Value> dom(database.domain().begin(), database.domain().end());
  for (const TraceStep& step : run.steps) {
    for (const Instance* inst :
         {&step.state, &step.inputs, &step.prev_inputs, &step.actions}) {
      dom.insert(inst->domain().begin(), inst->domain().end());
    }
    for (const auto& [name, v] : step.kappa) dom.insert(v);
  }
  return dom;
}

}  // namespace

StatusOr<bool> LtlVerifier::CheckDatabase(const TemporalProperty& property,
                                          const BuchiAutomaton& automaton,
                                          const Instance& database,
                                          LtlVerifyResult* result) {
  Stepper stepper(service_, &database);
  // Track only the Prev_I relations the rules or the property observe.
  {
    std::set<std::string> tracked = Stepper::PrevRelationsInRules(*service_);
    for (const FormulaPtr& leaf : property.formula->FoLeaves()) {
      for (const Atom& atom : leaf->Atoms()) {
        if (atom.prev) tracked.insert(atom.relation);
      }
    }
    stepper.SetTrackedPrev(std::move(tracked));
  }

  // Candidate values for input constants: the database's active domain,
  // the rule/property literals, plus fresh "typed by the user" values.
  ConfigGraphOptions graph_options = options_.graph;
  if (graph_options.constant_pool.empty()) {
    std::set<Value> pool(database.domain().begin(), database.domain().end());
    for (Value v : ServiceRuleLiterals(*service_)) pool.insert(v);
    for (Value v : property.formula->Literals()) pool.insert(v);
    for (int i = 0; i < options_.extra_constant_values; ++i) {
      pool.insert(Value::Intern("u" + std::to_string(i)));
    }
    graph_options.constant_pool.assign(pool.begin(), pool.end());
  }

  WSV_ASSIGN_OR_RETURN(ConfigGraph graph,
                       BuildConfigGraph(stepper, graph_options));
  if (graph.truncated) result->complete_within_bounds = false;
  result->total_graph_nodes += graph.nodes.size();

  // Valuation candidates for the universal closure variables: everything
  // that can occur in a run's active domain — the database, rule and
  // property literals, and the input-constant pool — unless the caller
  // restricted them.
  std::vector<Value> cand;
  if (!options_.closure_candidates.empty()) {
    cand = options_.closure_candidates;
  } else {
    std::set<Value> candidates(graph_options.constant_pool.begin(),
                               graph_options.constant_pool.end());
    candidates.insert(database.domain().begin(), database.domain().end());
    for (Value v : ServiceRuleLiterals(*service_)) candidates.insert(v);
    for (Value v : property.formula->Literals()) candidates.insert(v);
    cand.assign(candidates.begin(), candidates.end());
  }

  // Leaves without closure variables are valuation-independent; label
  // them once across all valuations.
  const size_t num_leaves = automaton.leaves.size();
  std::vector<bool> leaf_static(num_leaves);
  for (size_t k = 0; k < num_leaves; ++k) {
    std::set<std::string> free = automaton.leaves[k]->FreeVariables();
    leaf_static[k] = free.empty();
  }
  std::vector<std::vector<char>> static_truth(graph.edges.size());
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    static_truth[e].assign(num_leaves, 0);
    TraceView view = graph.View(static_cast<int>(e));
    for (size_t k = 0; k < num_leaves; ++k) {
      if (!leaf_static[k]) continue;
      WSV_ASSIGN_OR_RETURN(bool b,
                           EvalFoAtStep(*automaton.leaves[k], view,
                                        database, *service_, {}));
      static_truth[e][k] = b ? 1 : 0;
    }
  }

  const std::vector<std::string>& vars = property.universal_vars;
  std::vector<size_t> idx(vars.size(), 0);
  if (!vars.empty() && cand.empty()) return false;

  while (true) {
    Valuation valuation;
    for (size_t i = 0; i < vars.size(); ++i) {
      valuation[vars[i]] = cand[idx[i]];
    }

    // Label each edge with the truth of every FO leaf under `valuation`.
    std::vector<std::vector<char>> edge_truth(graph.edges.size());
    for (size_t e = 0; e < graph.edges.size(); ++e) {
      edge_truth[e] = static_truth[e];
      TraceView view = graph.View(static_cast<int>(e));
      for (size_t k = 0; k < num_leaves; ++k) {
        if (leaf_static[k]) continue;
        WSV_ASSIGN_OR_RETURN(bool b,
                             EvalFoAtStep(*automaton.leaves[k], view,
                                          database, *service_, valuation));
        edge_truth[e][k] = b ? 1 : 0;
      }
    }

    // Product: vertices are (edge, automaton state) pairs where the state
    // label matches the edge's leaf truth.
    std::vector<std::vector<int>> matching(graph.edges.size());
    for (size_t e = 0; e < graph.edges.size(); ++e) {
      for (size_t q = 0; q < automaton.size(); ++q) {
        if (automaton.states[q] == edge_truth[e]) {
          matching[e].push_back(static_cast<int>(q));
        }
      }
    }
    std::vector<std::pair<int, int>> verts;  // (edge, q)
    std::map<std::pair<int, int>, int> vert_index;
    auto vid = [&](int e, int q) {
      auto key = std::make_pair(e, q);
      auto it = vert_index.find(key);
      if (it != vert_index.end()) return it->second;
      int id = static_cast<int>(verts.size());
      vert_index.emplace(key, id);
      verts.push_back(key);
      return id;
    };
    for (size_t e = 0; e < graph.edges.size(); ++e) {
      for (int q : matching[e]) vid(static_cast<int>(e), q);
    }
    std::vector<std::vector<int>> succ(verts.size());
    std::vector<char> initial(verts.size(), 0);
    std::vector<char> accepting(verts.size(), 0);
    const std::set<int>& acc_set = automaton.accepting_sets.front();
    for (size_t v = 0; v < verts.size(); ++v) {
      auto [e, q] = verts[v];
      if (graph.edges[e].from == graph.initial && automaton.initial[q]) {
        initial[v] = 1;
      }
      if (acc_set.count(q) > 0) accepting[v] = 1;
      for (int e2 : graph.out_edges[graph.edges[e].to]) {
        for (int q2 : matching[e2]) {
          bool q2_succ = false;
          for (int s : automaton.succ[q]) {
            if (s == q2) {
              q2_succ = true;
              break;
            }
          }
          if (q2_succ) succ[v].push_back(vid(e2, q2));
        }
      }
    }
    result->total_product_states += verts.size();

    std::optional<Lasso> lasso =
        FindAcceptingLasso(succ, initial, accepting);
    if (lasso.has_value()) {
      // Reconstruct the run: prefix vertices then cycle[1..], looping back
      // to the prefix's last vertex.
      LassoRun run;
      for (int v : lasso->prefix) {
        run.steps.push_back(graph.Materialize(verts[v].first));
      }
      run.loop_start = lasso->prefix.size() - 1;
      for (size_t i = 1; i < lasso->cycle.size(); ++i) {
        run.steps.push_back(graph.Materialize(verts[lasso->cycle[i]].first));
      }
      // Faithfulness check: the closure valuation must range over
      // Dom(rho); discard spurious witnesses using pool values that never
      // occur in the run or database.
      std::set<Value> dom = LassoDomain(run, database);
      std::set<Value> lits = property.formula->Literals();
      dom.insert(lits.begin(), lits.end());
      bool in_dom = true;
      for (const auto& [var, v] : valuation) {
        if (dom.count(v) == 0) in_dom = false;
      }
      if (in_dom) {
        result->holds = false;
        CounterExample cex;
        cex.database = database;
        cex.run = std::move(run);
        cex.valuation = valuation;
        result->counterexample = std::move(cex);
        return true;
      }
    }

    // Advance the valuation odometer.
    if (vars.empty()) break;
    size_t k = 0;
    while (k < vars.size()) {
      if (++idx[k] < cand.size()) break;
      idx[k] = 0;
      ++k;
    }
    if (k == vars.size()) break;
  }
  return false;
}

StatusOr<LtlVerifyResult> LtlVerifier::VerifyOnDatabase(
    const TemporalProperty& property, const Instance& database) {
  if (!property.formula->IsLtl()) {
    return Status::InvalidArgument(
        "property contains path quantifiers; use the branching-time "
        "checkers");
  }
  if (options_.require_input_bounded) {
    WSV_RETURN_IF_ERROR(CheckInputBoundedService(*service_));
    WSV_RETURN_IF_ERROR(
        CheckInputBoundedProperty(property, service_->vocab()));
  }
  TFormulaPtr negated =
      ToNegationNormalForm(*TFormula::Not(property.formula));
  WSV_ASSIGN_OR_RETURN(BuchiAutomaton gba, LtlToBuchi(*negated));
  BuchiAutomaton automaton = gba.Degeneralize();

  LtlVerifyResult result;
  result.databases_checked = 1;
  WSV_RETURN_IF_ERROR(
      CheckDatabase(property, automaton, database, &result).status());
  return result;
}

StatusOr<LtlVerifyResult> LtlVerifier::Verify(
    const TemporalProperty& property) {
  if (!property.formula->IsLtl()) {
    return Status::InvalidArgument(
        "property contains path quantifiers; use the branching-time "
        "checkers");
  }
  if (options_.require_input_bounded) {
    WSV_RETURN_IF_ERROR(CheckInputBoundedService(*service_));
    WSV_RETURN_IF_ERROR(
        CheckInputBoundedProperty(property, service_->vocab()));
  }
  TFormulaPtr negated =
      ToNegationNormalForm(*TFormula::Not(property.formula));
  WSV_ASSIGN_OR_RETURN(BuchiAutomaton gba, LtlToBuchi(*negated));
  BuchiAutomaton automaton = gba.Degeneralize();

  DbEnumOptions db_options = options_.db;
  for (Value v : property.formula->Literals()) {
    db_options.base_values.push_back(v);
  }

  LtlVerifyResult result;
  WSV_ASSIGN_OR_RETURN(
      bool stopped,
      EnumerateDatabases(
          *service_, db_options,
          [&](const Instance& db) -> StatusOr<bool> {
            ++result.databases_checked;
            return CheckDatabase(property, automaton, db, &result);
          }));
  (void)stopped;
  return result;
}

}  // namespace wsv
