// The configuration graph of a Web service over a fixed database.
//
// Nodes are run configurations (runtime/config.h); an edge corresponds to
// one user decision and carries the trace element <V, S, I, P, A> that
// LTL-FO formulas are evaluated on at that position. Every infinite path
// from the initial node through the graph is a run of the service on the
// database, and vice versa (with input-constant values drawn from the
// configured candidate pool).
//
// The graph is finite because the database is fixed, state relations
// range over the (finite) active domain, and input constants come from
// the finite pool. It can still be large; budgets cap the exploration and
// report truncation so callers can distinguish "verified within bounds"
// from "gave up".

#ifndef WSV_VERIFY_CONFIG_GRAPH_H_
#define WSV_VERIFY_CONFIG_GRAPH_H_

#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "ltl/run_semantics.h"
#include "runtime/successor.h"

namespace wsv {

struct ConfigGraphOptions {
  /// Candidate values for input constants. If empty, the database's
  /// active domain plus the service's rule literals are used.
  std::vector<Value> constant_pool;
  size_t max_nodes = 200000;
  size_t max_edges = 2000000;
  /// Cooperative cancellation hook, polled once per expanded node. When
  /// it returns true, BuildConfigGraph abandons the build and returns
  /// Status::Cancelled — the parallel engine sets this so workers whose
  /// database can no longer win stop mid-build instead of finishing a
  /// large graph nobody will read.
  std::function<bool()> cancel_check;
};

struct ConfigGraph {
  /// An edge stores only what the source node does not already carry:
  /// the inputs chosen at this step. The trace element
  /// <V, S, I, P, A, kappa> is reconstructed as a view on demand.
  struct Edge {
    int from = 0;
    int to = 0;
    Instance inputs;
    bool to_error = false;
    std::string error_reason;
  };

  std::vector<Config> nodes;
  std::vector<Edge> edges;
  /// out_edges[v] indexes into `edges`.
  std::vector<std::vector<int>> out_edges;
  int initial = 0;
  /// True if a budget was hit; the graph is then a prefix of the real one.
  bool truncated = false;

  /// A non-owning view of the trace element of edge `e`; valid while the
  /// graph is alive and unmodified.
  TraceView View(int e) const;
  /// An owning copy of the trace element of edge `e`.
  TraceStep Materialize(int e) const;

  std::string Stats() const;
};

/// Builds the reachable configuration graph from the initial node.
StatusOr<ConfigGraph> BuildConfigGraph(const Stepper& stepper,
                                       const ConfigGraphOptions& options);

}  // namespace wsv

#endif  // WSV_VERIFY_CONFIG_GRAPH_H_
