// The configuration graph of a Web service over a fixed database.
//
// Nodes are run configurations (runtime/config.h); an edge corresponds to
// one user decision and carries the trace element <V, S, I, P, A> that
// LTL-FO formulas are evaluated on at that position. Every infinite path
// from the initial node through the graph is a run of the service on the
// database, and vice versa (with input-constant values drawn from the
// configured candidate pool).
//
// The graph is finite because the database is fixed, state relations
// range over the (finite) active domain, and input constants come from
// the finite pool. It can still be large; budgets cap the exploration and
// report truncation so callers can distinguish "verified within bounds"
// from "gave up".

#ifndef WSV_VERIFY_CONFIG_GRAPH_H_
#define WSV_VERIFY_CONFIG_GRAPH_H_

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ltl/run_semantics.h"
#include "runtime/successor.h"

namespace wsv {

struct ConfigGraphOptions {
  /// Candidate values for input constants. If empty, the database's
  /// active domain plus the service's rule literals are used.
  std::vector<Value> constant_pool;
  size_t max_nodes = 200000;
  size_t max_edges = 2000000;
  /// Cooperative cancellation hook, polled once per expanded node. When
  /// it returns true, BuildConfigGraph abandons the build and returns
  /// Status::Cancelled — the parallel engine sets this so workers whose
  /// database can no longer win stop mid-build instead of finishing a
  /// large graph nobody will read.
  std::function<bool()> cancel_check;
};

struct ConfigGraph {
  /// An edge stores only what the source node does not already carry:
  /// the inputs chosen at this step. The trace element
  /// <V, S, I, P, A, kappa> is reconstructed as a view on demand.
  struct Edge {
    int from = 0;
    int to = 0;
    Instance inputs;
    bool to_error = false;
    std::string error_reason;
  };

  std::vector<Config> nodes;
  std::vector<Edge> edges;
  /// out_edges[v] indexes into `edges`.
  std::vector<std::vector<int>> out_edges;
  int initial = 0;
  /// True if a budget was hit; the graph is then a prefix of the real one.
  bool truncated = false;

  /// A non-owning view of the trace element of edge `e`; valid while the
  /// graph is alive and unmodified.
  TraceView View(int e) const;
  /// An owning copy of the trace element of edge `e`.
  TraceStep Materialize(int e) const;

  std::string Stats() const;
};

/// Builds the reachable configuration graph from the initial node.
StatusOr<ConfigGraph> BuildConfigGraph(const Stepper& stepper,
                                       const ConfigGraphOptions& options);

/// Incremental construction of the same graph, driven by the consumer:
/// nodes are interned on discovery and expanded (their out-edges
/// materialized through the stepper) only on request. The on-the-fly
/// product search uses this so a configuration is stepped only when the
/// nested DFS actually reaches it; BuildConfigGraph is ExpandAll() over
/// the same machinery, so eager and lazy builds produce identical
/// node/edge orderings, dedup behavior, budgets, and counters.
///
/// Not thread-safe: each concurrent valuation sweep owns its own
/// instance (the verifiers keep it call-local).
class LazyConfigGraph {
 public:
  /// `stepper` must outlive the LazyConfigGraph. An empty
  /// options.constant_pool resolves to the database's active domain plus
  /// the service's rule literals, as in BuildConfigGraph.
  LazyConfigGraph(const Stepper* stepper, ConfigGraphOptions options);

  LazyConfigGraph(const LazyConfigGraph&) = delete;
  LazyConfigGraph& operator=(const LazyConfigGraph&) = delete;

  /// Returns the expansion state's bytes to the mem/config_graph_bytes
  /// gauge. The gauge tracks live lazy-graph state; a graph moved out via
  /// TakeGraph (the eager pipeline) is no longer counted.
  ~LazyConfigGraph();

  /// The graph built so far. out_edges[v] is complete iff Expanded(v);
  /// unexpanded nodes look like dead ends, which is exactly the prefix
  /// semantics of a truncated eager build.
  const ConfigGraph& graph() const { return graph_; }
  int initial() const { return graph_.initial; }
  bool truncated() const { return graph_.truncated; }
  bool Expanded(int v) const {
    return expanded_[static_cast<size_t>(v)] != 0;
  }

  /// Materializes node v's out-edges if not already done. Returns false
  /// when a budget leaves the node unexpanded (the graph is then marked
  /// truncated); Status::Cancelled when options.cancel_check fires.
  StatusOr<bool> EnsureExpanded(int v);

  /// Expands every reachable node in BFS (= node id) order, exactly as
  /// BuildConfigGraph does, honoring budgets and cancellation.
  Status ExpandAll();

  /// Moves the graph out; the LazyConfigGraph must not be used after.
  ConfigGraph TakeGraph() { return std::move(graph_); }

 private:
  int InternNode(const Config& c);
  Status ExpandNode(int v);
  void MarkTruncated();

  const Stepper* stepper_;
  ConfigGraphOptions options_;
  std::vector<Value> pool_;
  ConfigGraph graph_;
  std::unordered_map<Config, int, ConfigHash> node_index_;
  std::vector<char> expanded_;
  // Bytes this instance has published to mem/config_graph_bytes
  // (estimated node/edge footprints), returned on destruction.
  uint64_t gauge_bytes_ = 0;
};

}  // namespace wsv

#endif  // WSV_VERIFY_CONFIG_GRAPH_H_
