// The parallel verification engine: a thread-pooled sweep over the
// Theorem 3.5 search space.
//
// The serial verifier's outer loop is embarrassingly parallel: candidate
// databases are independent, and within one database the closure
// valuations are independent. The engine fans out accordingly:
//
//   Verify            — one task per enumerated database; each task runs
//                       the full per-database check (configuration graph
//                       + valuation sweep).
//   VerifyOnDatabase  — one shared LtlDatabaseCheck context, with the
//                       valuation index space [0, N) chunked across
//                       tasks.
//
// Determinism guarantee: the parallel engine reports exactly the verdict
// and witness the serial verifier would. Counterexamples and task errors
// are unified as "events" tagged with their database (resp. valuation)
// index; the lowest index wins. A worker may find an event at a higher
// index first, but every index below the eventual winner is guaranteed to
// have been swept violation-free before the engine commits, because
// cancellation only stops work that can no longer win (index above the
// current best).
//
// Cancellation is three-layered: the enumerator stops producing, the pool
// drops its queued backlog (ThreadPool::CancelPending), and in-flight
// tasks poll the best-event index — both per expanded configuration-graph
// node (ConfigGraphOptions::cancel_check) and per valuation
// (LtlDatabaseCheck::CheckValuations's stop predicate).
//
// Search strategies (LtlVerifyOptions::search): every shard runs the
// selected strategy through its shared LtlDatabaseCheck context. The
// "portfolio" selection is resolved by VerifyOnDatabase as a race of a
// dfs leg against a directed leg over the same valuation index space —
// first event at the lowest index wins and cancels both legs (so the
// verdict and witness valuation match the serial dfs sweep exactly; the
// witness run may come from either leg and always revalidates). Verify
// (the multi-database sweep) and jobs == 1 delegation resolve
// "portfolio" to its deterministic dfs leg.

#ifndef WSV_VERIFY_PARALLEL_H_
#define WSV_VERIFY_PARALLEL_H_

#include "verify/ltl_verifier.h"
#include "ws/service.h"

namespace wsv {

class ParallelLtlVerifier {
 public:
  /// `jobs` <= 0 means one worker per hardware thread; `jobs` == 1 runs
  /// the serial verifier in-process (no pool, byte-identical behavior).
  ParallelLtlVerifier(const WebService* service, LtlVerifyOptions options,
                      int jobs);

  /// Verifies over all databases within the enumeration bounds, one pool
  /// task per candidate database.
  StatusOr<LtlVerifyResult> Verify(const TemporalProperty& property);

  /// Verifies over one fixed database, chunking the closure-valuation
  /// sweep across the pool.
  StatusOr<LtlVerifyResult> VerifyOnDatabase(const TemporalProperty& property,
                                             const Instance& database);

  int jobs() const { return jobs_; }

 private:
  const WebService* service_;
  LtlVerifyOptions options_;
  int jobs_;
};

}  // namespace wsv

#endif  // WSV_VERIFY_PARALLEL_H_
