// The paper's constructive service-to-service transformations.
//
// TransformErrorFree (Lemma A.5): given a Web service W, builds an
// *error-free* service W' with a fresh trap page that is reached exactly
// when W would reach its error page. Checking error-freeness of W thus
// reduces to verifying the input-bounded LTL-FO sentence  G !<trap>  on
// W'. The construction adds one propositional state per input constant
// (marking "provided"), guards every target rule with the negation of
// the error condition, and routes the error condition to the trap page:
//   - ambiguity of W's target rules (condition iii),
//   - transitioning to a page whose rules use an input constant that is
//     neither provided nor requested there (condition i, one step early),
//   - transitioning to (or re-staying on) a page that re-requests a
//     provided constant (condition ii, one step early).
//
// TransformToSimple (Lemma A.10): given an *error-free* input-bounded
// service, builds a *simple* service (single page, no input constants —
// the Web-service counterpart of Spielmann's ASM transducers) plus a
// property rewriting: page propositions become state propositions set by
// the transition rules, and input constants become database constants.

#ifndef WSV_VERIFY_TRANSFORM_H_
#define WSV_VERIFY_TRANSFORM_H_

#include <map>
#include <string>

#include "common/status.h"
#include "ltl/ltl.h"
#include "ws/service.h"

namespace wsv {

struct ErrorFreeTransform {
  WebService service;
  /// Name of the trap page; W is error-free iff service |= G !trap_page.
  std::string trap_page;
  /// The ready-made property G !trap_page.
  TemporalProperty property;
};

StatusOr<ErrorFreeTransform> TransformErrorFree(const WebService& service);

struct SimpleTransform {
  WebService service;
  /// Page name -> the state proposition tracking "run is at this page".
  std::map<std::string, std::string> page_prop;
  /// The single page's name.
  std::string page;
};

StatusOr<SimpleTransform> TransformToSimple(const WebService& service);

/// Rewrites a property over the original service (page propositions,
/// input constants) into one over the simple service (state propositions,
/// database constants). Page atom V becomes the state proposition
/// page_prop[V]; for the home page it becomes
/// (page_prop[home] | !(any page prop)) to cover the initial step.
StatusOr<TemporalProperty> RewritePropertyForSimple(
    const TemporalProperty& property, const WebService& original,
    const SimpleTransform& transform);

}  // namespace wsv

#endif  // WSV_VERIFY_TRANSFORM_H_
