// The successor computation of Definition 2.3.
//
// A Stepper binds a Web service to a fixed database instance and computes
// one run step at a time: the options presented to the user, the error
// conditions (i)-(iii), the state update with conflict no-op semantics,
// actions, Prev_I bookkeeping, and the target transition. Both the
// interactive interpreter and the verification config-graph builder are
// built on this class, so the semantics live in exactly one place.
//
// Semantic choices the paper leaves open (documented in DESIGN.md):
//  * On a transition to the error page the state is carried unchanged,
//    the next actions and Prev_I are empty, and the step consumes no
//    input. The error page behaves like a page with no inputs and no
//    rules, so the run loops there with V = W_err forever.
//  * Error conditions (i) and (ii) are node-level (independent of the
//    user's choice): (ii) the page requests an input constant already
//    provided; (i) a rule of the page mentions an input constant outside
//    kappa_i (kappa after this page's requests are filled).

#ifndef WSV_RUNTIME_SUCCESSOR_H_
#define WSV_RUNTIME_SUCCESSOR_H_

#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/status.h"
#include "fo/evaluator.h"
#include "runtime/config.h"
#include "ws/service.h"

namespace wsv {

/// The result of one step: the successor node, the trace element for LTL
/// semantics, and whether the step transitioned to the error page.
struct StepOutcome {
  Config next;
  TraceStep trace;
  bool to_error = false;
  std::string error_reason;
};

class Stepper {
 public:
  /// `service` and `database` must outlive the Stepper. By default every
  /// input relation's previous value is tracked in configurations;
  /// restrict with `tracked_prev` (see SetTrackedPrev).
  Stepper(const WebService* service, const Instance* database);

  /// Restricts Prev_I bookkeeping to the given input relations. The
  /// verifiers call this with the relations actually mentioned in prev
  /// atoms of the rules and the property: untracked relations cannot be
  /// observed, and dropping them collapses otherwise-distinct
  /// configurations, shrinking the graph. Must include every relation
  /// the service's rules mention with prev.
  void SetTrackedPrev(std::set<std::string> tracked_prev);

  /// The input relations mentioned in prev atoms of the service's rules.
  static std::set<std::string> PrevRelationsInRules(
      const WebService& service);

  /// Switches Prev_I to *lossless* semantics: prev_I accumulates every
  /// input ever given to I instead of only the previous step's (the
  /// paper's extension (iii), Theorem 3.9 — verification over this
  /// semantics is undecidable; the bounded machinery still runs).
  void SetLosslessInput(bool lossless) { lossless_input_ = lossless; }

  /// The initial node: home page, empty state/prev/actions, empty kappa.
  Config InitialConfig() const;

  /// Returns the reason if the node transitions to the error page
  /// regardless of the user's choice (conditions (i) and (ii)); nullopt
  /// otherwise. Always nullopt on the error page itself.
  std::optional<std::string> StaticError(const Config& config) const;

  /// Options for each positive-arity input relation offered by the
  /// current page, computed over D, S_i, P_i, and kappa_i (which includes
  /// `new_constants`, the values for the constants the page requests).
  StatusOr<std::map<std::string, std::set<Tuple>>> ComputeOptions(
      const Config& config,
      const std::map<std::string, Value>& new_constants) const;

  /// Applies one step. The choice must supply a value for exactly the
  /// input constants the page requests, and relation picks must be among
  /// the computed options (checked; violations are InvalidArgument).
  /// On the error page the choice is ignored.
  StatusOr<StepOutcome> Step(const Config& config,
                             const UserChoice& choice) const;

  const WebService& service() const { return *service_; }
  const Instance& database() const { return *database_; }

 private:
  /// EvalContext over D, S_i, P_i, kappa; optionally the current inputs.
  EvalContext MakeContext(const Config& config,
                          const std::map<std::string, Value>& kappa,
                          const Instance* current_inputs) const;

  /// An instance with every relation of `kind` materialized empty.
  Instance EmptyInstanceOfKind(SymbolKind kind) const;

  /// An instance with the tracked prev relations materialized empty.
  Instance EmptyPrevInstance() const;

  /// Successor used for every transition into the error page.
  StepOutcome ErrorOutcome(const Config& config,
                           const std::map<std::string, Value>& kappa,
                           const std::string& reason) const;

  const WebService* service_;
  const Instance* database_;
  /// Literal values occurring in any rule of the service; they denote
  /// schema constants and are part of every evaluation's active domain.
  std::set<Value> rule_literals_;
  /// Input relations whose previous value is kept in configurations;
  /// nullopt means all.
  std::optional<std::set<std::string>> tracked_prev_;
  bool lossless_input_ = false;
};

}  // namespace wsv

#endif  // WSV_RUNTIME_SUCCESSOR_H_
