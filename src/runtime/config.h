// Run configurations (Definition 2.3).
//
// A run of a Web service W over a database D is an infinite sequence
// {<V_i, S_i, I_i, P_i, A_i>} of configurations. We split each step into
// a *node* — Config: the page, state, previous inputs, actions produced
// by the previous step, and the input-constant interpretation kappa
// accumulated so far — plus the user's *choice* at that node (UserChoice).
// The pair determines the trace element <V_i, S_i, I_i, P_i, A_i> that
// temporal formulas are evaluated on, and the unique successor node.
//
// Configs compare structurally; the verifiers use this to deduplicate
// the (finite, for a fixed database) configuration graph.

#ifndef WSV_RUNTIME_CONFIG_H_
#define WSV_RUNTIME_CONFIG_H_

#include <map>
#include <optional>
#include <string>

#include "relational/instance.h"

namespace wsv {

/// The node part of a run step (everything except the current input).
struct Config {
  /// Current Web page V_i (possibly the error page).
  std::string page;
  /// State instance S_i; all state relations materialized (possibly empty).
  Instance state;
  /// Previous inputs P_i, keyed by the plain input relation names.
  Instance prev_inputs;
  /// Actions A_i (triggered by the rules of step i-1).
  Instance actions;
  /// kappa_{i-1}: input constants provided strictly before this step.
  std::map<std::string, Value> provided_constants;

  /// Estimated heap footprint, for the mem/config_graph_bytes gauge.
  size_t ApproxBytes() const;

  friend bool operator==(const Config& a, const Config& b) {
    return a.page == b.page && a.state == b.state &&
           a.prev_inputs == b.prev_inputs && a.actions == b.actions &&
           a.provided_constants == b.provided_constants;
  }
  friend bool operator<(const Config& a, const Config& b) {
    if (a.page != b.page) return a.page < b.page;
    if (!(a.state == b.state)) return a.state < b.state;
    if (!(a.prev_inputs == b.prev_inputs)) return a.prev_inputs < b.prev_inputs;
    if (!(a.actions == b.actions)) return a.actions < b.actions;
    return a.provided_constants < b.provided_constants;
  }

  /// Structural hash, consistent with operator==. The config-graph
  /// builder deduplicates nodes through hashed containers keyed by this.
  size_t Hash() const;

  std::string ToString() const;
};

/// Functor for unordered containers keyed by Config.
struct ConfigHash {
  size_t operator()(const Config& c) const { return c.Hash(); }
};

/// The user's decision at one step: values for the input constants the
/// page requests, at most one tuple per positive-arity input relation,
/// and a truth value per propositional input.
struct UserChoice {
  std::map<std::string, Value> constant_values;
  std::map<std::string, std::optional<Tuple>> relation_choices;
  std::map<std::string, bool> proposition_choices;

  friend bool operator==(const UserChoice& a, const UserChoice& b) {
    return a.constant_values == b.constant_values &&
           a.relation_choices == b.relation_choices &&
           a.proposition_choices == b.proposition_choices;
  }
  friend bool operator<(const UserChoice& a, const UserChoice& b) {
    if (a.constant_values != b.constant_values) {
      return a.constant_values < b.constant_values;
    }
    if (a.relation_choices != b.relation_choices) {
      return a.relation_choices < b.relation_choices;
    }
    return a.proposition_choices < b.proposition_choices;
  }

  std::string ToString() const;
};

/// One element <V_i, S_i, I_i, P_i, A_i> of a concrete run, as seen by
/// LTL-FO semantics. `kappa` is kappa_i (constants provided up to and
/// including this step).
struct TraceStep {
  std::string page;
  Instance state;
  Instance inputs;  // relations, propositions, and constants chosen now
  Instance prev_inputs;
  Instance actions;
  std::map<std::string, Value> kappa;

  std::string ToString() const;
};

}  // namespace wsv

#endif  // WSV_RUNTIME_CONFIG_H_
