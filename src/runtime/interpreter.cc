#include "runtime/interpreter.h"

namespace wsv {

const UserChoice* ScriptedInputProvider::Current() const {
  if (step_ >= script_.size()) return nullptr;
  return &script_[step_];
}

StatusOr<std::map<std::string, Value>> ScriptedInputProvider::ProvideConstants(
    const Config& config, const std::vector<std::string>& requested) {
  (void)config;
  std::map<std::string, Value> out;
  const UserChoice* cur = Current();
  for (const std::string& c : requested) {
    if (cur != nullptr) {
      auto it = cur->constant_values.find(c);
      if (it != cur->constant_values.end()) {
        out[c] = it->second;
        continue;
      }
    }
    return Status::InvalidArgument(
        "script provides no value for input constant " + c + " at step " +
        std::to_string(step_));
  }
  advanced_constants_ = true;
  return out;
}

StatusOr<UserChoice> ScriptedInputProvider::ChooseInputs(
    const Config& config, const PageSchema& page,
    const std::map<std::string, std::set<Tuple>>& options) {
  (void)config;
  (void)page;
  (void)options;
  UserChoice out;
  const UserChoice* cur = Current();
  if (cur != nullptr) {
    out.relation_choices = cur->relation_choices;
    out.proposition_choices = cur->proposition_choices;
  }
  ++step_;
  advanced_constants_ = false;
  return out;
}

StatusOr<std::map<std::string, Value>> RandomInputProvider::ProvideConstants(
    const Config& config, const std::vector<std::string>& requested) {
  (void)config;
  std::map<std::string, Value> out;
  if (requested.empty()) return out;
  if (constant_pool_.empty()) {
    return Status::InvalidArgument(
        "RandomInputProvider has an empty constant pool but the page "
        "requests input constants");
  }
  for (const std::string& c : requested) {
    std::uniform_int_distribution<size_t> dist(0, constant_pool_.size() - 1);
    out[c] = constant_pool_[dist(rng_)];
  }
  return out;
}

StatusOr<UserChoice> RandomInputProvider::ChooseInputs(
    const Config& config, const PageSchema& page,
    const std::map<std::string, std::set<Tuple>>& options) {
  (void)config;
  UserChoice out;
  for (const auto& [rel, tuples] : options) {
    // Uniform over "no pick" plus each option tuple.
    std::uniform_int_distribution<size_t> dist(0, tuples.size());
    size_t k = dist(rng_);
    if (k == 0) {
      out.relation_choices[rel] = std::nullopt;
    } else {
      auto it = tuples.begin();
      std::advance(it, static_cast<long>(k - 1));
      out.relation_choices[rel] = *it;
    }
  }
  for (const std::string& in : page.inputs) {
    if (options.count(in) > 0) continue;  // positive-arity, handled above
    std::uniform_int_distribution<int> coin(0, 1);
    out.proposition_choices[in] = coin(rng_) == 1;
  }
  return out;
}

StatusOr<RunResult> Interpreter::Run(InputProvider& provider, int steps) {
  return RunFrom(stepper_.InitialConfig(), provider, steps);
}

StatusOr<RunResult> Interpreter::RunFrom(const Config& start,
                                         InputProvider& provider, int steps) {
  RunResult result;
  Config current = start;
  const WebService& service = stepper_.service();
  for (int i = 0; i < steps; ++i) {
    UserChoice choice;
    bool is_error_page = current.page == service.error_page();
    bool static_error =
        !is_error_page && stepper_.StaticError(current).has_value();
    if (!is_error_page && !static_error) {
      const PageSchema* page = service.FindPage(current.page);
      if (page == nullptr) {
        return Status::NotFound("unknown page " + current.page);
      }
      std::map<std::string, Value> consts;
      {
        auto provided =
            provider.ProvideConstants(current, page->input_constants);
        if (!provided.ok()) return provided.status();
        consts = std::move(provided).value();
      }
      WSV_ASSIGN_OR_RETURN(auto options,
                           stepper_.ComputeOptions(current, consts));
      WSV_ASSIGN_OR_RETURN(choice,
                           provider.ChooseInputs(current, *page, options));
      choice.constant_values = std::move(consts);
    }
    WSV_ASSIGN_OR_RETURN(StepOutcome outcome,
                         stepper_.Step(current, choice));
    result.page_sequence.push_back(outcome.trace.page);
    result.trace.push_back(std::move(outcome.trace));
    if (outcome.to_error && !result.reached_error) {
      result.reached_error = true;
      result.error_reason = outcome.error_reason;
    }
    current = std::move(outcome.next);
  }
  result.final_config = std::move(current);
  return result;
}

}  // namespace wsv
