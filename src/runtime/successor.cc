#include "runtime/successor.h"

#include <algorithm>

#include "fo/bytecode/cache.h"

namespace wsv {

Stepper::Stepper(const WebService* service, const Instance* database)
    : service_(service), database_(database) {
  for (const PageSchema& page : service_->pages()) {
    auto collect = [&](const FormulaPtr& body) {
      std::set<Value> lits = body->Literals();
      rule_literals_.insert(lits.begin(), lits.end());
    };
    for (const InputRule& r : page.input_rules) collect(r.body);
    for (const StateRule& r : page.state_rules) collect(r.body);
    for (const ActionRule& r : page.action_rules) collect(r.body);
    for (const TargetRule& r : page.target_rules) collect(r.body);
  }
}

void Stepper::SetTrackedPrev(std::set<std::string> tracked_prev) {
  tracked_prev_ = std::move(tracked_prev);
}

std::set<std::string> Stepper::PrevRelationsInRules(
    const WebService& service) {
  std::set<std::string> out;
  auto collect = [&](const FormulaPtr& body) {
    for (const Atom& atom : body->Atoms()) {
      if (atom.prev) out.insert(atom.relation);
    }
  };
  for (const PageSchema& page : service.pages()) {
    for (const InputRule& r : page.input_rules) collect(r.body);
    for (const StateRule& r : page.state_rules) collect(r.body);
    for (const ActionRule& r : page.action_rules) collect(r.body);
    for (const TargetRule& r : page.target_rules) collect(r.body);
  }
  return out;
}

Instance Stepper::EmptyInstanceOfKind(SymbolKind kind) const {
  Instance out;
  for (const RelationSymbol& sym : service_->vocab().RelationsOfKind(kind)) {
    // EnsureRelation only fails on arity conflicts, impossible here.
    (void)out.EnsureRelation(sym.name, sym.arity);
  }
  return out;
}

Instance Stepper::EmptyPrevInstance() const {
  Instance out;
  for (const RelationSymbol& sym :
       service_->vocab().RelationsOfKind(SymbolKind::kInput)) {
    if (tracked_prev_.has_value() && tracked_prev_->count(sym.name) == 0) {
      continue;
    }
    (void)out.EnsureRelation(sym.name, sym.arity);
  }
  return out;
}

Config Stepper::InitialConfig() const {
  Config c;
  c.page = service_->home_page();
  c.state = EmptyInstanceOfKind(SymbolKind::kState);
  c.prev_inputs = EmptyPrevInstance();
  c.actions = EmptyInstanceOfKind(SymbolKind::kAction);
  return c;
}

EvalContext Stepper::MakeContext(const Config& config,
                                 const std::map<std::string, Value>& kappa,
                                 const Instance* current_inputs) const {
  EvalContext ctx;
  if (current_inputs != nullptr) ctx.AddLayer(current_inputs);
  ctx.AddLayer(&config.state);
  ctx.AddLayer(database_);
  ctx.SetPrevLayer(&config.prev_inputs);
  for (const auto& [name, v] : kappa) ctx.SetConstant(name, v);
  for (Value v : rule_literals_) ctx.AddDomainValue(v);
  return ctx;
}

std::optional<std::string> Stepper::StaticError(const Config& config) const {
  if (config.page == service_->error_page()) return std::nullopt;
  const PageSchema* page = service_->FindPage(config.page);
  if (page == nullptr) return "unknown page " + config.page;

  // Condition (ii): the page requests a constant already provided.
  for (const std::string& c : page->input_constants) {
    if (config.provided_constants.count(c) > 0) {
      return "input constant '" + c + "' requested again (condition ii)";
    }
  }

  // Condition (i): some rule formula uses an input constant outside
  // kappa_i = provided ∪ requested-now.
  std::set<std::string> kappa_names;
  for (const auto& [name, v] : config.provided_constants) {
    kappa_names.insert(name);
  }
  kappa_names.insert(page->input_constants.begin(),
                     page->input_constants.end());
  auto check_body = [&](const FormulaPtr& body,
                        const std::string& rule) -> std::optional<std::string> {
    for (const std::string& c : body->ConstantSymbols()) {
      if (!service_->vocab().IsInputConstant(c)) continue;
      if (kappa_names.count(c) == 0) {
        return "rule [" + rule + "] uses input constant '" + c +
               "' before it was provided (condition i)";
      }
    }
    return std::nullopt;
  };
  for (const InputRule& r : page->input_rules) {
    if (auto e = check_body(r.body, r.ToString())) return e;
  }
  for (const StateRule& r : page->state_rules) {
    if (auto e = check_body(r.body, r.ToString())) return e;
  }
  for (const ActionRule& r : page->action_rules) {
    if (auto e = check_body(r.body, r.ToString())) return e;
  }
  for (const TargetRule& r : page->target_rules) {
    if (auto e = check_body(r.body, r.ToString())) return e;
  }
  return std::nullopt;
}

StatusOr<std::map<std::string, std::set<Tuple>>> Stepper::ComputeOptions(
    const Config& config,
    const std::map<std::string, Value>& new_constants) const {
  const PageSchema* page = service_->FindPage(config.page);
  if (page == nullptr) {
    return Status::NotFound("unknown page " + config.page);
  }
  std::map<std::string, Value> kappa = config.provided_constants;
  for (const auto& [name, v] : new_constants) kappa[name] = v;
  EvalContext ctx = MakeContext(config, kappa, /*current_inputs=*/nullptr);
  std::map<std::string, std::set<Tuple>> options;
  for (const InputRule& rule : page->input_rules) {
    WSV_ASSIGN_OR_RETURN(
        std::set<Tuple> tuples,
        fobc::EvaluateQueryFast(rule.body, rule.head_vars, ctx));
    options[rule.input] = std::move(tuples);
  }
  return options;
}

StepOutcome Stepper::ErrorOutcome(const Config& config,
                                  const std::map<std::string, Value>& kappa,
                                  const std::string& reason) const {
  StepOutcome out;
  out.to_error = true;
  out.error_reason = reason;
  out.next.page = service_->error_page();
  out.next.state = config.state;  // carried unchanged
  out.next.prev_inputs = EmptyPrevInstance();
  out.next.actions = EmptyInstanceOfKind(SymbolKind::kAction);
  out.next.provided_constants = kappa;
  out.trace.page = config.page;
  out.trace.state = config.state;
  out.trace.inputs = EmptyInstanceOfKind(SymbolKind::kInput);
  out.trace.prev_inputs = config.prev_inputs;
  out.trace.actions = config.actions;
  out.trace.kappa = kappa;
  return out;
}

StatusOr<StepOutcome> Stepper::Step(const Config& config,
                                    const UserChoice& choice) const {
  // The error page loops forever with no inputs and no rules.
  if (config.page == service_->error_page()) {
    StepOutcome out;
    out.next = config;
    out.next.prev_inputs = EmptyPrevInstance();
    out.next.actions = EmptyInstanceOfKind(SymbolKind::kAction);
    out.trace.page = config.page;
    out.trace.state = config.state;
    out.trace.inputs = EmptyInstanceOfKind(SymbolKind::kInput);
    out.trace.prev_inputs = config.prev_inputs;
    out.trace.actions = config.actions;
    out.trace.kappa = config.provided_constants;
    return out;
  }

  const PageSchema* page = service_->FindPage(config.page);
  if (page == nullptr) {
    return Status::NotFound("unknown page " + config.page);
  }

  // Node-level error conditions (i) and (ii): the step consumes no input.
  if (std::optional<std::string> err = StaticError(config)) {
    return ErrorOutcome(config, config.provided_constants, *err);
  }

  // Validate and apply the constant choices.
  for (const auto& [name, v] : choice.constant_values) {
    if (!page->HasInputConstant(name)) {
      return Status::InvalidArgument("page " + page->name +
                                     " does not request input constant " +
                                     name);
    }
    (void)v;
  }
  std::map<std::string, Value> kappa = config.provided_constants;
  for (const std::string& c : page->input_constants) {
    auto it = choice.constant_values.find(c);
    if (it == choice.constant_values.end()) {
      return Status::InvalidArgument("no value provided for input constant " +
                                     c);
    }
    kappa[c] = it->second;
  }

  // Compute options and assemble the input instance I_i.
  WSV_ASSIGN_OR_RETURN(auto options,
                       ComputeOptions(config, choice.constant_values));
  Instance inputs = EmptyInstanceOfKind(SymbolKind::kInput);
  for (const auto& [rel, pick] : choice.relation_choices) {
    if (!page->HasInputRelation(rel)) {
      return Status::InvalidArgument("page " + page->name +
                                     " does not offer input relation " + rel);
    }
    if (!pick.has_value()) continue;
    auto it = options.find(rel);
    if (it == options.end() || it->second.count(*pick) == 0) {
      return Status::InvalidArgument("chosen tuple " + TupleToString(*pick) +
                                     " is not among the options for " + rel);
    }
    inputs.MutableRelation(rel)->Insert(*pick);
    for (Value v : *pick) inputs.AddDomainValue(v);
  }
  for (const auto& [prop, truth] : choice.proposition_choices) {
    const RelationSymbol* sym = service_->vocab().FindRelation(prop);
    if (sym == nullptr || sym->kind != SymbolKind::kInput ||
        sym->arity != 0 || !page->HasInputRelation(prop)) {
      return Status::InvalidArgument(
          "page " + page->name + " does not offer propositional input " +
          prop);
    }
    inputs.MutableRelation(prop)->SetBool(truth);
  }
  // Record the constants provided at this step in I_i for the trace.
  for (const std::string& c : page->input_constants) {
    inputs.SetConstant(c, kappa.at(c));
  }

  EvalContext ctx = MakeContext(config, kappa, &inputs);

  // Target rules; condition (iii) fires on ambiguity.
  std::vector<std::string> true_targets;
  for (const TargetRule& rule : page->target_rules) {
    WSV_ASSIGN_OR_RETURN(bool fired, fobc::EvaluateFast(rule.body, ctx));
    if (fired) true_targets.push_back(rule.target);
  }
  if (true_targets.size() > 1) {
    return ErrorOutcome(config, kappa,
                        "ambiguous targets: " + true_targets[0] + " and " +
                            true_targets[1] + " (condition iii)");
  }

  StepOutcome out;
  out.next.page =
      true_targets.empty() ? config.page : true_targets.front();
  out.next.provided_constants = kappa;

  // State update: S' = (ins \ del) ∪ (S ∩ ins ∩ del) ∪ (S \ (ins ∪ del)),
  // per state relation with rules on this page; others carry unchanged.
  out.next.state = config.state;
  std::map<std::string, std::pair<std::set<Tuple>, std::set<Tuple>>> updates;
  for (const StateRule& rule : page->state_rules) {
    WSV_ASSIGN_OR_RETURN(
        std::set<Tuple> tuples,
        fobc::EvaluateQueryFast(rule.body, rule.head_vars, ctx));
    auto& [ins, del] = updates[rule.state];
    (rule.insert ? ins : del) = std::move(tuples);
  }
  for (const auto& [state_name, insdel] : updates) {
    const auto& [ins, del] = insdel;
    Relation* rel = out.next.state.MutableRelation(state_name);
    const Relation* old = config.state.FindRelation(state_name);
    Relation updated(rel->arity());
    for (const Tuple& t : ins) {
      bool deleted = del.count(t) > 0;
      bool was_in = old != nullptr && old->Contains(t);
      // Insert wins unless also deleted; insert+delete conflicts no-op.
      if (!deleted || was_in) updated.Insert(t);
    }
    if (old != nullptr) {
      for (const Tuple& t : old->tuples()) {
        bool inserted = ins.count(t) > 0;
        bool deleted = del.count(t) > 0;
        if (!inserted && !deleted) updated.Insert(t);
      }
    }
    *rel = std::move(updated);
    // Track new values in the state's domain.
    for (const Tuple& t : rel->tuples()) {
      for (Value v : t) out.next.state.AddDomainValue(v);
    }
  }

  // Actions triggered at step i land in A_{i+1}.
  out.next.actions = EmptyInstanceOfKind(SymbolKind::kAction);
  for (const ActionRule& rule : page->action_rules) {
    WSV_ASSIGN_OR_RETURN(
        std::set<Tuple> tuples,
        fobc::EvaluateQueryFast(rule.body, rule.head_vars, ctx));
    Relation* rel = out.next.actions.MutableRelation(rule.action);
    for (const Tuple& t : tuples) {
      rel->Insert(t);
      for (Value v : t) out.next.actions.AddDomainValue(v);
    }
  }

  // P_{i+1}(prev_I) = I_i(I) for I offered by this page, empty otherwise.
  // Under lossless-input semantics (Theorem 3.9's extension (iii)),
  // prev_I instead accumulates every input ever given to I.
  out.next.prev_inputs =
      lossless_input_ ? config.prev_inputs : EmptyPrevInstance();
  for (const std::string& in : page->inputs) {
    const Relation* cur = inputs.FindRelation(in);
    if (cur == nullptr) continue;
    Relation* prev = out.next.prev_inputs.MutableRelation(in);
    if (prev == nullptr) continue;  // untracked Prev_I relation
    if (lossless_input_) {
      for (const Tuple& t : cur->tuples()) prev->Insert(t);
    } else {
      *prev = *cur;
    }
    for (const Tuple& t : cur->tuples()) {
      for (Value v : t) out.next.prev_inputs.AddDomainValue(v);
    }
  }

  out.trace.page = config.page;
  out.trace.state = config.state;
  out.trace.inputs = std::move(inputs);
  out.trace.prev_inputs = config.prev_inputs;
  out.trace.actions = config.actions;
  out.trace.kappa = kappa;
  return out;
}

}  // namespace wsv
