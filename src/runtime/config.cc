#include "runtime/config.h"

#include "common/hash.h"

namespace wsv {

namespace {

std::string ConstantsToString(const std::map<std::string, Value>& consts) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : consts) {
    if (!first) out += ", ";
    first = false;
    out += name + "=" + v.name();
  }
  return out + "}";
}

}  // namespace

size_t Config::Hash() const {
  size_t h = std::hash<std::string>()(page);
  h = HashCombine(h, state.Hash());
  h = HashCombine(h, prev_inputs.Hash());
  h = HashCombine(h, actions.Hash());
  for (const auto& [name, v] : provided_constants) {
    h = HashCombine(h, std::hash<std::string>()(name));
    h = HashCombine(h, ValueHash()(v));
  }
  return h;
}

size_t Config::ApproxBytes() const {
  size_t bytes = sizeof(Config) + page.capacity();
  bytes += state.ApproxBytes() + prev_inputs.ApproxBytes() +
           actions.ApproxBytes();
  for (const auto& [name, v] : provided_constants) {
    bytes += 4 * sizeof(void*) + sizeof(std::string) + name.capacity() +
             sizeof(Value);
  }
  return bytes;
}

std::string Config::ToString() const {
  std::string out = "page " + page + "\n";
  out += "state:\n" + state.ToString();
  if (!prev_inputs.relations().empty()) {
    out += "prev:\n" + prev_inputs.ToString();
  }
  if (!actions.relations().empty()) {
    out += "actions:\n" + actions.ToString();
  }
  out += "kappa: " + ConstantsToString(provided_constants) + "\n";
  return out;
}

std::string UserChoice::ToString() const {
  std::string out;
  for (const auto& [name, v] : constant_values) {
    out += name + " := " + v.name() + "; ";
  }
  for (const auto& [rel, pick] : relation_choices) {
    out += rel + " := " + (pick.has_value() ? TupleToString(*pick) : "(none)") +
           "; ";
  }
  for (const auto& [prop, b] : proposition_choices) {
    out += prop + " := " + (b ? "true" : "false") + "; ";
  }
  return out.empty() ? "(no input)" : out;
}

std::string TraceStep::ToString() const {
  std::string out = "[" + page + "] inputs: " + inputs.ToString();
  return out;
}

}  // namespace wsv
