// Concrete run execution.
//
// The Interpreter drives a Web service over a fixed database for a given
// number of steps, pulling user decisions from an InputProvider. Three
// providers cover the common cases: scripted choices (tests, examples),
// pseudo-random exploration (simulation, fuzzing the spec), and a
// user-supplied callback.

#ifndef WSV_RUNTIME_INTERPRETER_H_
#define WSV_RUNTIME_INTERPRETER_H_

#include <functional>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/successor.h"

namespace wsv {

/// Supplies the user side of the interaction. Constants are requested
/// before options are computed (options formulas may mention them).
class InputProvider {
 public:
  virtual ~InputProvider() = default;

  /// Values for the input constants `requested` by the current page.
  virtual StatusOr<std::map<std::string, Value>> ProvideConstants(
      const Config& config, const std::vector<std::string>& requested) = 0;

  /// Relation picks (at most one tuple from each options set) and
  /// propositional input truth values. Constants are merged by the
  /// interpreter; leave choice.constant_values empty.
  virtual StatusOr<UserChoice> ChooseInputs(
      const Config& config, const PageSchema& page,
      const std::map<std::string, std::set<Tuple>>& options) = 0;
};

/// Replays a fixed list of choices, one per step; runs out -> empty
/// choices from then on.
class ScriptedInputProvider : public InputProvider {
 public:
  explicit ScriptedInputProvider(std::vector<UserChoice> script)
      : script_(std::move(script)) {}

  StatusOr<std::map<std::string, Value>> ProvideConstants(
      const Config& config, const std::vector<std::string>& requested) override;
  StatusOr<UserChoice> ChooseInputs(
      const Config& config, const PageSchema& page,
      const std::map<std::string, std::set<Tuple>>& options) override;

 private:
  const UserChoice* Current() const;

  std::vector<UserChoice> script_;
  size_t step_ = 0;
  bool advanced_constants_ = false;
};

/// Uniformly random choices; constants drawn from a caller-provided pool.
class RandomInputProvider : public InputProvider {
 public:
  RandomInputProvider(uint64_t seed, std::vector<Value> constant_pool)
      : rng_(seed), constant_pool_(std::move(constant_pool)) {}

  StatusOr<std::map<std::string, Value>> ProvideConstants(
      const Config& config, const std::vector<std::string>& requested) override;
  StatusOr<UserChoice> ChooseInputs(
      const Config& config, const PageSchema& page,
      const std::map<std::string, std::set<Tuple>>& options) override;

 private:
  std::mt19937_64 rng_;
  std::vector<Value> constant_pool_;
};

/// The outcome of executing a bounded prefix of a run.
struct RunResult {
  std::vector<TraceStep> trace;
  /// The node after the last executed step.
  Config final_config;
  bool reached_error = false;
  std::string error_reason;
  /// Pages visited, in order (one per step).
  std::vector<std::string> page_sequence;
};

class Interpreter {
 public:
  Interpreter(const WebService* service, const Instance* database)
      : stepper_(service, database) {}

  /// Executes `steps` steps from the initial configuration.
  StatusOr<RunResult> Run(InputProvider& provider, int steps);

  /// Executes from an arbitrary configuration (session replay).
  StatusOr<RunResult> RunFrom(const Config& start, InputProvider& provider,
                              int steps);

  const Stepper& stepper() const { return stepper_; }

 private:
  Stepper stepper_;
};

}  // namespace wsv

#endif  // WSV_RUNTIME_INTERPRETER_H_
