// Ready-made example services and databases.
//
// The centerpiece is the paper's running example (Example 2.2 /
// Figure 2): the complete e-commerce site, reconstructed page-by-page
// from the WebML map in the appendix, written in the .wsv surface syntax
// and parsed by ws/spec_parser.h. Sessions are modeled per Remark 3.6:
// one user from login to logout (logout leads to a terminal goodbye page
// instead of re-requesting the name/password input constants, which
// Definition 2.3's condition (ii) would flag as an error).
//
// EcommercePaperHomePage() keeps the paper's literal HP with the
// clear -> HP self-loop; under the formal semantics that re-requests the
// input constants and is *not* error-free — a nice verifier demo.

#ifndef WSV_GALLERY_GALLERY_H_
#define WSV_GALLERY_GALLERY_H_

#include <string>

#include "common/status.h"
#include "relational/instance.h"
#include "verify/input_search_verifier.h"
#include "ws/service.h"

namespace wsv {

/// The .wsv source of the full e-commerce service (20 pages).
const std::string& EcommerceSpecText();

/// Parses and validates the e-commerce service.
StatusOr<WebService> BuildEcommerceService();

/// A small product/user database for the service: two users (one the
/// Admin), one laptop and one desktop with search criteria.
Instance EcommerceDatabase();

/// A minimal database for verification: one user (alice), one laptop.
/// The configuration graph over it is an order of magnitude smaller than
/// over EcommerceDatabase(), which matters for the PSPACE-ish search.
Instance EcommerceSmallDatabase();

/// A 3-page, input-bounded login service used by the quickstart example
/// and as a small test fixture.
const std::string& LoginSpecText();
StatusOr<WebService> BuildLoginService();
Instance LoginDatabase();

/// A variant of the login service whose home page keeps the paper's
/// literal clear -> HP self-loop (re-requesting the input constants):
/// not error-free under Definition 2.3.
StatusOr<WebService> BuildPaperClearLoopService();

/// Example 4.8 / Figure 1: the input-driven-search catalog service over
/// the product-category hierarchy, plus a database containing the
/// Figure 1 graph.
InputDrivenSearchSpec CatalogSearchSpec();
Instance CatalogSearchDatabase(int extra_depth = 0);

}  // namespace wsv

#endif  // WSV_GALLERY_GALLERY_H_
