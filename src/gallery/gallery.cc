#include "gallery/gallery.h"

#include "ws/spec_parser.h"

namespace wsv {

const std::string& EcommerceSpecText() {
  static const std::string& text = *new std::string(R"wsv(
# The running example of Deutsch-Sui-Vianu (PODS 2004): an e-commerce
# site selling computers, reconstructed from Example 2.2 and the Figure 2
# page map. Sessions run from login to the terminal goodbye page GBP
# (Remark 3.6): input constants may be requested only once per run.
service Ecommerce;

database user(uname, upass);
database prod_prices(pid, price), prod_names(pid, pname);
database criteria(cat, attr, val);
database prodmatch(pid, cat, ram, hdd, disp);

state error(msg);
state logged_in, is_admin;
state newuser(n, p);
state userchoice(cat, ram, hdd, disp);
state cart(pid, price);
state pick(pid, price), pickid(pid);
state paid(pid, price);
state shipped(pid), cancelled(pid), deleted(pid);

input name const;
input password const;
input button(label);
input laptopsearch(ram, hdd, disp), desktopsearch(ram, hdd, disp);
input pickproduct(pid, price);
input cartitem(pid, price);
input payamount(amount);
input orderpick(pid, price);

action conf(uname, price);
action ship(uname, pid);
action cancel(uname, pid);

# --- Home page (Example 2.2 verbatim, with clear -> GBP per Remark 3.6).
page HP {
  input name, password;
  options button(x) :- x = "login" | x = "register" | x = "clear";
  state +error("failed login") :- !user(name, password) & button("login");
  state +logged_in :- user(name, password) & button("login");
  state +is_admin :- user(name, password) & button("login")
                     & name = "Admin";
  # Idling on HP would re-request name/password (condition ii): an empty
  # submission ends the session like pressing clear.
  target GBP :- button("clear") | !(exists x . button(x) & true);
  target NP  :- button("register");
  target CP  :- user(name, password) & button("login") & name != "Admin";
  target AP  :- user(name, password) & button("login") & name = "Admin";
  target MP  :- !user(name, password) & button("login");
}

# --- New user registration.
page NP {
  options button(x) :- x = "confirm" | x = "cancel";
  state +newuser(name, password) :- button("confirm");
  target RP  :- button("confirm");
  target GBP :- button("cancel");
}

# --- Registration succeeded; user is logged in.
page RP {
  options button(x) :- x = "continue";
  state +logged_in :- button("continue");
  target CP :- button("continue");
}

# --- Failed-login message page (terminal: the session ends here).
page MP {
  options button(x) :- x = "ok";
}

# --- Customer page.
page CP {
  options button(x) :- x = "desktop" | x = "laptop" | x = "viewcart"
                     | x = "myorders" | x = "logout";
  target DSP :- button("desktop");
  target LSP :- button("laptop");
  target CC  :- button("viewcart");
  target VOP :- button("myorders");
  target GBP :- button("logout");
}

# --- Laptop search (Example 2.2's page LSP verbatim).
page LSP {
  options button(x) :- x = "search" | x = "viewcart" | x = "logout";
  options laptopsearch(r, h, d) :- criteria("laptop", "ram", r)
                                 & criteria("laptop", "hdd", h)
                                 & criteria("laptop", "display", d);
  state +userchoice("laptop", r, h, d) :- laptopsearch(r, h, d)
                                        & button("search");
  target GBP :- button("logout");
  target PIP :- (exists r, h, d . laptopsearch(r, h, d) & true)
              & button("search");
  target CC  :- button("viewcart");
}

# --- Desktop search, symmetric.
page DSP {
  options button(x) :- x = "search" | x = "viewcart" | x = "logout";
  options desktopsearch(r, h, d) :- criteria("desktop", "ram", r)
                                  & criteria("desktop", "hdd", h)
                                  & criteria("desktop", "display", d);
  state +userchoice("desktop", r, h, d) :- desktopsearch(r, h, d)
                                         & button("search");
  target GBP :- button("logout");
  target PIP :- (exists r, h, d . desktopsearch(r, h, d) & true)
              & button("search");
  target CC  :- button("viewcart");
}

# --- Product index: the products matching the previous step's search.
# The options are input-bounded thanks to Prev_I.
page PIP {
  options pickproduct(p, pr) :-
      ((exists r, h, d . prev.laptopsearch(r, h, d)
                       & prodmatch(p, "laptop", r, h, d))
     | (exists r, h, d . prev.desktopsearch(r, h, d)
                       & prodmatch(p, "desktop", r, h, d)))
     & prod_prices(p, pr);
  options button(x) :- x = "viewcart" | x = "back" | x = "logout";
  state +pick(p, pr) :- pickproduct(p, pr);
  state -pick(p, pr) :- pick(p, pr)
                      & (exists a, b . pickproduct(a, b) & true);
  state +pickid(p) :- exists pr . pickproduct(p, pr) & true;
  state -pickid(p) :- pickid(p)
                    & (exists a, b . pickproduct(a, b) & true);
  target PP  :- (exists p, pr . pickproduct(p, pr) & true)
              & !(exists x . button(x) & true);
  target CC  :- button("viewcart");
  target CP  :- button("back");
  target GBP :- button("logout");
}

# --- Product detail.
page PP {
  options button(x) :- x = "addtocart" | x = "viewcart" | x = "continue"
                     | x = "buy" | x = "logout";
  state +cart(p, pr) :- pick(p, pr) & button("addtocart");
  target CC  :- button("addtocart") | button("viewcart");
  target UPP :- button("buy");
  target CP  :- button("continue");
  target GBP :- button("logout");
}

# --- Cart contents. (The cartitem options read a state relation with
# variables, so this page is outside the input-bounded class, as is the
# authors' own demo.)
page CC {
  options cartitem(p, pr) :- cart(p, pr);
  options button(x) :- x = "empty" | x = "buy" | x = "continue"
                     | x = "logout";
  state -cart(p, pr) :- cart(p, pr) & button("empty");
  target UPP :- button("buy");
  target CP  :- button("continue");
  target GBP :- button("logout");
}

# --- Payment (Example 3.3's payment page).
page UPP {
  options payamount(a) :- exists p . pick(p, a) & true;
  options button(x) :- x = "submit" | x = "back";
  state +paid(p, a) :- pick(p, a) & payamount(a) & button("submit");
  target COP :- button("submit");
  target CC  :- button("back");
}

# --- Order confirmation (Example 3.3's OCP): confirming fires both the
# conf and ship actions.
page COP {
  options button(x) :- x = "confirmorder" | x = "continue" | x = "logout";
  action conf(u, a) :- u = name & prev.payamount(a)
                     & button("confirmorder");
  action ship(u, p) :- u = name & pickid(p) & button("confirmorder");
  target VOP :- button("confirmorder");
  target CP  :- button("continue");
  target GBP :- button("logout");
}

# --- View orders.
page VOP {
  options orderpick(p, a) :- paid(p, a);
  options button(x) :- x = "view" | x = "delete" | x = "back" | x = "logout";
  state +deleted(p) :- (exists a . orderpick(p, a) & true)
                     & button("delete");
  target OSP :- (exists p, a . orderpick(p, a) & true) & button("view");
  target DCP :- (exists p, a . orderpick(p, a) & true) & button("delete");
  target CP  :- button("back");
  target GBP :- button("logout");
}

# --- Order status; cancellation is offered for the order just selected.
page OSP {
  options button(x) :- x = "cancel" | x = "back" | x = "logout";
  state +cancelled(p) :- (exists a . prev.orderpick(p, a) & true)
                       & button("cancel");
  action cancel(u, p) :- u = name
                       & (exists a . prev.orderpick(p, a) & true)
                       & button("cancel");
  target CCP :- button("cancel");
  target VOP :- button("back");
  target GBP :- button("logout");
}

page CCP {
  options button(x) :- x = "continue" | x = "viewcart" | x = "logout";
  target CP  :- button("continue");
  target CC  :- button("viewcart");
  target GBP :- button("logout");
}

page DCP {
  options button(x) :- x = "continue" | x = "logout";
  target VOP :- button("continue");
  target GBP :- button("logout");
}

# --- Administrator pages.
page AP {
  options button(x) :- x = "pending" | x = "logout";
  target POP :- button("pending");
  target GBP :- button("logout");
}

page POP {
  options orderpick(p, a) :- paid(p, a) & !shipped(p);
  options button(x) :- x = "ship" | x = "back" | x = "logout";
  state +shipped(p) :- (exists a . orderpick(p, a) & true)
                     & button("ship");
  action ship(u, p) :- u = name & (exists a . orderpick(p, a) & true)
                     & button("ship");
  target SCP :- (exists p, a . orderpick(p, a) & true) & button("ship");
  target AP  :- button("back");
  target GBP :- button("logout");
}

page SCP {
  options button(x) :- x = "continue" | x = "back" | x = "logout";
  target POP :- button("continue");
  target AP  :- button("back");
  target GBP :- button("logout");
}

# --- Terminal goodbye page: the session is over.
page GBP {
}

home HP;
error ERR;
)wsv");
  return text;
}

StatusOr<WebService> BuildEcommerceService() {
  return ParseServiceSpec(EcommerceSpecText());
}

Instance EcommerceDatabase() {
  Instance db;
  auto v = [](const char* s) { return Value::Intern(s); };
  auto add = [&db](const char* rel, std::vector<Value> t) {
    Status st = db.AddFact(rel, t);
    (void)st;
  };
  add("user", {v("alice"), v("pw")});
  add("user", {v("Admin"), v("root")});
  add("prod_prices", {v("p1"), v("100")});
  add("prod_prices", {v("p2"), v("200")});
  add("prod_names", {v("p1"), v("zenbook")});
  add("prod_names", {v("p2"), v("tower")});
  add("criteria", {v("laptop"), v("ram"), v("4gb")});
  add("criteria", {v("laptop"), v("hdd"), v("1tb")});
  add("criteria", {v("laptop"), v("display"), v("13in")});
  add("criteria", {v("desktop"), v("ram"), v("8gb")});
  add("criteria", {v("desktop"), v("hdd"), v("2tb")});
  add("criteria", {v("desktop"), v("display"), v("24in")});
  add("prodmatch", {v("p1"), v("laptop"), v("4gb"), v("1tb"), v("13in")});
  add("prodmatch", {v("p2"), v("desktop"), v("8gb"), v("2tb"), v("24in")});
  return db;
}

Instance EcommerceSmallDatabase() {
  Instance db;
  auto v = [](const char* s) { return Value::Intern(s); };
  auto add = [&db](const char* rel, std::vector<Value> t) {
    Status st = db.AddFact(rel, t);
    (void)st;
  };
  add("user", {v("alice"), v("pw")});
  add("prod_prices", {v("p1"), v("100")});
  add("prod_names", {v("p1"), v("zenbook")});
  add("criteria", {v("laptop"), v("ram"), v("4gb")});
  add("criteria", {v("laptop"), v("hdd"), v("1tb")});
  add("criteria", {v("laptop"), v("display"), v("13in")});
  add("prodmatch", {v("p1"), v("laptop"), v("4gb"), v("1tb"), v("13in")});
  return db;
}

const std::string& LoginSpecText() {
  static const std::string& text = *new std::string(R"wsv(
# A 3-page input-bounded login service: the quickstart fixture.
service Login;

database user(uname, upass);
state error(msg);
state logged_in;
input name const;
input password const;
input button(label);

page HP {
  input name, password;
  options button(x) :- x = "login" | x = "quit";
  state +error("failed login") :- !user(name, password) & button("login");
  state +logged_in :- user(name, password) & button("login");
  target CP :- user(name, password) & button("login");
  target MP :- !user(name, password) & button("login");
  # Idling on HP would re-request the input constants (condition ii);
  # an empty submission ends the session like pressing quit.
  target BYE :- button("quit") | !(exists x . button(x) & true);
}

page CP {
  options button(x) :- x = "logout";
  target BYE :- button("logout");
}

page MP {
}

page BYE {
}

home HP;
error ERR;
)wsv");
  return text;
}

StatusOr<WebService> BuildLoginService() {
  return ParseServiceSpec(LoginSpecText());
}

Instance LoginDatabase() {
  Instance db;
  Status st = db.AddFact(
      "user", {Value::Intern("alice"), Value::Intern("pw")});
  (void)st;
  return db;
}

StatusOr<WebService> BuildPaperClearLoopService() {
  // As LoginSpecText, but "quit" is the paper's "clear" looping back to
  // HP — which re-requests the input constants and triggers condition
  // (ii) of Definition 2.3.
  static const char kSpec[] = R"wsv(
service PaperClearLoop;

database user(uname, upass);
state error(msg);
state logged_in;
input name const;
input password const;
input button(label);

page HP {
  input name, password;
  options button(x) :- x = "login" | x = "clear";
  state +error("failed login") :- !user(name, password) & button("login");
  state +logged_in :- user(name, password) & button("login");
  target CP :- user(name, password) & button("login");
  target MP :- !user(name, password) & button("login");
  target HP :- button("clear");
}

page CP {
}

page MP {
}

home HP;
error ERR;
)wsv";
  return ParseServiceSpec(kSpec);
}

InputDrivenSearchSpec CatalogSearchSpec() {
  InputDrivenSearchSpec spec;
  spec.name = "Catalog";
  spec.unary_db = {"newDesktop", "usedDesktop", "newLaptop", "usedLaptop"};
  spec.prop_states = {"new_sel"};
  SearchPageSpec top;
  // One page suffices to walk the Figure 1 hierarchy; the `new_sel`
  // proposition records whether the user descended through "new", and
  // the leaf condition consults it as in Example 4.8.
  top.name = "Browse";
  top.phi =
      "(y = \"products\") | (y = \"new\") | (y = \"used\")"
      " | (new_sel & newDesktop(y)) | (!new_sel & usedDesktop(y))"
      " | (new_sel & newLaptop(y)) | (!new_sel & usedLaptop(y))"
      " | (y = \"desktops\") | (y = \"laptops\")";
  top.states.push_back({"new_sel", true, "I(\"new\")"});
  top.states.push_back({"new_sel", false, "I(\"used\")"});
  spec.pages.push_back(top);
  spec.home = "Browse";
  return spec;
}

Instance CatalogSearchDatabase(int extra_depth) {
  Instance db;
  auto v = [](const char* s) { return Value::Intern(s); };
  auto edge = [&db](Value a, Value b) {
    Status st = db.AddFact("RI", {a, b});
    (void)st;
  };
  // Figure 1: products -> {new, used} -> {desktops, laptops}.
  db.SetConstant("i0", v("products"));
  edge(v("products"), v("new"));
  edge(v("products"), v("used"));
  edge(v("new"), v("desktops"));
  edge(v("new"), v("laptops"));
  edge(v("used"), v("desktops"));
  edge(v("used"), v("laptops"));
  // In-stock products under the category leaves.
  edge(v("desktops"), v("d1"));
  edge(v("laptops"), v("l1"));
  Status st;
  st = db.AddFact("newDesktop", {v("d1")});
  st = db.AddFact("usedDesktop", {v("d1")});
  st = db.AddFact("newLaptop", {v("l1")});
  st = db.AddFact("usedLaptop", {v("l1")});
  (void)st;
  // Optional deeper chain below d1 for scaling benches.
  Value prev = v("d1");
  for (int i = 0; i < extra_depth; ++i) {
    Value next = Value::Intern("d1_" + std::to_string(i));
    edge(prev, next);
    Status s2 = db.AddFact("newDesktop", {next});
    (void)s2;
    prev = next;
  }
  return db;
}

}  // namespace wsv
