#include "ltl/ltl.h"

#include "common/str_util.h"
#include "fo/input_bounded.h"
#include "fo/rewrite.h"

namespace wsv {

namespace {

TFormulaPtr MakeNode(TFormula::Kind kind) {
  struct Access : TFormula {
    explicit Access(Kind k) : TFormula(k) {}
  };
  return std::make_shared<Access>(kind);
}

TFormula* Mutable(const TFormulaPtr& f) {
  return const_cast<TFormula*>(f.get());
}

}  // namespace

TFormulaPtr TFormula::Fo(FormulaPtr f) {
  TFormulaPtr node = MakeNode(Kind::kFo);
  Mutable(node)->fo_ = std::move(f);
  return node;
}

TFormulaPtr TFormula::Not(TFormulaPtr f) {
  TFormulaPtr node = MakeNode(Kind::kNot);
  Mutable(node)->children_.push_back(std::move(f));
  return node;
}

TFormulaPtr TFormula::And(std::vector<TFormulaPtr> fs) {
  if (fs.size() == 1) return fs[0];
  if (fs.empty()) return Fo(Formula::True());
  TFormulaPtr node = MakeNode(Kind::kAnd);
  Mutable(node)->children_ = std::move(fs);
  return node;
}

TFormulaPtr TFormula::And(TFormulaPtr a, TFormulaPtr b) {
  return And(std::vector<TFormulaPtr>{std::move(a), std::move(b)});
}

TFormulaPtr TFormula::Or(std::vector<TFormulaPtr> fs) {
  if (fs.size() == 1) return fs[0];
  if (fs.empty()) return Fo(Formula::False());
  TFormulaPtr node = MakeNode(Kind::kOr);
  Mutable(node)->children_ = std::move(fs);
  return node;
}

TFormulaPtr TFormula::Or(TFormulaPtr a, TFormulaPtr b) {
  return Or(std::vector<TFormulaPtr>{std::move(a), std::move(b)});
}

TFormulaPtr TFormula::Implies(TFormulaPtr a, TFormulaPtr b) {
  return Or(Not(std::move(a)), std::move(b));
}

TFormulaPtr TFormula::X(TFormulaPtr f) {
  TFormulaPtr node = MakeNode(Kind::kX);
  Mutable(node)->children_.push_back(std::move(f));
  return node;
}

TFormulaPtr TFormula::U(TFormulaPtr lhs, TFormulaPtr rhs) {
  TFormulaPtr node = MakeNode(Kind::kU);
  Mutable(node)->children_.push_back(std::move(lhs));
  Mutable(node)->children_.push_back(std::move(rhs));
  return node;
}

TFormulaPtr TFormula::B(TFormulaPtr lhs, TFormulaPtr rhs) {
  TFormulaPtr node = MakeNode(Kind::kB);
  Mutable(node)->children_.push_back(std::move(lhs));
  Mutable(node)->children_.push_back(std::move(rhs));
  return node;
}

TFormulaPtr TFormula::F(TFormulaPtr f) {
  return U(Fo(Formula::True()), std::move(f));
}

TFormulaPtr TFormula::G(TFormulaPtr f) {
  return B(Fo(Formula::False()), std::move(f));
}

TFormulaPtr TFormula::E(TFormulaPtr f) {
  TFormulaPtr node = MakeNode(Kind::kE);
  Mutable(node)->children_.push_back(std::move(f));
  return node;
}

TFormulaPtr TFormula::A(TFormulaPtr f) {
  TFormulaPtr node = MakeNode(Kind::kA);
  Mutable(node)->children_.push_back(std::move(f));
  return node;
}

namespace {

template <typename Fn>
void Walk(const TFormula& f, const Fn& fn) {
  fn(f);
  for (const TFormulaPtr& c : f.children()) Walk(*c, fn);
}

bool IsTrueLeaf(const TFormula& f) {
  return f.kind() == TFormula::Kind::kFo &&
         f.fo()->kind() == Formula::Kind::kTrue;
}

bool IsFalseLeaf(const TFormula& f) {
  return f.kind() == TFormula::Kind::kFo &&
         f.fo()->kind() == Formula::Kind::kFalse;
}

}  // namespace

std::set<std::string> TFormula::FreeVariables() const {
  std::set<std::string> out;
  Walk(*this, [&](const TFormula& f) {
    if (f.kind() == Kind::kFo) {
      std::set<std::string> sub = f.fo()->FreeVariables();
      out.insert(sub.begin(), sub.end());
    }
  });
  return out;
}

std::vector<FormulaPtr> TFormula::FoLeaves() const {
  std::vector<FormulaPtr> out;
  std::set<const Formula*> seen;
  Walk(*this, [&](const TFormula& f) {
    if (f.kind() == Kind::kFo && seen.insert(f.fo().get()).second) {
      out.push_back(f.fo());
    }
  });
  return out;
}

std::set<Value> TFormula::Literals() const {
  std::set<Value> out;
  Walk(*this, [&](const TFormula& f) {
    if (f.kind() == Kind::kFo) {
      std::set<Value> sub = f.fo()->Literals();
      out.insert(sub.begin(), sub.end());
    }
  });
  return out;
}

bool TFormula::IsLtl() const {
  bool ok = true;
  Walk(*this, [&](const TFormula& f) {
    if (f.kind() == Kind::kE || f.kind() == Kind::kA) ok = false;
  });
  return ok;
}

namespace {

// CTL state formulas: FO leaves, boolean combinations of state formulas,
// and E/A applied to a single temporal operator over state formulas.
bool IsCtlState(const TFormula& f) {
  switch (f.kind()) {
    case TFormula::Kind::kFo:
      return true;
    case TFormula::Kind::kNot:
    case TFormula::Kind::kAnd:
    case TFormula::Kind::kOr: {
      for (const TFormulaPtr& c : f.children()) {
        if (!IsCtlState(*c)) return false;
      }
      return true;
    }
    case TFormula::Kind::kE:
    case TFormula::Kind::kA: {
      const TFormula& path = *f.children()[0];
      switch (path.kind()) {
        case TFormula::Kind::kX:
          return IsCtlState(*path.children()[0]);
        case TFormula::Kind::kU:
        case TFormula::Kind::kB:
          return IsCtlState(*path.lhs()) && IsCtlState(*path.rhs());
        default:
          return false;
      }
    }
    case TFormula::Kind::kX:
    case TFormula::Kind::kU:
    case TFormula::Kind::kB:
      return false;  // bare temporal operator outside a path quantifier
  }
  return false;
}

}  // namespace

bool TFormula::IsCtl() const { return IsCtlState(*this); }

namespace {

// A propositional FO formula: boolean combinations of arity-0 atoms.
bool IsPropositionalFo(const Formula& fo) {
  switch (fo.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return true;
    case Formula::Kind::kAtom:
      // Arity-0 atoms, or ground atoms over literals (treated as
      // propositions named by their printed form, cf. Example 4.3).
      for (const Term& t : fo.atom().terms) {
        if (!t.is_literal()) return false;
      }
      return true;
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const FormulaPtr& c : fo.children()) {
        if (!IsPropositionalFo(*c)) return false;
      }
      return true;
    case Formula::Kind::kEquals:
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      return false;
  }
  return false;
}

}  // namespace

bool TFormula::IsPropositional() const {
  bool ok = true;
  Walk(*this, [&](const TFormula& f) {
    if (f.kind() == Kind::kFo && !IsPropositionalFo(*f.fo())) ok = false;
  });
  return ok;
}

std::string TFormula::ToString() const {
  switch (kind_) {
    case Kind::kFo:
      return fo_->ToString();
    case Kind::kNot:
      return "!(" + children_[0]->ToString() + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kX:
      return "X(" + children_[0]->ToString() + ")";
    case Kind::kU:
      if (IsTrueLeaf(*children_[0])) {
        return "F(" + children_[1]->ToString() + ")";
      }
      return "(" + children_[0]->ToString() + " U " +
             children_[1]->ToString() + ")";
    case Kind::kB:
      if (IsFalseLeaf(*children_[0])) {
        return "G(" + children_[1]->ToString() + ")";
      }
      return "(" + children_[0]->ToString() + " B " +
             children_[1]->ToString() + ")";
    case Kind::kE:
      return "E " + children_[0]->ToString();
    case Kind::kA:
      return "A " + children_[0]->ToString();
  }
  return "?";
}

std::string TemporalProperty::ToString() const {
  if (universal_vars.empty()) return formula->ToString();
  return "forall " + Join(universal_vars, ", ") + " . " +
         formula->ToString();
}

namespace {

TFormulaPtr Nnf(const TFormula& f, bool negate) {
  switch (f.kind()) {
    case TFormula::Kind::kFo: {
      FormulaPtr leaf = negate ? ToNNF(*Formula::Not(f.fo())) : f.fo();
      return TFormula::Fo(std::move(leaf));
    }
    case TFormula::Kind::kNot:
      return Nnf(*f.children()[0], !negate);
    case TFormula::Kind::kAnd:
    case TFormula::Kind::kOr: {
      std::vector<TFormulaPtr> parts;
      parts.reserve(f.children().size());
      for (const TFormulaPtr& c : f.children()) {
        parts.push_back(Nnf(*c, negate));
      }
      bool make_and = (f.kind() == TFormula::Kind::kAnd) != negate;
      return make_and ? TFormula::And(std::move(parts))
                      : TFormula::Or(std::move(parts));
    }
    case TFormula::Kind::kX:
      return TFormula::X(Nnf(*f.children()[0], negate));
    case TFormula::Kind::kU: {
      TFormulaPtr l = Nnf(*f.lhs(), negate);
      TFormulaPtr r = Nnf(*f.rhs(), negate);
      return negate ? TFormula::B(std::move(l), std::move(r))
                    : TFormula::U(std::move(l), std::move(r));
    }
    case TFormula::Kind::kB: {
      TFormulaPtr l = Nnf(*f.lhs(), negate);
      TFormulaPtr r = Nnf(*f.rhs(), negate);
      return negate ? TFormula::U(std::move(l), std::move(r))
                    : TFormula::B(std::move(l), std::move(r));
    }
    case TFormula::Kind::kE:
      return negate ? TFormula::A(Nnf(*f.children()[0], true))
                    : TFormula::E(Nnf(*f.children()[0], false));
    case TFormula::Kind::kA:
      return negate ? TFormula::E(Nnf(*f.children()[0], true))
                    : TFormula::A(Nnf(*f.children()[0], false));
  }
  return TFormula::Fo(Formula::True());
}

}  // namespace

TFormulaPtr ToNegationNormalForm(const TFormula& f) {
  return Nnf(f, /*negate=*/false);
}

Status CheckInputBoundedProperty(const TemporalProperty& prop,
                                 const Vocabulary& vocab) {
  for (const FormulaPtr& leaf : prop.formula->FoLeaves()) {
    WSV_RETURN_IF_ERROR(CheckInputBounded(*leaf, vocab));
  }
  return Status::OK();
}

}  // namespace wsv
