// Temporal formulas: LTL-FO (Definition 3.1) and CTL(*)-FO (Definition
// A.3) share one AST.
//
// A temporal formula is built from FO *leaves* (full first-order formulas
// over the service vocabulary, including page propositions) using boolean
// connectives, the temporal operators X (next), U (until), and B
// ("before", the dual of U: phi B psi == !( !phi U !psi ), the release
// operator), and — for branching time — the path quantifiers E and A.
// G and F are sugar: G phi == false B phi, F phi == true U phi; the
// parser desugars them and the printer re-sugars.
//
// Quantifiers cannot span temporal operators (per the paper); a property
// is closed by a leading universal closure over its free variables,
// carried in TemporalProperty::universal_vars.

#ifndef WSV_LTL_LTL_H_
#define WSV_LTL_LTL_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "fo/formula.h"
#include "relational/schema.h"

namespace wsv {

class TFormula;
using TFormulaPtr = std::shared_ptr<const TFormula>;

class TFormula {
 public:
  enum class Kind {
    kFo,   // FO leaf
    kNot,
    kAnd,
    kOr,
    kX,    // next
    kU,    // until (binary)
    kB,    // before/release (binary)
    kE,    // exists a continuation (path quantifier)
    kA,    // all continuations
  };

  static TFormulaPtr Fo(FormulaPtr f);
  static TFormulaPtr Not(TFormulaPtr f);
  static TFormulaPtr And(std::vector<TFormulaPtr> fs);
  static TFormulaPtr And(TFormulaPtr a, TFormulaPtr b);
  static TFormulaPtr Or(std::vector<TFormulaPtr> fs);
  static TFormulaPtr Or(TFormulaPtr a, TFormulaPtr b);
  static TFormulaPtr Implies(TFormulaPtr a, TFormulaPtr b);
  static TFormulaPtr X(TFormulaPtr f);
  static TFormulaPtr U(TFormulaPtr lhs, TFormulaPtr rhs);
  static TFormulaPtr B(TFormulaPtr lhs, TFormulaPtr rhs);
  /// F phi == true U phi.
  static TFormulaPtr F(TFormulaPtr f);
  /// G phi == false B phi.
  static TFormulaPtr G(TFormulaPtr f);
  static TFormulaPtr E(TFormulaPtr f);
  static TFormulaPtr A(TFormulaPtr f);

  Kind kind() const { return kind_; }
  /// Valid only for kFo.
  const FormulaPtr& fo() const { return fo_; }
  const std::vector<TFormulaPtr>& children() const { return children_; }
  /// Binary operators: lhs/rhs aliases.
  const TFormulaPtr& lhs() const { return children_[0]; }
  const TFormulaPtr& rhs() const { return children_[1]; }

  /// Free variables across all FO leaves.
  std::set<std::string> FreeVariables() const;
  /// All distinct FO leaves, in syntactic order (shared structure
  /// deduplicated by pointer).
  std::vector<FormulaPtr> FoLeaves() const;
  /// All literal values in FO leaves.
  std::set<Value> Literals() const;

  /// True iff no path quantifier occurs (the LTL-FO fragment).
  bool IsLtl() const;
  /// True iff the formula is in CTL-FO: path quantifiers and temporal
  /// operators come in E/A + X/U/B pairs (Definition A.3's restricted
  /// formation rule).
  bool IsCtl() const;
  /// True iff every FO leaf is a proposition (arity-0 atom, true/false).
  bool IsPropositional() const;

  std::string ToString() const;

 protected:
  explicit TFormula(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
  FormulaPtr fo_;
  std::vector<TFormulaPtr> children_;
};

/// A temporal property: the universal closure forall x . phi(x) of a
/// temporal formula. For sentences, universal_vars is empty.
struct TemporalProperty {
  std::vector<std::string> universal_vars;
  TFormulaPtr formula;

  std::string ToString() const;
};

/// Pushes negations to the FO leaves: !X = X!, !(aUb) = !a B !b,
/// !(aBb) = !a U !b, !E = A!, !A = E!, de Morgan on and/or. The result
/// contains kNot only directly above kFo leaves (folded into the leaf).
TFormulaPtr ToNegationNormalForm(const TFormula& f);

/// Checks the input-bounded restriction on every FO leaf (Section 3).
Status CheckInputBoundedProperty(const TemporalProperty& prop,
                                 const Vocabulary& vocab);

}  // namespace wsv

#endif  // WSV_LTL_LTL_H_
