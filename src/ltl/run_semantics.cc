#include "ltl/run_semantics.h"

#include <memory>
#include <set>

#include "fo/bytecode/cache.h"
#include "fo/bytecode/vm.h"
#include "obs/metrics.h"

namespace wsv {

std::string LassoRun::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i == loop_start) out += "--- loop ---\n";
    out += "step " + std::to_string(i) + ": " + steps[i].ToString() + "\n";
  }
  return out;
}

StatusOr<bool> EvalFoAtStep(const FormulaPtr& leaf, const TraceView& step,
                            const Instance& database,
                            const WebService& service,
                            const Valuation& valuation) {
  WSV_TIMER("ltl/leaf_eval_ns");
  // The compiled program carries the leaf's constant-symbol and literal
  // analyses, so the hot path re-derives neither.
  std::shared_ptr<const fobc::Program> prog;
  if (fobc::BytecodeEnabled()) prog = fobc::GetOrCompileBool(leaf);
  std::set<std::string> csyms_fallback;
  std::set<Value> lits_fallback;
  if (prog == nullptr) {
    csyms_fallback = leaf->ConstantSymbols();
    lits_fallback = leaf->Literals();
  }
  const std::set<std::string>& csyms =
      prog != nullptr ? prog->constant_symbols : csyms_fallback;
  const std::set<Value>& lits =
      prog != nullptr ? prog->literals : lits_fallback;
  // Condition (a): input constants of the sentence must be in kappa_i.
  for (const std::string& c : csyms) {
    if (service.vocab().IsInputConstant(c) && step.kappa->count(c) == 0) {
      return false;
    }
  }
  // Page propositions: the current page is true, all others false.
  Instance pages;
  for (const RelationSymbol& sym :
       service.vocab().RelationsOfKind(SymbolKind::kPage)) {
    (void)pages.EnsureRelation(sym.name, 0);
    pages.MutableRelation(sym.name)->SetBool(sym.name == *step.page);
  }
  EvalContext ctx;
  ctx.AddLayer(step.inputs);
  ctx.AddLayer(step.state);
  ctx.AddLayer(step.actions);
  ctx.AddLayer(&pages);
  ctx.AddLayer(&database);
  ctx.SetPrevLayer(step.prev_inputs);
  for (const auto& [name, v] : *step.kappa) ctx.SetConstant(name, v);
  for (Value v : lits) ctx.AddDomainValue(v);
  for (const auto& [var, v] : valuation) ctx.AddDomainValue(v);
  if (prog != nullptr) return fobc::Execute(*prog, ctx, valuation);
  return Evaluate(*leaf, ctx, valuation);
}

StatusOr<bool> EvalFoAtStep(const FormulaPtr& leaf, const TraceStep& step,
                            const Instance& database,
                            const WebService& service,
                            const Valuation& valuation) {
  TraceView view;
  view.page = &step.page;
  view.state = &step.state;
  view.inputs = &step.inputs;
  view.prev_inputs = &step.prev_inputs;
  view.actions = &step.actions;
  view.kappa = &step.kappa;
  return EvalFoAtStep(leaf, view, database, service, valuation);
}

namespace {

size_t NextPos(const LassoRun& run, size_t i) {
  return i + 1 < run.steps.size() ? i + 1 : run.loop_start;
}

class LassoEvaluator {
 public:
  LassoEvaluator(const LassoRun& run, const Instance& database,
                 const WebService& service, const Valuation& valuation)
      : run_(run),
        database_(database),
        service_(service),
        valuation_(valuation) {}

  StatusOr<std::vector<char>> Truth(const TFormula& f) {
    const size_t n = run_.steps.size();
    switch (f.kind()) {
      case TFormula::Kind::kFo: {
        std::vector<char> v(n);
        for (size_t i = 0; i < n; ++i) {
          WSV_ASSIGN_OR_RETURN(bool b,
                               EvalFoAtStep(f.fo(), run_.steps[i],
                                            database_, service_, valuation_));
          v[i] = b ? 1 : 0;
        }
        return v;
      }
      case TFormula::Kind::kNot: {
        WSV_ASSIGN_OR_RETURN(std::vector<char> sub, Truth(*f.children()[0]));
        for (char& b : sub) b = b ? 0 : 1;
        return sub;
      }
      case TFormula::Kind::kAnd:
      case TFormula::Kind::kOr: {
        bool is_and = f.kind() == TFormula::Kind::kAnd;
        std::vector<char> acc(n, is_and ? 1 : 0);
        for (const TFormulaPtr& c : f.children()) {
          WSV_ASSIGN_OR_RETURN(std::vector<char> sub, Truth(*c));
          for (size_t i = 0; i < n; ++i) {
            acc[i] = is_and ? (acc[i] && sub[i]) : (acc[i] || sub[i]);
          }
        }
        return acc;
      }
      case TFormula::Kind::kX: {
        WSV_ASSIGN_OR_RETURN(std::vector<char> sub, Truth(*f.children()[0]));
        std::vector<char> v(n);
        for (size_t i = 0; i < n; ++i) v[i] = sub[NextPos(run_, i)];
        return v;
      }
      case TFormula::Kind::kU:
      case TFormula::Kind::kB: {
        WSV_ASSIGN_OR_RETURN(std::vector<char> l, Truth(*f.lhs()));
        WSV_ASSIGN_OR_RETURN(std::vector<char> r, Truth(*f.rhs()));
        // U is the least fixpoint of  Z = r | (l & X Z); B ("before",
        // i.e. release) the greatest fixpoint of  Z = r & (l | X Z).
        bool is_until = f.kind() == TFormula::Kind::kU;
        std::vector<char> v(n, is_until ? 0 : 1);
        bool changed = true;
        while (changed) {
          changed = false;
          for (size_t k = n; k-- > 0;) {
            char next = v[NextPos(run_, k)];
            char nv = is_until ? (r[k] || (l[k] && next))
                               : (r[k] && (l[k] || next));
            if (nv != v[k]) {
              v[k] = nv;
              changed = true;
            }
          }
        }
        return v;
      }
      case TFormula::Kind::kE:
      case TFormula::Kind::kA:
        return Status::InvalidArgument(
            "path quantifier in LTL evaluation: " + f.ToString());
    }
    return Status::Internal("bad temporal kind");
  }

 private:
  const LassoRun& run_;
  const Instance& database_;
  const WebService& service_;
  const Valuation& valuation_;
};

// The run's active domain for closure-variable valuations.
std::vector<Value> RunDomain(const LassoRun& run, const Instance& database,
                             const TFormula& formula) {
  std::set<Value> dom(database.domain().begin(), database.domain().end());
  for (const TraceStep& step : run.steps) {
    for (const Instance* inst :
         {&step.state, &step.inputs, &step.prev_inputs, &step.actions}) {
      dom.insert(inst->domain().begin(), inst->domain().end());
    }
    for (const auto& [name, v] : step.kappa) dom.insert(v);
  }
  std::set<Value> lits = formula.Literals();
  dom.insert(lits.begin(), lits.end());
  return std::vector<Value>(dom.begin(), dom.end());
}

}  // namespace

StatusOr<bool> EvaluateLtlOnLassoWithValuation(const TFormula& formula,
                                               const LassoRun& run,
                                               const Instance& database,
                                               const WebService& service,
                                               const Valuation& valuation) {
  if (run.steps.empty() || run.loop_start >= run.steps.size()) {
    return Status::InvalidArgument("malformed lasso run");
  }
  LassoEvaluator eval(run, database, service, valuation);
  WSV_ASSIGN_OR_RETURN(std::vector<char> v, eval.Truth(formula));
  return v[0] != 0;
}

StatusOr<bool> EvaluateLtlOnLasso(const TemporalProperty& prop,
                                  const LassoRun& run,
                                  const Instance& database,
                                  const WebService& service) {
  if (!prop.formula->IsLtl()) {
    return Status::InvalidArgument(
        "property contains path quantifiers; use the branching-time "
        "checkers");
  }
  std::vector<Value> domain = RunDomain(run, database, *prop.formula);
  const std::vector<std::string>& vars = prop.universal_vars;
  if (vars.empty()) {
    return EvaluateLtlOnLassoWithValuation(*prop.formula, run, database,
                                           service, {});
  }
  if (domain.empty()) return true;  // no valuations to check
  std::vector<size_t> idx(vars.size(), 0);
  while (true) {
    Valuation val;
    for (size_t i = 0; i < vars.size(); ++i) val[vars[i]] = domain[idx[i]];
    WSV_ASSIGN_OR_RETURN(
        bool holds, EvaluateLtlOnLassoWithValuation(*prop.formula, run,
                                                    database, service, val));
    if (!holds) return false;
    size_t k = 0;
    while (k < idx.size()) {
      if (++idx[k] < domain.size()) break;
      idx[k] = 0;
      ++k;
    }
    if (k == idx.size()) break;
  }
  return true;
}

}  // namespace wsv
