// LTL-FO semantics over concrete runs (Section 3).
//
// Runs are infinite; we represent the ultimately-periodic ones as lassos
// (a finite prefix plus a loop), which is exactly the shape of
// counterexamples produced by the verifier and of runs that reach the
// error page or otherwise cycle.
//
// An FO sentence is satisfied at step i iff (a) every input constant it
// mentions has been provided by step i (kappa_i), and (b) the structure
// combining the database, S_i, I_i, P_i, A_i, kappa_i and the page
// propositions (V_i true, all other pages false) satisfies it.

#ifndef WSV_LTL_RUN_SEMANTICS_H_
#define WSV_LTL_RUN_SEMANTICS_H_

#include <vector>

#include "common/status.h"
#include "fo/evaluator.h"
#include "ltl/ltl.h"
#include "runtime/config.h"
#include "ws/service.h"

namespace wsv {

/// An ultimately periodic run: steps[0..n) followed by looping back to
/// steps[loop_start].
struct LassoRun {
  std::vector<TraceStep> steps;
  size_t loop_start = 0;

  std::string ToString() const;
};

/// A non-owning view of one trace element; the verifiers label edges
/// through views to avoid materializing instances per edge.
struct TraceView {
  const std::string* page = nullptr;
  const Instance* state = nullptr;
  const Instance* inputs = nullptr;
  const Instance* prev_inputs = nullptr;
  const Instance* actions = nullptr;
  const std::map<std::string, Value>* kappa = nullptr;
};

/// Evaluates one FO leaf at one trace step under `valuation` (bindings
/// for the property's universal closure variables). Takes the shared
/// formula pointer so repeated leaves hit the compiled-program cache.
StatusOr<bool> EvalFoAtStep(const FormulaPtr& leaf, const TraceStep& step,
                            const Instance& database,
                            const WebService& service,
                            const Valuation& valuation);

StatusOr<bool> EvalFoAtStep(const FormulaPtr& leaf, const TraceView& step,
                            const Instance& database,
                            const WebService& service,
                            const Valuation& valuation);

/// Evaluates an LTL-FO property on a lasso run: true iff the run
/// satisfies the universal closure, with the closure variables ranging
/// over the run's active domain (database, all step instances, provided
/// constants, and the property's literals). Fails with InvalidArgument
/// if the property contains path quantifiers.
StatusOr<bool> EvaluateLtlOnLasso(const TemporalProperty& prop,
                                  const LassoRun& run,
                                  const Instance& database,
                                  const WebService& service);

/// Evaluates the (closed) temporal formula on the lasso for one fixed
/// valuation of the closure variables.
StatusOr<bool> EvaluateLtlOnLassoWithValuation(const TFormula& formula,
                                               const LassoRun& run,
                                               const Instance& database,
                                               const WebService& service,
                                               const Valuation& valuation);

}  // namespace wsv

#endif  // WSV_LTL_RUN_SEMANTICS_H_
