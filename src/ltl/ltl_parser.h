// Parser for temporal properties (LTL-FO and CTL(*)-FO).
//
// Grammar (loosest to tightest):
//
//   property  := ['forall' vars '.'] implies
//   implies   := or ['->' implies]
//   or        := and ('|' and)*
//   and       := until ('&' until)*
//   until     := unary [('U'|'B') until]          (right associative)
//   unary     := ('!'|'X'|'F'|'G'|'E'|'A') unary
//              | ('exists'|'forall') vars '.' unary    (pure FO only)
//              | '(' implies ')'
//              | FO atom / equality / true / false
//
// The single-letter identifiers X, F, G, U, B, E, A are reserved
// operators in property syntax and cannot name relations or variables
// inside properties. Maximal pure-FO subtrees are coalesced into single
// FO leaves, and a leading 'forall' becomes the property's universal
// closure. FO quantifiers whose body contains a temporal operator are
// rejected (quantification cannot span temporal operators).

#ifndef WSV_LTL_LTL_PARSER_H_
#define WSV_LTL_LTL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "ltl/ltl.h"
#include "relational/schema.h"

namespace wsv {

/// Parses a complete temporal property. `vocab` may be nullptr (no atom
/// checking).
StatusOr<TemporalProperty> ParseTemporalProperty(std::string_view text,
                                                 const Vocabulary* vocab);

}  // namespace wsv

#endif  // WSV_LTL_LTL_PARSER_H_
