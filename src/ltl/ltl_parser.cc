#include "ltl/ltl_parser.h"

#include <optional>

#include "fo/lexer.h"
#include "fo/parser.h"

namespace wsv {

namespace {

// Returns the FO formula if the temporal subtree is pure FO (a single
// coalesced leaf), else nullopt. The smart constructors below coalesce
// eagerly, so pure-FO subtrees are always single kFo nodes.
std::optional<FormulaPtr> AsPureFo(const TFormulaPtr& f) {
  if (f->kind() == TFormula::Kind::kFo) return f->fo();
  return std::nullopt;
}

TFormulaPtr SmartNot(TFormulaPtr f) {
  if (auto fo = AsPureFo(f)) return TFormula::Fo(Formula::Not(*fo));
  return TFormula::Not(std::move(f));
}

TFormulaPtr SmartAnd(std::vector<TFormulaPtr> parts) {
  std::vector<FormulaPtr> fo_parts;
  for (const TFormulaPtr& p : parts) {
    auto fo = AsPureFo(p);
    if (!fo.has_value()) return TFormula::And(std::move(parts));
    fo_parts.push_back(*fo);
  }
  return TFormula::Fo(Formula::And(std::move(fo_parts)));
}

TFormulaPtr SmartOr(std::vector<TFormulaPtr> parts) {
  std::vector<FormulaPtr> fo_parts;
  for (const TFormulaPtr& p : parts) {
    auto fo = AsPureFo(p);
    if (!fo.has_value()) return TFormula::Or(std::move(parts));
    fo_parts.push_back(*fo);
  }
  return TFormula::Fo(Formula::Or(std::move(fo_parts)));
}

bool IsOpIdent(const Token& t, const char* op) {
  return t.kind == TokenKind::kIdent && t.text == op;
}

class TemporalParser {
 public:
  TemporalParser(TokenStream& ts, const Vocabulary* vocab)
      : ts_(ts), vocab_(vocab) {}

  StatusOr<TemporalProperty> ParseProperty() {
    TemporalProperty prop;
    // A leading 'forall' is the universal closure.
    if (ts_.Peek().kind == TokenKind::kIdent &&
        ts_.Peek().text == "forall") {
      ts_.Next();
      do {
        WSV_ASSIGN_OR_RETURN(std::string v,
                             ts_.ExpectIdentText("a closure variable"));
        prop.universal_vars.push_back(std::move(v));
      } while (ts_.TryConsume(TokenKind::kComma));
      WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kDot, "'.'"));
    }
    WSV_ASSIGN_OR_RETURN(prop.formula, ParseImplies());
    if (!ts_.AtEnd()) return ts_.ErrorHere("trailing input after property");
    return prop;
  }

 private:
  StatusOr<TFormulaPtr> ParseImplies() {
    WSV_ASSIGN_OR_RETURN(TFormulaPtr lhs, ParseOr());
    if (ts_.TryConsume(TokenKind::kArrow)) {
      WSV_ASSIGN_OR_RETURN(TFormulaPtr rhs, ParseImplies());
      return SmartOr({SmartNot(std::move(lhs)), std::move(rhs)});
    }
    return lhs;
  }

  StatusOr<TFormulaPtr> ParseOr() {
    WSV_ASSIGN_OR_RETURN(TFormulaPtr first, ParseAnd());
    std::vector<TFormulaPtr> parts{std::move(first)};
    while (ts_.TryConsume(TokenKind::kOr)) {
      WSV_ASSIGN_OR_RETURN(TFormulaPtr next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return SmartOr(std::move(parts));
  }

  StatusOr<TFormulaPtr> ParseAnd() {
    WSV_ASSIGN_OR_RETURN(TFormulaPtr first, ParseUntil());
    std::vector<TFormulaPtr> parts{std::move(first)};
    while (ts_.TryConsume(TokenKind::kAnd)) {
      WSV_ASSIGN_OR_RETURN(TFormulaPtr next, ParseUntil());
      parts.push_back(std::move(next));
    }
    return SmartAnd(std::move(parts));
  }

  StatusOr<TFormulaPtr> ParseUntil() {
    WSV_ASSIGN_OR_RETURN(TFormulaPtr lhs, ParseUnary());
    if (IsOpIdent(ts_.Peek(), "U")) {
      ts_.Next();
      WSV_ASSIGN_OR_RETURN(TFormulaPtr rhs, ParseUntil());
      return TFormula::U(std::move(lhs), std::move(rhs));
    }
    if (IsOpIdent(ts_.Peek(), "B")) {
      ts_.Next();
      WSV_ASSIGN_OR_RETURN(TFormulaPtr rhs, ParseUntil());
      return TFormula::B(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<TFormulaPtr> ParseUnary() {
    const Token& t = ts_.Peek();
    if (t.kind == TokenKind::kNot) {
      ts_.Next();
      WSV_ASSIGN_OR_RETURN(TFormulaPtr sub, ParseUnary());
      return SmartNot(std::move(sub));
    }
    if (t.kind == TokenKind::kIdent) {
      if (t.text == "X" || t.text == "F" || t.text == "G" ||
          t.text == "E" || t.text == "A") {
        std::string op = ts_.Next().text;
        WSV_ASSIGN_OR_RETURN(TFormulaPtr sub, ParseUnary());
        if (op == "X") return TFormula::X(std::move(sub));
        if (op == "F") return TFormula::F(std::move(sub));
        if (op == "G") return TFormula::G(std::move(sub));
        if (op == "E") return TFormula::E(std::move(sub));
        return TFormula::A(std::move(sub));
      }
      if (t.text == "exists" || t.text == "forall") {
        bool exists = t.text == "exists";
        ts_.Next();
        std::vector<std::string> vars;
        do {
          WSV_ASSIGN_OR_RETURN(std::string v,
                               ts_.ExpectIdentText("a quantified variable"));
          vars.push_back(std::move(v));
        } while (ts_.TryConsume(TokenKind::kComma));
        WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kDot, "'.'"));
        WSV_ASSIGN_OR_RETURN(TFormulaPtr body, ParseImplies());
        std::optional<FormulaPtr> fo = AsPureFo(body);
        if (!fo.has_value()) {
          return Status::ParseError(
              "first-order quantifiers cannot span temporal operators "
              "(offending body: " + body->ToString() + ")");
        }
        FormulaPtr closed = exists ? Formula::Exists(std::move(vars), *fo)
                                   : Formula::Forall(std::move(vars), *fo);
        return TFormula::Fo(std::move(closed));
      }
    }
    return ParsePrimary();
  }

  StatusOr<TFormulaPtr> ParsePrimary() {
    const Token& t = ts_.Peek();
    if (t.kind == TokenKind::kLParen) {
      ts_.Next();
      WSV_ASSIGN_OR_RETURN(TFormulaPtr inner, ParseImplies());
      WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    if (t.kind == TokenKind::kIdent) {
      if (t.text == "true") {
        ts_.Next();
        return TFormula::Fo(Formula::True());
      }
      if (t.text == "false") {
        ts_.Next();
        return TFormula::Fo(Formula::False());
      }
      // Atom, prev-atom, proposition, or equality with term lhs.
      if (ts_.Peek(1).kind == TokenKind::kEquals ||
          ts_.Peek(1).kind == TokenKind::kNotEquals) {
        return ParseEquality();
      }
      WSV_ASSIGN_OR_RETURN(FormulaPtr atom, ParseAtomFrom(ts_, vocab_));
      return TFormula::Fo(std::move(atom));
    }
    if (t.kind == TokenKind::kString || t.kind == TokenKind::kNumber) {
      return ParseEquality();
    }
    return ts_.ErrorHere("expected a temporal or first-order formula");
  }

  StatusOr<TFormulaPtr> ParseEquality() {
    WSV_ASSIGN_OR_RETURN(Term lhs, ParseTermFrom(ts_, vocab_));
    bool negated;
    if (ts_.TryConsume(TokenKind::kEquals)) {
      negated = false;
    } else if (ts_.TryConsume(TokenKind::kNotEquals)) {
      negated = true;
    } else {
      return ts_.ErrorHere("expected '=' or '!='");
    }
    WSV_ASSIGN_OR_RETURN(Term rhs, ParseTermFrom(ts_, vocab_));
    FormulaPtr eq = negated ? Formula::NotEquals(std::move(lhs), std::move(rhs))
                            : Formula::Equals(std::move(lhs), std::move(rhs));
    return TFormula::Fo(std::move(eq));
  }

  TokenStream& ts_;
  const Vocabulary* vocab_;
};

}  // namespace

StatusOr<TemporalProperty> ParseTemporalProperty(std::string_view text,
                                                 const Vocabulary* vocab) {
  WSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  TemporalParser parser(ts, vocab);
  return parser.ParseProperty();
}

}  // namespace wsv
