#include "fo/qf.h"

#include <map>

#include "fo/rewrite.h"

namespace wsv {

std::string QfTupleVariable(const std::string& input, int position,
                            bool prev) {
  return (prev ? "__prev_" : "__cur_") + input + "__" +
         std::to_string(position);
}

std::string QfPresenceProp(const std::string& input, bool prev) {
  return (prev ? "__present_prev_" : "__present_") + input;
}

namespace {

class QfRewriter {
 public:
  explicit QfRewriter(const Vocabulary& vocab) : vocab_(vocab) {}

  bool IsInputAtom(const Atom& atom) const {
    const RelationSymbol* sym = vocab_.FindRelation(atom.relation);
    return sym != nullptr && sym->kind == SymbolKind::kInput;
  }

  // Rewrites an input atom: presence proposition plus equalities pinning
  // each term to the designated tuple variable. Terms listed in `skip`
  // (quantified variables being eliminated) produce no equality.
  FormulaPtr RewriteInputAtom(const Atom& atom,
                              const std::set<std::string>& skip) {
    std::vector<FormulaPtr> parts;
    parts.push_back(
        Formula::MakeAtom(QfPresenceProp(atom.relation, atom.prev), {}));
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      if (t.is_variable() && skip.count(t.name()) > 0) continue;
      parts.push_back(Formula::Equals(
          t, Term::Variable(QfTupleVariable(atom.relation,
                                            static_cast<int>(i) + 1,
                                            atom.prev))));
    }
    return Formula::And(std::move(parts));
  }

  // Substitution mapping each eliminated quantified variable to the
  // designated variable of the first guard position holding it.
  std::map<std::string, Term> GuardSubstitution(
      const Atom& atom, const std::vector<std::string>& vars) {
    std::set<std::string> want(vars.begin(), vars.end());
    std::map<std::string, Term> subst;
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      if (t.is_variable() && want.count(t.name()) > 0 &&
          subst.count(t.name()) == 0) {
        subst.emplace(t.name(),
                      Term::Variable(QfTupleVariable(
                          atom.relation, static_cast<int>(i) + 1,
                          atom.prev)));
      }
    }
    return subst;
  }

  StatusOr<FormulaPtr> Rewrite(const Formula& f) {
    switch (f.kind()) {
      case Formula::Kind::kTrue:
        return Formula::True();
      case Formula::Kind::kFalse:
        return Formula::False();
      case Formula::Kind::kEquals:
        return Formula::Equals(f.lhs(), f.rhs());
      case Formula::Kind::kAtom:
        if (IsInputAtom(f.atom())) {
          return RewriteInputAtom(f.atom(), {});
        }
        return Formula::MakeAtom(f.atom());
      case Formula::Kind::kNot: {
        WSV_ASSIGN_OR_RETURN(FormulaPtr c, Rewrite(*f.children()[0]));
        return Formula::Not(std::move(c));
      }
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        std::vector<FormulaPtr> parts;
        for (const FormulaPtr& c : f.children()) {
          WSV_ASSIGN_OR_RETURN(FormulaPtr rc, Rewrite(*c));
          parts.push_back(std::move(rc));
        }
        return f.kind() == Formula::Kind::kAnd
                   ? Formula::And(std::move(parts))
                   : Formula::Or(std::move(parts));
      }
      case Formula::Kind::kExists: {
        // Input-bounded shape: exists x (alpha & phi).
        const Formula& body = *f.body();
        const Formula* alpha = nullptr;
        std::vector<FormulaPtr> rest;
        if (body.kind() == Formula::Kind::kAtom) {
          alpha = &body;
        } else if (body.kind() == Formula::Kind::kAnd &&
                   !body.children().empty() &&
                   body.children()[0]->kind() == Formula::Kind::kAtom) {
          alpha = body.children()[0].get();
          rest.assign(body.children().begin() + 1, body.children().end());
        }
        if (alpha == nullptr || !IsInputAtom(alpha->atom())) {
          return Status::NotInputBounded(
              "existential quantifier without an input guard: " +
              f.ToString());
        }
        // Substitute each quantified variable by the designated variable
        // of its first guard position, then rewrite the substituted
        // guard: repeated-variable positions become equalities between
        // designated variables, trivial ones simplify away.
        std::map<std::string, Term> subst =
            GuardSubstitution(alpha->atom(), f.variables());
        FormulaPtr full_guard =
            Substitute(*Formula::MakeAtom(alpha->atom()), subst);
        WSV_ASSIGN_OR_RETURN(FormulaPtr guard_qf, Rewrite(*full_guard));
        WSV_ASSIGN_OR_RETURN(FormulaPtr rest_qf,
                             Rewrite(*Formula::And(std::move(rest))));
        FormulaPtr rest_sub = Substitute(*rest_qf, subst);
        return Formula::And(std::move(guard_qf), std::move(rest_sub));
      }
      case Formula::Kind::kForall: {
        // forall x (alpha -> phi)  ==  !(exists x (alpha & !phi)).
        const Formula& body = *f.body();
        if (body.kind() != Formula::Kind::kOr ||
            body.children().size() < 2 ||
            body.children()[0]->kind() != Formula::Kind::kNot) {
          return Status::NotInputBounded(
              "universal quantifier without an input guard: " +
              f.ToString());
        }
        FormulaPtr alpha = body.children()[0]->children()[0];
        std::vector<FormulaPtr> phi(body.children().begin() + 1,
                                    body.children().end());
        FormulaPtr as_exists = Formula::Exists(
            f.variables(),
            Formula::And(alpha,
                         Formula::Not(Formula::Or(std::move(phi)))));
        WSV_ASSIGN_OR_RETURN(FormulaPtr inner, Rewrite(*as_exists));
        return Formula::Not(std::move(inner));
      }
    }
    return Status::Internal("bad formula kind");
  }

 private:
  const Vocabulary& vocab_;
};

}  // namespace

StatusOr<FormulaPtr> InputBoundedToQuantifierFree(const Formula& formula,
                                                  const Vocabulary& vocab) {
  QfRewriter rewriter(vocab);
  WSV_ASSIGN_OR_RETURN(FormulaPtr out, rewriter.Rewrite(formula));
  return Simplify(*out);
}

}  // namespace wsv
