#include "fo/etc.h"

#include <map>
#include <set>

#include "common/str_util.h"

namespace wsv {

namespace {

EtcPtr MakeNode(EtcFormula::Kind kind) {
  struct Access : EtcFormula {
    explicit Access(Kind k) : EtcFormula(k) {}
  };
  return std::make_shared<Access>(kind);
}

EtcFormula* Mutable(const EtcPtr& f) {
  return const_cast<EtcFormula*>(f.get());
}

}  // namespace

EtcPtr EtcFormula::Fo(FormulaPtr f) {
  EtcPtr node = MakeNode(Kind::kFo);
  Mutable(node)->fo_ = std::move(f);
  return node;
}

EtcPtr EtcFormula::And(std::vector<EtcPtr> parts) {
  EtcPtr node = MakeNode(Kind::kAnd);
  Mutable(node)->children_ = std::move(parts);
  return node;
}

EtcPtr EtcFormula::Or(std::vector<EtcPtr> parts) {
  EtcPtr node = MakeNode(Kind::kOr);
  Mutable(node)->children_ = std::move(parts);
  return node;
}

EtcPtr EtcFormula::Exists(std::vector<std::string> vars, EtcPtr body) {
  EtcPtr node = MakeNode(Kind::kExists);
  Mutable(node)->vars_ = std::move(vars);
  Mutable(node)->children_.push_back(std::move(body));
  return node;
}

EtcPtr EtcFormula::Tc(std::vector<std::string> xs,
                      std::vector<std::string> ys, EtcPtr body,
                      std::vector<Term> source, std::vector<Term> target) {
  EtcPtr node = MakeNode(Kind::kTc);
  Mutable(node)->vars_ = std::move(xs);
  Mutable(node)->ys_ = std::move(ys);
  Mutable(node)->children_.push_back(std::move(body));
  Mutable(node)->source_ = std::move(source);
  Mutable(node)->target_ = std::move(target);
  return node;
}

std::string EtcFormula::ToString() const {
  switch (kind_) {
    case Kind::kFo:
      return fo_->ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kExists:
      return "exists " + Join(vars_, ", ") + " . (" +
             children_[0]->ToString() + ")";
    case Kind::kTc: {
      std::string out = "[TC_{" + Join(vars_, ",") + ";" + Join(ys_, ",") +
                        "} " + children_[0]->ToString() + "](";
      for (size_t i = 0; i < source_.size(); ++i) {
        if (i > 0) out += ",";
        out += source_[i].ToString();
      }
      out += ";";
      for (size_t i = 0; i < target_.size(); ++i) {
        if (i > 0) out += ",";
        out += target_[i].ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

StatusOr<Value> ResolveEtcTerm(const Term& t, const EvalContext& ctx,
                               const Valuation& valuation) {
  switch (t.kind()) {
    case Term::Kind::kLiteral:
      return t.literal();
    case Term::Kind::kVariable: {
      auto it = valuation.find(t.name());
      if (it == valuation.end()) {
        return Status::Internal("unbound variable in E+TC term: " + t.name());
      }
      return it->second;
    }
    case Term::Kind::kConstantSymbol: {
      std::optional<Value> v = ctx.ResolveConstant(t.name());
      if (!v.has_value()) {
        return Status::Internal("unbound constant in E+TC term: " + t.name());
      }
      return *v;
    }
  }
  return Status::Internal("bad term kind");
}

StatusOr<bool> EvalNode(const EtcFormula& f, const EvalContext& ctx,
                        Valuation& valuation);

// Enumerates assignments for vars[i..] over the domain; existential.
StatusOr<bool> EvalExists(const std::vector<std::string>& vars, size_t i,
                          const EtcFormula& body, const EvalContext& ctx,
                          Valuation& valuation,
                          const std::vector<Value>& domain) {
  if (i == vars.size()) return EvalNode(body, ctx, valuation);
  auto saved_it = valuation.find(vars[i]);
  std::optional<Value> saved;
  if (saved_it != valuation.end()) saved = saved_it->second;
  bool found = false;
  Status failure = Status::OK();
  for (Value v : domain) {
    valuation[vars[i]] = v;
    StatusOr<bool> sub = EvalExists(vars, i + 1, body, ctx, valuation, domain);
    if (!sub.ok()) {
      failure = sub.status();
      break;
    }
    if (*sub) {
      found = true;
      break;
    }
  }
  if (saved.has_value()) {
    valuation[vars[i]] = *saved;
  } else {
    valuation.erase(vars[i]);
  }
  if (!failure.ok()) return failure;
  return found;
}

StatusOr<bool> EvalNode(const EtcFormula& f, const EvalContext& ctx,
                        Valuation& valuation) {
  switch (f.kind()) {
    case EtcFormula::Kind::kFo:
      return Evaluate(*f.fo(), ctx, valuation);
    case EtcFormula::Kind::kAnd:
      for (const EtcPtr& c : f.children()) {
        WSV_ASSIGN_OR_RETURN(bool sub, EvalNode(*c, ctx, valuation));
        if (!sub) return false;
      }
      return true;
    case EtcFormula::Kind::kOr:
      for (const EtcPtr& c : f.children()) {
        WSV_ASSIGN_OR_RETURN(bool sub, EvalNode(*c, ctx, valuation));
        if (sub) return true;
      }
      return false;
    case EtcFormula::Kind::kExists: {
      const std::vector<Value>& domain = ctx.ActiveDomain();
      return EvalExists(f.variables(), 0, *f.children()[0], ctx, valuation,
                        domain);
    }
    case EtcFormula::Kind::kTc: {
      size_t k = f.tc_xs().size();
      if (f.tc_ys().size() != k || f.tc_source().size() != k ||
          f.tc_target().size() != k) {
        return Status::InvalidArgument("TC arity mismatch");
      }
      Tuple src(k), dst(k);
      for (size_t i = 0; i < k; ++i) {
        WSV_ASSIGN_OR_RETURN(src[i],
                             ResolveEtcTerm(f.tc_source()[i], ctx, valuation));
        WSV_ASSIGN_OR_RETURN(dst[i],
                             ResolveEtcTerm(f.tc_target()[i], ctx, valuation));
      }
      // TC is reflexive on its arguments by the usual convention used in
      // the reduction (a path of length >= 0); include src itself.
      if (src == dst) return true;
      const std::vector<Value>& domain = ctx.ActiveDomain();
      // BFS from src over edges defined by body(x; y).
      std::set<Tuple> visited{src};
      std::vector<Tuple> frontier{src};
      // Enumerate candidate successor tuples.
      std::vector<Tuple> all_tuples;
      {
        if (k == 0) return src == dst;
        std::vector<size_t> idx(k, 0);
        if (domain.empty()) return false;
        while (true) {
          Tuple t(k);
          for (size_t i = 0; i < k; ++i) t[i] = domain[idx[i]];
          all_tuples.push_back(std::move(t));
          size_t j = 0;
          while (j < k) {
            if (++idx[j] < domain.size()) break;
            idx[j] = 0;
            ++j;
          }
          if (j == k) break;
        }
      }
      while (!frontier.empty()) {
        Tuple cur = frontier.back();
        frontier.pop_back();
        for (const Tuple& next : all_tuples) {
          if (visited.count(next) > 0) continue;
          Valuation inner = valuation;
          for (size_t i = 0; i < k; ++i) {
            inner[f.tc_xs()[i]] = cur[i];
            inner[f.tc_ys()[i]] = next[i];
          }
          WSV_ASSIGN_OR_RETURN(bool edge,
                               EvalNode(*f.children()[0], ctx, inner));
          if (!edge) continue;
          if (next == dst) return true;
          visited.insert(next);
          frontier.push_back(next);
        }
      }
      return false;
    }
  }
  return Status::Internal("bad E+TC kind");
}

// Enumerates all instances over `relations` with the fixed domain,
// invoking `fn` on each; stops early when fn returns true.
StatusOr<bool> EnumerateInstances(
    const std::vector<EtcRelationSpec>& relations, size_t rel_idx,
    const std::vector<Value>& domain, Instance& current,
    const std::function<StatusOr<bool>(const Instance&)>& fn) {
  if (rel_idx == relations.size()) return fn(current);
  const EtcRelationSpec& spec = relations[rel_idx];
  // All tuples of the right arity.
  std::vector<Tuple> tuples;
  if (spec.arity == 0) {
    tuples.push_back(Tuple{});
  } else {
    std::vector<size_t> idx(spec.arity, 0);
    if (!domain.empty()) {
      while (true) {
        Tuple t(spec.arity);
        for (int i = 0; i < spec.arity; ++i) t[i] = domain[idx[i]];
        tuples.push_back(std::move(t));
        int j = 0;
        while (j < spec.arity) {
          if (++idx[j] < domain.size()) break;
          idx[j] = 0;
          ++j;
        }
        if (j == spec.arity) break;
      }
    }
  }
  // Enumerate all subsets via a counter (tuples.size() <= ~16 for the
  // tiny vocabularies this is meant for).
  if (tuples.size() > 20) {
    return Status::ResourceExhausted(
        "BoundedSatisfiable: relation " + spec.name + " has " +
        std::to_string(tuples.size()) + " candidate tuples; too many");
  }
  uint64_t limit = uint64_t{1} << tuples.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    WSV_RETURN_IF_ERROR(current.EnsureRelation(spec.name, spec.arity));
    Relation* rel = current.MutableRelation(spec.name);
    rel->Clear();
    for (size_t i = 0; i < tuples.size(); ++i) {
      if (mask & (uint64_t{1} << i)) rel->Insert(tuples[i]);
    }
    WSV_ASSIGN_OR_RETURN(
        bool done, EnumerateInstances(relations, rel_idx + 1, domain, current,
                                      fn));
    if (done) return true;
  }
  return false;
}

}  // namespace

StatusOr<bool> EvaluateEtc(const EtcFormula& f, const EvalContext& ctx,
                           const Valuation& valuation) {
  Valuation val = valuation;
  return EvalNode(f, ctx, val);
}

StatusOr<std::optional<Instance>> BoundedSatisfiable(
    const EtcFormula& f, const std::vector<EtcRelationSpec>& relations,
    int max_domain) {
  for (int n = 0; n <= max_domain; ++n) {
    std::vector<Value> domain;
    for (int i = 0; i < n; ++i) {
      domain.push_back(Value::Intern("e" + std::to_string(i)));
    }
    Instance current;
    for (Value v : domain) current.AddDomainValue(v);
    std::optional<Instance> witness;
    auto check = [&](const Instance& inst) -> StatusOr<bool> {
      EvalContext ctx;
      ctx.AddLayer(&inst);
      WSV_ASSIGN_OR_RETURN(bool sat, EvaluateEtc(f, ctx));
      if (sat) witness = inst;
      return sat;
    };
    WSV_ASSIGN_OR_RETURN(bool found,
                         EnumerateInstances(relations, 0, domain, current,
                                            check));
    if (found) return witness;
  }
  return std::optional<Instance>();
}

}  // namespace wsv
