// Recursive-descent parser for first-order formulas.
//
// Grammar (loosest to tightest precedence; quantifiers scope maximally to
// the right):
//
//   formula  := implies
//   implies  := or ('->' implies)?
//   or       := and ('|' and)*
//   and      := unary ('&' unary)*
//   unary    := '!' unary | ('exists'|'forall') vars '.' implies | primary
//   primary  := '(' formula ')' | 'true' | 'false'
//             | atom | term ('='|'!=') term
//   atom     := ['prev' '.'] IDENT ['(' term (',' term)* ')']
//   term     := IDENT | STRING | NUMBER
//
// A bare IDENT term resolves to a constant symbol if the vocabulary
// registers one of that name, else to a variable. STRING and NUMBER
// tokens are literals denoting themselves. When a vocabulary is supplied,
// atoms are checked against it (existence, arity, prev only on input
// relations).

#ifndef WSV_FO_PARSER_H_
#define WSV_FO_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "fo/formula.h"
#include "fo/lexer.h"
#include "relational/schema.h"

namespace wsv {

/// Parses a complete FO formula from `text`. The whole input must be
/// consumed. `vocab` may be nullptr (no atom checking; all bare names
/// become variables).
StatusOr<FormulaPtr> ParseFormula(std::string_view text,
                                  const Vocabulary* vocab = nullptr);

/// Parses an FO formula from an existing token stream (used by the .wsv
/// specification parser and the temporal-logic parsers). Stops at the
/// first token that cannot extend the formula.
StatusOr<FormulaPtr> ParseFormulaFrom(TokenStream& ts,
                                      const Vocabulary* vocab);

/// Parses a single term (used by rule-head parsing).
StatusOr<Term> ParseTermFrom(TokenStream& ts, const Vocabulary* vocab);

/// Parses a single atom `[prev.]R(t, ...)` (used by the temporal parsers).
StatusOr<FormulaPtr> ParseAtomFrom(TokenStream& ts, const Vocabulary* vocab);

}  // namespace wsv

#endif  // WSV_FO_PARSER_H_
