#include "fo/evaluator.h"

#include <algorithm>
#include <utility>

#include "fo/rewrite.h"
#include "obs/metrics.h"

namespace wsv {

void EvalContext::AddLayer(const Instance* instance) {
  layers_.push_back(instance);
  domain_valid_ = false;
}

void EvalContext::SetConstant(const std::string& name, Value v) {
  constant_overrides_[name] = v;
  domain_valid_ = false;
}

const Relation* EvalContext::ResolveRelation(const std::string& name,
                                             bool prev) const {
  if (prev) {
    if (prev_layer_ == nullptr) return nullptr;
    return prev_layer_->FindRelation(name);
  }
  for (const Instance* layer : layers_) {
    const Relation* rel = layer->FindRelation(name);
    if (rel != nullptr) return rel;
  }
  return nullptr;
}

std::optional<Value> EvalContext::ResolveConstant(
    const std::string& name) const {
  auto it = constant_overrides_.find(name);
  if (it != constant_overrides_.end()) return it->second;
  for (const Instance* layer : layers_) {
    std::optional<Value> v = layer->FindConstant(name);
    if (v.has_value()) return v;
  }
  return std::nullopt;
}

const std::vector<Value>& EvalContext::ActiveDomain() const {
  if (!domain_valid_) {
    std::set<Value> dom = extra_domain_;
    for (const Instance* layer : layers_) {
      dom.insert(layer->domain().begin(), layer->domain().end());
    }
    if (prev_layer_ != nullptr) {
      dom.insert(prev_layer_->domain().begin(), prev_layer_->domain().end());
    }
    for (const auto& [name, v] : constant_overrides_) dom.insert(v);
    domain_cache_.assign(dom.begin(), dom.end());
    domain_valid_ = true;
  }
  return domain_cache_;
}

namespace {

// Hot-path variable bindings: a small insertion-ordered flat vector.
// Rule and property valuations hold a handful of variables, where a
// linear scan over contiguous pairs beats std::map node chasing in the
// quantifier loops. The public API keeps Valuation = std::map; the
// conversion happens once per Evaluate/EvaluateQuery entry.
class Bindings {
 public:
  Bindings() = default;
  explicit Bindings(const Valuation& valuation) {
    entries_.reserve(valuation.size());
    for (const auto& [name, v] : valuation) entries_.emplace_back(name, v);
  }

  const Value* Find(const std::string& name) const {
    for (const auto& e : entries_) {
      if (e.first == name) return &e.second;
    }
    return nullptr;
  }

  void Set(const std::string& name, Value v) {
    for (auto& e : entries_) {
      if (e.first == name) {
        e.second = v;
        return;
      }
    }
    entries_.emplace_back(name, v);
  }

  void Erase(const std::string& name) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == name) {
        entries_.erase(it);
        return;
      }
    }
  }

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

// Recursively flattens nested conjunctions into a conjunct list.
void FlattenAnd(const Formula& f, std::vector<const Formula*>* out) {
  if (f.kind() == Formula::Kind::kAnd) {
    for (const FormulaPtr& c : f.children()) FlattenAnd(*c, out);
  } else {
    out->push_back(&f);
  }
}

// Evaluation uses guard-driven joins: an existential quantifier whose
// body contains a positive atom conjunct binds its variables by
// iterating that atom's relation instead of the whole active domain;
// universal quantifiers evaluate as negated existentials of the NNF'd
// negation (turning the input-bounded forall x (alpha -> phi) pattern
// into a guarded exists). This makes input-bounded rule evaluation cost
// proportional to the relations' sizes rather than |domain|^vars.
class Evaluator {
 public:
  explicit Evaluator(const EvalContext& ctx) : ctx_(ctx) {}

  StatusOr<Value> ResolveTerm(const Term& t, const Bindings& valuation) {
    switch (t.kind()) {
      case Term::Kind::kLiteral:
        return t.literal();
      case Term::Kind::kVariable: {
        const Value* v = valuation.Find(t.name());
        if (v == nullptr) {
          return Status::Internal("unbound variable: " + t.name());
        }
        return *v;
      }
      case Term::Kind::kConstantSymbol: {
        std::optional<Value> v = ctx_.ResolveConstant(t.name());
        if (!v.has_value()) {
          return Status::Internal("unbound constant symbol: " + t.name());
        }
        return *v;
      }
    }
    return Status::Internal("bad term kind");
  }

  StatusOr<bool> Eval(const Formula& f, Bindings& valuation) {
    switch (f.kind()) {
      case Formula::Kind::kTrue:
        return true;
      case Formula::Kind::kFalse:
        return false;
      case Formula::Kind::kAtom: {
        const Atom& atom = f.atom();
        const Relation* rel = ctx_.ResolveRelation(atom.relation, atom.prev);
        if (rel == nullptr || rel->empty()) return false;
        Tuple t;
        t.reserve(atom.terms.size());
        for (const Term& term : atom.terms) {
          WSV_ASSIGN_OR_RETURN(Value v, ResolveTerm(term, valuation));
          t.push_back(v);
        }
        return rel->Contains(t);
      }
      case Formula::Kind::kEquals: {
        WSV_ASSIGN_OR_RETURN(Value lhs, ResolveTerm(f.lhs(), valuation));
        WSV_ASSIGN_OR_RETURN(Value rhs, ResolveTerm(f.rhs(), valuation));
        return lhs == rhs;
      }
      case Formula::Kind::kNot: {
        WSV_ASSIGN_OR_RETURN(bool sub, Eval(*f.children()[0], valuation));
        return !sub;
      }
      case Formula::Kind::kAnd: {
        for (const FormulaPtr& c : f.children()) {
          WSV_ASSIGN_OR_RETURN(bool sub, Eval(*c, valuation));
          if (!sub) return false;
        }
        return true;
      }
      case Formula::Kind::kOr: {
        for (const FormulaPtr& c : f.children()) {
          WSV_ASSIGN_OR_RETURN(bool sub, Eval(*c, valuation));
          if (sub) return true;
        }
        return false;
      }
      case Formula::Kind::kExists:
      case Formula::Kind::kForall: {
        // Quantified variables shadow any outer bindings.
        std::vector<std::pair<std::string, Value>> saved;
        for (const std::string& v : f.variables()) {
          const Value* bound = valuation.Find(v);
          if (bound != nullptr) {
            saved.emplace_back(v, *bound);
            valuation.Erase(v);
          }
        }
        std::set<std::string> vars(f.variables().begin(),
                                   f.variables().end());
        StatusOr<bool> result = true;
        if (f.kind() == Formula::Kind::kExists) {
          result = EvalExists(std::move(vars), *f.body(), valuation);
        } else {
          // forall x phi == !exists x !phi; NNF re-exposes the guard of
          // the input-bounded pattern forall x (alpha -> phi).
          FormulaPtr negated = ToNNF(*Formula::Not(f.body()));
          result = EvalExists(std::move(vars), *negated, valuation);
          if (result.ok()) result = !*result;
        }
        for (const auto& [v, val] : saved) valuation.Set(v, val);
        return result;
      }
    }
    return Status::Internal("bad formula kind");
  }

  // Existential evaluation over the variable set `vars`.
  StatusOr<bool> EvalExists(std::set<std::string> vars, const Formula& body,
                            Bindings& valuation) {
    if (vars.empty()) return Eval(body, valuation);

    // Flatten conjunctions to find a guard atom.
    std::vector<const Formula*> conjuncts;
    FlattenAnd(body, &conjuncts);
    const Formula* guard = nullptr;
    for (const Formula* c : conjuncts) {
      if (c->kind() != Formula::Kind::kAtom) continue;
      // Usable iff it binds at least one quantified variable.
      for (const Term& t : c->atom().terms) {
        if (t.is_variable() && vars.count(t.name()) > 0) {
          guard = c;
          break;
        }
      }
      if (guard != nullptr) break;
    }

    if (guard != nullptr) {
      const Atom& atom = guard->atom();
      const Relation* rel = ctx_.ResolveRelation(atom.relation, atom.prev);
      if (rel == nullptr || rel->empty()) return false;  // guard unmatchable
      for (const Tuple& tuple : rel->tuples()) {
        std::vector<std::string> newly_bound;
        bool match = true;
        for (size_t i = 0; i < atom.terms.size() && match; ++i) {
          const Term& term = atom.terms[i];
          if (term.is_variable()) {
            const Value* bound = valuation.Find(term.name());
            if (bound != nullptr) {
              match = *bound == tuple[i];
            } else if (vars.count(term.name()) > 0) {
              valuation.Set(term.name(), tuple[i]);
              newly_bound.push_back(term.name());
              vars.erase(term.name());
            } else {
              // Free variable that should have been bound.
              match = false;
            }
          } else {
            StatusOr<Value> v = ResolveTerm(term, valuation);
            if (!v.ok()) return v.status();
            match = *v == tuple[i];
          }
        }
        StatusOr<bool> sub = true;
        if (match) {
          sub = EvalExistsRest(vars, conjuncts, guard, valuation);
        }
        for (const std::string& v : newly_bound) {
          valuation.Erase(v);
          vars.insert(v);
        }
        if (!sub.ok()) return sub.status();
        if (match && *sub) return true;
      }
      return false;
    }

    // Fallback: bind one variable over the active domain.
    std::string var = *vars.begin();
    vars.erase(vars.begin());
    if (domain_ == nullptr) domain_ = &ctx_.ActiveDomain();
    for (Value v : *domain_) {
      valuation.Set(var, v);
      StatusOr<bool> sub = EvalExists(vars, body, valuation);
      valuation.Erase(var);
      if (!sub.ok()) return sub.status();
      if (*sub) return true;
    }
    return false;
  }

 private:
  // Continues an existential after the guard bound some variables:
  // evaluates the remaining conjuncts with the still-unbound vars.
  StatusOr<bool> EvalExistsRest(std::set<std::string>& vars,
                                const std::vector<const Formula*>& conjuncts,
                                const Formula* guard, Bindings& valuation) {
    std::vector<FormulaPtr> rest;
    rest.reserve(conjuncts.size());
    for (const Formula* c : conjuncts) {
      if (c == guard) continue;
      rest.push_back(Clone(*c));
    }
    FormulaPtr body = Formula::And(std::move(rest));
    return EvalExists(vars, *body, valuation);
  }

  // Shallow re-wrap of a subformula as a shared pointer (the nodes are
  // immutable, so sharing children is safe).
  static FormulaPtr Clone(const Formula& f) {
    switch (f.kind()) {
      case Formula::Kind::kTrue:
        return Formula::True();
      case Formula::Kind::kFalse:
        return Formula::False();
      case Formula::Kind::kAtom:
        return Formula::MakeAtom(f.atom());
      case Formula::Kind::kEquals:
        return Formula::Equals(f.lhs(), f.rhs());
      case Formula::Kind::kNot:
        return Formula::Not(f.children()[0]);
      case Formula::Kind::kAnd: {
        std::vector<FormulaPtr> parts = f.children();
        return Formula::And(std::move(parts));
      }
      case Formula::Kind::kOr: {
        std::vector<FormulaPtr> parts = f.children();
        return Formula::Or(std::move(parts));
      }
      case Formula::Kind::kExists:
        return Formula::Exists(f.variables(), f.body());
      case Formula::Kind::kForall:
        return Formula::Forall(f.variables(), f.body());
    }
    return Formula::True();
  }

  const EvalContext& ctx_;
  const std::vector<Value>* domain_ = nullptr;  // lazily materialized
};

// Query enumeration with the same guard-driven strategy, collecting all
// satisfying head-variable assignments.
class QueryEnumerator {
 public:
  QueryEnumerator(const EvalContext& ctx,
                  const std::vector<std::string>& head_vars)
      : ctx_(ctx), head_vars_(head_vars), evaluator_(ctx) {}

  StatusOr<std::set<Tuple>> Run(const Formula& body, Bindings valuation) {
    std::set<std::string> unbound;
    for (const std::string& v : head_vars_) {
      if (valuation.Find(v) == nullptr) unbound.insert(v);
    }
    WSV_RETURN_IF_ERROR(Enumerate(unbound, body, valuation));
    return std::move(results_);
  }

 private:
  Status Emit(const Bindings& valuation, const Formula& body) {
    Bindings val = valuation;
    WSV_ASSIGN_OR_RETURN(bool holds, evaluator_.Eval(body, val));
    if (!holds) return Status::OK();
    Tuple t;
    t.reserve(head_vars_.size());
    for (const std::string& v : head_vars_) {
      const Value* bound = val.Find(v);
      if (bound == nullptr) {
        return Status::Internal("query variable unbound at emit: " + v);
      }
      t.push_back(*bound);
    }
    results_.insert(std::move(t));
    return Status::OK();
  }

  Status Enumerate(std::set<std::string> unbound, const Formula& body,
                   Bindings& valuation) {
    if (unbound.empty()) return Emit(valuation, body);

    // Disjunction: enumerate each branch (results are a union). The
    // emitted tuples re-check the *branch*, which is sound for unions.
    if (body.kind() == Formula::Kind::kOr) {
      for (const FormulaPtr& c : body.children()) {
        WSV_RETURN_IF_ERROR(Enumerate(unbound, *c, valuation));
      }
      return Status::OK();
    }

    // Find a guard atom among the conjuncts that binds head variables.
    std::vector<const Formula*> conjuncts;
    FlattenAnd(body, &conjuncts);
    const Formula* guard = nullptr;
    for (const Formula* c : conjuncts) {
      if (c->kind() != Formula::Kind::kAtom) continue;
      for (const Term& t : c->atom().terms) {
        if (t.is_variable() && unbound.count(t.name()) > 0) {
          guard = c;
          break;
        }
      }
      if (guard != nullptr) break;
    }
    if (guard != nullptr) {
      const Atom& atom = guard->atom();
      const Relation* rel = ctx_.ResolveRelation(atom.relation, atom.prev);
      if (rel == nullptr) return Status::OK();
      for (const Tuple& tuple : rel->tuples()) {
        std::vector<std::string> newly_bound;
        bool match = true;
        for (size_t i = 0; i < atom.terms.size() && match; ++i) {
          const Term& term = atom.terms[i];
          if (term.is_variable() && unbound.count(term.name()) > 0) {
            const Value* bound = valuation.Find(term.name());
            if (bound != nullptr) {
              match = *bound == tuple[i];
            } else {
              valuation.Set(term.name(), tuple[i]);
              newly_bound.push_back(term.name());
            }
          } else if (term.is_variable()) {
            const Value* bound = valuation.Find(term.name());
            // Unbound non-head variables (quantified deeper) cannot be
            // constrained here; skip the guard constraint for them.
            if (bound != nullptr) match = *bound == tuple[i];
          } else {
            StatusOr<Value> v =
                evaluator_.ResolveTerm(term, valuation);
            if (!v.ok()) return v.status();
            match = *v == tuple[i];
          }
        }
        if (match) {
          std::set<std::string> rest = unbound;
          for (const std::string& v : newly_bound) rest.erase(v);
          WSV_RETURN_IF_ERROR(Enumerate(std::move(rest), body, valuation));
        }
        for (const std::string& v : newly_bound) valuation.Erase(v);
      }
      return Status::OK();
    }

    // Fallback: bind one variable over the active domain.
    std::string var = *unbound.begin();
    unbound.erase(unbound.begin());
    if (domain_ == nullptr) domain_ = &ctx_.ActiveDomain();
    for (Value v : *domain_) {
      valuation.Set(var, v);
      WSV_RETURN_IF_ERROR(Enumerate(unbound, body, valuation));
      valuation.Erase(var);
    }
    return Status::OK();
  }

  const EvalContext& ctx_;
  const std::vector<std::string>& head_vars_;
  Evaluator evaluator_;
  const std::vector<Value>* domain_ = nullptr;
  std::set<Tuple> results_;
};

}  // namespace

StatusOr<bool> Evaluate(const Formula& formula, const EvalContext& ctx,
                        const Valuation& valuation) {
  WSV_COUNT1("fo/interp_evals");
  Evaluator ev(ctx);
  Bindings val(valuation);
  return ev.Eval(formula, val);
}

StatusOr<std::set<Tuple>> EvaluateQuery(const Formula& formula,
                                        const std::vector<std::string>& vars,
                                        const EvalContext& ctx,
                                        const Valuation& valuation) {
  // Detect duplicate head variables early (validation also rejects them).
  std::set<std::string> distinct(vars.begin(), vars.end());
  if (distinct.size() != vars.size()) {
    return Status::InvalidArgument("repeated query head variable");
  }
  WSV_COUNT1("fo/interp_evals");
  QueryEnumerator qe(ctx, vars);
  return qe.Run(formula, Bindings(valuation));
}

}  // namespace wsv
