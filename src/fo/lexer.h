// Shared lexer for the FO, LTL-FO, CTL(*)-FO, and .wsv specification
// grammars. Produces a token stream with positions for error reporting.

#ifndef WSV_FO_LEXER_H_
#define WSV_FO_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/span.h"
#include "common/status.h"

namespace wsv {

enum class TokenKind {
  kIdent,     // identifiers and keywords (callers match on text)
  kString,    // "quoted literal" (text holds the unescaped contents)
  kNumber,    // digit sequence (kept as text; used as a literal value)
  kLParen,    // (
  kRParen,    // )
  kLBrace,    // {
  kRBrace,    // }
  kComma,     // ,
  kDot,       // .
  kSemicolon, // ;
  kColonDash, // :-
  kEquals,    // =
  kNotEquals, // !=
  kAnd,       // &
  kOr,        // |
  kNot,       // !
  kArrow,     // ->
  kPlus,      // +
  kMinus,     // -
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  // identifier / string contents / number text
  int line = 1;
  int column = 1;

  std::string Describe() const;

  /// The source region this token covers. String tokens account for
  /// their surrounding quotes (escapes are approximated by the unescaped
  /// length, which is close enough for caret rendering).
  Span span() const {
    int width = static_cast<int>(text.size());
    if (kind == TokenKind::kString) width += 2;
    if (width == 0) width = 1;  // Eof and degenerate tokens
    return Span{line, column, line, column + width};
  }
};

/// Tokenizes `input`. Comments run from '#' or '//' to end of line.
/// On success the final token is kEof.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

/// A cursor over a token stream used by the recursive-descent parsers.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t lookahead = 0) const;
  const Token& Next();
  bool AtEnd() const { return Peek().kind == TokenKind::kEof; }

  /// Consumes the next token if it matches; returns whether it did.
  bool TryConsume(TokenKind kind);
  bool TryConsumeIdent(std::string_view keyword);

  /// Consumes a token of the given kind or returns a ParseError.
  Status Expect(TokenKind kind, std::string_view what);
  /// Consumes a specific keyword identifier or returns a ParseError.
  Status ExpectIdent(std::string_view keyword);
  /// Consumes and returns an identifier token's text.
  StatusOr<std::string> ExpectIdentText(std::string_view what);

  /// Builds a ParseError mentioning the current token and position.
  Status ErrorHere(std::string_view message) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace wsv

#endif  // WSV_FO_LEXER_H_
