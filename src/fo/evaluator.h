// Active-domain evaluation of FO formulas (Section 2).
//
// Rule formulas are evaluated over a layered structure combining the fixed
// database D, the current state S, the current inputs I, the previous
// inputs Prev_I, and the interpretation of the input constants provided so
// far. Quantifiers range over the active domain of the combined structure,
// as is standard in database theory.

#ifndef WSV_FO_EVALUATOR_H_
#define WSV_FO_EVALUATOR_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "fo/formula.h"
#include "relational/instance.h"

namespace wsv {

/// The structure a formula is evaluated against: an ordered stack of
/// instance layers (earlier layers shadow later ones for relation lookup),
/// a dedicated layer for Prev_I atoms, and constant overrides (used for
/// the run's accumulating input-constant interpretation).
class EvalContext {
 public:
  EvalContext() = default;

  /// Adds an instance layer. Lookup order is addition order.
  void AddLayer(const Instance* instance);

  /// Sets the instance used to resolve prev.I atoms (relation names in it
  /// are the plain input relation names).
  void SetPrevLayer(const Instance* instance) {
    prev_layer_ = instance;
    domain_valid_ = false;
  }

  /// Binds a constant symbol, overriding any layer's binding.
  void SetConstant(const std::string& name, Value v);

  /// Adds extra elements to the active domain beyond the layers' domains.
  void AddDomainValue(Value v) {
    extra_domain_.insert(v);
    domain_valid_ = false;
  }

  /// Resolves a relation; nullptr means the relation is empty/absent.
  const Relation* ResolveRelation(const std::string& name, bool prev) const;

  /// Resolves a constant symbol; nullopt if no layer or override binds it.
  std::optional<Value> ResolveConstant(const std::string& name) const;

  /// The active domain: union of all layer domains, constant overrides,
  /// and extra values, in Value order. Memoized until the next mutator
  /// call; the lazy const materialization is not synchronized, so a
  /// context must not see its first ActiveDomain() call from two threads
  /// at once (contexts are built per evaluation everywhere in the repo).
  const std::vector<Value>& ActiveDomain() const;

 private:
  std::vector<const Instance*> layers_;
  const Instance* prev_layer_ = nullptr;
  std::map<std::string, Value> constant_overrides_;
  std::set<Value> extra_domain_;
  mutable std::vector<Value> domain_cache_;
  mutable bool domain_valid_ = false;
};

/// A variable assignment.
using Valuation = std::map<std::string, Value>;

/// Evaluates a formula (all free variables must be bound by `valuation`).
/// Fails with Internal if a variable or constant symbol is unbound — the
/// runtime checks the paper's error conditions before evaluating.
StatusOr<bool> Evaluate(const Formula& formula, const EvalContext& ctx,
                        const Valuation& valuation = {});

/// Evaluates a formula with free variables `vars` as a query: returns the
/// set of tuples (in `vars` order, over the active domain) satisfying it.
StatusOr<std::set<Tuple>> EvaluateQuery(const Formula& formula,
                                        const std::vector<std::string>& vars,
                                        const EvalContext& ctx,
                                        const Valuation& valuation = {});

}  // namespace wsv

#endif  // WSV_FO_EVALUATOR_H_
