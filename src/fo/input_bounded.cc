#include "fo/input_bounded.h"

#include <algorithm>

namespace wsv {

namespace {

using Kind = InputBoundedViolation::Kind;

// True iff the atom's relation is an input relation (current or prev).
bool IsInputAtom(const Atom& atom, const Vocabulary& vocab) {
  const RelationSymbol* sym = vocab.FindRelation(atom.relation);
  return sym != nullptr && sym->kind == SymbolKind::kInput;
}

bool IsStateOrActionAtom(const Atom& atom, const Vocabulary& vocab) {
  const RelationSymbol* sym = vocab.FindRelation(atom.relation);
  return sym != nullptr && (sym->kind == SymbolKind::kState ||
                            sym->kind == SymbolKind::kAction);
}

std::set<std::string> AtomVariables(const Atom& atom) {
  std::set<std::string> vars;
  for (const Term& t : atom.terms) {
    if (t.is_variable()) vars.insert(t.name());
  }
  return vars;
}

// First valid atom location in syntactic order, for violations whose
// offending node (a quantifier) carries no span of its own.
Span FirstAtomSpan(const Formula& f) {
  for (const Atom& atom : f.Atoms()) {
    if (atom.span.IsValid()) return atom.span;
  }
  return Span{};
}

void Emit(std::vector<InputBoundedViolation>* out, Kind kind,
          std::string message, Span span) {
  out->push_back(InputBoundedViolation{kind, std::move(message), span});
}

// Checks the guard conditions for a quantifier over `vars` with guard
// `alpha` and remainder `phi`, reporting every violation.
void CollectGuardViolations(const std::vector<std::string>& vars,
                            const Formula& alpha, const Formula& phi,
                            const Vocabulary& vocab, const Formula& site,
                            std::vector<InputBoundedViolation>* out) {
  if (alpha.kind() != Formula::Kind::kAtom ||
      !IsInputAtom(alpha.atom(), vocab)) {
    Span span = FirstAtomSpan(alpha);
    if (!span.IsValid()) span = FirstAtomSpan(site);
    Emit(out, Kind::kUnguardedQuantifier,
         "quantifier guard is not an input atom in: " + site.ToString(),
         span);
    return;
  }
  std::set<std::string> guard_vars = AtomVariables(alpha.atom());
  for (const std::string& v : vars) {
    if (guard_vars.count(v) == 0) {
      Emit(out, Kind::kUnguardedQuantifier,
           "quantified variable '" + v +
               "' does not occur in the input guard of: " + site.ToString(),
           alpha.atom().span);
    }
  }
  for (const Atom& gamma : phi.Atoms()) {
    if (!IsStateOrActionAtom(gamma, vocab)) continue;
    std::set<std::string> gamma_vars = AtomVariables(gamma);
    for (const std::string& v : vars) {
      if (gamma_vars.count(v) > 0) {
        Emit(out, Kind::kQuantifiedVarInStateAtom,
             "quantified variable '" + v + "' occurs in state/action atom " +
                 gamma.ToString() + " of: " + site.ToString(),
             gamma.span.IsValid() ? gamma.span : FirstAtomSpan(site));
      }
    }
  }
}

void CollectNode(const Formula& f, const Vocabulary& vocab,
                 std::vector<InputBoundedViolation>* out) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals:
      return;
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const FormulaPtr& c : f.children()) {
        CollectNode(*c, vocab, out);
      }
      return;
    case Formula::Kind::kExists: {
      // Body must be alpha & phi, with alpha an input atom guard.
      const Formula& body = *f.body();
      const Formula* alpha = nullptr;
      FormulaPtr phi;
      if (body.kind() == Formula::Kind::kAtom) {
        alpha = &body;
        phi = Formula::True();
      } else if (body.kind() == Formula::Kind::kAnd &&
                 !body.children().empty()) {
        alpha = body.children()[0].get();
        std::vector<FormulaPtr> rest(body.children().begin() + 1,
                                     body.children().end());
        phi = Formula::And(std::move(rest));
      } else {
        Emit(out, Kind::kUnguardedQuantifier,
             "existential quantifier body is not of the form "
             "(input-atom & phi): " + f.ToString(),
             FirstAtomSpan(f));
        CollectNode(body, vocab, out);
        return;
      }
      CollectGuardViolations(f.variables(), *alpha, *phi, vocab, f, out);
      CollectNode(*phi, vocab, out);
      return;
    }
    case Formula::Kind::kForall: {
      // Body must be alpha -> phi, i.e. Or(Not(alpha), phi).
      const Formula& body = *f.body();
      if (body.kind() != Formula::Kind::kOr || body.children().size() < 2 ||
          body.children()[0]->kind() != Formula::Kind::kNot) {
        Emit(out, Kind::kUnguardedQuantifier,
             "universal quantifier body is not of the form "
             "(input-atom -> phi): " + f.ToString(),
             FirstAtomSpan(f));
        CollectNode(body, vocab, out);
        return;
      }
      const Formula& alpha = *body.children()[0]->children()[0];
      std::vector<FormulaPtr> rest(body.children().begin() + 1,
                                   body.children().end());
      FormulaPtr phi = Formula::Or(std::move(rest));
      CollectGuardViolations(f.variables(), alpha, *phi, vocab, f, out);
      CollectNode(*phi, vocab, out);
      return;
    }
  }
}

void CollectExistential(const Formula& f, const Vocabulary& vocab,
                        bool positive,
                        std::vector<InputBoundedViolation>* out) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
    case Formula::Kind::kEquals:
      return;
    case Formula::Kind::kAtom: {
      const RelationSymbol* sym = vocab.FindRelation(f.atom().relation);
      if (sym != nullptr && sym->kind == SymbolKind::kState) {
        if (!AtomVariables(f.atom()).empty()) {
          Emit(out, Kind::kNonGroundStateAtom,
               "state atom in input rule is not ground: " +
                   f.atom().ToString(),
               f.atom().span);
        }
      }
      return;
    }
    case Formula::Kind::kNot:
      CollectExistential(*f.children()[0], vocab, !positive, out);
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const FormulaPtr& c : f.children()) {
        CollectExistential(*c, vocab, positive, out);
      }
      return;
    case Formula::Kind::kExists:
      if (!positive) {
        Emit(out, Kind::kExistentialUnderNegation,
             "existential quantifier under negation in input rule: " +
                 f.ToString(),
             FirstAtomSpan(f));
      }
      CollectExistential(*f.body(), vocab, positive, out);
      return;
    case Formula::Kind::kForall:
      if (positive) {
        Emit(out, Kind::kUniversalInInputRule,
             "universal quantifier in input rule: " + f.ToString(),
             FirstAtomSpan(f));
      }
      CollectExistential(*f.body(), vocab, positive, out);
      return;
  }
}

Status FirstViolation(const std::vector<InputBoundedViolation>& violations) {
  if (violations.empty()) return Status::OK();
  return Status::NotInputBounded(violations.front().message);
}

}  // namespace

Status CheckInputBounded(const Formula& formula, const Vocabulary& vocab) {
  std::vector<InputBoundedViolation> violations;
  CollectInputBoundedViolations(formula, vocab, &violations);
  return FirstViolation(violations);
}

Status CheckExistentialInputRule(const Formula& formula,
                                 const Vocabulary& vocab) {
  std::vector<InputBoundedViolation> violations;
  CollectExistentialInputRuleViolations(formula, vocab, &violations);
  return FirstViolation(violations);
}

void CollectInputBoundedViolations(const Formula& formula,
                                   const Vocabulary& vocab,
                                   std::vector<InputBoundedViolation>* out) {
  CollectNode(formula, vocab, out);
}

void CollectExistentialInputRuleViolations(
    const Formula& formula, const Vocabulary& vocab,
    std::vector<InputBoundedViolation>* out) {
  CollectExistential(formula, vocab, /*positive=*/true, out);
}

}  // namespace wsv
