#include "fo/input_bounded.h"

#include <algorithm>

namespace wsv {

namespace {

// True iff the atom's relation is an input relation (current or prev).
bool IsInputAtom(const Atom& atom, const Vocabulary& vocab) {
  const RelationSymbol* sym = vocab.FindRelation(atom.relation);
  return sym != nullptr && sym->kind == SymbolKind::kInput;
}

bool IsStateOrActionAtom(const Atom& atom, const Vocabulary& vocab) {
  const RelationSymbol* sym = vocab.FindRelation(atom.relation);
  return sym != nullptr && (sym->kind == SymbolKind::kState ||
                            sym->kind == SymbolKind::kAction);
}

std::set<std::string> AtomVariables(const Atom& atom) {
  std::set<std::string> vars;
  for (const Term& t : atom.terms) {
    if (t.is_variable()) vars.insert(t.name());
  }
  return vars;
}

// Checks the guard conditions for a quantifier over `vars` with guard
// `alpha` and remainder `phi`.
Status CheckGuard(const std::vector<std::string>& vars, const Formula& alpha,
                  const Formula& phi, const Vocabulary& vocab,
                  const Formula& site) {
  if (alpha.kind() != Formula::Kind::kAtom ||
      !IsInputAtom(alpha.atom(), vocab)) {
    return Status::NotInputBounded(
        "quantifier guard is not an input atom in: " + site.ToString());
  }
  std::set<std::string> guard_vars = AtomVariables(alpha.atom());
  for (const std::string& v : vars) {
    if (guard_vars.count(v) == 0) {
      return Status::NotInputBounded(
          "quantified variable '" + v +
          "' does not occur in the input guard of: " + site.ToString());
    }
  }
  for (const Atom& gamma : phi.Atoms()) {
    if (!IsStateOrActionAtom(gamma, vocab)) continue;
    std::set<std::string> gamma_vars = AtomVariables(gamma);
    for (const std::string& v : vars) {
      if (gamma_vars.count(v) > 0) {
        return Status::NotInputBounded(
            "quantified variable '" + v +
            "' occurs in state/action atom " + gamma.ToString() +
            " of: " + site.ToString());
      }
    }
  }
  return Status::OK();
}

Status CheckNode(const Formula& f, const Vocabulary& vocab) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals:
      return Status::OK();
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const FormulaPtr& c : f.children()) {
        WSV_RETURN_IF_ERROR(CheckNode(*c, vocab));
      }
      return Status::OK();
    case Formula::Kind::kExists: {
      // Body must be alpha & phi, with alpha an input atom guard.
      const Formula& body = *f.body();
      const Formula* alpha = nullptr;
      FormulaPtr phi;
      if (body.kind() == Formula::Kind::kAtom) {
        alpha = &body;
        phi = Formula::True();
      } else if (body.kind() == Formula::Kind::kAnd &&
                 !body.children().empty()) {
        alpha = body.children()[0].get();
        std::vector<FormulaPtr> rest(body.children().begin() + 1,
                                     body.children().end());
        phi = Formula::And(std::move(rest));
      } else {
        return Status::NotInputBounded(
            "existential quantifier body is not of the form "
            "(input-atom & phi): " + f.ToString());
      }
      WSV_RETURN_IF_ERROR(CheckGuard(f.variables(), *alpha, *phi, vocab, f));
      return CheckNode(*phi, vocab);
    }
    case Formula::Kind::kForall: {
      // Body must be alpha -> phi, i.e. Or(Not(alpha), phi).
      const Formula& body = *f.body();
      if (body.kind() != Formula::Kind::kOr || body.children().size() < 2 ||
          body.children()[0]->kind() != Formula::Kind::kNot) {
        return Status::NotInputBounded(
            "universal quantifier body is not of the form "
            "(input-atom -> phi): " + f.ToString());
      }
      const Formula& alpha = *body.children()[0]->children()[0];
      std::vector<FormulaPtr> rest(body.children().begin() + 1,
                                   body.children().end());
      FormulaPtr phi = Formula::Or(std::move(rest));
      WSV_RETURN_IF_ERROR(CheckGuard(f.variables(), alpha, *phi, vocab, f));
      return CheckNode(*phi, vocab);
    }
  }
  return Status::Internal("bad formula kind");
}

Status CheckExistential(const Formula& f, const Vocabulary& vocab,
                        bool positive) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
    case Formula::Kind::kEquals:
      return Status::OK();
    case Formula::Kind::kAtom: {
      const RelationSymbol* sym = vocab.FindRelation(f.atom().relation);
      if (sym != nullptr && sym->kind == SymbolKind::kState) {
        if (!AtomVariables(f.atom()).empty()) {
          return Status::NotInputBounded(
              "state atom in input rule is not ground: " +
              f.atom().ToString());
        }
      }
      return Status::OK();
    }
    case Formula::Kind::kNot:
      return CheckExistential(*f.children()[0], vocab, !positive);
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const FormulaPtr& c : f.children()) {
        WSV_RETURN_IF_ERROR(CheckExistential(*c, vocab, positive));
      }
      return Status::OK();
    case Formula::Kind::kExists:
      if (!positive) {
        return Status::NotInputBounded(
            "existential quantifier under negation in input rule: " +
            f.ToString());
      }
      return CheckExistential(*f.body(), vocab, positive);
    case Formula::Kind::kForall:
      if (positive) {
        return Status::NotInputBounded(
            "universal quantifier in input rule: " + f.ToString());
      }
      return CheckExistential(*f.body(), vocab, positive);
  }
  return Status::Internal("bad formula kind");
}

}  // namespace

Status CheckInputBounded(const Formula& formula, const Vocabulary& vocab) {
  return CheckNode(formula, vocab);
}

Status CheckExistentialInputRule(const Formula& formula,
                                 const Vocabulary& vocab) {
  return CheckExistential(formula, vocab, /*positive=*/true);
}

}  // namespace wsv
