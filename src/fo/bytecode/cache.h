// Program cache and gating for the FO bytecode engine.
//
// Each FO leaf, input-option formula, and update rule is compiled once
// per process and cached by formula address (entries pin the FormulaPtr,
// so an address is never reused while cached). A secondary index keyed
// by structural fingerprint (common/fingerprint.h) lets a *different*
// formula object with identical structure — the same spec re-parsed, a
// re-verified request in a replay — reuse the compiled program instead
// of recompiling: on an address miss the fingerprint is consulted, the
// candidate is confirmed with a deep structural comparison (the
// collision guard), and the address is aliased to the existing program
// (counter fo/bytecode_xspec_hits; a guard rejection counts
// fo/bytecode_fp_collisions and compiles separately).
//
// The engine is on by default and can be disabled three ways, all of
// which fall back to the tree-walking interpreter:
//
//   * environment: WSV_DISABLE_FO_BYTECODE=1 (read once per process),
//   * process-wide: SetBytecodeEnabled(false) (the CLI's
//     --no-fo-bytecode flag),
//   * per-thread, scoped: ScopedDisable (used by witness validation to
//     re-check verdicts with the interpreter as the oracle).

#ifndef WSV_FO_BYTECODE_CACHE_H_
#define WSV_FO_BYTECODE_CACHE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "fo/bytecode/program.h"
#include "fo/evaluator.h"

namespace wsv {
namespace fobc {

/// True iff the compiled path should be used on this thread right now.
bool BytecodeEnabled();

/// Process-wide switch (the env var still wins when set).
void SetBytecodeEnabled(bool enabled);

/// Disables the compiled path on this thread for the object's lifetime.
/// Nests; used to force interpreter evaluation as a differential oracle.
class ScopedDisable {
 public:
  ScopedDisable();
  ~ScopedDisable();
  ScopedDisable(const ScopedDisable&) = delete;
  ScopedDisable& operator=(const ScopedDisable&) = delete;
};

/// Occupancy of the process-wide program cache, for --stats and the
/// mem/fo_* gauges. Byte figures are footprint estimates (vector
/// capacities + node overheads), not allocator ground truth.
struct CacheStats {
  uint64_t entries = 0;         // cached programs incl. failure tombstones
  uint64_t program_bytes = 0;   // compiled code + slot tables
  uint64_t formula_bytes = 0;   // pinned source formula trees
};
CacheStats ProgramCacheStats();

/// Returns the cached boolean program for `f`, compiling on first use.
/// nullptr when compilation failed (callers fall back to the
/// interpreter). Thread-safe.
std::shared_ptr<const Program> GetOrCompileBool(const FormulaPtr& f);

/// Same for query programs. A cached program is reused only when its
/// head-variable list matches; otherwise a fresh uncached compile is
/// returned.
std::shared_ptr<const Program> GetOrCompileQuery(
    const FormulaPtr& f, const std::vector<std::string>& head_vars);

/// Evaluates `f`, compiled when the engine is enabled, interpreted
/// otherwise (or when compilation fails). Drop-in for fo/Evaluate at
/// call sites that hold a FormulaPtr.
StatusOr<bool> EvaluateFast(const FormulaPtr& f, const EvalContext& ctx,
                            const Valuation& valuation = {});

/// Query counterpart of EvaluateFast. Falls back to the interpreter
/// when the entry valuation binds a head variable (compiled query
/// programs assume unbound heads) or the head list is malformed.
StatusOr<std::set<Tuple>> EvaluateQueryFast(
    const FormulaPtr& f, const std::vector<std::string>& vars,
    const EvalContext& ctx, const Valuation& valuation = {});

/// Test hook: when forced, every formula reports the same fingerprint,
/// so the structural collision guard must carry the entire load —
/// verdicts stay correct and fo/bytecode_fp_collisions counts up.
void ForceFingerprintCollisionsForTest(bool force);

}  // namespace fobc
}  // namespace wsv

#endif  // WSV_FO_BYTECODE_CACHE_H_
