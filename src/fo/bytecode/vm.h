// Bytecode VM: a tight switch-loop over a compiled Program.
//
// All mutable execution state — registers, resolved constant and
// relation tables, loop frames, the tuple scratch buffer — lives in a
// thread-local arena that is reused across executions, so steady-state
// evaluation allocates nothing and touches no strings. Each Execute
// binds the program to an EvalContext once (relation and constant-symbol
// lookup by name), then runs string-free.
//
// Execution is metered by an explicit step budget (instructions plus
// tuples tested in scans); exceeding it fails with ResourceExhausted.
// The default budget is large enough that real verifications never trip
// it; tests lower it to exercise the limit.

#ifndef WSV_FO_BYTECODE_VM_H_
#define WSV_FO_BYTECODE_VM_H_

#include <cstdint>
#include <set>

#include "common/status.h"
#include "fo/bytecode/program.h"
#include "fo/evaluator.h"

namespace wsv {
namespace fobc {

/// Default per-execution step budget (2^34 steps: effectively unlimited
/// for real formulas, but a hard stop against pathological blowup).
inline constexpr uint64_t kDefaultStepBudget = uint64_t{1} << 34;

/// The per-execution step budget. Process-wide; settable for tests.
uint64_t GetStepBudget();
void SetStepBudget(uint64_t budget);

/// Runs a boolean program. `valuation` binds the program's free
/// variables (missing bindings surface as the tree-walker's "unbound
/// variable" error if and only if the variable is actually used).
StatusOr<bool> Execute(const Program& program, const EvalContext& ctx,
                       const Valuation& valuation = {});

/// Runs a query program, returning the satisfying head tuples. The
/// entry valuation must not bind any head variable (callers check and
/// fall back to the interpreter; see cache.h).
StatusOr<std::set<Tuple>> ExecuteQuery(const Program& program,
                                       const EvalContext& ctx,
                                       const Valuation& valuation = {});

}  // namespace fobc
}  // namespace wsv

#endif  // WSV_FO_BYTECODE_VM_H_
