// Register bytecode for the FO hot path (ROADMAP item: compile the
// tree-walking evaluator's guard-driven join strategy into a flat
// instruction sequence).
//
// A Program is the one-shot compilation of one fo::Formula (either as a
// sentence, yielding a boolean, or as a query with a fixed head-variable
// list, yielding a tuple set). All names are resolved at compile time:
// variables become dense register slots, relation names and constant
// symbols become small integer ids into per-program tables, so the VM's
// inner loop does zero string hashing and zero allocation in steady
// state (see fo/bytecode/vm.h for the execution model and DESIGN.md §8
// for the ISA rationale).
//
// The compiled code mirrors the tree-walker (fo/evaluator.cc) *exactly*,
// including its evaluation order and error behavior — the tree-walker
// stays in the build as the differential-testing oracle, and the fuzz
// suite asserts bit-identical verdicts, tuple sets, and error messages.

#ifndef WSV_FO_BYTECODE_PROGRAM_H_
#define WSV_FO_BYTECODE_PROGRAM_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fo/formula.h"
#include "relational/value.h"

namespace wsv {
namespace fobc {

/// Opcodes. The VM is a flag machine: boolean results accumulate in a
/// single flag register; control flow (short-circuiting, quantifier
/// loops) is explicit jumps.
enum class Op : uint8_t {
  kFlagSet,    // flag = (a != 0)
  kNot,        // flag = !flag
  kJump,       // pc = a
  kJumpIfFalse,  // if (!flag) pc = a
  kJumpIfTrue,   // if (flag) pc = a
  kAtom,       // flag = rels[a] contains the tuple built from pool[b..b+count)
               // (empty/absent relation => false *before* resolving terms,
               // mirroring the tree-walker's early-out)
  kEq,         // flag = (resolve(a) == resolve(b)), left operand first
  kScanBegin,  // iterate rels[a]; operands pool[b..b+count) bind/check
               // positions; on no matching tuple: flag = false, pc = c
  kScanNext,   // advance the scan opened at instruction a; on match fall
               // to a+1, else pop frame, flag = false, pc = code[a].c
  kDomBegin,   // iterate the active domain into register a; empty domain:
               // flag = false, pc = c
  kDomNext,    // advance the domain loop opened at instruction a
  kBreak,      // pop the innermost loop frame and jump to a (early exit
               // of an existential with flag preserved)
  kEmit,       // append the head tuple (registers pool[a..a+count)) to
               // the query result set
  kHalt,       // return flag (boolean) / finish enumeration (query)
};

/// One fixed-size instruction. `a`, `b`, `c` are opcode-specific (see
/// Op); `count` is an operand-list length where applicable.
struct Instr {
  Op op = Op::kHalt;
  uint8_t pad = 0;
  uint16_t count = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
};

/// Operand tags (top 4 bits of a pool entry; the rest is an index).
///
/// In *load* position (kAtom, kEq, kEmit): kReg reads a register (error
/// "unbound variable" when invalid), kConst reads a resolved constant
/// slot (error "unbound constant symbol" when the symbol had no binding).
///
/// In *scan* position (kScanBegin / kScanNext): kBind writes the tuple
/// component into a register; kCheck compares (an invalid register
/// rejects the tuple, mirroring the tree-walker's unbound-free-variable
/// guard behavior); kCheckSoft compares only when the register is bound
/// (the query enumerator's skip-constraint rule for free variables);
/// kConst resolves and compares (unbound symbol => error, lazily, only
/// when a tuple actually reaches the position).
enum OperandTag : uint32_t {
  kOperandReg = 0,
  kOperandConst = 1,
  kOperandBind = 2,
  kOperandCheck = 3,
  kOperandCheckSoft = 4,
};

inline constexpr uint32_t kOperandIndexMask = (1u << 28) - 1;

inline constexpr uint32_t MakeOperand(OperandTag tag, uint32_t index) {
  return (tag << 28) | (index & kOperandIndexMask);
}
inline constexpr OperandTag OperandTagOf(uint32_t operand) {
  return static_cast<OperandTag>(operand >> 28);
}
inline constexpr uint32_t OperandIndexOf(uint32_t operand) {
  return operand & kOperandIndexMask;
}

/// A constant-table slot: a literal (resolved at compile time) or a
/// constant symbol (resolved against the EvalContext once per Execute).
struct ConstSlot {
  bool is_symbol = false;
  std::string name;  // symbol name; literal's name for diagnostics
  Value literal;     // valid iff !is_symbol
};

/// A relation-table slot, resolved via EvalContext::ResolveRelation once
/// per Execute.
struct RelSlot {
  std::string name;
  bool prev = false;
};

/// A compiled formula. Immutable after compilation; safe to share across
/// threads and execute concurrently (all mutable execution state lives
/// in the VM's per-thread scratch arena).
struct Program {
  std::vector<Instr> code;
  std::vector<uint32_t> pool;      // tagged operands, referenced by index
  std::vector<ConstSlot> consts;
  std::vector<RelSlot> rels;

  /// Register metadata. reg_names is indexed by register and used only
  /// on cold error paths; free_vars lists the registers loaded from the
  /// entry valuation (name -> register).
  std::vector<std::string> reg_names;
  std::vector<std::pair<std::string, uint32_t>> free_vars;
  uint32_t num_regs = 0;
  uint32_t max_frames = 0;  // loop nesting depth, for scratch sizing
  bool uses_domain = false;

  /// Query programs only: the head-variable list, in emit order.
  bool is_query = false;
  std::vector<std::string> head_vars;

  /// Precomputed analyses of the source formula, so per-step call sites
  /// (ltl/run_semantics) stop re-deriving them on every evaluation.
  std::set<std::string> constant_symbols;
  std::set<Value> literals;

  /// Keep-alive for the cache key: programs are cached by Formula
  /// address, so the entry must pin the formula to prevent address reuse.
  FormulaPtr source;
};

}  // namespace fobc
}  // namespace wsv

#endif  // WSV_FO_BYTECODE_PROGRAM_H_
