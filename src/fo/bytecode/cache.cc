#include "fo/bytecode/cache.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/fingerprint.h"
#include "fo/bytecode/compiler.h"
#include "fo/bytecode/vm.h"
#include "obs/metrics.h"

namespace wsv {
namespace fobc {
namespace {

std::atomic<bool> g_enabled{true};
thread_local int t_disable_depth = 0;

bool DisabledByEnv() {
  static const bool disabled = [] {
    const char* v = std::getenv("WSV_DISABLE_FO_BYTECODE");
    return v != nullptr && *v != '\0' && std::string(v) != "0";
  }();
  return disabled;
}

std::atomic<bool> g_force_fp_collisions{false};

// A structurally keyed cache slot: the compiled program plus the
// exemplar formula it was compiled from, kept so fingerprint hits can
// be confirmed by deep comparison before aliasing code.
struct FpEntry {
  std::shared_ptr<const Program> prog;
  FormulaPtr exemplar;
  // Query programs only: the head-variable list baked into the code
  // (part of the key, but re-checked here so the forced-collision test
  // mode cannot alias across head lists either).
  std::vector<std::string> head_vars;
};

// Cached programs pin their source FormulaPtr (Program::source), so a
// Formula* key can never be reused by a different live formula. Entries
// whose key formula is NOT the program's source — fingerprint aliases
// (the shared program's source is the exemplar) and failure tombstones
// (no program at all) — must be pinned explicitly in `pins`, or their
// key address could be recycled by a structurally different formula
// that would then falsely address-hit a stale program.
struct Cache {
  std::shared_mutex mu;
  std::unordered_map<const Formula*, std::shared_ptr<const Program>> bool_progs;
  std::unordered_map<const Formula*, std::shared_ptr<const Program>>
      query_progs;
  // Secondary structural index: formula fingerprint -> compiled program.
  // Lets re-parsed copies of a formula (new addresses, same structure)
  // alias the existing program instead of recompiling.
  std::unordered_map<Fingerprint, FpEntry, FingerprintHash> bool_by_fp;
  std::unordered_map<Fingerprint, FpEntry, FingerprintHash> query_by_fp;
  // Keeps alive every key formula not already pinned through its
  // program (aliases, tombstones). Grow-only, like the cache.
  std::vector<FormulaPtr> pins;
  // Occupancy (under mu): entries never evict, so these only grow.
  uint64_t entries = 0;
  uint64_t program_bytes = 0;
  uint64_t formula_bytes = 0;
};

Fingerprint FormulaFp(const Formula& f) {
  if (g_force_fp_collisions.load(std::memory_order_relaxed)) {
    return Fingerprint{1, 1};
  }
  return FingerprintFormula(f);
}

Fingerprint QueryFp(const Formula& f,
                    const std::vector<std::string>& head_vars) {
  if (g_force_fp_collisions.load(std::memory_order_relaxed)) {
    return Fingerprint{1, 2};
  }
  FingerprintBuilder b;
  b.AbsorbFingerprint(FingerprintFormula(f));
  for (const std::string& v : head_vars) b.AbsorbString(v);
  return b.Finish();
}

// Estimated heap footprint of a compiled program: the flat arrays plus
// per-slot string storage. Deliberately coarse (no allocator rounding).
uint64_t ApproxProgramBytes(const Program& prog) {
  uint64_t bytes = sizeof(Program);
  bytes += prog.code.capacity() * sizeof(Instr);
  bytes += prog.pool.capacity() * sizeof(uint32_t);
  for (const ConstSlot& c : prog.consts) {
    bytes += sizeof(ConstSlot) + c.name.capacity();
  }
  for (const RelSlot& r : prog.rels) bytes += sizeof(RelSlot) + r.name.capacity();
  for (const std::string& s : prog.reg_names) bytes += sizeof(std::string) + s.capacity();
  for (const auto& [name, reg] : prog.free_vars) {
    bytes += sizeof(std::string) + sizeof(uint32_t) + name.capacity();
  }
  for (const std::string& s : prog.head_vars) bytes += sizeof(std::string) + s.capacity();
  for (const std::string& s : prog.constant_symbols) bytes += 48 + s.capacity();
  bytes += prog.literals.size() * 48;
  return bytes;
}

// Estimated footprint of the pinned source formula tree: per-node header
// plus term/variable vectors. Cached entries keep these alive for the
// process lifetime (the cache key pins FormulaPtr).
uint64_t ApproxFormulaBytes(const Formula& f) {
  uint64_t bytes = sizeof(Formula);
  bytes += f.atom().relation.capacity();
  bytes += f.atom().terms.capacity() * sizeof(Term);
  for (const std::string& v : f.variables()) {
    bytes += sizeof(std::string) + v.capacity();
  }
  for (const FormulaPtr& child : f.children()) {
    if (child != nullptr) bytes += ApproxFormulaBytes(*child);
  }
  return bytes;
}

// Caller holds the cache lock and has just inserted `prog` for `f`.
void AccountInsertLocked(Cache& cache, const FormulaPtr& f,
                         const std::shared_ptr<const Program>& prog) {
  const uint64_t prog_bytes =
      prog == nullptr ? sizeof(void*) : ApproxProgramBytes(*prog);
  const uint64_t formula_bytes = ApproxFormulaBytes(*f);
  cache.entries += 1;
  cache.program_bytes += prog_bytes;
  cache.formula_bytes += formula_bytes;
  WSV_GAUGE_ADD("mem/fo_program_cache_entries", 1);
  WSV_GAUGE_ADD("mem/fo_program_cache_bytes", prog_bytes);
  WSV_GAUGE_ADD("mem/fo_pinned_formula_bytes", formula_bytes);
}

// Caller holds the cache lock and has aliased `f`'s address to a
// program that already exists under another formula object: the new
// entry pins `f` but shares the code, so only the formula tree counts.
void AccountAliasLocked(Cache& cache, const FormulaPtr& f) {
  const uint64_t formula_bytes = ApproxFormulaBytes(*f);
  cache.entries += 1;
  cache.formula_bytes += formula_bytes;
  WSV_GAUGE_ADD("mem/fo_program_cache_entries", 1);
  WSV_GAUGE_ADD("mem/fo_pinned_formula_bytes", formula_bytes);
}

Cache& GetCache() {
  static Cache* cache = new Cache();
  return *cache;
}

std::shared_ptr<const Program> Lookup(
    const std::unordered_map<const Formula*,
                             std::shared_ptr<const Program>>& map,
    std::shared_mutex& mu, const Formula* key, bool* found) {
  std::shared_lock<std::shared_mutex> lock(mu);
  auto it = map.find(key);
  if (it == map.end()) {
    *found = false;
    return nullptr;
  }
  *found = true;
  return it->second;
}

}  // namespace

bool BytecodeEnabled() {
  if (DisabledByEnv()) return false;
  if (!g_enabled.load(std::memory_order_relaxed)) return false;
  return t_disable_depth == 0;
}

void SetBytecodeEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedDisable::ScopedDisable() { ++t_disable_depth; }
ScopedDisable::~ScopedDisable() { --t_disable_depth; }

void ForceFingerprintCollisionsForTest(bool force) {
  g_force_fp_collisions.store(force, std::memory_order_relaxed);
}

std::shared_ptr<const Program> GetOrCompileBool(const FormulaPtr& f) {
  if (f == nullptr) return nullptr;
  Cache& cache = GetCache();
  bool found = false;
  std::shared_ptr<const Program> prog =
      Lookup(cache.bool_progs, cache.mu, f.get(), &found);
  if (found) {
    WSV_COUNT1("fo/bytecode_cache_hits");
    return prog;
  }
  // Address miss: a structurally identical formula may already be
  // compiled under a different object (same spec re-parsed). The
  // fingerprint finds the candidate; StructurallyEqual confirms it
  // before any code is aliased.
  const Fingerprint fp = FormulaFp(*f);
  {
    std::unique_lock<std::shared_mutex> lock(cache.mu);
    auto addr_it = cache.bool_progs.find(f.get());
    if (addr_it != cache.bool_progs.end()) {
      WSV_COUNT1("fo/bytecode_cache_hits");
      return addr_it->second;
    }
    auto fp_it = cache.bool_by_fp.find(fp);
    if (fp_it != cache.bool_by_fp.end()) {
      if (StructurallyEqual(*f, *fp_it->second.exemplar)) {
        WSV_COUNT1("fo/bytecode_xspec_hits");
        cache.bool_progs.emplace(f.get(), fp_it->second.prog);
        cache.pins.push_back(f);
        AccountAliasLocked(cache, f);
        return fp_it->second.prog;
      }
      WSV_COUNT1("fo/bytecode_fp_collisions");
    }
  }
  WSV_COUNT1("fo/bytecode_compiles");
  auto compiled = CompileBool(f);
  // Failures are cached as nullptr so a bad formula compiles only once.
  prog = compiled.ok() ? std::move(compiled).value() : nullptr;
  std::unique_lock<std::shared_mutex> lock(cache.mu);
  auto [it, inserted] = cache.bool_progs.emplace(f.get(), prog);
  if (inserted) {
    if (prog == nullptr) cache.pins.push_back(f);
    AccountInsertLocked(cache, f, prog);
    // First structural exemplar wins; colliding formulas stay
    // address-cached only.
    cache.bool_by_fp.emplace(fp, FpEntry{prog, f, {}});
  }
  return inserted ? prog : it->second;
}

std::shared_ptr<const Program> GetOrCompileQuery(
    const FormulaPtr& f, const std::vector<std::string>& head_vars) {
  if (f == nullptr) return nullptr;
  Cache& cache = GetCache();
  bool found = false;
  std::shared_ptr<const Program> prog =
      Lookup(cache.query_progs, cache.mu, f.get(), &found);
  if (found && (prog == nullptr || prog->head_vars == head_vars)) {
    WSV_COUNT1("fo/bytecode_cache_hits");
    return prog;
  }
  const Fingerprint fp = QueryFp(*f, head_vars);
  if (!found) {
    // Address miss: try the structural index (fingerprint covers the
    // head list; the guard re-checks both structure and heads).
    std::unique_lock<std::shared_mutex> lock(cache.mu);
    auto addr_it = cache.query_progs.find(f.get());
    if (addr_it != cache.query_progs.end() &&
        (addr_it->second == nullptr ||
         addr_it->second->head_vars == head_vars)) {
      WSV_COUNT1("fo/bytecode_cache_hits");
      return addr_it->second;
    }
    if (addr_it == cache.query_progs.end()) {
      auto fp_it = cache.query_by_fp.find(fp);
      if (fp_it != cache.query_by_fp.end()) {
        if (fp_it->second.head_vars == head_vars &&
            StructurallyEqual(*f, *fp_it->second.exemplar)) {
          WSV_COUNT1("fo/bytecode_xspec_hits");
          cache.query_progs.emplace(f.get(), fp_it->second.prog);
          cache.pins.push_back(f);
          AccountAliasLocked(cache, f);
          return fp_it->second.prog;
        }
        WSV_COUNT1("fo/bytecode_fp_collisions");
      }
    }
  }
  WSV_COUNT1("fo/bytecode_compiles");
  auto compiled = CompileQuery(f, head_vars);
  std::shared_ptr<const Program> fresh =
      compiled.ok() ? std::move(compiled).value() : nullptr;
  if (found) return fresh;  // head mismatch: usable, but not cacheable
  std::unique_lock<std::shared_mutex> lock(cache.mu);
  auto [it, inserted] = cache.query_progs.emplace(f.get(), fresh);
  if (inserted) {
    if (fresh == nullptr) cache.pins.push_back(f);
    AccountInsertLocked(cache, f, fresh);
    cache.query_by_fp.emplace(fp, FpEntry{fresh, f, head_vars});
  }
  return inserted ? fresh : it->second;
}

CacheStats ProgramCacheStats() {
  Cache& cache = GetCache();
  std::shared_lock<std::shared_mutex> lock(cache.mu);
  CacheStats stats;
  stats.entries = cache.entries;
  stats.program_bytes = cache.program_bytes;
  stats.formula_bytes = cache.formula_bytes;
  return stats;
}

StatusOr<bool> EvaluateFast(const FormulaPtr& f, const EvalContext& ctx,
                            const Valuation& valuation) {
  if (BytecodeEnabled()) {
    std::shared_ptr<const Program> prog = GetOrCompileBool(f);
    if (prog != nullptr) return Execute(*prog, ctx, valuation);
  }
  return Evaluate(*f, ctx, valuation);
}

StatusOr<std::set<Tuple>> EvaluateQueryFast(
    const FormulaPtr& f, const std::vector<std::string>& vars,
    const EvalContext& ctx, const Valuation& valuation) {
  if (BytecodeEnabled()) {
    bool heads_bound = false;
    for (const std::string& v : vars) {
      if (valuation.count(v) > 0) {
        heads_bound = true;
        break;
      }
    }
    if (!heads_bound) {
      std::shared_ptr<const Program> prog = GetOrCompileQuery(f, vars);
      if (prog != nullptr) return ExecuteQuery(*prog, ctx, valuation);
    }
  }
  return EvaluateQuery(*f, vars, ctx, valuation);
}

}  // namespace fobc
}  // namespace wsv
