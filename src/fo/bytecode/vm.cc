#include "fo/bytecode/vm.h"

#include <atomic>
#include <vector>

#include "obs/metrics.h"
#include "relational/instance.h"

namespace wsv {
namespace fobc {
namespace {

std::atomic<uint64_t> g_step_budget{kDefaultStepBudget};

/// One open quantifier loop: a relation scan or an active-domain walk.
struct Frame {
  uint32_t begin_ip = 0;
  std::set<Tuple>::const_iterator it;
  std::set<Tuple>::const_iterator end;
  size_t dom_idx = 0;
};

/// The per-thread arena. Vectors keep their capacity across executions,
/// so after warm-up an Execute performs no heap allocation.
struct Scratch {
  std::vector<Value> regs;
  std::vector<Value> consts;
  std::vector<const Relation*> rels;
  std::vector<Frame> frames;
  Tuple tup;
  const std::vector<Value>* domain = nullptr;
  // Capacity bytes already published to the mem/vm_arena_bytes gauge.
  // Capacities persist across executions, so the figure only grows until
  // thread exit returns the whole arena.
  uint64_t reported_bytes = 0;

  ~Scratch() { WSV_GAUGE_SUB("mem/vm_arena_bytes", reported_bytes); }
};

uint64_t ArenaBytes(const Scratch& s) {
  return s.regs.capacity() * sizeof(Value) +
         s.consts.capacity() * sizeof(Value) +
         s.rels.capacity() * sizeof(const Relation*) +
         s.frames.capacity() * sizeof(Frame) +
         s.tup.capacity() * sizeof(Value);
}

thread_local Scratch t_scratch;

/// Outcome of advancing a scan to its next matching tuple.
enum class ScanResult { kMatch, kEnd };

StatusOr<bool> Run(const Program& p, const EvalContext& ctx,
                   const Valuation& valuation, std::set<Tuple>* results) {
  WSV_COUNT1("fo/bytecode_execs");
  Scratch& s = t_scratch;
  s.regs.assign(p.num_regs, Value());
  s.consts.clear();
  for (const ConstSlot& slot : p.consts) {
    if (slot.is_symbol) {
      // Lazily *checked*: an unbound symbol is an error only when an
      // instruction actually reads the slot, preserving the
      // tree-walker's short-circuit behavior.
      s.consts.push_back(ctx.ResolveConstant(slot.name).value_or(Value()));
    } else {
      s.consts.push_back(slot.literal);
    }
  }
  s.rels.clear();
  for (const RelSlot& slot : p.rels) {
    s.rels.push_back(ctx.ResolveRelation(slot.name, slot.prev));
  }
  s.frames.clear();
  s.frames.reserve(p.max_frames);
  s.domain = nullptr;
  for (const auto& [name, reg] : p.free_vars) {
    auto it = valuation.find(name);
    if (it != valuation.end()) s.regs[reg] = it->second;
  }

  const uint64_t budget = g_step_budget.load(std::memory_order_relaxed);
  uint64_t steps = 0;
  bool flag = false;
  uint32_t pc = 0;

  // Every return path records the steps actually spent and publishes
  // arena capacity growth to the occupancy gauge.
  struct StepFlush {
    uint64_t& steps;
    Scratch& scratch;
    ~StepFlush() {
      WSV_COUNT("fo/bytecode_steps", steps);
      const uint64_t bytes = ArenaBytes(scratch);
      if (bytes > scratch.reported_bytes) {
        WSV_GAUGE_ADD("mem/vm_arena_bytes", bytes - scratch.reported_bytes);
        scratch.reported_bytes = bytes;
      }
    }
  } flush{steps, s};

  auto budget_error = [&]() -> Status {
    return Status::ResourceExhausted(
        "fo bytecode step budget exhausted (" + std::to_string(budget) +
        " steps)");
  };

  // Advances `fr` (starting at its current tuple) to the next tuple
  // matching the scan operands of the kScanBegin at `begin`. Tags mirror
  // the tree-walker's guard rules; see program.h.
  auto scan_advance = [&](Frame& fr,
                          const Instr& begin) -> StatusOr<ScanResult> {
    const uint32_t n = begin.count;
    for (; fr.it != fr.end; ++fr.it) {
      if (++steps > budget) return budget_error();
      const Tuple& t = *fr.it;
      bool match = n <= t.size();
      for (uint32_t i = 0; i < n && match; ++i) {
        const uint32_t operand = p.pool[begin.b + i];
        const uint32_t idx = OperandIndexOf(operand);
        switch (OperandTagOf(operand)) {
          case kOperandBind:
            s.regs[idx] = t[i];
            break;
          case kOperandCheck:
            match = s.regs[idx].valid() && s.regs[idx] == t[i];
            break;
          case kOperandCheckSoft:
            if (s.regs[idx].valid()) match = s.regs[idx] == t[i];
            break;
          case kOperandConst: {
            Value v = s.consts[idx];
            if (!v.valid()) {
              return Status::Internal("unbound constant symbol: " +
                                      p.consts[idx].name);
            }
            match = v == t[i];
            break;
          }
          case kOperandReg:
            match = s.regs[idx].valid() && s.regs[idx] == t[i];
            break;
        }
      }
      if (match) return ScanResult::kMatch;
    }
    return ScanResult::kEnd;
  };

  auto load_operand = [&](uint32_t operand, Value* out) -> Status {
    const uint32_t idx = OperandIndexOf(operand);
    if (OperandTagOf(operand) == kOperandReg) {
      Value v = s.regs[idx];
      if (!v.valid()) {
        return Status::Internal("unbound variable: " + p.reg_names[idx]);
      }
      *out = v;
      return Status::OK();
    }
    Value v = s.consts[idx];
    if (!v.valid()) {
      return Status::Internal("unbound constant symbol: " +
                              p.consts[idx].name);
    }
    *out = v;
    return Status::OK();
  };

  for (;;) {
    if (++steps > budget) return budget_error();
    const Instr& in = p.code[pc];
    uint32_t next = pc + 1;
    switch (in.op) {
      case Op::kFlagSet:
        flag = in.a != 0;
        break;
      case Op::kNot:
        flag = !flag;
        break;
      case Op::kJump:
        next = in.a;
        break;
      case Op::kJumpIfFalse:
        if (!flag) next = in.a;
        break;
      case Op::kJumpIfTrue:
        if (flag) next = in.a;
        break;
      case Op::kAtom: {
        const Relation* rel = s.rels[in.a];
        if (rel == nullptr || rel->empty()) {
          // Before resolving terms, like the tree-walker's early-out.
          flag = false;
          break;
        }
        s.tup.clear();
        for (uint32_t i = 0; i < in.count; ++i) {
          Value v;
          WSV_RETURN_IF_ERROR(load_operand(p.pool[in.b + i], &v));
          s.tup.push_back(v);
        }
        flag = rel->Contains(s.tup);
        break;
      }
      case Op::kEq: {
        Value lhs, rhs;
        WSV_RETURN_IF_ERROR(load_operand(in.a, &lhs));
        WSV_RETURN_IF_ERROR(load_operand(in.b, &rhs));
        flag = lhs == rhs;
        break;
      }
      case Op::kScanBegin: {
        const Relation* rel = s.rels[in.a];
        if (rel == nullptr || rel->empty()) {
          flag = false;
          next = in.c;
          break;
        }
        s.frames.push_back(Frame{pc, rel->tuples().begin(),
                                 rel->tuples().end(), 0});
        WSV_ASSIGN_OR_RETURN(ScanResult r,
                             scan_advance(s.frames.back(), in));
        if (r == ScanResult::kEnd) {
          s.frames.pop_back();
          flag = false;
          next = in.c;
        }
        break;
      }
      case Op::kScanNext: {
        Frame& fr = s.frames.back();
        const Instr& begin = p.code[in.a];
        ++fr.it;
        WSV_ASSIGN_OR_RETURN(ScanResult r, scan_advance(fr, begin));
        if (r == ScanResult::kMatch) {
          next = in.a + 1;
        } else {
          s.frames.pop_back();
          flag = false;
          next = begin.c;
        }
        break;
      }
      case Op::kDomBegin: {
        if (s.domain == nullptr) s.domain = &ctx.ActiveDomain();
        if (s.domain->empty()) {
          flag = false;
          next = in.c;
          break;
        }
        Frame fr;
        fr.begin_ip = pc;
        s.frames.push_back(fr);
        s.regs[in.a] = (*s.domain)[0];
        break;
      }
      case Op::kDomNext: {
        Frame& fr = s.frames.back();
        const Instr& begin = p.code[in.a];
        if (++fr.dom_idx < s.domain->size()) {
          s.regs[begin.a] = (*s.domain)[fr.dom_idx];
          next = in.a + 1;
        } else {
          s.frames.pop_back();
          flag = false;
          next = begin.c;
        }
        break;
      }
      case Op::kBreak:
        s.frames.pop_back();
        next = in.a;
        break;
      case Op::kEmit: {
        s.tup.clear();
        for (uint32_t i = 0; i < in.count; ++i) {
          const uint32_t idx = OperandIndexOf(p.pool[in.a + i]);
          Value v = s.regs[idx];
          if (!v.valid()) {
            return Status::Internal("query variable unbound at emit: " +
                                    p.reg_names[idx]);
          }
          s.tup.push_back(v);
        }
        if (results != nullptr) results->insert(s.tup);
        break;
      }
      case Op::kHalt:
        return flag;
    }
    pc = next;
  }
}

}  // namespace

uint64_t GetStepBudget() {
  return g_step_budget.load(std::memory_order_relaxed);
}

void SetStepBudget(uint64_t budget) {
  g_step_budget.store(budget == 0 ? kDefaultStepBudget : budget,
                      std::memory_order_relaxed);
}

StatusOr<bool> Execute(const Program& program, const EvalContext& ctx,
                       const Valuation& valuation) {
  return Run(program, ctx, valuation, /*results=*/nullptr);
}

StatusOr<std::set<Tuple>> ExecuteQuery(const Program& program,
                                       const EvalContext& ctx,
                                       const Valuation& valuation) {
  std::set<Tuple> out;
  WSV_RETURN_IF_ERROR(Run(program, ctx, valuation, &out).status());
  return out;
}

}  // namespace fobc
}  // namespace wsv
