// One-shot compiler from fo::Formula to register bytecode.
//
// Compilation mirrors the tree-walker's evaluation strategy instruction
// for instruction: existential quantifiers become relation scans over
// the first positive atom conjunct that binds a quantified variable
// (guard-driven join), with an active-domain loop as the fallback;
// universal quantifiers compile as the negated existential of the NNF'd
// negated body; query enumeration compiles the query enumerator's
// guard/branch recursion with an explicit emit instruction. Variable
// bind order, term resolution order, short-circuiting, and every error
// message are preserved so compiled verdicts are bit-identical to the
// interpreter's.

#ifndef WSV_FO_BYTECODE_COMPILER_H_
#define WSV_FO_BYTECODE_COMPILER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fo/bytecode/program.h"
#include "fo/formula.h"

namespace wsv {
namespace fobc {

/// Compiles `f` as a sentence: Execute() returns its truth value under
/// an EvalContext and entry valuation.
StatusOr<std::shared_ptr<const Program>> CompileBool(const FormulaPtr& f);

/// Compiles `f` as a query with head variables `head_vars` (must be
/// distinct): ExecuteQuery() returns the satisfying head tuples. The
/// compiled program assumes no head variable is bound by the entry
/// valuation; callers with pre-bound heads must use the interpreter.
StatusOr<std::shared_ptr<const Program>> CompileQuery(
    const FormulaPtr& f, const std::vector<std::string>& head_vars);

}  // namespace fobc
}  // namespace wsv

#endif  // WSV_FO_BYTECODE_COMPILER_H_
