#include "fo/bytecode/compiler.h"

#include <map>
#include <optional>
#include <set>
#include <utility>

#include "fo/rewrite.h"

namespace wsv {
namespace fobc {
namespace {

// Recursively flattens nested conjunctions into a conjunct list (same
// traversal as the tree-walker's FlattenAnd).
void FlattenAnd(const Formula& f, std::vector<const Formula*>* out) {
  if (f.kind() == Formula::Kind::kAnd) {
    for (const FormulaPtr& c : f.children()) FlattenAnd(*c, out);
  } else {
    out->push_back(&f);
  }
}

class Compiler {
 public:
  StatusOr<std::shared_ptr<const Program>> CompileBoolProgram(
      const FormulaPtr& f) {
    prog_ = std::make_shared<Program>();
    prog_->source = f;
    WSV_RETURN_IF_ERROR(CompileEval(*f));
    Emit(Op::kHalt);
    return Finish(f);
  }

  StatusOr<std::shared_ptr<const Program>> CompileQueryProgram(
      const FormulaPtr& f, const std::vector<std::string>& head_vars) {
    prog_ = std::make_shared<Program>();
    prog_->source = f;
    prog_->is_query = true;
    prog_->head_vars = head_vars;
    std::set<std::string> unbound(head_vars.begin(), head_vars.end());
    if (unbound.size() != head_vars.size()) {
      return Status::InvalidArgument("repeated query head variable");
    }
    for (const std::string& v : head_vars) {
      uint32_t r = AllocReg(v);
      scope_[v] = r;
      head_regs_.push_back(r);
    }
    head_pool_ = static_cast<uint32_t>(pool_.size());
    for (uint32_t r : head_regs_) pool_.push_back(MakeOperand(kOperandReg, r));
    WSV_RETURN_IF_ERROR(CompileEnumerate(std::move(unbound), *f));
    Emit(Op::kHalt);
    return Finish(f);
  }

 private:
  // -- Emission helpers -----------------------------------------------------

  uint32_t Here() const { return static_cast<uint32_t>(code_.size()); }

  uint32_t Emit(Op op, uint32_t a = 0, uint32_t b = 0, uint32_t c = 0,
                uint16_t count = 0) {
    Instr in;
    in.op = op;
    in.count = count;
    in.a = a;
    in.b = b;
    in.c = c;
    code_.push_back(in);
    return static_cast<uint32_t>(code_.size() - 1);
  }

  void EnterLoop() {
    ++depth_;
    if (depth_ > max_depth_) max_depth_ = depth_;
  }
  void LeaveLoop() { --depth_; }

  // -- Symbol resolution ----------------------------------------------------

  uint32_t AllocReg(const std::string& name) {
    reg_names_.push_back(name);
    static_bound_.push_back(0);
    return static_cast<uint32_t>(reg_names_.size() - 1);
  }

  /// Register for a variable occurrence. Unseen names are free variables
  /// of the program: they get a register loaded from the entry valuation
  /// (invalid when the caller leaves them unbound).
  uint32_t VarReg(const std::string& name) {
    auto it = scope_.find(name);
    if (it != scope_.end()) return it->second;
    uint32_t r = AllocReg(name);
    scope_[name] = r;
    free_vars_.push_back({name, r});
    return r;
  }

  uint32_t ConstSlotFor(const Term& t) {
    if (t.is_literal()) {
      auto it = literal_slots_.find(t.literal().id());
      if (it != literal_slots_.end()) return it->second;
      ConstSlot slot;
      slot.is_symbol = false;
      slot.name = t.name();
      slot.literal = t.literal();
      consts_.push_back(std::move(slot));
      uint32_t idx = static_cast<uint32_t>(consts_.size() - 1);
      literal_slots_[t.literal().id()] = idx;
      return idx;
    }
    auto it = symbol_slots_.find(t.name());
    if (it != symbol_slots_.end()) return it->second;
    ConstSlot slot;
    slot.is_symbol = true;
    slot.name = t.name();
    consts_.push_back(std::move(slot));
    uint32_t idx = static_cast<uint32_t>(consts_.size() - 1);
    symbol_slots_[t.name()] = idx;
    return idx;
  }

  uint32_t RelSlotFor(const Atom& atom) {
    auto key = std::make_pair(atom.relation, atom.prev);
    auto it = rel_slots_.find(key);
    if (it != rel_slots_.end()) return it->second;
    RelSlot slot;
    slot.name = atom.relation;
    slot.prev = atom.prev;
    rels_.push_back(std::move(slot));
    uint32_t idx = static_cast<uint32_t>(rels_.size() - 1);
    rel_slots_[key] = idx;
    return idx;
  }

  /// Operand for a term in load position (kAtom tuples, kEq sides).
  uint32_t LoadOperand(const Term& t) {
    if (t.is_variable()) return MakeOperand(kOperandReg, VarReg(t.name()));
    return MakeOperand(kOperandConst, ConstSlotFor(t));
  }

  // -- Boolean evaluation (mirrors Evaluator::Eval) -------------------------

  Status CompileEval(const Formula& f) {
    switch (f.kind()) {
      case Formula::Kind::kTrue:
        Emit(Op::kFlagSet, 1);
        return Status::OK();
      case Formula::Kind::kFalse:
        Emit(Op::kFlagSet, 0);
        return Status::OK();
      case Formula::Kind::kAtom: {
        const Atom& atom = f.atom();
        uint32_t rel = RelSlotFor(atom);
        uint32_t pool_start = static_cast<uint32_t>(pool_.size());
        for (const Term& t : atom.terms) pool_.push_back(LoadOperand(t));
        Emit(Op::kAtom, rel, pool_start, 0,
             static_cast<uint16_t>(atom.terms.size()));
        return Status::OK();
      }
      case Formula::Kind::kEquals: {
        uint32_t lhs = LoadOperand(f.lhs());
        uint32_t rhs = LoadOperand(f.rhs());
        Emit(Op::kEq, lhs, rhs);
        return Status::OK();
      }
      case Formula::Kind::kNot: {
        WSV_RETURN_IF_ERROR(CompileEval(*f.children()[0]));
        Emit(Op::kNot);
        return Status::OK();
      }
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        const bool is_and = f.kind() == Formula::Kind::kAnd;
        const auto& cs = f.children();
        if (cs.empty()) {
          Emit(Op::kFlagSet, is_and ? 1 : 0);
          return Status::OK();
        }
        std::vector<uint32_t> jumps;
        for (size_t i = 0; i < cs.size(); ++i) {
          WSV_RETURN_IF_ERROR(CompileEval(*cs[i]));
          if (i + 1 < cs.size()) {
            jumps.push_back(Emit(is_and ? Op::kJumpIfFalse : Op::kJumpIfTrue));
          }
        }
        for (uint32_t j : jumps) code_[j].a = Here();
        return Status::OK();
      }
      case Formula::Kind::kExists:
      case Formula::Kind::kForall: {
        // Quantified variables shadow any outer binding: fresh registers.
        std::set<std::string> vars(f.variables().begin(), f.variables().end());
        std::vector<std::pair<std::string, std::optional<uint32_t>>> saved;
        for (const std::string& v : vars) {
          auto it = scope_.find(v);
          saved.emplace_back(v, it == scope_.end()
                                    ? std::nullopt
                                    : std::optional<uint32_t>(it->second));
          scope_[v] = AllocReg(v);
        }
        Status st;
        if (f.kind() == Formula::Kind::kExists) {
          st = CompileExists(vars, *f.body());
        } else {
          // forall x phi == !exists x !phi; NNF re-exposes the guard of
          // the input-bounded pattern forall x (alpha -> phi).
          FormulaPtr negated = ToNNF(*Formula::Not(f.body()));
          st = CompileExists(vars, *negated);
          if (st.ok()) Emit(Op::kNot);
        }
        for (auto& [v, old] : saved) {
          if (old.has_value()) {
            scope_[v] = *old;
          } else {
            scope_.erase(v);
          }
        }
        return st;
      }
    }
    return Status::Internal("bad formula kind");
  }

  /// Conjunction of an already-flattened conjunct list (the tail the
  /// tree-walker evaluates via Eval(And(rest))).
  Status CompileConjunction(const std::vector<const Formula*>& conjuncts) {
    if (conjuncts.empty()) {
      Emit(Op::kFlagSet, 1);
      return Status::OK();
    }
    std::vector<uint32_t> jumps;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      WSV_RETURN_IF_ERROR(CompileEval(*conjuncts[i]));
      if (i + 1 < conjuncts.size()) jumps.push_back(Emit(Op::kJumpIfFalse));
    }
    for (uint32_t j : jumps) code_[j].a = Here();
    return Status::OK();
  }

  // -- Existential evaluation (mirrors Evaluator::EvalExists) ---------------

  Status CompileExists(const std::set<std::string>& vars,
                       const Formula& body) {
    if (vars.empty()) return CompileEval(body);
    std::vector<const Formula*> conjuncts;
    FlattenAnd(body, &conjuncts);
    return CompileExistsStep(vars, conjuncts);
  }

  Status CompileExistsStep(std::set<std::string> vars,
                           std::vector<const Formula*> conjuncts) {
    if (vars.empty()) return CompileConjunction(conjuncts);

    // Guard selection: the first atom conjunct binding a quantified var.
    const Formula* guard = nullptr;
    for (const Formula* c : conjuncts) {
      if (c->kind() != Formula::Kind::kAtom) continue;
      for (const Term& t : c->atom().terms) {
        if (t.is_variable() && vars.count(t.name()) > 0) {
          guard = c;
          break;
        }
      }
      if (guard != nullptr) break;
    }

    if (guard == nullptr) {
      // Domain fallback: bind one variable over the active domain; the
      // recursion never finds a guard for the remaining subset either.
      std::string var = *vars.begin();
      vars.erase(vars.begin());
      uint32_t reg = scope_.at(var);
      static_bound_[reg] = 1;
      uses_domain_ = true;
      uint32_t dom = Emit(Op::kDomBegin, reg);
      EnterLoop();
      WSV_RETURN_IF_ERROR(CompileExistsStep(std::move(vars),
                                            std::move(conjuncts)));
      uint32_t jf = Emit(Op::kJumpIfFalse);
      uint32_t brk = Emit(Op::kBreak);
      code_[jf].a = Here();
      Emit(Op::kDomNext, dom);
      LeaveLoop();
      code_[dom].c = Here();
      code_[brk].a = Here();
      return Status::OK();
    }

    const Atom& atom = guard->atom();
    uint32_t rel = RelSlotFor(atom);
    uint32_t pool_start = static_cast<uint32_t>(pool_.size());
    for (const Term& t : atom.terms) {
      if (!t.is_variable()) {
        pool_.push_back(MakeOperand(kOperandConst, ConstSlotFor(t)));
        continue;
      }
      const std::string& n = t.name();
      if (vars.count(n) > 0) {
        // First occurrence binds; later positions of the same variable
        // fall through to the check case below.
        uint32_t r = scope_.at(n);
        pool_.push_back(MakeOperand(kOperandBind, r));
        static_bound_[r] = 1;
        vars.erase(n);
      } else {
        // Already-bound quantified var, outer binding, or free variable
        // (an unbound free variable rejects the tuple, like the
        // tree-walker's unmatched-guard-position rule).
        pool_.push_back(MakeOperand(kOperandCheck, VarReg(n)));
      }
    }
    std::vector<const Formula*> rest;
    rest.reserve(conjuncts.size());
    for (const Formula* c : conjuncts) {
      if (c != guard) rest.push_back(c);
    }
    uint32_t scan = Emit(Op::kScanBegin, rel, pool_start, 0,
                         static_cast<uint16_t>(atom.terms.size()));
    EnterLoop();
    WSV_RETURN_IF_ERROR(CompileExistsStep(std::move(vars), std::move(rest)));
    uint32_t jf = Emit(Op::kJumpIfFalse);
    uint32_t brk = Emit(Op::kBreak);
    code_[jf].a = Here();
    Emit(Op::kScanNext, scan);
    LeaveLoop();
    code_[scan].c = Here();
    code_[brk].a = Here();
    return Status::OK();
  }

  // -- Query enumeration (mirrors QueryEnumerator::Enumerate) ---------------

  Status CompileEnumerate(std::set<std::string> unbound,
                          const Formula& body) {
    if (unbound.empty()) {
      // Emit point: re-evaluate the (branch) body under the current
      // bindings, then append the head tuple.
      WSV_RETURN_IF_ERROR(CompileEval(body));
      uint32_t jf = Emit(Op::kJumpIfFalse);
      Emit(Op::kEmit, head_pool_, 0, 0,
           static_cast<uint16_t>(head_regs_.size()));
      code_[jf].a = Here();
      return Status::OK();
    }

    // Disjunction: enumerate each branch (results are a union); each
    // branch re-binds the head registers from scratch.
    if (body.kind() == Formula::Kind::kOr) {
      for (const FormulaPtr& c : body.children()) {
        std::vector<char> saved;
        saved.reserve(head_regs_.size());
        for (uint32_t r : head_regs_) saved.push_back(static_bound_[r]);
        WSV_RETURN_IF_ERROR(CompileEnumerate(unbound, *c));
        for (size_t i = 0; i < head_regs_.size(); ++i) {
          static_bound_[head_regs_[i]] = saved[i];
        }
      }
      return Status::OK();
    }

    std::vector<const Formula*> conjuncts;
    FlattenAnd(body, &conjuncts);
    const Formula* guard = nullptr;
    for (const Formula* c : conjuncts) {
      if (c->kind() != Formula::Kind::kAtom) continue;
      for (const Term& t : c->atom().terms) {
        if (t.is_variable() && unbound.count(t.name()) > 0) {
          guard = c;
          break;
        }
      }
      if (guard != nullptr) break;
    }

    if (guard == nullptr) {
      // Domain fallback, without early exit: every binding enumerates.
      std::string var = *unbound.begin();
      unbound.erase(unbound.begin());
      uint32_t reg = scope_.at(var);
      static_bound_[reg] = 1;
      uses_domain_ = true;
      uint32_t dom = Emit(Op::kDomBegin, reg);
      EnterLoop();
      WSV_RETURN_IF_ERROR(CompileEnumerate(std::move(unbound), body));
      Emit(Op::kDomNext, dom);
      LeaveLoop();
      code_[dom].c = Here();
      return Status::OK();
    }

    const Atom& atom = guard->atom();
    uint32_t rel = RelSlotFor(atom);
    uint32_t pool_start = static_cast<uint32_t>(pool_.size());
    std::set<std::string> rest = unbound;
    for (const Term& t : atom.terms) {
      if (!t.is_variable()) {
        pool_.push_back(MakeOperand(kOperandConst, ConstSlotFor(t)));
        continue;
      }
      const std::string& n = t.name();
      if (rest.count(n) > 0) {
        uint32_t r = scope_.at(n);
        pool_.push_back(MakeOperand(kOperandBind, r));
        static_bound_[r] = 1;
        rest.erase(n);
      } else if (unbound.count(n) > 0) {
        // Repeated occurrence within this atom: bound just above.
        pool_.push_back(MakeOperand(kOperandCheck, scope_.at(n)));
      } else {
        // Non-head variable: constrain only if bound (the enumerator's
        // skip-constraint rule), so the check is soft unless the
        // register is statically known to be bound.
        uint32_t r = VarReg(n);
        pool_.push_back(MakeOperand(
            static_bound_[r] ? kOperandCheck : kOperandCheckSoft, r));
      }
    }
    uint32_t scan = Emit(Op::kScanBegin, rel, pool_start, 0,
                         static_cast<uint16_t>(atom.terms.size()));
    EnterLoop();
    // Recurse on the *full* body: the emit point re-checks every
    // conjunct, exactly like the tree-walking enumerator.
    WSV_RETURN_IF_ERROR(CompileEnumerate(std::move(rest), body));
    Emit(Op::kScanNext, scan);
    LeaveLoop();
    code_[scan].c = Here();
    return Status::OK();
  }

  // -- Finalization ---------------------------------------------------------

  StatusOr<std::shared_ptr<const Program>> Finish(const FormulaPtr& f) {
    prog_->code = std::move(code_);
    prog_->pool = std::move(pool_);
    prog_->consts = std::move(consts_);
    prog_->rels = std::move(rels_);
    prog_->num_regs = static_cast<uint32_t>(reg_names_.size());
    prog_->reg_names = std::move(reg_names_);
    prog_->free_vars = std::move(free_vars_);
    prog_->max_frames = max_depth_;
    prog_->uses_domain = uses_domain_;
    prog_->constant_symbols = f->ConstantSymbols();
    prog_->literals = f->Literals();
    return std::shared_ptr<const Program>(std::move(prog_));
  }

  std::shared_ptr<Program> prog_;
  std::vector<Instr> code_;
  std::vector<uint32_t> pool_;
  std::vector<ConstSlot> consts_;
  std::vector<RelSlot> rels_;
  std::vector<std::string> reg_names_;
  std::vector<std::pair<std::string, uint32_t>> free_vars_;
  std::vector<char> static_bound_;  // per register: bound on every path?
  std::map<std::string, uint32_t> scope_;
  std::map<int32_t, uint32_t> literal_slots_;
  std::map<std::string, uint32_t> symbol_slots_;
  std::map<std::pair<std::string, bool>, uint32_t> rel_slots_;
  std::vector<uint32_t> head_regs_;
  uint32_t head_pool_ = 0;
  uint32_t depth_ = 0;
  uint32_t max_depth_ = 0;
  bool uses_domain_ = false;
};

}  // namespace

StatusOr<std::shared_ptr<const Program>> CompileBool(const FormulaPtr& f) {
  if (f == nullptr) return Status::InvalidArgument("null formula");
  Compiler c;
  return c.CompileBoolProgram(f);
}

StatusOr<std::shared_ptr<const Program>> CompileQuery(
    const FormulaPtr& f, const std::vector<std::string>& head_vars) {
  if (f == nullptr) return Status::InvalidArgument("null formula");
  Compiler c;
  return c.CompileQueryProgram(f, head_vars);
}

}  // namespace fobc
}  // namespace wsv
