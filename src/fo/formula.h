// First-order formulas over a Web service vocabulary (Section 2).
//
// Formulas are immutable trees shared via FormulaPtr. Atoms name relation
// symbols from any of the four schemas; an atom over an input relation may
// be flagged `prev` to refer to the previous step's input (Prev_I). Terms
// are variables, constant symbols (resolved against the vocabulary, e.g.
// input constants like `name`), or literals (quoted strings, which denote
// themselves).
//
// The paper adopts active-domain semantics for quantifiers; see
// fo/evaluator.h.

#ifndef WSV_FO_FORMULA_H_
#define WSV_FO_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/span.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace wsv {

/// A term: variable, constant symbol, or literal value.
class Term {
 public:
  enum class Kind { kVariable, kConstantSymbol, kLiteral };

  static Term Variable(std::string name) {
    return Term(Kind::kVariable, std::move(name), Value());
  }
  static Term ConstantSymbol(std::string name) {
    return Term(Kind::kConstantSymbol, std::move(name), Value());
  }
  static Term Literal(Value v) { return Term(Kind::kLiteral, v.name(), v); }

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant_symbol() const { return kind_ == Kind::kConstantSymbol; }
  bool is_literal() const { return kind_ == Kind::kLiteral; }

  /// Source location of this occurrence (invalid for programmatically
  /// built terms). Ignored by comparison operators.
  const Span& span() const { return span_; }
  void set_span(Span span) { span_ = span; }

  /// Variable or constant-symbol name; for literals, the value's name.
  const std::string& name() const { return name_; }
  /// The literal's value; valid only when is_literal().
  Value literal() const { return literal_; }

  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.name_ == b.name_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.name_ < b.name_;
  }

 private:
  Term(Kind kind, std::string name, Value literal)
      : kind_(kind), name_(std::move(name)), literal_(literal) {}

  Kind kind_;
  std::string name_;
  Value literal_;
  Span span_;
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// A relational atom R(t1, ..., tk); `prev` marks Prev_I atoms.
struct Atom {
  std::string relation;
  bool prev = false;
  std::vector<Term> terms;
  /// Location of the relation-name token (invalid when built in code).
  Span span;

  std::string ToString() const;
};

/// An immutable first-order formula.
class Formula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kAtom,
    kEquals,  // t1 = t2
    kNot,
    kAnd,
    kOr,
    kExists,
    kForall,
  };

  // -- Factories ------------------------------------------------------------

  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr MakeAtom(Atom atom);
  static FormulaPtr MakeAtom(std::string relation, std::vector<Term> terms,
                             bool prev = false);
  static FormulaPtr Equals(Term lhs, Term rhs);
  /// Sugar for Not(Equals(lhs, rhs)).
  static FormulaPtr NotEquals(Term lhs, Term rhs);
  static FormulaPtr Not(FormulaPtr f);
  /// N-ary conjunction; And({}) == True(), And({f}) == f.
  static FormulaPtr And(std::vector<FormulaPtr> fs);
  static FormulaPtr And(FormulaPtr a, FormulaPtr b);
  /// N-ary disjunction; Or({}) == False(), Or({f}) == f.
  static FormulaPtr Or(std::vector<FormulaPtr> fs);
  static FormulaPtr Or(FormulaPtr a, FormulaPtr b);
  /// Sugar for Or(Not(a), b).
  static FormulaPtr Implies(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Exists(std::vector<std::string> vars, FormulaPtr body);
  static FormulaPtr Forall(std::vector<std::string> vars, FormulaPtr body);

  // -- Accessors ------------------------------------------------------------

  Kind kind() const { return kind_; }
  /// Valid only for kAtom.
  const Atom& atom() const { return atom_; }
  /// Valid only for kEquals.
  const Term& lhs() const { return lhs_; }
  const Term& rhs() const { return rhs_; }
  /// Children: kNot has one; kAnd/kOr have n; quantifiers have one (body).
  const std::vector<FormulaPtr>& children() const { return children_; }
  /// Valid only for quantifiers.
  const std::vector<std::string>& variables() const { return vars_; }
  const FormulaPtr& body() const { return children_[0]; }

  // -- Analyses -------------------------------------------------------------

  /// Free variables of the formula.
  std::set<std::string> FreeVariables() const;
  /// All constant symbols appearing anywhere in the formula.
  std::set<std::string> ConstantSymbols() const;
  /// All literal values appearing anywhere in the formula. These act as
  /// schema constants and belong to the active domain of every instance
  /// the formula is evaluated on.
  std::set<Value> Literals() const;
  /// All relation names appearing in atoms (prev atoms report the base
  /// input relation name).
  std::set<std::string> RelationNames() const;
  /// All atoms in the formula, in syntactic order.
  std::vector<Atom> Atoms() const;
  /// True iff the formula contains no quantifier.
  bool IsQuantifierFree() const;

  std::string ToString() const;

 protected:
  // Construction goes through the factories; protected so the factory
  // implementation can derive a local accessor.
  explicit Formula(Kind kind)
      : kind_(kind),
        lhs_(Term::Variable("_")),
        rhs_(Term::Variable("_")) {}

 private:
  Kind kind_;
  Atom atom_;                        // kAtom
  Term lhs_, rhs_;                   // kEquals
  std::vector<FormulaPtr> children_; // kNot/kAnd/kOr/quantifier body
  std::vector<std::string> vars_;    // quantifiers
};

}  // namespace wsv

#endif  // WSV_FO_FORMULA_H_
