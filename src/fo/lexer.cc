#include "fo/lexer.h"

#include <cctype>

namespace wsv {

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier '" + text + "'";
    case TokenKind::kString:
      return "string \"" + text + "\"";
    case TokenKind::kNumber:
      return "number " + text;
    case TokenKind::kEof:
      return "end of input";
    default:
      return "'" + text + "'";
  }
}

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  int line = 1, column = 1;
  size_t i = 0;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < input.size() && input[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  auto push = [&](TokenKind kind, std::string text) {
    out.push_back(Token{kind, std::move(text), line, column});
  };

  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments: '#' or '//' to end of line.
    if (c == '#' ||
        (c == '/' && i + 1 < input.size() && input[i + 1] == '/')) {
      while (i < input.size() && input[i] != '\n') advance(1);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        // Track position manually to keep token position at its start.
        ++i;
        ++column;
      }
      out.push_back(Token{TokenKind::kIdent,
                          std::string(input.substr(start, i - start)), line,
                          column - static_cast<int>(i - start)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
        ++column;
      }
      out.push_back(Token{TokenKind::kNumber,
                          std::string(input.substr(start, i - start)), line,
                          column - static_cast<int>(i - start)});
      continue;
    }
    if (c == '"') {
      int tok_line = line, tok_col = column;
      advance(1);
      std::string text;
      bool closed = false;
      while (i < input.size()) {
        char d = input[i];
        if (d == '"') {
          advance(1);
          closed = true;
          break;
        }
        if (d == '\\' && i + 1 < input.size()) {
          char e = input[i + 1];
          advance(2);
          switch (e) {
            case 'n':
              text.push_back('\n');
              break;
            case '\\':
              text.push_back('\\');
              break;
            case '"':
              text.push_back('"');
              break;
            default:
              text.push_back(e);
          }
          continue;
        }
        text.push_back(d);
        advance(1);
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(tok_line));
      }
      out.push_back(Token{TokenKind::kString, std::move(text), tok_line,
                          tok_col});
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < input.size() && input[i + 1] == b;
    };
    if (two(':', '-')) {
      push(TokenKind::kColonDash, ":-");
      advance(2);
      continue;
    }
    if (two('!', '=')) {
      push(TokenKind::kNotEquals, "!=");
      advance(2);
      continue;
    }
    if (two('-', '>')) {
      push(TokenKind::kArrow, "->");
      advance(2);
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case '{':
        kind = TokenKind::kLBrace;
        break;
      case '}':
        kind = TokenKind::kRBrace;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case '.':
        kind = TokenKind::kDot;
        break;
      case ';':
        kind = TokenKind::kSemicolon;
        break;
      case '=':
        kind = TokenKind::kEquals;
        break;
      case '&':
        kind = TokenKind::kAnd;
        break;
      case '|':
        kind = TokenKind::kOr;
        break;
      case '!':
        kind = TokenKind::kNot;
        break;
      case '+':
        kind = TokenKind::kPlus;
        break;
      case '-':
        kind = TokenKind::kMinus;
        break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at line " +
                                  std::to_string(line) + ", column " +
                                  std::to_string(column));
    }
    push(kind, std::string(1, c));
    advance(1);
  }
  out.push_back(Token{TokenKind::kEof, "", line, column});
  return out;
}

const Token& TokenStream::Peek(size_t lookahead) const {
  size_t idx = pos_ + lookahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // Eof
  return tokens_[idx];
}

const Token& TokenStream::Next() {
  const Token& t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool TokenStream::TryConsume(TokenKind kind) {
  if (Peek().kind != kind) return false;
  Next();
  return true;
}

bool TokenStream::TryConsumeIdent(std::string_view keyword) {
  if (Peek().kind != TokenKind::kIdent || Peek().text != keyword) return false;
  Next();
  return true;
}

Status TokenStream::Expect(TokenKind kind, std::string_view what) {
  if (Peek().kind != kind) {
    return ErrorHere("expected " + std::string(what));
  }
  Next();
  return Status::OK();
}

Status TokenStream::ExpectIdent(std::string_view keyword) {
  if (Peek().kind != TokenKind::kIdent || Peek().text != keyword) {
    return ErrorHere("expected '" + std::string(keyword) + "'");
  }
  Next();
  return Status::OK();
}

StatusOr<std::string> TokenStream::ExpectIdentText(std::string_view what) {
  if (Peek().kind != TokenKind::kIdent) {
    return ErrorHere("expected " + std::string(what));
  }
  return Next().text;
}

Status TokenStream::ErrorHere(std::string_view message) const {
  const Token& t = Peek();
  return Status::ParseError(std::string(message) + ", got " + t.Describe() +
                            " at line " + std::to_string(t.line) +
                            ", column " + std::to_string(t.column));
}

}  // namespace wsv
