#include "fo/rewrite.h"

namespace wsv {

namespace {

FormulaPtr NNF(const Formula& f, bool negate);

FormulaPtr NNFChildren(const Formula& f, bool negate, Formula::Kind kind) {
  std::vector<FormulaPtr> parts;
  parts.reserve(f.children().size());
  for (const FormulaPtr& c : f.children()) parts.push_back(NNF(*c, negate));
  return kind == Formula::Kind::kAnd ? Formula::And(std::move(parts))
                                     : Formula::Or(std::move(parts));
}

FormulaPtr NNF(const Formula& f, bool negate) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      return negate ? Formula::False() : Formula::True();
    case Formula::Kind::kFalse:
      return negate ? Formula::True() : Formula::False();
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals: {
      FormulaPtr self =
          f.kind() == Formula::Kind::kAtom
              ? Formula::MakeAtom(f.atom())
              : Formula::Equals(f.lhs(), f.rhs());
      return negate ? Formula::Not(std::move(self)) : self;
    }
    case Formula::Kind::kNot:
      return NNF(*f.children()[0], !negate);
    case Formula::Kind::kAnd:
      return NNFChildren(f, negate,
                         negate ? Formula::Kind::kOr : Formula::Kind::kAnd);
    case Formula::Kind::kOr:
      return NNFChildren(f, negate,
                         negate ? Formula::Kind::kAnd : Formula::Kind::kOr);
    case Formula::Kind::kExists: {
      FormulaPtr body = NNF(*f.body(), negate);
      return negate ? Formula::Forall(f.variables(), std::move(body))
                    : Formula::Exists(f.variables(), std::move(body));
    }
    case Formula::Kind::kForall: {
      FormulaPtr body = NNF(*f.body(), negate);
      return negate ? Formula::Exists(f.variables(), std::move(body))
                    : Formula::Forall(f.variables(), std::move(body));
    }
  }
  return Formula::True();
}

// DNF represented as list of conjunctions (each a list of literals).
using Clause = std::vector<FormulaPtr>;

StatusOr<std::vector<Clause>> DnfClauses(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      return std::vector<Clause>{Clause{}};
    case Formula::Kind::kFalse:
      return std::vector<Clause>{};
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals:
    case Formula::Kind::kNot: {
      if (f.kind() == Formula::Kind::kNot) {
        const Formula& c = *f.children()[0];
        if (c.kind() != Formula::Kind::kAtom &&
            c.kind() != Formula::Kind::kEquals) {
          return Status::InvalidArgument(
              "ToDNF requires NNF input (negation above non-atom)");
        }
      }
      FormulaPtr lit =
          f.kind() == Formula::Kind::kAtom
              ? Formula::MakeAtom(f.atom())
              : (f.kind() == Formula::Kind::kEquals
                     ? Formula::Equals(f.lhs(), f.rhs())
                     : Formula::Not(
                           f.children()[0]->kind() == Formula::Kind::kAtom
                               ? Formula::MakeAtom(f.children()[0]->atom())
                               : Formula::Equals(f.children()[0]->lhs(),
                                                 f.children()[0]->rhs())));
      return std::vector<Clause>{Clause{lit}};
    }
    case Formula::Kind::kOr: {
      std::vector<Clause> out;
      for (const FormulaPtr& c : f.children()) {
        WSV_ASSIGN_OR_RETURN(std::vector<Clause> sub, DnfClauses(*c));
        out.insert(out.end(), sub.begin(), sub.end());
      }
      return out;
    }
    case Formula::Kind::kAnd: {
      std::vector<Clause> acc{Clause{}};
      for (const FormulaPtr& c : f.children()) {
        WSV_ASSIGN_OR_RETURN(std::vector<Clause> sub, DnfClauses(*c));
        std::vector<Clause> next;
        next.reserve(acc.size() * sub.size());
        for (const Clause& a : acc) {
          for (const Clause& b : sub) {
            Clause merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      return Status::InvalidArgument("ToDNF requires quantifier-free input");
  }
  return Status::Internal("bad formula kind");
}

Term SubstituteTerm(const Term& t,
                    const std::map<std::string, Term>& substitution) {
  if (!t.is_variable()) return t;
  auto it = substitution.find(t.name());
  return it == substitution.end() ? t : it->second;
}

}  // namespace

FormulaPtr ToNNF(const Formula& f) { return NNF(f, /*negate=*/false); }

StatusOr<FormulaPtr> ToDNF(const Formula& f) {
  FormulaPtr nnf = ToNNF(f);
  WSV_ASSIGN_OR_RETURN(std::vector<Clause> clauses, DnfClauses(*nnf));
  std::vector<FormulaPtr> disjuncts;
  disjuncts.reserve(clauses.size());
  for (Clause& clause : clauses) {
    disjuncts.push_back(Formula::And(std::move(clause)));
  }
  return Formula::Or(std::move(disjuncts));
}

FormulaPtr Substitute(const Formula& f,
                      const std::map<std::string, Term>& substitution) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return f.kind() == Formula::Kind::kTrue ? Formula::True()
                                              : Formula::False();
    case Formula::Kind::kAtom: {
      Atom atom = f.atom();
      for (Term& t : atom.terms) t = SubstituteTerm(t, substitution);
      return Formula::MakeAtom(std::move(atom));
    }
    case Formula::Kind::kEquals:
      return Formula::Equals(SubstituteTerm(f.lhs(), substitution),
                             SubstituteTerm(f.rhs(), substitution));
    case Formula::Kind::kNot:
      return Formula::Not(Substitute(*f.children()[0], substitution));
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<FormulaPtr> parts;
      parts.reserve(f.children().size());
      for (const FormulaPtr& c : f.children()) {
        parts.push_back(Substitute(*c, substitution));
      }
      return f.kind() == Formula::Kind::kAnd
                 ? Formula::And(std::move(parts))
                 : Formula::Or(std::move(parts));
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      // Bound variables shadow the substitution.
      std::map<std::string, Term> inner = substitution;
      for (const std::string& v : f.variables()) inner.erase(v);
      FormulaPtr body = Substitute(*f.body(), inner);
      return f.kind() == Formula::Kind::kExists
                 ? Formula::Exists(f.variables(), std::move(body))
                 : Formula::Forall(f.variables(), std::move(body));
    }
  }
  return Formula::True();
}

FormulaPtr Simplify(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      return Formula::True();
    case Formula::Kind::kFalse:
      return Formula::False();
    case Formula::Kind::kAtom:
      return Formula::MakeAtom(f.atom());
    case Formula::Kind::kEquals:
      if (f.lhs() == f.rhs()) return Formula::True();
      // Distinct literals denote distinct elements.
      if (f.lhs().is_literal() && f.rhs().is_literal()) {
        return Formula::False();
      }
      return Formula::Equals(f.lhs(), f.rhs());
    case Formula::Kind::kNot: {
      FormulaPtr sub = Simplify(*f.children()[0]);
      if (sub->kind() == Formula::Kind::kTrue) return Formula::False();
      if (sub->kind() == Formula::Kind::kFalse) return Formula::True();
      if (sub->kind() == Formula::Kind::kNot) return sub->children()[0];
      return Formula::Not(std::move(sub));
    }
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      bool is_and = f.kind() == Formula::Kind::kAnd;
      std::vector<FormulaPtr> parts;
      for (const FormulaPtr& c : f.children()) {
        FormulaPtr sub = Simplify(*c);
        if (sub->kind() == Formula::Kind::kTrue) {
          if (!is_and) return Formula::True();
          continue;  // drop neutral element
        }
        if (sub->kind() == Formula::Kind::kFalse) {
          if (is_and) return Formula::False();
          continue;
        }
        // Flatten nested connectives of the same kind.
        if (sub->kind() == f.kind()) {
          for (const FormulaPtr& g : sub->children()) parts.push_back(g);
        } else {
          parts.push_back(std::move(sub));
        }
      }
      return is_and ? Formula::And(std::move(parts))
                    : Formula::Or(std::move(parts));
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      FormulaPtr body = Simplify(*f.body());
      if (body->kind() == Formula::Kind::kTrue ||
          body->kind() == Formula::Kind::kFalse) {
        // Quantification over the (nonempty in our semantics checks'
        // typical use) active domain of a constant formula is constant.
        // Note: with an empty active domain exists is false; callers that
        // care about empty domains must not rely on Simplify.
        return body;
      }
      // Drop quantified variables that do not occur free in the body.
      std::set<std::string> free = body->FreeVariables();
      std::vector<std::string> used;
      for (const std::string& v : f.variables()) {
        if (free.count(v) > 0) used.push_back(v);
      }
      return f.kind() == Formula::Kind::kExists
                 ? Formula::Exists(std::move(used), std::move(body))
                 : Formula::Forall(std::move(used), std::move(body));
    }
  }
  return Formula::True();
}

}  // namespace wsv
