// The quantifier-free rewriting of input-bounded formulas (appendix
// A.3, used by the small-model argument of Lemma A.11 / Theorem 4.4).
//
// Because the user picks at most one tuple per input relation, an
// input-bounded formula can be rewritten without quantifiers: denote the
// (possible) tuple in input relation I of arity m by the designated
// variables  I__1 ... I__m  and its presence by the proposition
// __present_I (and likewise __prev_I__k / __present_prev_I for Prev_I).
// Then
//
//   I(t1,...,tm)        ~>  __present_I & t1 = I__1 & ... & tm = I__m
//   exists x (I(t) & p) ~>  __present_I & <equalities for non-x terms>
//                           & p[x := designated positions]
//   forall x (I(t) -> p) ~> the dual implication
//
// yielding a quantifier-free formula over the database, state, and
// action atoms, equalities, and the designated variables — exactly the
// appendix's `qf` construction. The rewriting is semantics-preserving:
// evaluating the result with the designated variables bound to the
// actual input tuple (and the presence propositions set accordingly)
// agrees with evaluating the original against the input relations
// (fo/qf_test.cc checks this on randomized instances).

#ifndef WSV_FO_QF_H_
#define WSV_FO_QF_H_

#include <string>

#include "common/status.h"
#include "fo/formula.h"
#include "relational/schema.h"

namespace wsv {

/// The designated variable for position `i` (1-based) of input `I`.
std::string QfTupleVariable(const std::string& input, int position,
                            bool prev);

/// The presence proposition for input `I`.
std::string QfPresenceProp(const std::string& input, bool prev);

/// Rewrites an input-bounded formula to its quantifier-free version.
/// Fails with NotInputBounded on formulas outside the class.
StatusOr<FormulaPtr> InputBoundedToQuantifierFree(const Formula& formula,
                                                  const Vocabulary& vocab);

}  // namespace wsv

#endif  // WSV_FO_QF_H_
