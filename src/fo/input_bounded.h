// Input-boundedness checks (Section 3).
//
// The decidability results of the paper hinge on restricting
// quantification in rules and properties to be *input-bounded*:
//
//   - state, action, and target rule formulas may quantify only in the
//     guarded forms  exists x . (alpha & phi)  and
//     forall x . (alpha -> phi), where alpha is a current or previous
//     input atom, x is a subset of alpha's free variables, and no
//     variable of x occurs free in a state or action atom of phi;
//
//   - input (options) rule formulas must be existential FO in which all
//     state atoms are ground.
//
// These checkers validate the syntactic restriction and produce precise
// diagnostics pointing at the offending subformula.

#ifndef WSV_FO_INPUT_BOUNDED_H_
#define WSV_FO_INPUT_BOUNDED_H_

#include "common/status.h"
#include "fo/formula.h"
#include "relational/schema.h"

namespace wsv {

/// Checks the input-bounded restriction for state/action/target rule
/// formulas and for FO subformulas of temporal properties.
Status CheckInputBounded(const Formula& formula, const Vocabulary& vocab);

/// Checks the input-rule restriction: existential FO (no universal
/// quantifier, no existential under negation) with all state atoms ground.
Status CheckExistentialInputRule(const Formula& formula,
                                 const Vocabulary& vocab);

}  // namespace wsv

#endif  // WSV_FO_INPUT_BOUNDED_H_
