// Input-boundedness checks (Section 3).
//
// The decidability results of the paper hinge on restricting
// quantification in rules and properties to be *input-bounded*:
//
//   - state, action, and target rule formulas may quantify only in the
//     guarded forms  exists x . (alpha & phi)  and
//     forall x . (alpha -> phi), where alpha is a current or previous
//     input atom, x is a subset of alpha's free variables, and no
//     variable of x occurs free in a state or action atom of phi;
//
//   - input (options) rule formulas must be existential FO in which all
//     state atoms are ground.
//
// These checkers validate the syntactic restriction and produce precise
// diagnostics pointing at the offending subformula.

#ifndef WSV_FO_INPUT_BOUNDED_H_
#define WSV_FO_INPUT_BOUNDED_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "fo/formula.h"
#include "relational/schema.h"

namespace wsv {

/// One way a formula escapes the input-bounded fragment. The kind maps
/// onto the undecidability theorems of Section 3: relaxing guardedness
/// (Theorem 3.5 boundary), allowing non-ground state atoms in input
/// rules (Theorem 3.7), or projecting quantified variables into state
/// atoms (Theorem 3.8).
struct InputBoundedViolation {
  enum class Kind {
    kUnguardedQuantifier,        // quantifier not guarded by an input atom
    kQuantifiedVarInStateAtom,   // guard variable leaks into state/action
    kNonGroundStateAtom,         // input rule uses a non-ground state atom
    kUniversalInInputRule,       // input rule not existential
    kExistentialUnderNegation,   // input rule not existential (negated ∃)
  };

  Kind kind;
  std::string message;
  /// Closest source location: the offending atom when one is known,
  /// otherwise invalid.
  Span span;
};

/// Checks the input-bounded restriction for state/action/target rule
/// formulas and for FO subformulas of temporal properties.
Status CheckInputBounded(const Formula& formula, const Vocabulary& vocab);

/// Checks the input-rule restriction: existential FO (no universal
/// quantifier, no existential under negation) with all state atoms ground.
Status CheckExistentialInputRule(const Formula& formula,
                                 const Vocabulary& vocab);

/// Like CheckInputBounded but reports *every* violation instead of the
/// first; the Status checkers are thin wrappers over these collectors.
void CollectInputBoundedViolations(const Formula& formula,
                                   const Vocabulary& vocab,
                                   std::vector<InputBoundedViolation>* out);

/// Like CheckExistentialInputRule, collecting every violation.
void CollectExistentialInputRuleViolations(
    const Formula& formula, const Vocabulary& vocab,
    std::vector<InputBoundedViolation>* out);

}  // namespace wsv

#endif  // WSV_FO_INPUT_BOUNDED_H_
