// Formula rewriting utilities: negation normal form, disjunctive normal
// form for quantifier-free formulas, substitution, and simplification.
// These are used by the propositional abstraction (Lemma A.12) and the
// service-to-service transformations (Lemmas A.5 and A.10).

#ifndef WSV_FO_REWRITE_H_
#define WSV_FO_REWRITE_H_

#include <map>

#include "common/status.h"
#include "fo/formula.h"

namespace wsv {

/// Pushes negations to the atoms (de Morgan; quantifier duality). The
/// result contains kNot only directly above atoms/equalities.
FormulaPtr ToNNF(const Formula& f);

/// Converts a quantifier-free formula to disjunctive normal form: a
/// disjunction of conjunctions of literals. Exponential in the worst
/// case. Fails on quantified input.
StatusOr<FormulaPtr> ToDNF(const Formula& f);

/// Replaces free occurrences of variables per `substitution`. Bound
/// variables are untouched; capturing substitutions are the caller's
/// responsibility (all our call sites substitute fresh or ground terms).
FormulaPtr Substitute(const Formula& f,
                      const std::map<std::string, Term>& substitution);

/// Constant-folds true/false through connectives and prunes trivial
/// quantifiers; idempotent.
FormulaPtr Simplify(const Formula& f);

}  // namespace wsv

#endif  // WSV_FO_REWRITE_H_
