// E+TC: existential first-order logic with transitive closure.
//
// Theorem 3.5's upper bound works by reducing verification of
// input-bounded LTL-FO properties to finite satisfiability of E+TC
// sentences (following Spielmann's reduction for ASM transducers; see
// Appendix A.1). This module makes that reduction target a first-class
// object: an AST for E+TC formulas, a model checker over finite
// structures (TC computed as a fixpoint), and a brute-force bounded
// satisfiability search used in tests and to exhibit the pipeline on tiny
// vocabularies. The production verifier (verify/ltl_verifier.h) explores
// configuration graphs directly instead of going through E+TC, which is
// equivalent on bounded instances and far more practical.

#ifndef WSV_FO_ETC_H_
#define WSV_FO_ETC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fo/evaluator.h"
#include "fo/formula.h"

namespace wsv {

class EtcFormula;
using EtcPtr = std::shared_ptr<const EtcFormula>;

/// An E+TC formula: positive boolean combinations and existential
/// quantification over FO leaves and transitive-closure applications.
class EtcFormula {
 public:
  enum class Kind {
    kFo,      // an FO formula leaf (must itself be existential)
    kAnd,
    kOr,
    kExists,
    kTc,      // [TC_{x;y} body](source; target)
  };

  static EtcPtr Fo(FormulaPtr f);
  static EtcPtr And(std::vector<EtcPtr> parts);
  static EtcPtr Or(std::vector<EtcPtr> parts);
  static EtcPtr Exists(std::vector<std::string> vars, EtcPtr body);
  /// Transitive closure: `xs` and `ys` are the 2k bound variable vectors
  /// of the closed binary relation on k-tuples defined by `body`;
  /// `source`/`target` are the k-tuples of terms it is applied to.
  static EtcPtr Tc(std::vector<std::string> xs, std::vector<std::string> ys,
                   EtcPtr body, std::vector<Term> source,
                   std::vector<Term> target);

  Kind kind() const { return kind_; }
  const FormulaPtr& fo() const { return fo_; }
  const std::vector<EtcPtr>& children() const { return children_; }
  const std::vector<std::string>& variables() const { return vars_; }
  const std::vector<std::string>& tc_xs() const { return vars_; }
  const std::vector<std::string>& tc_ys() const { return ys_; }
  const std::vector<Term>& tc_source() const { return source_; }
  const std::vector<Term>& tc_target() const { return target_; }

  std::string ToString() const;

 protected:
  // Construction goes through the factories.
  explicit EtcFormula(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
  FormulaPtr fo_;
  std::vector<EtcPtr> children_;
  std::vector<std::string> vars_;  // kExists vars, or TC xs
  std::vector<std::string> ys_;    // TC ys
  std::vector<Term> source_;
  std::vector<Term> target_;
};

/// Model-checks an E+TC formula over the given context. TC is evaluated
/// as a reachability fixpoint over k-tuples of the active domain.
StatusOr<bool> EvaluateEtc(const EtcFormula& f, const EvalContext& ctx,
                           const Valuation& valuation = {});

/// A relation schema entry for bounded satisfiability search.
struct EtcRelationSpec {
  std::string name;
  int arity;
};

/// Brute-force finite satisfiability: searches for a structure over the
/// given relations with domain size at most `max_domain`, returning a
/// witness instance if one satisfies `f`. Exponential in every parameter;
/// intended for tiny vocabularies (tests, pipeline demonstrations).
StatusOr<std::optional<Instance>> BoundedSatisfiable(
    const EtcFormula& f, const std::vector<EtcRelationSpec>& relations,
    int max_domain);

}  // namespace wsv

#endif  // WSV_FO_ETC_H_
