#include "fo/formula.h"

#include "common/str_util.h"

namespace wsv {

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kConstantSymbol:
      return name_;
    case Kind::kLiteral:
      return QuoteString(name_);
  }
  return "?";
}

std::string Atom::ToString() const {
  std::string out = prev ? "prev." + relation : relation;
  if (terms.empty()) return out;
  out += "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i].ToString();
  }
  out += ")";
  return out;
}

namespace {

FormulaPtr MakeNode(Formula::Kind kind) {
  struct Access : Formula {
    explicit Access(Kind k) : Formula(k) {}
  };
  // Formula's constructor is private; expose via a local derived helper.
  return std::make_shared<Access>(kind);
}

Formula* Mutable(const FormulaPtr& f) {
  // Only used during construction before the node is shared.
  return const_cast<Formula*>(f.get());
}

}  // namespace

FormulaPtr Formula::True() {
  static const FormulaPtr node = MakeNode(Kind::kTrue);
  return node;
}

FormulaPtr Formula::False() {
  static const FormulaPtr node = MakeNode(Kind::kFalse);
  return node;
}

FormulaPtr Formula::MakeAtom(Atom atom) {
  FormulaPtr f = MakeNode(Kind::kAtom);
  Mutable(f)->atom_ = std::move(atom);
  return f;
}

FormulaPtr Formula::MakeAtom(std::string relation, std::vector<Term> terms,
                             bool prev) {
  return MakeAtom(Atom{std::move(relation), prev, std::move(terms), Span{}});
}

FormulaPtr Formula::Equals(Term lhs, Term rhs) {
  FormulaPtr f = MakeNode(Kind::kEquals);
  Mutable(f)->lhs_ = std::move(lhs);
  Mutable(f)->rhs_ = std::move(rhs);
  return f;
}

FormulaPtr Formula::NotEquals(Term lhs, Term rhs) {
  return Not(Equals(std::move(lhs), std::move(rhs)));
}

FormulaPtr Formula::Not(FormulaPtr f) {
  FormulaPtr node = MakeNode(Kind::kNot);
  Mutable(node)->children_.push_back(std::move(f));
  return node;
}

FormulaPtr Formula::And(std::vector<FormulaPtr> fs) {
  if (fs.empty()) return True();
  if (fs.size() == 1) return fs[0];
  FormulaPtr node = MakeNode(Kind::kAnd);
  Mutable(node)->children_ = std::move(fs);
  return node;
}

FormulaPtr Formula::And(FormulaPtr a, FormulaPtr b) {
  return And(std::vector<FormulaPtr>{std::move(a), std::move(b)});
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> fs) {
  if (fs.empty()) return False();
  if (fs.size() == 1) return fs[0];
  FormulaPtr node = MakeNode(Kind::kOr);
  Mutable(node)->children_ = std::move(fs);
  return node;
}

FormulaPtr Formula::Or(FormulaPtr a, FormulaPtr b) {
  return Or(std::vector<FormulaPtr>{std::move(a), std::move(b)});
}

FormulaPtr Formula::Implies(FormulaPtr a, FormulaPtr b) {
  return Or(Not(std::move(a)), std::move(b));
}

FormulaPtr Formula::Exists(std::vector<std::string> vars, FormulaPtr body) {
  if (vars.empty()) return body;
  FormulaPtr node = MakeNode(Kind::kExists);
  Mutable(node)->vars_ = std::move(vars);
  Mutable(node)->children_.push_back(std::move(body));
  return node;
}

FormulaPtr Formula::Forall(std::vector<std::string> vars, FormulaPtr body) {
  if (vars.empty()) return body;
  FormulaPtr node = MakeNode(Kind::kForall);
  Mutable(node)->vars_ = std::move(vars);
  Mutable(node)->children_.push_back(std::move(body));
  return node;
}

namespace {

void CollectFree(const Formula& f, std::set<std::string>& bound,
                 std::set<std::string>& free) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return;
    case Formula::Kind::kAtom:
      for (const Term& t : f.atom().terms) {
        if (t.is_variable() && bound.count(t.name()) == 0) {
          free.insert(t.name());
        }
      }
      return;
    case Formula::Kind::kEquals:
      for (const Term* t : {&f.lhs(), &f.rhs()}) {
        if (t->is_variable() && bound.count(t->name()) == 0) {
          free.insert(t->name());
        }
      }
      return;
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const FormulaPtr& c : f.children()) CollectFree(*c, bound, free);
      return;
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      std::vector<std::string> newly_bound;
      for (const std::string& v : f.variables()) {
        if (bound.insert(v).second) newly_bound.push_back(v);
      }
      CollectFree(*f.body(), bound, free);
      for (const std::string& v : newly_bound) bound.erase(v);
      return;
    }
  }
}

template <typename Fn>
void Walk(const Formula& f, const Fn& fn) {
  fn(f);
  for (const FormulaPtr& c : f.children()) Walk(*c, fn);
}

}  // namespace

std::set<std::string> Formula::FreeVariables() const {
  std::set<std::string> bound, free;
  CollectFree(*this, bound, free);
  return free;
}

std::set<std::string> Formula::ConstantSymbols() const {
  std::set<std::string> out;
  Walk(*this, [&](const Formula& f) {
    if (f.kind() == Kind::kAtom) {
      for (const Term& t : f.atom().terms) {
        if (t.is_constant_symbol()) out.insert(t.name());
      }
    } else if (f.kind() == Kind::kEquals) {
      for (const Term* t : {&f.lhs(), &f.rhs()}) {
        if (t->is_constant_symbol()) out.insert(t->name());
      }
    }
  });
  return out;
}

std::set<Value> Formula::Literals() const {
  std::set<Value> out;
  Walk(*this, [&](const Formula& f) {
    if (f.kind() == Kind::kAtom) {
      for (const Term& t : f.atom().terms) {
        if (t.is_literal()) out.insert(t.literal());
      }
    } else if (f.kind() == Kind::kEquals) {
      for (const Term* t : {&f.lhs(), &f.rhs()}) {
        if (t->is_literal()) out.insert(t->literal());
      }
    }
  });
  return out;
}

std::set<std::string> Formula::RelationNames() const {
  std::set<std::string> out;
  Walk(*this, [&](const Formula& f) {
    if (f.kind() == Kind::kAtom) out.insert(f.atom().relation);
  });
  return out;
}

std::vector<Atom> Formula::Atoms() const {
  std::vector<Atom> out;
  Walk(*this, [&](const Formula& f) {
    if (f.kind() == Kind::kAtom) out.push_back(f.atom());
  });
  return out;
}

bool Formula::IsQuantifierFree() const {
  bool qf = true;
  Walk(*this, [&](const Formula& f) {
    if (f.kind() == Kind::kExists || f.kind() == Kind::kForall) qf = false;
  });
  return qf;
}

std::string Formula::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return atom_.ToString();
    case Kind::kEquals:
      return lhs_.ToString() + " = " + rhs_.ToString();
    case Kind::kNot: {
      const Formula& c = *children_[0];
      if (c.kind() == Kind::kEquals) {
        return c.lhs().ToString() + " != " + c.rhs().ToString();
      }
      return "!(" + c.ToString() + ")";
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        // Quantifiers scope maximally to the right; parenthesize them
        // when they appear as operands so printing re-parses faithfully.
        bool quantified =
            children_[i]->kind() == Kind::kExists ||
            children_[i]->kind() == Kind::kForall;
        if (quantified) out += "(";
        out += children_[i]->ToString();
        if (quantified) out += ")";
      }
      return out + ")";
    }
    case Kind::kExists:
    case Kind::kForall: {
      std::string out = kind_ == Kind::kExists ? "exists " : "forall ";
      out += Join(vars_, ", ");
      out += " . (" + children_[0]->ToString() + ")";
      return out;
    }
  }
  return "?";
}

}  // namespace wsv
