#include "fo/parser.h"

#include <vector>

namespace wsv {

namespace {

class FoParser {
 public:
  FoParser(TokenStream& ts, const Vocabulary* vocab)
      : ts_(ts), vocab_(vocab) {}

  StatusOr<FormulaPtr> ParseImplies() {
    WSV_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseOr());
    if (ts_.TryConsume(TokenKind::kArrow)) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseImplies());
      return Formula::Implies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<Term> ParseTerm() {
    const Token& t = ts_.Peek();
    const Span span = t.span();
    switch (t.kind) {
      case TokenKind::kIdent: {
        std::string name = ts_.Next().text;
        Term term = (vocab_ != nullptr && vocab_->IsConstant(name))
                        ? Term::ConstantSymbol(std::move(name))
                        : Term::Variable(std::move(name));
        term.set_span(span);
        return term;
      }
      case TokenKind::kString:
      case TokenKind::kNumber: {
        Term term = Term::Literal(Value::Intern(ts_.Next().text));
        term.set_span(span);
        return term;
      }
      default:
        return ts_.ErrorHere("expected a term");
    }
  }

  StatusOr<FormulaPtr> ParseAtomTail(std::string relation, bool prev,
                                     Span rel_span) {
    std::vector<Term> terms;
    if (ts_.TryConsume(TokenKind::kLParen)) {
      if (!ts_.TryConsume(TokenKind::kRParen)) {
        do {
          WSV_ASSIGN_OR_RETURN(Term term, ParseTerm());
          terms.push_back(std::move(term));
        } while (ts_.TryConsume(TokenKind::kComma));
        WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kRParen, "')'"));
      }
    }
    if (vocab_ != nullptr) {
      const RelationSymbol* sym = vocab_->FindRelation(relation);
      if (sym == nullptr) {
        return Status::ParseError("unknown relation symbol: " + relation);
      }
      if (sym->arity != static_cast<int>(terms.size())) {
        return Status::ParseError(
            "arity mismatch for " + relation + ": declared " +
            std::to_string(sym->arity) + ", used with " +
            std::to_string(terms.size()));
      }
      if (prev && sym->kind != SymbolKind::kInput) {
        return Status::ParseError("prev. applied to non-input relation " +
                                  relation);
      }
    }
    Atom atom;
    atom.relation = std::move(relation);
    atom.prev = prev;
    atom.terms = std::move(terms);
    atom.span = rel_span;
    return Formula::MakeAtom(std::move(atom));
  }

 private:
  StatusOr<FormulaPtr> ParseOr() {
    WSV_ASSIGN_OR_RETURN(FormulaPtr first, ParseAnd());
    std::vector<FormulaPtr> parts{std::move(first)};
    while (ts_.TryConsume(TokenKind::kOr)) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return Formula::Or(std::move(parts));
  }

  StatusOr<FormulaPtr> ParseAnd() {
    WSV_ASSIGN_OR_RETURN(FormulaPtr first, ParseUnary());
    std::vector<FormulaPtr> parts{std::move(first)};
    while (ts_.TryConsume(TokenKind::kAnd)) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr next, ParseUnary());
      parts.push_back(std::move(next));
    }
    return Formula::And(std::move(parts));
  }

  StatusOr<FormulaPtr> ParseUnary() {
    if (ts_.TryConsume(TokenKind::kNot)) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr sub, ParseUnary());
      return Formula::Not(std::move(sub));
    }
    bool exists = false;
    if (ts_.Peek().kind == TokenKind::kIdent &&
        ((exists = (ts_.Peek().text == "exists")) ||
         ts_.Peek().text == "forall")) {
      ts_.Next();
      std::vector<std::string> vars;
      do {
        WSV_ASSIGN_OR_RETURN(std::string v,
                             ts_.ExpectIdentText("a quantified variable"));
        vars.push_back(std::move(v));
      } while (ts_.TryConsume(TokenKind::kComma));
      WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kDot, "'.'"));
      WSV_ASSIGN_OR_RETURN(FormulaPtr body, ParseImplies());
      return exists ? Formula::Exists(std::move(vars), std::move(body))
                    : Formula::Forall(std::move(vars), std::move(body));
    }
    return ParsePrimary();
  }

  StatusOr<FormulaPtr> ParsePrimary() {
    const Token& t = ts_.Peek();
    if (t.kind == TokenKind::kLParen) {
      ts_.Next();
      WSV_ASSIGN_OR_RETURN(FormulaPtr inner, ParseImplies());
      WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    if (t.kind == TokenKind::kIdent) {
      if (t.text == "true") {
        ts_.Next();
        return Formula::True();
      }
      if (t.text == "false") {
        ts_.Next();
        return Formula::False();
      }
      // prev.R(...) atom.
      if (t.text == "prev" && ts_.Peek(1).kind == TokenKind::kDot) {
        ts_.Next();
        ts_.Next();
        const Span rel_span = ts_.Peek().span();
        WSV_ASSIGN_OR_RETURN(std::string rel,
                             ts_.ExpectIdentText("an input relation name"));
        return ParseAtomTail(std::move(rel), /*prev=*/true, rel_span);
      }
      // Atom R(...) vs equality `x = t` vs bare proposition `R`.
      if (ts_.Peek(1).kind == TokenKind::kLParen) {
        const Span rel_span = t.span();
        std::string rel = ts_.Next().text;
        return ParseAtomTail(std::move(rel), /*prev=*/false, rel_span);
      }
      if (ts_.Peek(1).kind == TokenKind::kEquals ||
          ts_.Peek(1).kind == TokenKind::kNotEquals) {
        return ParseEquality();
      }
      // Bare identifier: a proposition atom.
      const Span rel_span = t.span();
      std::string rel = ts_.Next().text;
      return ParseAtomTail(std::move(rel), /*prev=*/false, rel_span);
    }
    if (t.kind == TokenKind::kString || t.kind == TokenKind::kNumber) {
      return ParseEquality();
    }
    return ts_.ErrorHere("expected a formula");
  }

  StatusOr<FormulaPtr> ParseEquality() {
    WSV_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    bool negated;
    if (ts_.TryConsume(TokenKind::kEquals)) {
      negated = false;
    } else if (ts_.TryConsume(TokenKind::kNotEquals)) {
      negated = true;
    } else {
      return ts_.ErrorHere("expected '=' or '!='");
    }
    WSV_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return negated ? Formula::NotEquals(std::move(lhs), std::move(rhs))
                   : Formula::Equals(std::move(lhs), std::move(rhs));
  }

  TokenStream& ts_;
  const Vocabulary* vocab_;
};

}  // namespace

StatusOr<FormulaPtr> ParseFormula(std::string_view text,
                                  const Vocabulary* vocab) {
  WSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  FoParser parser(ts, vocab);
  WSV_ASSIGN_OR_RETURN(FormulaPtr f, parser.ParseImplies());
  if (!ts.AtEnd()) {
    return ts.ErrorHere("trailing input after formula");
  }
  return f;
}

StatusOr<FormulaPtr> ParseFormulaFrom(TokenStream& ts,
                                      const Vocabulary* vocab) {
  FoParser parser(ts, vocab);
  return parser.ParseImplies();
}

StatusOr<Term> ParseTermFrom(TokenStream& ts, const Vocabulary* vocab) {
  FoParser parser(ts, vocab);
  return parser.ParseTerm();
}

StatusOr<FormulaPtr> ParseAtomFrom(TokenStream& ts, const Vocabulary* vocab) {
  bool prev = false;
  if (ts.Peek().kind == TokenKind::kIdent && ts.Peek().text == "prev" &&
      ts.Peek(1).kind == TokenKind::kDot) {
    ts.Next();
    ts.Next();
    prev = true;
  }
  const Span rel_span = ts.Peek().span();
  WSV_ASSIGN_OR_RETURN(std::string rel,
                       ts.ExpectIdentText("a relation name"));
  FoParser parser(ts, vocab);
  return parser.ParseAtomTail(std::move(rel), prev, rel_span);
}

}  // namespace wsv
