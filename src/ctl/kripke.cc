#include "ctl/kripke.h"

namespace wsv {

int Kripke::InternProp(const std::string& name) {
  auto it = prop_index_.find(name);
  if (it != prop_index_.end()) return it->second;
  int id = static_cast<int>(props_.size());
  prop_index_.emplace(name, id);
  props_.push_back(name);
  return id;
}

int Kripke::FindProp(const std::string& name) const {
  auto it = prop_index_.find(name);
  return it == prop_index_.end() ? -1 : it->second;
}

int Kripke::AddState(std::set<int> label) {
  labels_.push_back(std::move(label));
  succ_.emplace_back();
  initial_.push_back(0);
  return static_cast<int>(labels_.size() - 1);
}

void Kripke::AddEdge(int from, int to) { succ_[from].push_back(to); }

void Kripke::SetInitial(int state, bool initial) {
  initial_[state] = initial ? 1 : 0;
}

std::vector<int> Kripke::InitialStates() const {
  std::vector<int> out;
  for (size_t s = 0; s < initial_.size(); ++s) {
    if (initial_[s]) out.push_back(static_cast<int>(s));
  }
  return out;
}

Status Kripke::CheckTotal() const {
  for (size_t s = 0; s < succ_.size(); ++s) {
    if (succ_[s].empty()) {
      return Status::InvalidArgument("Kripke state " + std::to_string(s) +
                                     " has no successor");
    }
  }
  return Status::OK();
}

std::string Kripke::ToString() const {
  std::string out = "Kripke structure: " + std::to_string(size()) +
                    " states, " + std::to_string(props_.size()) +
                    " propositions\n";
  for (size_t s = 0; s < labels_.size(); ++s) {
    out += "  " + std::to_string(s) + (initial_[s] ? "*" : "") + ": {";
    bool first = true;
    for (int p : labels_[s]) {
      if (!first) out += ", ";
      first = false;
      out += props_[static_cast<size_t>(p)];
    }
    out += "} ->";
    for (int t : succ_[s]) out += " " + std::to_string(t);
    out += "\n";
  }
  return out;
}

}  // namespace wsv
