#include "ctl/ctl_star_check.h"

#include <map>
#include <queue>

#include "automata/ltl_to_buchi.h"

namespace wsv {

namespace {

// Is the node a CTL* state formula? (FO leaves, path-quantified formulas,
// and boolean combinations thereof.)
bool IsStateFormula(const TFormula& f) {
  switch (f.kind()) {
    case TFormula::Kind::kFo:
    case TFormula::Kind::kE:
    case TFormula::Kind::kA:
      return true;
    case TFormula::Kind::kNot:
    case TFormula::Kind::kAnd:
    case TFormula::Kind::kOr:
      for (const TFormulaPtr& c : f.children()) {
        if (!IsStateFormula(*c)) return false;
      }
      return true;
    case TFormula::Kind::kX:
    case TFormula::Kind::kU:
    case TFormula::Kind::kB:
      return false;
  }
  return false;
}

class CtlStarChecker {
 public:
  explicit CtlStarChecker(const Kripke& kripke) : k_(kripke) {}

  StatusOr<std::vector<char>> LabelState(const TFormula& f) {
    const size_t n = k_.size();
    switch (f.kind()) {
      case TFormula::Kind::kFo: {
        std::vector<char> v(n);
        for (size_t s = 0; s < n; ++s) {
          WSV_ASSIGN_OR_RETURN(
              bool b, EvalPropositionalFo(*f.fo(), k_, static_cast<int>(s)));
          v[s] = b ? 1 : 0;
        }
        return v;
      }
      case TFormula::Kind::kNot: {
        WSV_ASSIGN_OR_RETURN(std::vector<char> sub,
                             LabelState(*f.children()[0]));
        for (char& b : sub) b = b ? 0 : 1;
        return sub;
      }
      case TFormula::Kind::kAnd:
      case TFormula::Kind::kOr: {
        bool is_and = f.kind() == TFormula::Kind::kAnd;
        std::vector<char> acc(n, is_and ? 1 : 0);
        for (const TFormulaPtr& c : f.children()) {
          WSV_ASSIGN_OR_RETURN(std::vector<char> sub, LabelState(*c));
          for (size_t s = 0; s < n; ++s) {
            acc[s] = is_and ? (acc[s] && sub[s]) : (acc[s] || sub[s]);
          }
        }
        return acc;
      }
      case TFormula::Kind::kE:
        return LabelExists(*f.children()[0]);
      case TFormula::Kind::kA: {
        // A pi == !E !pi.
        WSV_ASSIGN_OR_RETURN(
            std::vector<char> e,
            LabelExists(*TFormula::Not(f.children()[0])));
        for (char& b : e) b = b ? 0 : 1;
        return e;
      }
      case TFormula::Kind::kX:
      case TFormula::Kind::kU:
      case TFormula::Kind::kB:
        return Status::InvalidArgument(
            "bare path formula where a state formula is expected: " +
            f.ToString());
    }
    return Status::Internal("bad temporal kind");
  }

 private:
  // Replaces maximal state subformulas of a path formula with fresh
  // marker propositions whose labels are precomputed.
  StatusOr<TFormulaPtr> Markify(const TFormula& f,
                                std::map<std::string, std::vector<char>>*
                                    markers) {
    if (IsStateFormula(f)) {
      WSV_ASSIGN_OR_RETURN(std::vector<char> label, LabelState(f));
      std::string name = "__m" + std::to_string(markers->size());
      markers->emplace(name, std::move(label));
      return TFormula::Fo(Formula::MakeAtom(name, {}));
    }
    switch (f.kind()) {
      case TFormula::Kind::kNot:
        // Child is a path formula (else IsStateFormula had caught us).
        {
          WSV_ASSIGN_OR_RETURN(TFormulaPtr c,
                               Markify(*f.children()[0], markers));
          return TFormula::Not(std::move(c));
        }
      case TFormula::Kind::kAnd:
      case TFormula::Kind::kOr: {
        std::vector<TFormulaPtr> parts;
        for (const TFormulaPtr& c : f.children()) {
          WSV_ASSIGN_OR_RETURN(TFormulaPtr mc, Markify(*c, markers));
          parts.push_back(std::move(mc));
        }
        return f.kind() == TFormula::Kind::kAnd
                   ? TFormula::And(std::move(parts))
                   : TFormula::Or(std::move(parts));
      }
      case TFormula::Kind::kX: {
        WSV_ASSIGN_OR_RETURN(TFormulaPtr c,
                             Markify(*f.children()[0], markers));
        return TFormula::X(std::move(c));
      }
      case TFormula::Kind::kU:
      case TFormula::Kind::kB: {
        WSV_ASSIGN_OR_RETURN(TFormulaPtr l, Markify(*f.lhs(), markers));
        WSV_ASSIGN_OR_RETURN(TFormulaPtr r, Markify(*f.rhs(), markers));
        return f.kind() == TFormula::Kind::kU
                   ? TFormula::U(std::move(l), std::move(r))
                   : TFormula::B(std::move(l), std::move(r));
      }
      default:
        return Status::Internal("unexpected node in Markify");
    }
  }

  // Truth of a marker-proposition FO formula at a state.
  StatusOr<bool> EvalMarkerFo(
      const Formula& fo, int state,
      const std::map<std::string, std::vector<char>>& markers) {
    switch (fo.kind()) {
      case Formula::Kind::kTrue:
        return true;
      case Formula::Kind::kFalse:
        return false;
      case Formula::Kind::kAtom: {
        auto it = markers.find(fo.atom().relation);
        if (it == markers.end()) {
          return Status::Internal("unknown marker " + fo.atom().relation);
        }
        return it->second[static_cast<size_t>(state)] != 0;
      }
      case Formula::Kind::kNot: {
        WSV_ASSIGN_OR_RETURN(bool sub,
                             EvalMarkerFo(*fo.children()[0], state, markers));
        return !sub;
      }
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        bool is_and = fo.kind() == Formula::Kind::kAnd;
        for (const FormulaPtr& c : fo.children()) {
          WSV_ASSIGN_OR_RETURN(bool sub, EvalMarkerFo(*c, state, markers));
          if (is_and && !sub) return false;
          if (!is_and && sub) return true;
        }
        return is_and;
      }
      default:
        return Status::Internal("non-propositional marker formula");
    }
  }

  // Labels E(path): per-state existence of an accepted path.
  StatusOr<std::vector<char>> LabelExists(const TFormula& path) {
    std::map<std::string, std::vector<char>> markers;
    WSV_ASSIGN_OR_RETURN(TFormulaPtr ltl, Markify(path, &markers));
    WSV_ASSIGN_OR_RETURN(BuchiAutomaton gba, LtlToBuchi(*ltl));
    BuchiAutomaton aut = gba.Degeneralize();

    const size_t n = k_.size();
    const size_t m = aut.size();

    // match[s][q]: state s's marker truth agrees with q's label.
    std::vector<std::vector<char>> leaf_truth(n);
    for (size_t s = 0; s < n; ++s) {
      leaf_truth[s].resize(aut.leaves.size());
      for (size_t kk = 0; kk < aut.leaves.size(); ++kk) {
        WSV_ASSIGN_OR_RETURN(
            bool b,
            EvalMarkerFo(*aut.leaves[kk], static_cast<int>(s), markers));
        leaf_truth[s][kk] = b ? 1 : 0;
      }
    }
    auto match = [&](size_t s, size_t q) {
      return aut.states[q] == leaf_truth[s];
    };

    // Product graph over (s, q) with s-successors crossed with
    // q-successors, restricted to matching pairs.
    auto pid = [&](size_t s, size_t q) { return s * m + q; };
    std::vector<std::vector<int>> succ(n * m);
    std::vector<char> exists_vert(n * m, 0);
    for (size_t s = 0; s < n; ++s) {
      for (size_t q = 0; q < m; ++q) {
        if (!match(s, q)) continue;
        exists_vert[pid(s, q)] = 1;
        for (int t : k_.successors(static_cast<int>(s))) {
          for (int q2 : aut.succ[q]) {
            if (match(static_cast<size_t>(t), static_cast<size_t>(q2))) {
              succ[pid(s, q)].push_back(
                  static_cast<int>(pid(static_cast<size_t>(t),
                                       static_cast<size_t>(q2))));
            }
          }
        }
      }
    }

    // Vertices lying on an accepting cycle: an accepting vertex whose SCC
    // has a cycle through it. We compute SCCs cheaply via repeated
    // forward/backward reachability from accepting vertices: a vertex a
    // is on an accepting cycle iff a is accepting and reachable from one
    // of its own successors.
    const std::set<int>& acc = aut.accepting_sets.front();
    std::vector<char> on_acc_cycle(n * m, 0);
    {
      // Backward adjacency for reverse reachability later.
      std::vector<std::vector<int>> pred(n * m);
      for (size_t v = 0; v < succ.size(); ++v) {
        for (int w : succ[v]) pred[w].push_back(static_cast<int>(v));
      }
      for (size_t s = 0; s < n; ++s) {
        for (size_t q = 0; q < m; ++q) {
          if (!exists_vert[pid(s, q)] || acc.count(static_cast<int>(q)) == 0) {
            continue;
          }
          size_t a = pid(s, q);
          // BFS from successors of a back to a.
          std::vector<char> seen(n * m, 0);
          std::queue<int> bfs;
          for (int w : succ[a]) {
            if (!seen[w]) {
              seen[w] = 1;
              bfs.push(w);
            }
          }
          bool cycles = seen[a] != 0;
          while (!bfs.empty() && !cycles) {
            int v = bfs.front();
            bfs.pop();
            for (int w : succ[v]) {
              if (w == static_cast<int>(a)) {
                cycles = true;
                break;
              }
              if (!seen[w]) {
                seen[w] = 1;
                bfs.push(w);
              }
            }
          }
          if (cycles) on_acc_cycle[a] = 1;
        }
      }
      // Vertices that can reach an accepting cycle: reverse BFS.
      std::queue<int> bfs;
      std::vector<char> can_reach = on_acc_cycle;
      for (size_t v = 0; v < succ.size(); ++v) {
        if (can_reach[v]) bfs.push(static_cast<int>(v));
      }
      while (!bfs.empty()) {
        int v = bfs.front();
        bfs.pop();
        for (int u : pred[v]) {
          if (!can_reach[u]) {
            can_reach[u] = 1;
            bfs.push(u);
          }
        }
      }
      on_acc_cycle = std::move(can_reach);
    }

    std::vector<char> out(n, 0);
    for (size_t s = 0; s < n; ++s) {
      for (size_t q = 0; q < m; ++q) {
        if (aut.initial[q] && exists_vert[pid(s, q)] &&
            on_acc_cycle[pid(s, q)]) {
          out[s] = 1;
          break;
        }
      }
    }
    return out;
  }

  const Kripke& k_;
};

}  // namespace

StatusOr<std::vector<char>> CtlStarLabel(const Kripke& kripke,
                                         const TFormula& formula) {
  if (!IsStateFormula(formula)) {
    return Status::InvalidArgument(
        "CTL* model checking expects a state formula; wrap bare path "
        "formulas in A or E: " + formula.ToString());
  }
  WSV_RETURN_IF_ERROR(CheckPropositionalLeaves(formula));
  CtlStarChecker checker(kripke);
  return checker.LabelState(formula);
}

StatusOr<bool> CtlStarHolds(const Kripke& kripke, const TFormula& formula) {
  WSV_ASSIGN_OR_RETURN(std::vector<char> v, CtlStarLabel(kripke, formula));
  for (int s : kripke.InitialStates()) {
    if (!v[static_cast<size_t>(s)]) return false;
  }
  return true;
}

}  // namespace wsv
