#include "ctl/ctl_sat.h"

#include <map>

namespace wsv {

namespace {

// E-only normalization of a CTL formula.
StatusOr<TFormulaPtr> ToExistentialNormalForm(const TFormula& f) {
  switch (f.kind()) {
    case TFormula::Kind::kFo:
      return TFormula::Fo(f.fo());
    case TFormula::Kind::kNot: {
      WSV_ASSIGN_OR_RETURN(TFormulaPtr c,
                           ToExistentialNormalForm(*f.children()[0]));
      return TFormula::Not(std::move(c));
    }
    case TFormula::Kind::kAnd:
    case TFormula::Kind::kOr: {
      std::vector<TFormulaPtr> parts;
      for (const TFormulaPtr& c : f.children()) {
        WSV_ASSIGN_OR_RETURN(TFormulaPtr ec, ToExistentialNormalForm(*c));
        parts.push_back(std::move(ec));
      }
      return f.kind() == TFormula::Kind::kAnd
                 ? TFormula::And(std::move(parts))
                 : TFormula::Or(std::move(parts));
    }
    case TFormula::Kind::kE:
    case TFormula::Kind::kA: {
      const TFormula& path = *f.children()[0];
      bool universal = f.kind() == TFormula::Kind::kA;
      switch (path.kind()) {
        case TFormula::Kind::kX: {
          WSV_ASSIGN_OR_RETURN(TFormulaPtr c,
                               ToExistentialNormalForm(*path.children()[0]));
          if (universal) {
            // AX p = !EX !p.
            return TFormula::Not(
                TFormula::E(TFormula::X(TFormula::Not(std::move(c)))));
          }
          return TFormula::E(TFormula::X(std::move(c)));
        }
        case TFormula::Kind::kU:
        case TFormula::Kind::kB: {
          WSV_ASSIGN_OR_RETURN(TFormulaPtr l,
                               ToExistentialNormalForm(*path.lhs()));
          WSV_ASSIGN_OR_RETURN(TFormulaPtr r,
                               ToExistentialNormalForm(*path.rhs()));
          bool is_until = path.kind() == TFormula::Kind::kU;
          if (universal) {
            // A(l U r) = !E(!l B !r); A(l B r) = !E(!l U !r).
            TFormulaPtr nl = TFormula::Not(std::move(l));
            TFormulaPtr nr = TFormula::Not(std::move(r));
            TFormulaPtr inner =
                is_until ? TFormula::B(std::move(nl), std::move(nr))
                         : TFormula::U(std::move(nl), std::move(nr));
            return TFormula::Not(TFormula::E(std::move(inner)));
          }
          return TFormula::E(is_until
                                 ? TFormula::U(std::move(l), std::move(r))
                                 : TFormula::B(std::move(l), std::move(r)));
        }
        default:
          return Status::InvalidArgument(
              "not a CTL formula (path quantifier over a non-temporal "
              "formula): " + f.ToString());
      }
    }
    default:
      return Status::InvalidArgument(
          "not a CTL formula (bare temporal operator): " + f.ToString());
  }
}

// Tableau node kinds after normalization.
enum class NodeKind { kTrue, kFalse, kProp, kNot, kAnd, kOr, kEx, kEu, kEb };

struct Node {
  NodeKind kind;
  std::string prop;            // kProp
  std::vector<int> children;   // kNot(1), kAnd/kOr(n), kEx(1), kEu/kEb(2)
  int ex_self = -1;            // kEu/kEb: index of the synthetic EX(this)
};

class SatTableau {
 public:
  StatusOr<CtlSatResult> Run(const TFormula& formula) {
    WSV_ASSIGN_OR_RETURN(TFormulaPtr enf, ToExistentialNormalForm(formula));
    WSV_ASSIGN_OR_RETURN(root_, Flatten(*enf));
    // Synthesize EX(e) nodes for each EU/EB node e.
    for (size_t i = 0, n = nodes_.size(); i < n; ++i) {
      if (nodes_[i].kind == NodeKind::kEu ||
          nodes_[i].kind == NodeKind::kEb) {
        Node ex;
        ex.kind = NodeKind::kEx;
        ex.children.push_back(static_cast<int>(i));
        nodes_[i].ex_self = static_cast<int>(nodes_.size());
        nodes_.push_back(std::move(ex));
      }
    }
    return Decide();
  }

 private:
  // Flattens the FO-propositional structure and the temporal skeleton
  // into one node DAG (children before parents).
  StatusOr<int> FlattenFo(const Formula& fo) {
    switch (fo.kind()) {
      case Formula::Kind::kTrue:
        return AddNode(Node{NodeKind::kTrue, "", {}, -1}, "true");
      case Formula::Kind::kFalse:
        return AddNode(Node{NodeKind::kFalse, "", {}, -1}, "false");
      case Formula::Kind::kAtom:
        if (!fo.atom().terms.empty()) {
          return Status::InvalidArgument(
              "CTL satisfiability requires propositional formulas; got " +
              fo.atom().ToString());
        }
        return AddNode(Node{NodeKind::kProp, fo.atom().relation, {}, -1},
                       "p:" + fo.atom().relation);
      case Formula::Kind::kNot: {
        WSV_ASSIGN_OR_RETURN(int c, FlattenFo(*fo.children()[0]));
        return AddNode(Node{NodeKind::kNot, "", {c}, -1},
                       "!#" + std::to_string(c));
      }
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        Node n;
        n.kind = fo.kind() == Formula::Kind::kAnd ? NodeKind::kAnd
                                                  : NodeKind::kOr;
        std::string key = n.kind == NodeKind::kAnd ? "&" : "|";
        for (const FormulaPtr& c : fo.children()) {
          WSV_ASSIGN_OR_RETURN(int ci, FlattenFo(*c));
          n.children.push_back(ci);
          key += "#" + std::to_string(ci);
        }
        return AddNode(std::move(n), key);
      }
      default:
        return Status::InvalidArgument(
            "non-propositional FO leaf in CTL satisfiability: " +
            fo.ToString());
    }
  }

  StatusOr<int> Flatten(const TFormula& f) {
    switch (f.kind()) {
      case TFormula::Kind::kFo:
        return FlattenFo(*f.fo());
      case TFormula::Kind::kNot: {
        WSV_ASSIGN_OR_RETURN(int c, Flatten(*f.children()[0]));
        return AddNode(Node{NodeKind::kNot, "", {c}, -1},
                       "!#" + std::to_string(c));
      }
      case TFormula::Kind::kAnd:
      case TFormula::Kind::kOr: {
        Node n;
        n.kind = f.kind() == TFormula::Kind::kAnd ? NodeKind::kAnd
                                                  : NodeKind::kOr;
        std::string key = n.kind == NodeKind::kAnd ? "&" : "|";
        for (const TFormulaPtr& c : f.children()) {
          WSV_ASSIGN_OR_RETURN(int ci, Flatten(*c));
          n.children.push_back(ci);
          key += "#" + std::to_string(ci);
        }
        return AddNode(std::move(n), key);
      }
      case TFormula::Kind::kE: {
        const TFormula& path = *f.children()[0];
        if (path.kind() == TFormula::Kind::kX) {
          WSV_ASSIGN_OR_RETURN(int c, Flatten(*path.children()[0]));
          return AddNode(Node{NodeKind::kEx, "", {c}, -1},
                         "EX#" + std::to_string(c));
        }
        WSV_ASSIGN_OR_RETURN(int l, Flatten(*path.lhs()));
        WSV_ASSIGN_OR_RETURN(int r, Flatten(*path.rhs()));
        NodeKind kind = path.kind() == TFormula::Kind::kU ? NodeKind::kEu
                                                          : NodeKind::kEb;
        std::string key = (kind == NodeKind::kEu ? "EU#" : "EB#") +
                          std::to_string(l) + "#" + std::to_string(r);
        return AddNode(Node{kind, "", {l, r}, -1}, key);
      }
      default:
        return Status::Internal("non-ENF node after normalization");
    }
  }

  StatusOr<int> AddNode(Node node, const std::string& key) {
    auto it = node_index_.find(key);
    if (it != node_index_.end()) return it->second;
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    node_index_[key] = id;
    return id;
  }

  bool IsElementary(const Node& n) const {
    return n.kind == NodeKind::kProp || n.kind == NodeKind::kEx;
  }

  StatusOr<CtlSatResult> Decide() {
    // Elementary positions.
    std::vector<int> elem_pos(nodes_.size(), -1);
    int num_elem = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (IsElementary(nodes_[i])) elem_pos[i] = num_elem++;
    }
    if (num_elem > 22) {
      return Status::ResourceExhausted(
          "CTL formula has " + std::to_string(num_elem) +
          " elementary subformulas; tableau would be too large");
    }

    // Derive all node values per state. EU/EB derive from their
    // synthetic EX node, which appears later in the node list; derive in
    // two passes: elementary + EX first (free bits), then everything in
    // index order (children of EU/EB precede them; EX-self bits are
    // elementary so already set).
    const uint64_t num_states = uint64_t{1} << num_elem;
    std::vector<std::vector<char>> val(num_states);
    for (uint64_t s = 0; s < num_states; ++s) {
      std::vector<char>& v = val[s];
      v.assign(nodes_.size(), 0);
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (IsElementary(nodes_[i])) v[i] = (s >> elem_pos[i]) & 1;
      }
      for (size_t i = 0; i < nodes_.size(); ++i) {
        const Node& n = nodes_[i];
        switch (n.kind) {
          case NodeKind::kTrue:
            v[i] = 1;
            break;
          case NodeKind::kFalse:
            v[i] = 0;
            break;
          case NodeKind::kNot:
            v[i] = v[n.children[0]] ? 0 : 1;
            break;
          case NodeKind::kAnd: {
            char b = 1;
            for (int c : n.children) b = b && v[c];
            v[i] = b;
            break;
          }
          case NodeKind::kOr: {
            char b = 0;
            for (int c : n.children) b = b || v[c];
            v[i] = b;
            break;
          }
          case NodeKind::kEu:
            v[i] = v[n.children[1]] || (v[n.children[0]] && v[n.ex_self]);
            break;
          case NodeKind::kEb:
            v[i] = v[n.children[1]] && (v[n.children[0]] || v[n.ex_self]);
            break;
          case NodeKind::kProp:
          case NodeKind::kEx:
            break;  // elementary
        }
      }
    }

    // Deduplicate states by derived valuation? Different elementary
    // assignments give different vectors, so every state is distinct.
    // Allowed edges: !EX phi at s forces !phi at t.
    std::vector<int> ex_nodes;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].kind == NodeKind::kEx) {
        ex_nodes.push_back(static_cast<int>(i));
      }
    }
    auto allowed = [&](uint64_t s, uint64_t t) {
      for (int x : ex_nodes) {
        if (!val[s][x] && val[t][nodes_[x].children[0]]) return false;
      }
      return true;
    };

    std::vector<char> alive(num_states, 1);
    bool changed = true;
    while (changed) {
      changed = false;

      // EX witnesses and totality.
      for (uint64_t s = 0; s < num_states; ++s) {
        if (!alive[s]) continue;
        bool ok = true;
        bool has_succ = false;
        for (uint64_t t = 0; t < num_states && (!has_succ || ok); ++t) {
          if (alive[t] && allowed(s, t)) has_succ = true;
        }
        if (!has_succ) ok = false;
        for (int x : ex_nodes) {
          if (!ok) break;
          if (!val[s][x]) continue;
          bool witness = false;
          for (uint64_t t = 0; t < num_states; ++t) {
            if (alive[t] && allowed(s, t) &&
                val[t][nodes_[x].children[0]]) {
              witness = true;
              break;
            }
          }
          if (!witness) ok = false;
        }
        if (!ok) {
          alive[s] = 0;
          changed = true;
        }
      }

      // E-eventualities: E(pUq) asserted must be fulfillable.
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].kind != NodeKind::kEu) continue;
        std::vector<char> ef(num_states, 0);
        bool grow = true;
        while (grow) {
          grow = false;
          for (uint64_t s = 0; s < num_states; ++s) {
            if (!alive[s] || ef[s] || !val[s][i]) continue;
            if (val[s][nodes_[i].children[1]]) {
              ef[s] = 1;
              grow = true;
              continue;
            }
            for (uint64_t t = 0; t < num_states; ++t) {
              if (alive[t] && allowed(s, t) && val[t][i] && ef[t]) {
                ef[s] = 1;
                grow = true;
                break;
              }
            }
          }
        }
        for (uint64_t s = 0; s < num_states; ++s) {
          if (alive[s] && val[s][i] && !ef[s]) {
            alive[s] = 0;
            changed = true;
          }
        }
      }

      // A-eventualities: !E(pBq), i.e. A(!p U !q), asserted at every
      // state where an EB node is false — every path must reach !q.
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].kind != NodeKind::kEb) continue;
        int pq = nodes_[i].children[1];  // q
        std::vector<char> af(num_states, 0);
        bool grow = true;
        while (grow) {
          grow = false;
          for (uint64_t s = 0; s < num_states; ++s) {
            if (!alive[s] || af[s] || val[s][i]) continue;
            if (!val[s][pq]) {  // !q holds: fulfilled
              af[s] = 1;
              grow = true;
              continue;
            }
            // Deferral: choose a successor set among allowed alive
            // states (all of which carry the obligation, since !EX(EB)
            // propagates !EB): every EX demand needs a witness in AF,
            // and at least one successor must be in AF.
            bool all_ex_ok = true;
            for (int x : ex_nodes) {
              if (!val[s][x]) continue;
              bool witness = false;
              for (uint64_t t = 0; t < num_states; ++t) {
                if (alive[t] && allowed(s, t) &&
                    val[t][nodes_[x].children[0]] && af[t]) {
                  witness = true;
                  break;
                }
              }
              if (!witness) {
                all_ex_ok = false;
                break;
              }
            }
            if (!all_ex_ok) continue;
            bool any = false;
            for (uint64_t t = 0; t < num_states; ++t) {
              if (alive[t] && allowed(s, t) && af[t]) {
                any = true;
                break;
              }
            }
            if (any) {
              af[s] = 1;
              grow = true;
            }
          }
        }
        for (uint64_t s = 0; s < num_states; ++s) {
          if (alive[s] && !val[s][i] && !af[s]) {
            alive[s] = 0;
            changed = true;
          }
        }
      }
    }

    CtlSatResult result;
    result.tableau_states = num_states;
    for (uint64_t s = 0; s < num_states; ++s) {
      if (alive[s]) {
        ++result.surviving_states;
        if (val[s][root_]) result.satisfiable = true;
      }
    }
    return result;
  }

  std::vector<Node> nodes_;
  std::map<std::string, int> node_index_;
  int root_ = -1;
};

}  // namespace

StatusOr<CtlSatResult> CtlSatisfiable(const TFormula& formula) {
  SatTableau tableau;
  return tableau.Run(formula);
}

}  // namespace wsv
