#include "ctl/ctl_check.h"

namespace wsv {

namespace {

std::vector<char> Negate(std::vector<char> v) {
  for (char& b : v) b = b ? 0 : 1;
  return v;
}

class CtlChecker {
 public:
  explicit CtlChecker(const Kripke& kripke) : k_(kripke) {}

  StatusOr<std::vector<char>> Label(const TFormula& f) {
    const size_t n = k_.size();
    switch (f.kind()) {
      case TFormula::Kind::kFo: {
        std::vector<char> v(n);
        for (size_t s = 0; s < n; ++s) {
          WSV_ASSIGN_OR_RETURN(
              bool b, EvalPropositionalFo(*f.fo(), k_, static_cast<int>(s)));
          v[s] = b ? 1 : 0;
        }
        return v;
      }
      case TFormula::Kind::kNot: {
        WSV_ASSIGN_OR_RETURN(std::vector<char> sub, Label(*f.children()[0]));
        return Negate(std::move(sub));
      }
      case TFormula::Kind::kAnd:
      case TFormula::Kind::kOr: {
        bool is_and = f.kind() == TFormula::Kind::kAnd;
        std::vector<char> acc(n, is_and ? 1 : 0);
        for (const TFormulaPtr& c : f.children()) {
          WSV_ASSIGN_OR_RETURN(std::vector<char> sub, Label(*c));
          for (size_t s = 0; s < n; ++s) {
            acc[s] = is_and ? (acc[s] && sub[s]) : (acc[s] || sub[s]);
          }
        }
        return acc;
      }
      case TFormula::Kind::kE:
        return LabelPath(*f.children()[0], /*negate_operands=*/false,
                         /*negate_result=*/false);
      case TFormula::Kind::kA:
        // A path == !E !path, with the path negation pushed through the
        // single temporal operator (duality).
        return LabelPath(*f.children()[0], /*negate_operands=*/true,
                         /*negate_result=*/true);
      case TFormula::Kind::kX:
      case TFormula::Kind::kU:
      case TFormula::Kind::kB:
        return Status::InvalidArgument(
            "bare temporal operator outside a path quantifier (not CTL): " +
            f.ToString());
    }
    return Status::Internal("bad temporal kind");
  }

 private:
  // Labels E applied to one temporal operator. With negate_operands, the
  // operands are negated and U/B swap (computing E !path); with
  // negate_result, the final vector is complemented.
  StatusOr<std::vector<char>> LabelPath(const TFormula& path,
                                        bool negate_operands,
                                        bool negate_result) {
    const size_t n = k_.size();
    std::vector<char> out;
    switch (path.kind()) {
      case TFormula::Kind::kX: {
        WSV_ASSIGN_OR_RETURN(std::vector<char> sub,
                             Label(*path.children()[0]));
        if (negate_operands) sub = Negate(std::move(sub));
        out.assign(n, 0);
        for (size_t s = 0; s < n; ++s) {
          for (int t : k_.successors(static_cast<int>(s))) {
            if (sub[static_cast<size_t>(t)]) {
              out[s] = 1;
              break;
            }
          }
        }
        break;
      }
      case TFormula::Kind::kU:
      case TFormula::Kind::kB: {
        WSV_ASSIGN_OR_RETURN(std::vector<char> l, Label(*path.lhs()));
        WSV_ASSIGN_OR_RETURN(std::vector<char> r, Label(*path.rhs()));
        if (negate_operands) {
          l = Negate(std::move(l));
          r = Negate(std::move(r));
        }
        bool is_until = (path.kind() == TFormula::Kind::kU) !=
                        negate_operands;  // negation swaps U and B
        if (is_until) {
          // E(l U r): least fixpoint Z = r | (l & EX Z).
          out = r;
          bool changed = true;
          while (changed) {
            changed = false;
            for (size_t s = 0; s < n; ++s) {
              if (out[s] || !l[s]) continue;
              for (int t : k_.successors(static_cast<int>(s))) {
                if (out[static_cast<size_t>(t)]) {
                  out[s] = 1;
                  changed = true;
                  break;
                }
              }
            }
          }
        } else {
          // E(l B r) (release): greatest fixpoint Z = r & (l | EX Z).
          out = r;
          bool changed = true;
          while (changed) {
            changed = false;
            for (size_t s = 0; s < n; ++s) {
              if (!out[s]) continue;
              if (l[s]) continue;  // r & l: satisfied regardless of future
              bool has = false;
              for (int t : k_.successors(static_cast<int>(s))) {
                if (out[static_cast<size_t>(t)]) {
                  has = true;
                  break;
                }
              }
              if (!has) {
                out[s] = 0;
                changed = true;
              }
            }
          }
        }
        break;
      }
      default:
        return Status::InvalidArgument(
            "path quantifier must be followed by X, U, or B (not CTL): " +
            path.ToString());
    }
    if (negate_result) out = Negate(std::move(out));
    return out;
  }

  const Kripke& k_;
};

}  // namespace

StatusOr<std::vector<char>> CtlLabel(const Kripke& kripke,
                                     const TFormula& formula) {
  if (!formula.IsCtl()) {
    return Status::InvalidArgument("formula is not in CTL: " +
                                   formula.ToString());
  }
  WSV_RETURN_IF_ERROR(CheckPropositionalLeaves(formula));
  CtlChecker checker(kripke);
  return checker.Label(formula);
}

StatusOr<bool> CtlHolds(const Kripke& kripke, const TFormula& formula) {
  WSV_ASSIGN_OR_RETURN(std::vector<char> v, CtlLabel(kripke, formula));
  for (int s : kripke.InitialStates()) {
    if (!v[static_cast<size_t>(s)]) return false;
  }
  return true;
}

}  // namespace wsv
