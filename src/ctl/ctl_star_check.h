// CTL* model checking (used for Theorem 4.4's CTL* cases and Theorem
// 4.6).
//
// The checker recursively eliminates path quantifiers: for each innermost
// E(path-formula), the maximal state subformulas inside are replaced by
// fresh marker propositions whose per-state truth has already been
// computed, the remaining pure-LTL formula is translated to a Büchi
// automaton, and a state satisfies the E-formula iff some product vertex
// compatible with it reaches an accepting cycle. A-formulas dualize
// (A pi = !E !pi).
//
// The paper's proof of Theorem 4.6 uses hesitant alternating automata
// (Kupferman-Vardi-Wolper) to get PSPACE in formula size and
// polylogarithmic space in the structure; this explicit product gives the
// same answers with the usual product-automaton costs, which is the right
// trade-off for an explicit-state tool (see DESIGN.md's substitution
// table).

#ifndef WSV_CTL_CTL_STAR_CHECK_H_
#define WSV_CTL_CTL_STAR_CHECK_H_

#include <vector>

#include "common/status.h"
#include "ctl/ctl.h"

namespace wsv {

/// Per-state truth of a CTL* state formula over the Kripke structure.
StatusOr<std::vector<char>> CtlStarLabel(const Kripke& kripke,
                                         const TFormula& formula);

/// True iff the formula holds at every initial state.
StatusOr<bool> CtlStarHolds(const Kripke& kripke, const TFormula& formula);

}  // namespace wsv

#endif  // WSV_CTL_CTL_STAR_CHECK_H_
