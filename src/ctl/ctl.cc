#include "ctl/ctl.h"

namespace wsv {

StatusOr<bool> EvalPropositionalFo(const Formula& f, const Kripke& kripke,
                                   int state) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      return true;
    case Formula::Kind::kFalse:
      return false;
    case Formula::Kind::kAtom: {
      // Arity-0 atoms are propositions named by the relation; ground
      // atoms over literals (e.g. button("login"), Example 4.3) are
      // propositions named by their printed form.
      std::string name;
      if (f.atom().terms.empty()) {
        name = f.atom().relation;
      } else {
        for (const Term& t : f.atom().terms) {
          if (!t.is_literal()) {
            return Status::InvalidArgument(
                "non-ground atom in propositional formula: " +
                f.atom().ToString());
          }
        }
        name = f.atom().ToString();
      }
      int p = kripke.FindProp(name);
      return p >= 0 && kripke.label(state).count(p) > 0;
    }
    case Formula::Kind::kNot: {
      WSV_ASSIGN_OR_RETURN(bool sub,
                           EvalPropositionalFo(*f.children()[0], kripke,
                                               state));
      return !sub;
    }
    case Formula::Kind::kAnd: {
      for (const FormulaPtr& c : f.children()) {
        WSV_ASSIGN_OR_RETURN(bool sub,
                             EvalPropositionalFo(*c, kripke, state));
        if (!sub) return false;
      }
      return true;
    }
    case Formula::Kind::kOr: {
      for (const FormulaPtr& c : f.children()) {
        WSV_ASSIGN_OR_RETURN(bool sub,
                             EvalPropositionalFo(*c, kripke, state));
        if (sub) return true;
      }
      return false;
    }
    case Formula::Kind::kEquals:
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      return Status::InvalidArgument(
          "non-propositional construct in propositional formula: " +
          f.ToString());
  }
  return Status::Internal("bad formula kind");
}

Status CheckPropositionalLeaves(const TFormula& f) {
  if (!f.IsPropositional()) {
    return Status::InvalidArgument(
        "temporal formula has non-propositional FO leaves: " + f.ToString());
  }
  return Status::OK();
}

}  // namespace wsv
