// Kripke structures (Definition A.4).
//
// Finite total transition systems labeled with atomic propositions; the
// target of the propositional abstraction of Web services (Lemma A.12)
// and the domain of the CTL / CTL* model checkers.

#ifndef WSV_CTL_KRIPKE_H_
#define WSV_CTL_KRIPKE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace wsv {

class Kripke {
 public:
  Kripke() = default;

  /// Registers (or finds) a proposition, returning its index.
  int InternProp(const std::string& name);
  /// The index of a proposition, or -1 if unknown.
  int FindProp(const std::string& name) const;
  const std::vector<std::string>& props() const { return props_; }

  /// Adds a state with the given true propositions; returns its index.
  int AddState(std::set<int> label);
  void AddEdge(int from, int to);
  void SetInitial(int state, bool initial = true);

  size_t size() const { return labels_.size(); }
  const std::set<int>& label(int state) const { return labels_[state]; }
  const std::vector<int>& successors(int state) const { return succ_[state]; }
  bool is_initial(int state) const { return initial_[state] != 0; }
  std::vector<int> InitialStates() const;

  /// Checks totality (every state has a successor), as Definition A.4
  /// requires; the abstraction guarantees it for well-formed services.
  Status CheckTotal() const;

  std::string ToString() const;

 private:
  std::vector<std::string> props_;
  std::map<std::string, int> prop_index_;
  std::vector<std::set<int>> labels_;
  std::vector<std::vector<int>> succ_;
  std::vector<char> initial_;
};

}  // namespace wsv

#endif  // WSV_CTL_KRIPKE_H_
