// Shared helpers for the branching-time checkers: evaluation of
// propositional FO leaves on Kripke-structure labels.

#ifndef WSV_CTL_CTL_H_
#define WSV_CTL_CTL_H_

#include "common/status.h"
#include "ctl/kripke.h"
#include "fo/formula.h"
#include "ltl/ltl.h"

namespace wsv {

/// Evaluates a propositional FO formula (boolean combination of arity-0
/// atoms) at a Kripke state: an atom is true iff its proposition is in
/// the state's label; propositions the structure does not know are false.
/// Quantifiers, equalities, and positive-arity atoms are rejected.
StatusOr<bool> EvalPropositionalFo(const Formula& f, const Kripke& kripke,
                                   int state);

/// Checks that every FO leaf of a temporal formula is propositional.
Status CheckPropositionalLeaves(const TFormula& f);

}  // namespace wsv

#endif  // WSV_CTL_CTL_H_
