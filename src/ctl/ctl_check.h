// CTL model checking by state labeling (the standard PTIME algorithm).
//
// Input formulas must be in CTL form (TFormula::IsCtl) with propositional
// FO leaves. E-quantified operators are computed directly — EX by
// one-step lookup, EU as a least fixpoint, EB (release) as a greatest
// fixpoint — and A-quantified ones by duality:
//   AX p       = !EX !p
//   A(p U q)   = !E(!p B !q)
//   A(p B q)   = !E(!p U !q)

#ifndef WSV_CTL_CTL_CHECK_H_
#define WSV_CTL_CTL_CHECK_H_

#include <vector>

#include "common/status.h"
#include "ctl/ctl.h"

namespace wsv {

/// Per-state truth of a CTL state formula.
StatusOr<std::vector<char>> CtlLabel(const Kripke& kripke,
                                     const TFormula& formula);

/// True iff the formula holds at every initial state.
StatusOr<bool> CtlHolds(const Kripke& kripke, const TFormula& formula);

}  // namespace wsv

#endif  // WSV_CTL_CTL_CHECK_H_
