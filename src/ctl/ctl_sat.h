// CTL satisfiability (EXPTIME tableau), the oracle behind Theorem 4.9's
// reduction for Web services with input-driven search.
//
// The decision procedure is the classical one (Emerson's handbook
// chapter, the paper's reference [12]):
//  1. normalize to E-only form (AX p = !EX !p, A(pUq) = !E(!p B !q),
//     A(pBq) = !E(!p U !q));
//  2. states are all truth assignments to the elementary formulas
//     (propositions and EX-subformulas), with boolean and fixpoint
//     formulas derived via the expansion laws
//        E(pUq) = q | (p & EX E(pUq))
//        E(pBq) = q & (p | EX E(pBq));
//  3. an edge s->t is allowed iff every !EX phi at s propagates !phi to
//     t;
//  4. repeatedly delete states with unwitnessable EX obligations, no
//     successor, unfulfillable E-eventualities (least fixpoint per
//     E(pUq)), or unfulfillable A-eventualities (least fixpoint per
//     false E(pBq), whose negation A(!p U !q) demands every path reach
//     !q);
//  5. satisfiable iff a surviving state asserts the formula.

#ifndef WSV_CTL_CTL_SAT_H_
#define WSV_CTL_CTL_SAT_H_

#include "common/status.h"
#include "ltl/ltl.h"

namespace wsv {

struct CtlSatResult {
  bool satisfiable = false;
  /// Tableau statistics (states before/after pruning).
  size_t tableau_states = 0;
  size_t surviving_states = 0;
};

/// Decides satisfiability of a propositional CTL formula.
StatusOr<CtlSatResult> CtlSatisfiable(const TFormula& formula);

}  // namespace wsv

#endif  // WSV_CTL_CTL_SAT_H_
