// Incremental invalidation: which cached verdicts survive a spec edit.
//
// When a request arrives under an edited spec (same --label, new
// fingerprint), re-verifying every cached property throws away exactly
// the locality the cache exists to exploit. DiffServices compares the
// old and new services rule-by-rule and classifies the edit:
//
//   global          — anything that reshapes the configuration graph or
//                     the constant pool: vocabulary/constant changes,
//                     page add/remove/rename, target lists, home/error,
//                     any target-rule change, or a dirty relation
//                     reaching a target rule's body. Every entry under
//                     the old spec is invalidated.
//   dirty relations — otherwise, the heads of changed input/state/
//                     action rules, closed under "rule body reads a
//                     dirty relation => its head is dirty" over the new
//                     service's rules (prev-atoms read the base input
//                     relation, so they propagate too).
//
// PropertyAffected then decides per cached property with a dependence-
// graph cone query (analysis/depgraph.h) over the *new* service:
// affected iff the delta is global, some dirty relation lies inside the
// backward cone of the property's FO leaves, or the property is not
// syntactically domain-independent (quantifiers then range over the
// active domain, which every relation feeds — conservative, as before).
// Out-of-cone edits migrate warm even when the property quantifies,
// which is the payoff over the old leaf-mentions-dirty check.
// Unaffected HOLDS verdicts migrate to the new spec ("warm" outcome);
// affected ones are evicted and re-verified. The differential fuzz
// suite (tests/cache_test.cc) is the soundness backstop for this
// algebra.

#ifndef WSV_CACHE_INVALIDATE_H_
#define WSV_CACHE_INVALIDATE_H_

#include <set>
#include <string>
#include <vector>

#include "ltl/ltl.h"
#include "ws/service.h"

namespace wsv {
namespace cache {

/// The classified difference between two versions of a service.
struct SpecDelta {
  /// True when the edit invalidates every entry (see header comment).
  bool global = false;
  /// Why the delta went global (empty otherwise) — surfaced in wide
  /// events so a replay log explains its own invalidations.
  std::string global_reason;
  /// Dirty relation names, closed under rule dependencies. Meaningful
  /// only when !global.
  std::set<std::string> dirty_relations;
  /// Human-readable locations of the changed rules in the *new* source
  /// ("HP input[0] @ 4:3"), for telemetry. Best-effort.
  std::vector<std::string> changed_rules;

  /// True when nothing changed at all (identical fingerprints).
  bool Empty() const {
    return !global && dirty_relations.empty() && changed_rules.empty();
  }
};

/// Diffs `older` -> `newer`. Symmetric in what it dirties (a rule
/// removed from `older` dirties its head just like one added to
/// `newer`), asymmetric in span reporting (spans cite `newer`).
SpecDelta DiffServices(const WebService& older, const WebService& newer);

/// Composes `a` then `b` (two consecutive edits): global wins, dirty
/// sets union, changed-rule lists concatenate.
SpecDelta ComposeDeltas(const SpecDelta& a, const SpecDelta& b);

/// Whether a cached verdict for `property` can survive `delta`.
/// `newer` is the post-edit service the delta's dirty set refers to;
/// the decision is a backward-cone membership test on its dependence
/// graph (see header comment).
bool PropertyAffected(const SpecDelta& delta,
                      const TemporalProperty& property,
                      const WebService& newer);

}  // namespace cache
}  // namespace wsv

#endif  // WSV_CACHE_INVALIDATE_H_
