// Versioned binary records for the on-disk verification cache.
//
// Every artifact the cache persists — verdicts, spec snapshots, leaf
// columns, the label registry — is one file holding one record:
//
//   "WSVCACHE"            8-byte magic
//   u32 version           format version (kStoreVersion)
//   u32 kind              record kind (caller-chosen discriminator)
//   u64 payload size
//   u64 checksum          FNV-1a over the payload bytes
//   payload
//
// Readers treat any mismatch — magic, version, kind, size, checksum —
// as a cache miss, never an error: a corrupted or stale file merely
// costs a re-verification. Writers publish through WriteFileAtomic so a
// crashed run can only leave a complete record or nothing.
//
// ByteWriter/ByteReader are the little-endian payload codecs; readers
// are bounds-checked and return false instead of reading past the end,
// so truncated payloads are also downgraded to misses.

#ifndef WSV_CACHE_STORE_H_
#define WSV_CACHE_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wsv {
namespace cache {

inline constexpr uint32_t kStoreVersion = 1;

// Record kinds. Values are part of the on-disk format; append only.
inline constexpr uint32_t kKindVerdict = 1;
inline constexpr uint32_t kKindSpec = 2;
inline constexpr uint32_t kKindLeafColumn = 3;
inline constexpr uint32_t kKindLabels = 4;

/// Little-endian append-only payload builder.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  /// Length-prefixed (u64) byte string.
  void Str(std::string_view s);
  void U64Vec(const std::vector<uint64_t>& v);

  std::string& data() { return out_; }
  const std::string& data() const { return out_; }

 private:
  std::string out_;
};

/// Bounds-checked reader over an encoded payload. Every accessor
/// returns false on underflow and leaves the cursor unspecified; the
/// caller abandons the record (miss) on the first failure.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool Str(std::string* s);
  bool U64Vec(std::vector<uint64_t>* v);
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// FNV-1a over arbitrary bytes — the record checksum.
uint64_t StoreChecksum(std::string_view bytes);

/// Frames `payload` as a record of `kind`. `version` is parameterized
/// so tests can write records a future (or past) format would reject.
std::string EncodeRecord(uint32_t kind, std::string_view payload,
                         uint32_t version = kStoreVersion);

/// Unframes `file`; false on any magic/version/kind/size/checksum
/// mismatch. On success `*payload` holds the record payload.
bool DecodeRecord(std::string_view file, uint32_t kind,
                  std::string* payload);

/// Reads a whole file; false when absent or unreadable.
bool ReadFileToString(const std::string& path, std::string* contents);

/// Encodes and atomically publishes a record file. Returns false (and
/// counts cache/store_write_errors) when the write fails; the cache
/// degrades to memory-only rather than erroring.
bool WriteRecordFile(const std::string& path, uint32_t kind,
                     std::string_view payload,
                     uint32_t version = kStoreVersion);

/// Reads and unframes a record file; false when absent/corrupt (the
/// caller counts cache/store_corrupt when the file existed).
bool ReadRecordFile(const std::string& path, uint32_t kind,
                    std::string* payload, bool* existed = nullptr);

/// mkdir -p. True when the directory exists afterwards.
bool EnsureDir(const std::string& path);

/// Regular files directly under `path` (names, not paths), sorted.
std::vector<std::string> ListDir(const std::string& path);

}  // namespace cache
}  // namespace wsv

#endif  // WSV_CACHE_STORE_H_
