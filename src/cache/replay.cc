#include "cache/replay.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "analysis/lints.h"
#include "analysis/render.h"
#include "common/str_util.h"
#include "ltl/ltl_parser.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/request.h"
#include "verify/parallel.h"
#include "ws/data_parser.h"
#include "ws/spec_parser.h"

namespace wsv {
namespace cache {

namespace {

// -------------------------------------------------------------------
// jobs.jsonl reader. Deliberately minimal: flat objects whose values
// are strings, numbers, booleans, or arrays of strings — the exact
// shape tools/gen_replay.py emits.

class LineParser {
 public:
  explicit LineParser(std::string_view line) : s_(line) {}

  bool ParseObject(ReplayJob* job, std::string* error) {
    SkipWs();
    if (!Consume('{')) return Err(error, "expected '{'");
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      std::string key, sval;
      if (!ParseString(&key)) return Err(error, "expected key string");
      SkipWs();
      if (!Consume(':')) return Err(error, "expected ':'");
      SkipWs();
      if (key == "pool") {
        if (!ParseStringArray(&job->pool)) {
          return Err(error, "expected string array for \"pool\"");
        }
      } else if (key == "fresh") {
        double num;
        if (!ParseNumber(&num)) return Err(error, "expected number");
        job->fresh = static_cast<int>(num);
      } else if (key == "unchecked") {
        bool b;
        if (!ParseBool(&b)) return Err(error, "expected bool");
        job->unchecked = b;
      } else if (!ParseString(&sval)) {
        return Err(error, "expected string value for \"" + key + "\"");
      } else if (key == "spec") {
        job->spec_path = std::move(sval);
      } else if (key == "spec_text") {
        job->spec_text = std::move(sval);
      } else if (key == "label") {
        job->label = std::move(sval);
      } else if (key == "property") {
        job->property = std::move(sval);
      } else if (key == "db") {
        job->db_path = std::move(sval);
      } else if (key == "db_text") {
        job->db_text = std::move(sval);
      } else {
        return Err(error, "unknown key \"" + key + "\"");
      }
      SkipWs();
      if (Consume(',')) {
        SkipWs();
        continue;
      }
      if (Consume('}')) {
        SkipWs();
        if (pos_ != s_.size()) return Err(error, "trailing content");
        return true;
      }
      return Err(error, "expected ',' or '}'");
    }
  }

 private:
  bool Err(std::string* error, std::string msg) {
    *error = std::move(msg);
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          default: return false;  // \uXXXX etc. unsupported
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ParseNumber(double* out) {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::atof(std::string(s_.substr(start, pos_ - start)).c_str());
    return true;
  }

  bool ParseBool(bool* out) {
    if (s_.substr(pos_, 4) == "true") {
      pos_ += 4;
      *out = true;
      return true;
    }
    if (s_.substr(pos_, 5) == "false") {
      pos_ += 5;
      *out = false;
      return true;
    }
    return false;
  }

  bool ParseStringArray(std::vector<std::string>* out) {
    if (!Consume('[')) return false;
    SkipWs();
    out->clear();
    if (Consume(']')) return true;
    while (true) {
      std::string s;
      if (!ParseString(&s)) return false;
      out->push_back(std::move(s));
      SkipWs();
      if (Consume(',')) {
        SkipWs();
        continue;
      }
      return Consume(']');
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

StatusOr<std::vector<ReplayJob>> ParseReplayJobs(std::string_view jsonl) {
  std::vector<ReplayJob> jobs;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= jsonl.size()) {
    size_t nl = jsonl.find('\n', start);
    if (nl == std::string_view::npos) nl = jsonl.size();
    std::string_view line = jsonl.substr(start, nl - start);
    start = nl + 1;
    ++line_no;
    // Skip blanks and comments.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos || line[first] == '#') continue;
    ReplayJob job;
    std::string error;
    if (!LineParser(line).ParseObject(&job, &error)) {
      return Status::ParseError("jobs line " + std::to_string(line_no) +
                                ": " + error);
    }
    if (job.property.empty()) {
      return Status::ParseError("jobs line " + std::to_string(line_no) +
                                ": missing \"property\"");
    }
    if (job.spec_path.empty() && job.spec_text.empty()) {
      return Status::ParseError("jobs line " + std::to_string(line_no) +
                                ": missing \"spec\" or \"spec_text\"");
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

uint64_t ReplayReport::HitLatencyPercentileNs(double p) const {
  if (hit_latencies_ns.empty()) return 0;
  std::vector<uint64_t> sorted = hit_latencies_ns;
  std::sort(sorted.begin(), sorted.end());
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

std::string ReplayReport::ToText() const {
  std::ostringstream out;
  out << "replay: " << requests << " request(s) in "
      << obs::FormatDurationNs(total_ns) << "\n";
  out << "  outcomes: hit=" << hits << " warm=" << warm
      << " miss=" << misses << " invalidated=" << invalidated
      << " error=" << errors << "\n";
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.3f", RepeatHitRate());
  out << "  repeats: " << repeats << " (" << repeat_hits
      << " served from cache, hit rate " << rate << ")\n";
  out << "  cache-served latency: p50="
      << obs::FormatDurationNs(HitLatencyPercentileNs(0.5))
      << " p99=" << obs::FormatDurationNs(HitLatencyPercentileNs(0.99))
      << "\n";
  out << "  products built on cache-served requests: "
      << cached_products_built << "\n";
  return out.str();
}

std::string ReplayReport::ToBenchJson() const {
  std::ostringstream out;
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.6f", RepeatHitRate());
  out << "{\n  \"context\": {\"replay_requests\": " << requests << "},\n"
      << "  \"benchmarks\": [\n"
      << "    {\n"
      << "      \"name\": \"replay\",\n"
      << "      \"run_type\": \"iteration\",\n"
      << "      \"iterations\": " << requests << ",\n"
      << "      \"real_time\": " << total_ns << ",\n"
      << "      \"cpu_time\": " << total_ns << ",\n"
      << "      \"time_unit\": \"ns\",\n"
      << "      \"hits\": " << hits << ",\n"
      << "      \"warm_hits\": " << warm << ",\n"
      << "      \"misses\": " << misses << ",\n"
      << "      \"invalidated\": " << invalidated << ",\n"
      << "      \"errors\": " << errors << ",\n"
      << "      \"repeats\": " << repeats << ",\n"
      << "      \"repeat_hits\": " << repeat_hits << ",\n"
      << "      \"repeat_hit_rate\": " << rate << ",\n"
      << "      \"cached_products_built\": " << cached_products_built
      << ",\n"
      << "      \"hit_p50_ns\": " << HitLatencyPercentileNs(0.5) << ",\n"
      << "      \"hit_p99_ns\": " << HitLatencyPercentileNs(0.99) << "\n"
      << "    }\n  ]\n}\n";
  return out.str();
}

StatusOr<ReplayReport> RunReplay(const std::vector<ReplayJob>& jobs,
                                 const ReplayOptions& options,
                                 VerifyCache* cache) {
  ReplayReport report;
  const uint64_t replay_start = obs::MonotonicNowNs();

  // Parse memos — a replay stream repeats a handful of specs and
  // databases thousands of times; parsing is not what we're measuring.
  std::map<std::string, std::string> file_texts;
  std::map<std::string, std::unique_ptr<WebService>> services;  // by text
  std::map<std::pair<const WebService*, std::string>, TemporalProperty>
      properties;
  std::map<std::pair<const WebService*, std::string>, Instance> databases;
  std::set<Fingerprint> seen;

  auto file_text = [&](const std::string& path) -> StatusOr<std::string> {
    auto it = file_texts.find(path);
    if (it != file_texts.end()) return it->second;
    std::ifstream in(path);
    if (!in) return Status::NotFound("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    file_texts[path] = ss.str();
    return ss.str();
  };

  for (size_t i = 0; i < jobs.size(); ++i) {
    const ReplayJob& job = jobs[i];
    ++report.requests;
    const std::string label =
        !job.label.empty() ? job.label : job.spec_path;

    auto fail = [&](const Status& status) {
      ++report.errors;
      if (!options.quiet) {
        std::printf("[%4zu] error        %s\n", i,
                    status.ToString().c_str());
      }
    };

    // Resolve the spec text.
    std::string spec_text = job.spec_text;
    if (spec_text.empty()) {
      auto text = file_text(job.spec_path);
      if (!text.ok()) {
        fail(text.status());
        continue;
      }
      spec_text = std::move(text).value();
    }

    // Parse (memoized by source text).
    auto svc_it = services.find(spec_text);
    if (svc_it == services.end()) {
      auto parsed = ParseServiceSpec(spec_text);
      if (!parsed.ok()) {
        fail(parsed.status());
        continue;
      }
      svc_it = services
                   .emplace(spec_text, std::make_unique<WebService>(
                                           std::move(parsed).value()))
                   .first;
    }
    const WebService& service = *svc_it->second;

    auto prop_it = properties.find({&service, job.property});
    if (prop_it == properties.end()) {
      auto parsed = ParseTemporalProperty(job.property, &service.vocab());
      if (!parsed.ok()) {
        fail(parsed.status());
        continue;
      }
      prop_it = properties
                    .emplace(std::make_pair(&service, job.property),
                             std::move(parsed).value())
                    .first;
    }
    const TemporalProperty& property = prop_it->second;

    const Instance* database = nullptr;
    if (!job.db_path.empty() || !job.db_text.empty()) {
      std::string db_text = job.db_text;
      if (db_text.empty()) {
        auto text = file_text(job.db_path);
        if (!text.ok()) {
          fail(text.status());
          continue;
        }
        db_text = std::move(text).value();
      }
      auto db_it = databases.find({&service, db_text});
      if (db_it == databases.end()) {
        auto parsed = ParseDataFile(db_text, &service.vocab());
        if (!parsed.ok()) {
          fail(parsed.status());
          continue;
        }
        db_it = databases
                    .emplace(std::make_pair(&service, db_text),
                             std::move(parsed).value())
                    .first;
      }
      database = &db_it->second;
    }

    LtlVerifyOptions verify_options;
    for (const std::string& v : job.pool) {
      verify_options.graph.constant_pool.push_back(Value::Intern(v));
    }
    verify_options.db.fresh_values = job.fresh;
    verify_options.require_input_bounded = !job.unchecked;
    verify_options.force_eager = options.eager;

    const RequestKey key = MakeRequestKey(service, property, database,
                                          verify_options, options.jobs);
    const bool repeat = !seen.insert(key.combined).second;
    if (repeat) ++report.repeats;

    obs::RequestScope scope(label.empty() ? job.property : label);
    std::vector<std::pair<std::string, std::string>> text_fields;
    text_fields.emplace_back("spec_fp", key.spec.ToHex());
    text_fields.emplace_back("property_fp", key.property.ToHex());

    Outcome outcome = Outcome::kMiss;
    CachedVerdict verdict;
    Status verify_status = Status::OK();
    if (cache != nullptr) {
      cache->RegisterSpec(key.spec, spec_text);
      // Exercise the lint tier the way a service front end would: lint
      // once per spec content, serve the rendered text afterwards.
      std::string lint_text;
      if (!cache->LookupLint(key.spec, &lint_text)) {
        analysis::DiagnosticSink sink;
        analysis::LintSpecText(spec_text, &sink);
        cache->InsertLint(key.spec, analysis::RenderText(
                                        sink.diagnostics(), spec_text,
                                        label.empty() ? "<spec>" : label));
      }
      VerifyCache::LookupResult found =
          cache->Lookup(key, label, service, property);
      outcome = found.outcome;
      if (outcome == Outcome::kHit || outcome == Outcome::kWarm) {
        verdict = std::move(found.verdict);
      }
      if (!found.delta.changed_rules.empty()) {
        text_fields.emplace_back("changed_rules",
                                 Join(found.delta.changed_rules, "; "));
      }
      if (found.delta.global) {
        text_fields.emplace_back("invalidate_global",
                                 found.delta.global_reason);
      }
    }

    if (outcome == Outcome::kMiss || outcome == Outcome::kInvalidated) {
      if (cache != nullptr && database != nullptr &&
          VerifyCache::Enabled()) {
        verify_options.leaf_store = cache->leaf_store();
        verify_options.leaf_store_context = VerifyCache::LeafContext(
            key, service, property, *database, verify_options,
            OnTheFlyEnabled() && !verify_options.force_eager);
      }
      ParallelLtlVerifier verifier(&service, verify_options, options.jobs);
      StatusOr<LtlVerifyResult> result =
          database != nullptr ? verifier.VerifyOnDatabase(property, *database)
                              : verifier.Verify(property);
      if (!result.ok()) {
        verify_status = result.status();
      } else {
        verdict.holds = result->holds;
        verdict.witness_text = result->counterexample.has_value()
                                   ? result->counterexample->ToString()
                                   : std::string();
        verdict.databases_checked = result->databases_checked;
        verdict.total_graph_nodes = result->total_graph_nodes;
        verdict.total_product_states = result->total_product_states;
        verdict.complete_within_bounds = result->complete_within_bounds;
        verdict.migrated = false;
        if (cache != nullptr) cache->Insert(key, verdict);
      }
    }

    const obs::MetricsSnapshot& delta = scope.Close();
    const uint64_t latency_ns = scope.ElapsedNs();
    const bool served =
        outcome == Outcome::kHit || outcome == Outcome::kWarm;
    if (served) {
      report.hit_latencies_ns.push_back(latency_ns);
      report.cached_products_built +=
          delta.CounterValue("ltl/products_built");
      if (repeat) ++report.repeat_hits;
    }
    switch (outcome) {
      case Outcome::kHit: ++report.hits; break;
      case Outcome::kWarm: ++report.warm; break;
      case Outcome::kInvalidated: ++report.invalidated; break;
      case Outcome::kMiss: ++report.misses; break;
    }
    if (!verify_status.ok()) ++report.errors;

    const char* verdict_str =
        !verify_status.ok() ? "ERROR" : (verdict.holds ? "HOLDS" : "VIOLATED");
    if (options.log_events) {
      text_fields.emplace_back("cache_outcome", OutcomeName(outcome));
      obs::EmitRequestSummary(scope, delta, verdict_str,
                              obs::DeriveOutcome(verify_status, delta),
                              text_fields);
    }
    if (!options.quiet) {
      std::printf("[%4zu] %-11s %-8s %10s  %s\n", i, OutcomeName(outcome),
                  verdict_str, obs::FormatDurationNs(latency_ns).c_str(),
                  job.property.c_str());
    }
  }

  report.total_ns = obs::MonotonicNowNs() - replay_start;
  return report;
}

}  // namespace cache
}  // namespace wsv
