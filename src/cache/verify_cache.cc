#include "cache/verify_cache.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "cache/store.h"
#include "obs/metrics.h"
#include "ws/spec_parser.h"

namespace wsv {
namespace cache {

namespace {

// Maximum edit-chain hops walked during a Lookup; longer histories fall
// back to a miss (re-verification is always sound).
constexpr int kMaxChainHops = 8;

Fingerprint CombineKey(const Fingerprint& spec, const Fingerprint& property,
                       const Fingerprint& database,
                       const Fingerprint& options) {
  FingerprintBuilder b;
  b.AbsorbString("wsv-request-v1");
  b.AbsorbFingerprint(spec);
  b.AbsorbFingerprint(property);
  b.AbsorbFingerprint(database);
  b.AbsorbFingerprint(options);
  return b.Finish();
}

std::string EncodeVerdict(const CachedVerdict& v) {
  ByteWriter w;
  w.U8(v.holds ? 1 : 0);
  w.U8(v.complete_within_bounds ? 1 : 0);
  w.U8(v.migrated ? 1 : 0);
  w.U64(v.databases_checked);
  w.U64(v.total_graph_nodes);
  w.U64(v.total_product_states);
  w.Str(v.witness_text);
  return std::move(w.data());
}

bool DecodeVerdict(std::string_view payload, CachedVerdict* v) {
  ByteReader r(payload);
  uint8_t holds, complete, migrated;
  if (!r.U8(&holds) || !r.U8(&complete) || !r.U8(&migrated) ||
      !r.U64(&v->databases_checked) || !r.U64(&v->total_graph_nodes) ||
      !r.U64(&v->total_product_states) || !r.Str(&v->witness_text) ||
      !r.AtEnd()) {
    return false;
  }
  v->holds = holds != 0;
  v->complete_within_bounds = complete != 0;
  v->migrated = migrated != 0;
  return true;
}

std::string EncodeSpec(const std::string& text, bool has_lint,
                       const std::string& lint) {
  ByteWriter w;
  w.Str(text);
  w.U8(has_lint ? 1 : 0);
  w.Str(lint);
  return std::move(w.data());
}

bool DecodeSpec(std::string_view payload, std::string* text, bool* has_lint,
                std::string* lint) {
  ByteReader r(payload);
  uint8_t hl;
  if (!r.Str(text) || !r.U8(&hl) || !r.Str(lint) || !r.AtEnd()) return false;
  *has_lint = hl != 0;
  return true;
}

}  // namespace

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kHit:
      return "hit";
    case Outcome::kWarm:
      return "warm";
    case Outcome::kMiss:
      return "miss";
    case Outcome::kInvalidated:
      return "invalidated";
  }
  return "miss";
}

RequestKey MakeRequestKey(const WebService& service,
                          const TemporalProperty& property,
                          const Instance* database,
                          const LtlVerifyOptions& options, int jobs) {
  RequestKey key;
  key.spec = FingerprintService(service);
  key.property = FingerprintProperty(property);
  if (database != nullptr) {
    key.database = FingerprintInstance(*database);
  } else {
    FingerprintBuilder b;
    b.AbsorbString("dbenum");
    b.AbsorbU64(static_cast<uint64_t>(options.db.fresh_values));
    b.AbsorbU64(
        static_cast<uint64_t>(options.db.max_tuples_per_relation));
    b.AbsorbU64(options.db.max_instances);
    b.AbsorbFingerprint(FingerprintValues(options.db.base_values));
    key.database = b.Finish();
  }
  // Everything that can change the *output* of a request: bounds,
  // pools, closure candidates, and the execution shape (engine mode,
  // class collapsing, parallelism all shift the reported statistics
  // even when verdicts agree). Bytecode on/off is deliberately absent —
  // it changes no observable number.
  FingerprintBuilder b;
  b.AbsorbString("opts");
  b.AbsorbFingerprint(FingerprintValues(options.db.base_values));
  b.AbsorbU64(static_cast<uint64_t>(options.db.fresh_values));
  b.AbsorbU64(static_cast<uint64_t>(options.db.max_tuples_per_relation));
  b.AbsorbU64(options.db.max_instances);
  b.AbsorbU64(options.graph.max_nodes);
  b.AbsorbU64(options.graph.max_edges);
  b.AbsorbFingerprint(FingerprintValues(options.graph.constant_pool));
  b.AbsorbU64(static_cast<uint64_t>(options.extra_constant_values));
  b.AbsorbU64(options.require_input_bounded ? 1 : 0);
  b.AbsorbFingerprint(FingerprintValues(options.closure_candidates));
  b.AbsorbU64((options.force_eager || !OnTheFlyEnabled()) ? 1 : 0);
  b.AbsorbU64(ClassCollapseEnabled() ? 1 : 0);
  b.AbsorbU64(static_cast<uint64_t>(jobs));
  key.options = b.Finish();
  key.combined = CombineKey(key.spec, key.property, key.database,
                            key.options);
  return key;
}

// ---------------------------------------------------------------------
// Leaf column store: memory map, write-through to cols/ when a dir is
// configured. Columns only grow (a shorter republish never truncates).

class VerifyCache::DiskLeafColumnStore : public LeafColumnStore {
 public:
  explicit DiskLeafColumnStore(std::string dir) : dir_(std::move(dir)) {}

  bool Lookup(const std::string& key, std::vector<uint64_t>* set_bits,
              uint64_t* upto) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = columns_.find(key);
    if (it == columns_.end() && !dir_.empty()) {
      std::string payload;
      bool existed = false;
      if (ReadRecordFile(Path(key), kKindLeafColumn, &payload, &existed)) {
        ByteReader r(payload);
        std::string stored_key;
        Column col;
        if (r.Str(&stored_key) && r.U64(&col.upto) &&
            r.U64Vec(&col.set_bits) && r.AtEnd() && stored_key == key) {
          WSV_GAUGE_ADD("mem/leaf_store_bytes", Bytes(col));
          it = columns_.emplace(key, std::move(col)).first;
        } else if (stored_key != key && !stored_key.empty()) {
          // A filename-hash collision between distinct keys: serve a
          // miss, never the other key's column.
          WSV_COUNT1("cache/leaf_key_collisions");
        } else {
          WSV_COUNT1("cache/store_corrupt");
        }
      } else if (existed) {
        WSV_COUNT1("cache/store_corrupt");
      }
    }
    if (it == columns_.end()) return false;
    *set_bits = it->second.set_bits;
    *upto = it->second.upto;
    return true;
  }

  void Publish(const std::string& key, const std::vector<uint64_t>& set_bits,
               uint64_t upto) override {
    std::lock_guard<std::mutex> lock(mu_);
    Column& col = columns_[key];
    if (upto <= col.upto) return;
    WSV_GAUGE_SUB("mem/leaf_store_bytes", Bytes(col));
    col.set_bits = set_bits;
    col.upto = upto;
    WSV_GAUGE_ADD("mem/leaf_store_bytes", Bytes(col));
    if (dir_.empty()) return;
    ByteWriter w;
    w.Str(key);
    w.U64(col.upto);
    w.U64Vec(col.set_bits);
    WriteRecordFile(Path(key), kKindLeafColumn, w.data());
  }

 private:
  struct Column {
    std::vector<uint64_t> set_bits;
    uint64_t upto = 0;
  };

  static uint64_t Bytes(const Column& col) {
    return col.set_bits.size() * sizeof(uint64_t) + 32;
  }

  std::string Path(const std::string& key) const {
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(StoreChecksum(key)));
    return dir_ + "/" + hex + ".bin";
  }

  std::string dir_;
  std::mutex mu_;
  std::unordered_map<std::string, Column> columns_;
};

// ---------------------------------------------------------------------

VerifyCache::VerifyCache(Config config) : config_(std::move(config)) {
  std::string cols_dir;
  if (!config_.dir.empty()) {
    if (EnsureDir(config_.dir) && EnsureDir(config_.dir + "/verdicts") &&
        EnsureDir(config_.dir + "/specs") &&
        EnsureDir(config_.dir + "/cols")) {
      cols_dir = config_.dir + "/cols";
    } else {
      // Unusable directory: degrade to memory-only rather than failing
      // requests over a cache problem.
      WSV_COUNT1("cache/store_write_errors");
      config_.dir.clear();
    }
  }
  leaf_store_ = std::make_unique<DiskLeafColumnStore>(std::move(cols_dir));
  std::lock_guard<std::mutex> lock(mu_);
  LoadLabelsLocked();
}

VerifyCache::~VerifyCache() {
  WSV_GAUGE_SUB("mem/verify_cache_entries", entries_.size());
  WSV_GAUGE_SUB("mem/verify_cache_bytes", entry_bytes_);
}

bool VerifyCache::Enabled() {
  // Read per call (not a once-only static) so tests can flip the
  // environment mid-process.
  const char* disabled = std::getenv("WSV_DISABLE_VERIFY_CACHE");
  return disabled == nullptr || disabled[0] == '\0' ||
         (disabled[0] == '0' && disabled[1] == '\0');
}

LeafColumnStore* VerifyCache::leaf_store() { return leaf_store_.get(); }

std::string VerifyCache::VerdictPath(const Fingerprint& combined) const {
  return config_.dir + "/verdicts/" + combined.ToHex() + ".bin";
}

std::string VerifyCache::SpecPath(const Fingerprint& spec_fp) const {
  return config_.dir + "/specs/" + spec_fp.ToHex() + ".bin";
}

void VerifyCache::RegisterSpec(const Fingerprint& spec_fp,
                               const std::string& text) {
  if (!Enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto inserted = spec_texts_.emplace(spec_fp, text);
  if (!inserted.second) return;  // already known (and persisted)
  if (config_.dir.empty()) return;
  auto lint = lint_texts_.find(spec_fp);
  const bool has_lint = lint != lint_texts_.end();
  WriteRecordFile(SpecPath(spec_fp), kKindSpec,
                  EncodeSpec(text, has_lint,
                             has_lint ? lint->second : std::string()));
}

bool VerifyCache::LookupLint(const Fingerprint& spec_fp,
                             std::string* lint_text) {
  if (!Enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lint_texts_.find(spec_fp);
  if (it != lint_texts_.end()) {
    *lint_text = it->second;
    WSV_COUNT1("cache/lint_hits");
    return true;
  }
  if (config_.dir.empty()) return false;
  std::string payload, text, lint;
  bool has_lint = false;
  if (!ReadRecordFile(SpecPath(spec_fp), kKindSpec, &payload) ||
      !DecodeSpec(payload, &text, &has_lint, &lint) || !has_lint) {
    return false;
  }
  spec_texts_.emplace(spec_fp, std::move(text));
  lint_texts_[spec_fp] = lint;
  *lint_text = std::move(lint);
  WSV_COUNT1("cache/lint_hits");
  return true;
}

void VerifyCache::InsertLint(const Fingerprint& spec_fp,
                             const std::string& lint_text) {
  if (!Enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  lint_texts_[spec_fp] = lint_text;
  if (config_.dir.empty()) return;
  auto text = spec_texts_.find(spec_fp);
  if (text == spec_texts_.end()) return;  // spec not registered yet
  WriteRecordFile(SpecPath(spec_fp), kKindSpec,
                  EncodeSpec(text->second, true, lint_text));
}

void VerifyCache::EvictLocked(const Fingerprint& combined) {
  auto it = entries_.find(combined);
  if (it != entries_.end()) {
    const uint64_t bytes = it->second->second.ApproxBytes();
    entry_bytes_ -= bytes;
    WSV_GAUGE_SUB("mem/verify_cache_bytes", bytes);
    WSV_GAUGE_SUB("mem/verify_cache_entries", 1);
    lru_.erase(it->second);
    entries_.erase(it);
  }
  if (!config_.dir.empty()) {
    std::remove(VerdictPath(combined).c_str());
  }
}

bool VerifyCache::LoadFromDiskLocked(const Fingerprint& combined,
                                     CachedVerdict* out) {
  if (config_.dir.empty()) return false;
  std::string payload;
  bool existed = false;
  if (!ReadRecordFile(VerdictPath(combined), kKindVerdict, &payload,
                      &existed)) {
    if (existed) WSV_COUNT1("cache/store_corrupt");
    return false;
  }
  if (!DecodeVerdict(payload, out)) {
    WSV_COUNT1("cache/store_corrupt");
    return false;
  }
  return true;
}

void VerifyCache::PersistLocked(const Fingerprint& combined,
                                const CachedVerdict& verdict) {
  if (config_.dir.empty()) return;
  WriteRecordFile(VerdictPath(combined), kKindVerdict,
                  EncodeVerdict(verdict));
}

void VerifyCache::PersistLabelsLocked() {
  if (config_.dir.empty()) return;
  ByteWriter w;
  w.U64(label_spec_.size());
  for (const auto& [label, fp] : label_spec_) {
    w.Str(label);
    w.Str(fp.ToHex());
  }
  w.U64(edit_parent_.size());
  for (const auto& [child, parent] : edit_parent_) {
    w.Str(child.ToHex());
    w.Str(parent.ToHex());
  }
  WriteRecordFile(config_.dir + "/labels.bin", kKindLabels, w.data());
}

void VerifyCache::LoadLabelsLocked() {
  if (config_.dir.empty()) return;
  std::string payload;
  bool existed = false;
  if (!ReadRecordFile(config_.dir + "/labels.bin", kKindLabels, &payload,
                      &existed)) {
    if (existed) WSV_COUNT1("cache/store_corrupt");
    return;
  }
  ByteReader r(payload);
  uint64_t n;
  if (!r.U64(&n)) return;
  std::map<std::string, Fingerprint> labels;
  for (uint64_t i = 0; i < n; ++i) {
    std::string label, hex;
    Fingerprint fp;
    if (!r.Str(&label) || !r.Str(&hex) || !Fingerprint::FromHex(hex, &fp)) {
      WSV_COUNT1("cache/store_corrupt");
      return;
    }
    labels.emplace(std::move(label), fp);
  }
  uint64_t m;
  if (!r.U64(&m)) return;
  std::map<Fingerprint, Fingerprint> edges;
  for (uint64_t i = 0; i < m; ++i) {
    std::string child_hex, parent_hex;
    Fingerprint child, parent;
    if (!r.Str(&child_hex) || !r.Str(&parent_hex) ||
        !Fingerprint::FromHex(child_hex, &child) ||
        !Fingerprint::FromHex(parent_hex, &parent)) {
      WSV_COUNT1("cache/store_corrupt");
      return;
    }
    edges.emplace(child, parent);
  }
  label_spec_ = std::move(labels);
  edit_parent_ = std::move(edges);
}

const WebService* VerifyCache::ParsedSpecLocked(const Fingerprint& fp) {
  auto memo = parsed_specs_.find(fp);
  if (memo != parsed_specs_.end()) return memo->second.get();
  auto text = spec_texts_.find(fp);
  if (text == spec_texts_.end() && !config_.dir.empty()) {
    std::string payload, spec_text, lint;
    bool has_lint = false;
    if (ReadRecordFile(SpecPath(fp), kKindSpec, &payload) &&
        DecodeSpec(payload, &spec_text, &has_lint, &lint)) {
      if (has_lint) lint_texts_.emplace(fp, std::move(lint));
      text = spec_texts_.emplace(fp, std::move(spec_text)).first;
    }
  }
  if (text == spec_texts_.end()) return nullptr;
  auto parsed = ParseServiceSpec(text->second);
  if (!parsed.ok()) {
    parsed_specs_.emplace(fp, nullptr);
    return nullptr;
  }
  auto service = std::make_unique<WebService>(std::move(parsed).value());
  const WebService* raw = service.get();
  parsed_specs_.emplace(fp, std::move(service));
  return raw;
}

bool VerifyCache::ChainDeltaLocked(const Fingerprint& from,
                                   const Fingerprint& to, SpecDelta* delta) {
  // Path newest -> oldest, then compose edge deltas oldest-first.
  std::vector<Fingerprint> path{to};
  while (path.back() != from) {
    if (static_cast<int>(path.size()) > kMaxChainHops) return false;
    auto parent = edit_parent_.find(path.back());
    if (parent == edit_parent_.end()) return false;
    path.push_back(parent->second);
  }
  SpecDelta composed;
  for (size_t i = path.size() - 1; i > 0; --i) {
    const Fingerprint& older = path[i];
    const Fingerprint& newer = path[i - 1];
    auto memo = delta_memo_.find({older, newer});
    if (memo == delta_memo_.end()) {
      const WebService* old_svc = ParsedSpecLocked(older);
      const WebService* new_svc = ParsedSpecLocked(newer);
      if (old_svc == nullptr || new_svc == nullptr) return false;
      memo = delta_memo_
                 .emplace(std::make_pair(older, newer),
                          DiffServices(*old_svc, *new_svc))
                 .first;
    }
    composed = ComposeDeltas(composed, memo->second);
    // A global delta invalidates everything regardless of what later
    // edits did; no need to diff the rest of the chain.
    if (composed.global) break;
  }
  *delta = std::move(composed);
  return true;
}

VerifyCache::LookupResult VerifyCache::Lookup(
    const RequestKey& key, const std::string& label,
    const WebService& service, const TemporalProperty& property) {
  LookupResult result;
  if (!Enabled()) return result;
  std::lock_guard<std::mutex> lock(mu_);
  WSV_COUNT1("cache/requests");

  // Keep the label registry current before anything else: the edit edge
  // old->new must be recorded even when this particular property misses.
  if (!label.empty()) {
    auto reg = label_spec_.find(label);
    if (reg == label_spec_.end()) {
      label_spec_.emplace(label, key.spec);
      PersistLabelsLocked();
    } else if (reg->second != key.spec) {
      WSV_COUNT1("cache/spec_edits");
      // First parent wins: a fingerprint's diff ancestry is fixed by
      // the first edit that produced it.
      edit_parent_.emplace(key.spec, reg->second);
      reg->second = key.spec;
      PersistLabelsLocked();
    }
  }
  (void)service;

  // Tier 1: exact match in memory.
  auto it = entries_.find(key.combined);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    WSV_COUNT1("cache/hits");
    result.outcome = Outcome::kHit;
    result.verdict = it->second->second;
    return result;
  }
  // Tier 2: exact match on disk; promote into memory.
  CachedVerdict from_disk;
  if (LoadFromDiskLocked(key.combined, &from_disk)) {
    WSV_COUNT1("cache/hits");
    WSV_COUNT1("cache/disk_hits");
    result.outcome = Outcome::kHit;
    result.verdict = from_disk;
    InsertLocked(key.combined, std::move(from_disk));
    return result;
  }

  // Edit chain: look for this (property, database, options) under an
  // ancestor spec fingerprint and classify the accumulated edit.
  Fingerprint ancestor = key.spec;
  for (int hop = 0; hop < kMaxChainHops; ++hop) {
    auto parent = edit_parent_.find(ancestor);
    if (parent == edit_parent_.end()) break;
    ancestor = parent->second;
    const Fingerprint old_combined = CombineKey(
        ancestor, key.property, key.database, key.options);
    CachedVerdict old_verdict;
    bool found = false;
    auto old_it = entries_.find(old_combined);
    if (old_it != entries_.end()) {
      old_verdict = old_it->second->second;
      found = true;
    } else if (LoadFromDiskLocked(old_combined, &old_verdict)) {
      found = true;
    }
    if (!found) continue;

    SpecDelta delta;
    if (!ChainDeltaLocked(ancestor, key.spec, &delta)) break;
    result.delta = delta;
    // Only complete HOLDS verdicts migrate: a VIOLATED witness cites
    // concrete run content any edit may perturb, and a truncated search
    // may explore differently post-edit.
    if (PropertyAffected(delta, property, service) || !old_verdict.holds ||
        !old_verdict.complete_within_bounds) {
      EvictLocked(old_combined);
      WSV_COUNT1("cache/invalidated");
      result.outcome = Outcome::kInvalidated;
      return result;
    }
    old_verdict.migrated = true;
    WSV_COUNT1("cache/warm_hits");
    result.outcome = Outcome::kWarm;
    result.verdict = old_verdict;
    InsertLocked(key.combined, old_verdict);
    PersistLocked(key.combined, old_verdict);
    return result;
  }

  WSV_COUNT1("cache/misses");
  return result;
}

void VerifyCache::Insert(const RequestKey& key,
                         const CachedVerdict& verdict) {
  if (!Enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key.combined, verdict);
  PersistLocked(key.combined, verdict);
}

void VerifyCache::InsertLocked(const Fingerprint& combined,
                               CachedVerdict verdict) {
  auto it = entries_.find(combined);
  if (it != entries_.end()) {
    const uint64_t old_bytes = it->second->second.ApproxBytes();
    const uint64_t new_bytes = verdict.ApproxBytes();
    WSV_GAUGE_SUB("mem/verify_cache_bytes", old_bytes);
    WSV_GAUGE_ADD("mem/verify_cache_bytes", new_bytes);
    entry_bytes_ += new_bytes - old_bytes;
    it->second->second = std::move(verdict);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  const uint64_t bytes = verdict.ApproxBytes();
  lru_.emplace_front(combined, std::move(verdict));
  entries_[combined] = lru_.begin();
  entry_bytes_ += bytes;
  WSV_GAUGE_ADD("mem/verify_cache_bytes", bytes);
  WSV_GAUGE_ADD("mem/verify_cache_entries", 1);
  while (entries_.size() > config_.max_entries) {
    const auto& victim = lru_.back();
    const uint64_t victim_bytes = victim.second.ApproxBytes();
    entries_.erase(victim.first);
    entry_bytes_ -= victim_bytes;
    WSV_GAUGE_SUB("mem/verify_cache_bytes", victim_bytes);
    WSV_GAUGE_SUB("mem/verify_cache_entries", 1);
    WSV_COUNT1("cache/evictions");
    lru_.pop_back();
  }
}

std::string VerifyCache::LeafContext(const RequestKey& key,
                                     const WebService& service,
                                     const TemporalProperty& property,
                                     const Instance& database,
                                     const LtlVerifyOptions& options,
                                     bool on_the_fly) {
  FingerprintBuilder b;
  b.AbsorbString("leafctx-v1");
  b.AbsorbFingerprint(key.spec);
  b.AbsorbFingerprint(key.database);
  b.AbsorbFingerprint(key.options);
  b.AbsorbFingerprint(
      FingerprintValues(ResolveConstantPool(service, property, database,
                                            options)));
  for (const std::string& rel : TrackedPrevRelations(service, property)) {
    b.AbsorbString(rel);
  }
  b.AbsorbU64(ClassCollapseEnabled() ? 1 : 0);
  if (on_the_fly) {
    // The nested DFS discovers edges in property-dependent order, so
    // columns only transfer between runs of the *same* property.
    b.AbsorbU64(1);
    b.AbsorbFingerprint(key.property);
  } else {
    b.AbsorbU64(0);
  }
  return b.Finish().ToHex();
}

size_t VerifyCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace cache
}  // namespace wsv
