// Batch replay driver: feed a JSONL job stream through the
// verification cache and report hit rates and latencies.
//
// `wsvcli replay <jobs.jsonl>` exercises the cache the way a hosted
// verification service would see traffic: a stream of (spec, property,
// database) requests with repeats and occasional spec edits. Each line
// of the job file is one JSON object:
//
//   {"spec": "specs/login.wsv",          // path, or instead:
//    "spec_text": "service ... ",        //   inline spec source
//    "label": "login",                   // edit-chain identity
//                                        //   (default: spec path)
//    "property": "G(!CP | logged_in)",   // required
//    "db": "specs/login.wsd",            // path, or instead:
//    "db_text": "user(alice, pw).",      //   inline database
//    "pool": ["a", "b"],                 // input-constant pool
//    "fresh": 1,                         // fresh database values
//    "unchecked": false}                 // skip input-bounded gate
//
// Omitting db/db_text enumerates the bounded database space, exactly
// like `wsvcli verify` without a database argument. The parser accepts
// only this shape (flat object, string/number/bool/string-array
// values) — it is a replay-log reader, not a JSON library.
//
// Per request the driver performs the cache lookup, runs the verifier
// on a miss, and records the outcome (hit/warm/miss/invalidated),
// latency, and the per-request `ltl/products_built` delta — the proof
// that cache-served requests build no products. The report aggregates
// into repeat hit rate and hit-latency percentiles; ToBenchJson renders
// a google-benchmark-schema JSON so tools/bench_guard.py can enforce
// budgets on replay runs (bench/budgets_replay.json).

#ifndef WSV_CACHE_REPLAY_H_
#define WSV_CACHE_REPLAY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cache/verify_cache.h"
#include "common/status.h"

namespace wsv {
namespace cache {

struct ReplayJob {
  std::string label;
  std::string spec_path;
  std::string spec_text;
  std::string property;
  std::string db_path;
  std::string db_text;
  std::vector<std::string> pool;
  int fresh = 1;
  bool unchecked = false;
};

/// Parses a jobs.jsonl stream (blank lines and #-comment lines are
/// skipped). Fails on the first malformed line, citing its number.
StatusOr<std::vector<ReplayJob>> ParseReplayJobs(std::string_view jsonl);

struct ReplayOptions {
  /// On-disk cache tier; empty = memory-only.
  std::string cache_dir;
  /// Worker threads per verification (ParallelLtlVerifier jobs).
  int jobs = 1;
  /// Force the eager pipeline for every request.
  bool eager = false;
  /// Suppress the per-request progress lines (the report still prints).
  bool quiet = false;
  /// Emit per-request wide events (caller opened the event log).
  bool log_events = false;
};

struct ReplayReport {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t warm = 0;
  uint64_t misses = 0;
  uint64_t invalidated = 0;
  uint64_t errors = 0;
  /// Requests whose combined fingerprint appeared earlier in the stream.
  uint64_t repeats = 0;
  /// Of those, how many the cache served (hit or warm).
  uint64_t repeat_hits = 0;
  /// Sum of per-request ltl/products_built deltas over cache-served
  /// requests — must stay 0 (a served request builds nothing).
  uint64_t cached_products_built = 0;
  /// Wall latencies of cache-served requests, ns.
  std::vector<uint64_t> hit_latencies_ns;
  uint64_t total_ns = 0;

  double RepeatHitRate() const {
    return repeats == 0 ? 1.0
                        : static_cast<double>(repeat_hits) /
                              static_cast<double>(repeats);
  }
  uint64_t HitLatencyPercentileNs(double p) const;

  std::string ToText() const;
  /// google-benchmark JSON schema (one "replay" benchmark with the
  /// aggregates as user counters), for tools/bench_guard.py.
  std::string ToBenchJson() const;
};

/// Runs the job stream through `cache`. Individual request failures
/// (bad spec, unparsable property) are counted in `errors` and do not
/// abort the replay; only infrastructure failures return a status.
StatusOr<ReplayReport> RunReplay(const std::vector<ReplayJob>& jobs,
                                 const ReplayOptions& options,
                                 VerifyCache* cache);

}  // namespace cache
}  // namespace wsv

#endif  // WSV_CACHE_REPLAY_H_
