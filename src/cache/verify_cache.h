// Cross-request verification cache (two tiers) with incremental
// re-verification.
//
// A verification request is (spec, property, database, options). The
// cache keys requests by the *content* fingerprints of those components
// (common/fingerprint.h) — never by path, address, or source text — so
// a reformatted spec or a re-interned database still hits. Verdicts are
// cached as rendered text (the witness via CounterExample::ToString()),
// which sidesteps cross-process value-interning drift: a cached verdict
// is byte-identical to what the cold run printed.
//
// Tiers:
//   memory — an LRU of CachedVerdicts keyed by combined fingerprint;
//   disk   — versioned binary records (cache/store.h) under --cache-dir:
//              verdicts/<combined-fp>.bin   one verdict each
//              specs/<spec-fp>.bin          spec text + lint text
//              cols/<key-fnv>.bin           FO-leaf truth columns
//              labels.bin                   label registry + edit edges
//            Corrupt or version-mismatched records degrade to misses.
//
// Incremental invalidation: requests carry a caller-chosen *label* (a
// stable identity for "this spec slot", e.g. the file path). When a
// label re-arrives with a new spec fingerprint, the cache records an
// edit edge old->new, diffs the two parsed services
// (cache/invalidate.h), and classifies every prior verdict reachable
// through the edit chain: unaffected HOLDS verdicts migrate to the new
// fingerprint and serve as `warm`; affected (or VIOLATED) ones are
// evicted and re-verified (`invalidated`).
//
// Outcome vocabulary (one per Lookup, also the wide-event field):
//   hit          exact fingerprint match (memory or disk)
//   warm         migrated across a spec edit without re-verification
//   invalidated  a prior entry existed but could not survive the edit
//   miss         nothing known
//
// The environment variable WSV_DISABLE_VERIFY_CACHE=1 turns every
// Lookup into a miss and every Insert into a no-op (checked per call,
// so tests can flip it at runtime). Verifier behavior is unchanged
// either way — the cache only decides whether the verifier runs.

#ifndef WSV_CACHE_VERIFY_CACHE_H_
#define WSV_CACHE_VERIFY_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/invalidate.h"
#include "common/fingerprint.h"
#include "verify/leaf_store.h"
#include "verify/ltl_verifier.h"
#include "ws/service.h"

namespace wsv {
namespace cache {

/// A fully rendered verification verdict. Witnesses are stored as the
/// text CounterExample::ToString() produced, so serving from cache is
/// byte-identical to the cold run that populated the entry.
struct CachedVerdict {
  bool holds = true;
  std::string witness_text;
  uint64_t databases_checked = 0;
  uint64_t total_graph_nodes = 0;
  uint64_t total_product_states = 0;
  bool complete_within_bounds = true;
  /// True when this entry was migrated across a spec edit: the verdict
  /// is sound, but the graph/product counts describe the pre-edit run.
  bool migrated = false;

  size_t ApproxBytes() const { return witness_text.size() + 64; }
};

enum class Outcome { kHit, kWarm, kMiss, kInvalidated };
const char* OutcomeName(Outcome outcome);

/// Component fingerprints of one request plus their combination. The
/// components are kept so the edit-chain walk can re-combine the same
/// (property, database, options) under an ancestor spec fingerprint.
struct RequestKey {
  Fingerprint spec;
  Fingerprint property;
  Fingerprint database;
  Fingerprint options;
  Fingerprint combined;
};

/// Builds the key for a request. `database` may be null (enumerated
/// database space — fingerprinted from the enumeration options
/// instead). `jobs` participates because parallel sweeps can report
/// different (equally valid) statistics than serial ones.
RequestKey MakeRequestKey(const WebService& service,
                          const TemporalProperty& property,
                          const Instance* database,
                          const LtlVerifyOptions& options, int jobs);

class VerifyCache {
 public:
  struct Config {
    /// On-disk tier root; empty for memory-only operation.
    std::string dir;
    /// Memory-tier LRU capacity.
    size_t max_entries = 4096;
  };

  explicit VerifyCache(Config config);
  ~VerifyCache();

  VerifyCache(const VerifyCache&) = delete;
  VerifyCache& operator=(const VerifyCache&) = delete;

  /// False when WSV_DISABLE_VERIFY_CACHE is set (checked per call).
  static bool Enabled();

  /// Records the source text behind a spec fingerprint (memory + disk).
  /// The text is what edit-chain diffs re-parse, so callers must
  /// register every spec before Lookup.
  void RegisterSpec(const Fingerprint& spec_fp, const std::string& text);

  struct LookupResult {
    Outcome outcome = Outcome::kMiss;
    CachedVerdict verdict;  // meaningful for kHit / kWarm
    /// For kWarm / kInvalidated: the classified edit, for telemetry.
    SpecDelta delta;
  };

  /// Looks up `key`, following the edit chain for `label` (empty label:
  /// exact matches only). `service`/`property` are the already-parsed
  /// request, needed to diff and classify when the label's spec
  /// changed.
  LookupResult Lookup(const RequestKey& key, const std::string& label,
                      const WebService& service,
                      const TemporalProperty& property);

  /// Publishes a verdict under `key` (memory LRU + disk when
  /// configured). No-op when the cache is disabled.
  void Insert(const RequestKey& key, const CachedVerdict& verdict);

  /// Lint text cached per spec fingerprint (replay serves lint findings
  /// for warm specs without re-running analysis).
  bool LookupLint(const Fingerprint& spec_fp, std::string* lint_text);
  void InsertLint(const Fingerprint& spec_fp, const std::string& lint_text);

  /// The FO-leaf column store backing LtlVerifyOptions::leaf_store.
  /// Memory-backed always; disk-backed when a dir is configured.
  LeafColumnStore* leaf_store();

  /// The leaf-store context string for a request: everything that fixes
  /// the configuration graph and its edge order. `on_the_fly` adds the
  /// property fingerprint (the nested DFS drives edge discovery).
  static std::string LeafContext(const RequestKey& key,
                                 const WebService& service,
                                 const TemporalProperty& property,
                                 const Instance& database,
                                 const LtlVerifyOptions& options,
                                 bool on_the_fly);

  size_t entries() const;

 private:
  class DiskLeafColumnStore;

  void InsertLocked(const Fingerprint& combined, CachedVerdict verdict);
  void EvictLocked(const Fingerprint& combined);
  bool LoadFromDiskLocked(const Fingerprint& combined, CachedVerdict* out);
  void PersistLocked(const Fingerprint& combined,
                     const CachedVerdict& verdict);
  void PersistLabelsLocked();
  void LoadLabelsLocked();
  /// Parses (and memoizes) the service stored for `fp`; null when the
  /// text is unknown or no longer parses.
  const WebService* ParsedSpecLocked(const Fingerprint& fp);
  /// Composed delta along the edit chain from `from` (older) to `to`
  /// (newer); false when the chain is broken (missing spec text).
  bool ChainDeltaLocked(const Fingerprint& from, const Fingerprint& to,
                        SpecDelta* delta);

  std::string VerdictPath(const Fingerprint& combined) const;
  std::string SpecPath(const Fingerprint& spec_fp) const;

  Config config_;

  mutable std::mutex mu_;
  // Memory tier: LRU list (front = most recent) + index into it.
  std::list<std::pair<Fingerprint, CachedVerdict>> lru_;
  std::unordered_map<Fingerprint,
                     std::list<std::pair<Fingerprint, CachedVerdict>>::
                         iterator,
                     FingerprintHash>
      entries_;
  uint64_t entry_bytes_ = 0;

  // Edit-chain state.
  std::map<std::string, Fingerprint> label_spec_;       // label -> newest fp
  std::map<Fingerprint, Fingerprint> edit_parent_;      // newer -> older
  std::map<Fingerprint, std::string> spec_texts_;
  std::map<Fingerprint, std::unique_ptr<WebService>> parsed_specs_;
  std::map<std::pair<Fingerprint, Fingerprint>, SpecDelta> delta_memo_;
  std::map<Fingerprint, std::string> lint_texts_;
  std::set<Fingerprint> lint_known_;

  std::unique_ptr<DiskLeafColumnStore> leaf_store_;
};

}  // namespace cache
}  // namespace wsv

#endif  // WSV_CACHE_VERIFY_CACHE_H_
