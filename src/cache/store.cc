#include "cache/store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/file_util.h"
#include "obs/metrics.h"

namespace wsv {
namespace cache {

namespace {

constexpr char kMagic[8] = {'W', 'S', 'V', 'C', 'A', 'C', 'H', 'E'};

void PutLe(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool GetLe(std::string_view data, size_t* pos, int bytes, uint64_t* v) {
  if (data.size() - *pos < static_cast<size_t>(bytes)) return false;
  uint64_t r = 0;
  for (int i = 0; i < bytes; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(data[*pos + i]))
         << (8 * i);
  }
  *pos += bytes;
  *v = r;
  return true;
}

}  // namespace

void ByteWriter::U32(uint32_t v) { PutLe(&out_, v, 4); }
void ByteWriter::U64(uint64_t v) { PutLe(&out_, v, 8); }

void ByteWriter::Str(std::string_view s) {
  U64(s.size());
  out_.append(s.data(), s.size());
}

void ByteWriter::U64Vec(const std::vector<uint64_t>& v) {
  U64(v.size());
  for (uint64_t e : v) U64(e);
}

bool ByteReader::U8(uint8_t* v) {
  uint64_t r;
  if (!GetLe(data_, &pos_, 1, &r)) return false;
  *v = static_cast<uint8_t>(r);
  return true;
}

bool ByteReader::U32(uint32_t* v) {
  uint64_t r;
  if (!GetLe(data_, &pos_, 4, &r)) return false;
  *v = static_cast<uint32_t>(r);
  return true;
}

bool ByteReader::U64(uint64_t* v) { return GetLe(data_, &pos_, 8, v); }

bool ByteReader::Str(std::string* s) {
  uint64_t n;
  if (!U64(&n)) return false;
  if (data_.size() - pos_ < n) return false;
  s->assign(data_.data() + pos_, static_cast<size_t>(n));
  pos_ += static_cast<size_t>(n);
  return true;
}

bool ByteReader::U64Vec(std::vector<uint64_t>* v) {
  uint64_t n;
  if (!U64(&n)) return false;
  // A corrupt count must not drive a huge allocation: each element is
  // 8 payload bytes, so the remaining data bounds it.
  if ((data_.size() - pos_) / 8 < n) return false;
  v->clear();
  v->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t e;
    if (!U64(&e)) return false;
    v->push_back(e);
  }
  return true;
}

uint64_t StoreChecksum(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string EncodeRecord(uint32_t kind, std::string_view payload,
                         uint32_t version) {
  std::string out;
  out.reserve(sizeof(kMagic) + 24 + payload.size());
  out.append(kMagic, sizeof(kMagic));
  PutLe(&out, version, 4);
  PutLe(&out, kind, 4);
  PutLe(&out, payload.size(), 8);
  PutLe(&out, StoreChecksum(payload), 8);
  out.append(payload.data(), payload.size());
  return out;
}

bool DecodeRecord(std::string_view file, uint32_t kind,
                  std::string* payload) {
  if (file.size() < sizeof(kMagic) + 24) return false;
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) return false;
  size_t pos = sizeof(kMagic);
  uint64_t version, got_kind, size, checksum;
  if (!GetLe(file, &pos, 4, &version) || !GetLe(file, &pos, 4, &got_kind) ||
      !GetLe(file, &pos, 8, &size) || !GetLe(file, &pos, 8, &checksum)) {
    return false;
  }
  if (version != kStoreVersion || got_kind != kind) return false;
  if (file.size() - pos != size) return false;
  std::string_view body = file.substr(pos);
  if (StoreChecksum(body) != checksum) return false;
  payload->assign(body.data(), body.size());
  return true;
}

bool ReadFileToString(const std::string& path, std::string* contents) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  contents->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool WriteRecordFile(const std::string& path, uint32_t kind,
                     std::string_view payload, uint32_t version) {
  Status st = WriteFileAtomic(path, EncodeRecord(kind, payload, version));
  if (!st.ok()) {
    WSV_COUNT1("cache/store_write_errors");
    return false;
  }
  return true;
}

bool ReadRecordFile(const std::string& path, uint32_t kind,
                    std::string* payload, bool* existed) {
  std::string file;
  const bool present = ReadFileToString(path, &file);
  if (existed != nullptr) *existed = present;
  if (!present) return false;
  return DecodeRecord(file, kind, payload);
}

bool EnsureDir(const std::string& path) {
  if (path.empty()) return false;
  std::string prefix;
  size_t start = 0;
  if (path[0] == '/') {
    prefix = "/";
    start = 1;
  }
  while (start <= path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    if (slash > start) {
      prefix.append(path, start, slash - start);
      if (mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) return false;
      prefix.push_back('/');
    }
    start = slash + 1;
  }
  struct stat sb;
  return stat(path.c_str(), &sb) == 0 && S_ISDIR(sb.st_mode);
}

std::vector<std::string> ListDir(const std::string& path) {
  std::vector<std::string> names;
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) return names;
  while (struct dirent* entry = readdir(dir)) {
    const char* name = entry->d_name;
    if (std::strcmp(name, ".") == 0 || std::strcmp(name, "..") == 0) continue;
    std::string full = path + "/" + name;
    struct stat sb;
    if (stat(full.c_str(), &sb) == 0 && S_ISREG(sb.st_mode)) {
      names.push_back(name);
    }
  }
  closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace cache
}  // namespace wsv
