#include "cache/invalidate.h"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "analysis/depgraph.h"
#include "common/fingerprint.h"

namespace wsv {
namespace cache {

namespace {

// Rule identity for diffing: kind tag + head + structural body
// fingerprint. Spans are deliberately excluded (fingerprints are
// span-ignoring), so reformatting a spec dirties nothing.
std::string RuleId(const InputRule& r) {
  std::string id = "i|" + r.input;
  for (const std::string& v : r.head_vars) id += "," + v;
  return id + "|" + FingerprintFormula(*r.body).ToHex();
}

std::string RuleId(const StateRule& r) {
  std::string id = (r.insert ? "s+|" : "s-|") + r.state;
  for (const std::string& v : r.head_vars) id += "," + v;
  return id + "|" + FingerprintFormula(*r.body).ToHex();
}

std::string RuleId(const ActionRule& r) {
  std::string id = "a|" + r.action;
  for (const std::string& v : r.head_vars) id += "," + v;
  return id + "|" + FingerprintFormula(*r.body).ToHex();
}

std::string DescribeRule(const std::string& page, const char* kind,
                         const std::string& head, const Span& span) {
  std::ostringstream out;
  out << page << " " << kind << " " << head;
  if (span.IsValid()) out << " @ " << span.ToString();
  return out.str();
}

// Multiset difference in both directions: ids present in exactly one
// version. Returns the count of differing rules.
template <typename Rule>
void DiffRuleVector(const std::vector<Rule>& old_rules,
                    const std::vector<Rule>& new_rules,
                    const std::string& page, const char* kind,
                    const std::function<std::string(const Rule&)>& head_of,
                    SpecDelta* delta) {
  std::map<std::string, int> counts;
  for (const Rule& r : old_rules) counts[RuleId(r)]++;
  for (const Rule& r : new_rules) counts[RuleId(r)]--;
  // Heads of rules on either side of the diff are dirty; spans cite the
  // new source (removed-only rules have no new span to cite).
  for (const Rule& r : new_rules) {
    if (counts[RuleId(r)] < 0) {
      delta->dirty_relations.insert(head_of(r));
      delta->changed_rules.push_back(
          DescribeRule(page, kind, head_of(r), r.span));
    }
  }
  for (const Rule& r : old_rules) {
    if (counts[RuleId(r)] > 0) {
      delta->dirty_relations.insert(head_of(r));
      delta->changed_rules.push_back(
          DescribeRule(page, kind, head_of(r) + " (removed)", Span{}));
    }
  }
}

std::string VocabId(const Vocabulary& vocab) {
  std::ostringstream out;
  for (const RelationSymbol& rel : vocab.relations()) {
    out << rel.name << "/" << rel.arity << "/"
        << static_cast<int>(rel.kind) << ";";
  }
  out << "|";
  for (const std::string& c : vocab.constants()) {
    out << c << (vocab.IsInputConstant(c) ? "!" : "") << ";";
  }
  return out.str();
}

std::string PageShapeId(const PageSchema& page) {
  std::ostringstream out;
  auto list = [&out](const std::vector<std::string>& names) {
    for (const std::string& n : names) out << n << ",";
    out << "|";
  };
  list(page.inputs);
  list(page.input_constants);
  list(page.actions);
  list(page.targets);
  return out.str();
}

std::string TargetRulesId(const PageSchema& page) {
  std::ostringstream out;
  for (const TargetRule& r : page.target_rules) {
    out << r.target << "|" << FingerprintFormula(*r.body).ToHex() << ";";
  }
  return out.str();
}

// The literal values appearing in rule bodies feed the resolved
// constant pool (verify/ResolveConstantPool), so a changed literal set
// reshapes every valuation space.
std::set<Value> RuleLiterals(const WebService& service) {
  std::set<Value> literals;
  for (const PageSchema& page : service.pages()) {
    auto absorb = [&literals](const FormulaPtr& body) {
      std::set<Value> vals = body->Literals();
      literals.insert(vals.begin(), vals.end());
    };
    for (const InputRule& r : page.input_rules) absorb(r.body);
    for (const StateRule& r : page.state_rules) absorb(r.body);
    for (const ActionRule& r : page.action_rules) absorb(r.body);
    for (const TargetRule& r : page.target_rules) absorb(r.body);
  }
  return literals;
}

SpecDelta Global(std::string reason) {
  SpecDelta delta;
  delta.global = true;
  delta.global_reason = std::move(reason);
  return delta;
}

}  // namespace

SpecDelta DiffServices(const WebService& older, const WebService& newer) {
  if (VocabId(older.vocab()) != VocabId(newer.vocab())) {
    return Global("vocabulary changed");
  }
  if (older.home_page() != newer.home_page()) return Global("home changed");
  if (older.error_page() != newer.error_page()) {
    return Global("error page changed");
  }
  if (older.pages().size() != newer.pages().size()) {
    return Global("page added or removed");
  }
  for (const PageSchema& page : older.pages()) {
    const PageSchema* other = newer.FindPage(page.name);
    if (other == nullptr) return Global("page renamed: " + page.name);
    if (PageShapeId(page) != PageShapeId(*other)) {
      return Global("page shape changed: " + page.name);
    }
    if (TargetRulesId(page) != TargetRulesId(*other)) {
      return Global("target rules changed: " + page.name);
    }
  }
  if (RuleLiterals(older) != RuleLiterals(newer)) {
    return Global("rule literal set changed (constant pool)");
  }

  SpecDelta delta;
  for (const PageSchema& page : older.pages()) {
    const PageSchema* other = newer.FindPage(page.name);
    DiffRuleVector<InputRule>(
        page.input_rules, other->input_rules, page.name, "input",
        [](const InputRule& r) { return r.input; }, &delta);
    DiffRuleVector<StateRule>(
        page.state_rules, other->state_rules, page.name, "state",
        [](const StateRule& r) { return r.state; }, &delta);
    DiffRuleVector<ActionRule>(
        page.action_rules, other->action_rules, page.name, "action",
        [](const ActionRule& r) { return r.action; }, &delta);
  }

  // Close the dirty set over the new service's rule dependencies: a
  // rule whose body reads a dirty relation (prev-atoms report the base
  // input name) produces dirty contents under its head.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const PageSchema& page : newer.pages()) {
      auto propagate = [&](const FormulaPtr& body, const std::string& head) {
        if (delta.dirty_relations.count(head)) return;
        for (const std::string& rel : body->RelationNames()) {
          if (delta.dirty_relations.count(rel)) {
            delta.dirty_relations.insert(head);
            changed = true;
            return;
          }
        }
      };
      for (const InputRule& r : page.input_rules) propagate(r.body, r.input);
      for (const StateRule& r : page.state_rules) propagate(r.body, r.state);
      for (const ActionRule& r : page.action_rules) {
        propagate(r.body, r.action);
      }
    }
  }

  // A dirty relation feeding a target rule changes which transitions
  // fire — the graph itself, not just labelling. Nothing survives that.
  for (const PageSchema& page : newer.pages()) {
    for (const TargetRule& r : page.target_rules) {
      for (const std::string& rel : r.body->RelationNames()) {
        if (delta.dirty_relations.count(rel)) {
          return Global("dirty relation " + rel + " reaches target rule " +
                        page.name + " -> " + r.target);
        }
      }
    }
  }
  return delta;
}

SpecDelta ComposeDeltas(const SpecDelta& a, const SpecDelta& b) {
  if (a.global) return a;
  if (b.global) return b;
  SpecDelta out = a;
  out.dirty_relations.insert(b.dirty_relations.begin(),
                             b.dirty_relations.end());
  out.changed_rules.insert(out.changed_rules.end(), b.changed_rules.begin(),
                           b.changed_rules.end());
  return out;
}

bool PropertyAffected(const SpecDelta& delta,
                      const TemporalProperty& property,
                      const WebService& newer) {
  if (delta.global) return true;
  if (delta.dirty_relations.empty()) return false;
  analysis::DepGraph graph = analysis::DepGraph::Build(newer);
  // Quantified leaves that are not syntactically domain-independent
  // range over the active domain, which every relation's contents feed
  // — treat them as touching everything, exactly as before.
  if (!graph.PropertyDomainIndependent(property)) return true;
  // Otherwise a dirty relation matters iff the property transitively
  // reads it: membership in the backward cone of the property's FO
  // leaves. (Target rules are clean here — a dirty relation reaching
  // one sends DiffServices global — so the cone needs no target seeds.)
  std::vector<int> seeds = graph.PropertySeeds(property);
  std::vector<char> cone = graph.BackwardCone(seeds);
  for (const std::string& rel : delta.dirty_relations) {
    int node = graph.FindRelation(rel);
    if (node >= 0 && cone[static_cast<size_t>(node)]) return true;
  }
  return false;
}

}  // namespace cache
}  // namespace wsv
