#include "ws/service.h"

#include <algorithm>

#include "common/str_util.h"

namespace wsv {

bool PageSchema::HasInputRelation(const std::string& rel) const {
  return std::find(inputs.begin(), inputs.end(), rel) != inputs.end();
}

bool PageSchema::HasInputConstant(const std::string& c) const {
  return std::find(input_constants.begin(), input_constants.end(), c) !=
         input_constants.end();
}

std::string PageSchema::ToString() const {
  std::string out = "page " + name + " {\n";
  if (!inputs.empty()) out += "  input " + Join(inputs, ", ") + ";\n";
  if (!input_constants.empty()) {
    out += "  input " + Join(input_constants, ", ") + ";  // constants\n";
  }
  if (!actions.empty()) out += "  action " + Join(actions, ", ") + ";\n";
  for (const InputRule& r : input_rules) out += "  " + r.ToString() + ";\n";
  for (const StateRule& r : state_rules) out += "  " + r.ToString() + ";\n";
  for (const ActionRule& r : action_rules) out += "  " + r.ToString() + ";\n";
  for (const TargetRule& r : target_rules) out += "  " + r.ToString() + ";\n";
  out += "}\n";
  return out;
}

Status WebService::AddPage(PageSchema page) {
  if (page_index_.count(page.name) > 0) {
    return Status::InvalidArgument("duplicate page name: " + page.name);
  }
  page_index_[page.name] = pages_.size();
  pages_.push_back(std::move(page));
  return Status::OK();
}

const PageSchema* WebService::FindPage(const std::string& name) const {
  auto it = page_index_.find(name);
  if (it == page_index_.end()) return nullptr;
  return &pages_[it->second];
}

std::string WebService::ToString() const {
  // Emits valid .wsv syntax: the output re-parses through
  // ParseServiceSpec (checked by roundtrip_test).
  std::string out = "service " + name_ + ";\n";
  auto decl = [](const RelationSymbol& sym) {
    std::string entry = sym.name;
    if (sym.arity > 0) {
      std::vector<std::string> attrs;
      for (int i = 0; i < sym.arity; ++i) {
        attrs.push_back("a" + std::to_string(i));
      }
      entry += "(" + Join(attrs, ", ") + ")";
    }
    return entry;
  };
  auto list_kind = [&](SymbolKind kind, const char* label) {
    std::vector<std::string> items;
    for (const RelationSymbol& sym : vocab_.RelationsOfKind(kind)) {
      items.push_back(decl(sym));
    }
    if (!items.empty()) {
      out += std::string(label) + " " + Join(items, ", ") + ";\n";
    }
  };
  list_kind(SymbolKind::kDatabase, "database");
  list_kind(SymbolKind::kState, "state");
  list_kind(SymbolKind::kInput, "input");
  for (const std::string& c : vocab_.InputConstants()) {
    out += "input " + c + " const;\n";
  }
  list_kind(SymbolKind::kAction, "action");
  for (const std::string& c : vocab_.constants()) {
    if (!vocab_.IsInputConstant(c)) out += "constant " + c + ";\n";
  }
  for (const PageSchema& p : pages_) out += p.ToString();
  out += "home " + home_page_ + ";\n";
  out += "error " + error_page_ + ";\n";
  return out;
}

}  // namespace wsv
