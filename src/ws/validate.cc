#include "ws/validate.h"

#include <map>
#include <set>
#include <string>

namespace wsv {

namespace {

using analysis::DiagnosticSink;
using analysis::Severity;

// Context strings for diagnostics.
std::string Where(const PageSchema& page, const std::string& rule) {
  return "page " + page.name + ", " + rule;
}

void Error(DiagnosticSink* sink, const char* rule_id, Span span,
           std::string message, const std::string& page = "",
           std::string hint = "") {
  sink->Report(rule_id, Severity::kError, span, std::move(message),
               std::move(hint), /*anchor=*/"Definition 2.1", page);
}

// Checks that all atoms of `body` use relations permitted for this rule
// kind: database, state, prev-input always; current-input atoms only when
// `allow_current_input` and then only relations offered by the page.
void CheckBodyVocabulary(const FormulaPtr& body, const PageSchema& page,
                         const Vocabulary& vocab, bool allow_current_input,
                         const std::string& context, Span rule_span,
                         DiagnosticSink* sink) {
  for (const Atom& atom : body->Atoms()) {
    const Span span = atom.span.IsValid() ? atom.span : rule_span;
    const RelationSymbol* sym = vocab.FindRelation(atom.relation);
    if (sym == nullptr) {
      Error(sink, "WSV-VAL-001", span,
            context + ": unknown relation " + atom.relation, page.name,
            "declare '" + atom.relation +
                "' in a database/state/input/action section");
      continue;
    }
    switch (sym->kind) {
      case SymbolKind::kDatabase:
      case SymbolKind::kState:
        if (atom.prev) {
          Error(sink, "WSV-VAL-005", span,
                context + ": prev. on non-input relation " + atom.relation,
                page.name, "prev. applies only to input relations");
        }
        break;
      case SymbolKind::kInput:
        if (atom.prev) break;  // Prev_I atoms are always permitted.
        if (!allow_current_input) {
          Error(sink, "WSV-VAL-005", span,
                context + ": current input atom " + atom.ToString() +
                    " not permitted in an input (options) rule",
                page.name,
                "options rules may reference only database, state, and "
                "prev. input atoms");
        } else if (!page.HasInputRelation(atom.relation)) {
          Error(sink, "WSV-VAL-005", span,
                context + ": input relation " + atom.relation +
                    " is not offered by page " + page.name,
                page.name,
                "add 'input " + atom.relation + ";' to the page");
        }
        break;
      case SymbolKind::kAction:
        Error(sink, "WSV-VAL-005", span,
              context + ": action atom " + atom.ToString() +
                  " not permitted in a rule body",
              page.name);
        break;
      case SymbolKind::kPage:
        Error(sink, "WSV-VAL-005", span,
              context + ": page proposition " + atom.relation +
                  " not permitted in a rule body",
              page.name);
        break;
    }
  }
}

void CheckHead(const std::vector<std::string>& head_vars,
               const FormulaPtr& body, const std::string& context,
               Span rule_span, const std::string& page,
               DiagnosticSink* sink) {
  std::set<std::string> heads(head_vars.begin(), head_vars.end());
  if (heads.size() != head_vars.size()) {
    Error(sink, "WSV-VAL-008", rule_span,
          context +
              ": repeated head variable (builder desugaring should have "
              "removed these)",
          page);
  }
  for (const std::string& v : body->FreeVariables()) {
    if (heads.count(v) == 0) {
      Error(sink, "WSV-VAL-003", rule_span,
            context + ": body variable '" + v +
                "' does not appear in the rule head",
            page, "bind '" + v + "' in the head or quantify it in the body");
    }
  }
}

void ValidatePage(const PageSchema& page, const WebService& service,
                  DiagnosticSink* sink) {
  const Vocabulary& vocab = service.vocab();

  for (const std::string& in : page.inputs) {
    const RelationSymbol* sym = vocab.FindRelation(in);
    if (sym == nullptr || sym->kind != SymbolKind::kInput) {
      Error(sink, "WSV-VAL-001", page.span,
            "page " + page.name + ": undeclared input relation " + in,
            page.name, "declare '" + in + "' in an input section");
    }
  }
  for (const std::string& c : page.input_constants) {
    if (!vocab.IsInputConstant(c)) {
      Error(sink, "WSV-VAL-001", page.span,
            "page " + page.name + ": undeclared input constant " + c,
            page.name, "declare '" + c + " const' in an input section");
    }
  }
  for (const std::string& a : page.actions) {
    const RelationSymbol* sym = vocab.FindRelation(a);
    if (sym == nullptr || sym->kind != SymbolKind::kAction) {
      Error(sink, "WSV-VAL-001", page.span,
            "page " + page.name + ": undeclared action relation " + a,
            page.name, "declare '" + a + "' in an action section");
    }
  }
  for (const std::string& t : page.targets) {
    if (service.FindPage(t) == nullptr) {
      // Attribute to the first target rule naming this page, if any.
      Span span = page.span;
      for (const TargetRule& rule : page.target_rules) {
        if (rule.target == t && rule.span.IsValid()) {
          span = rule.span;
          break;
        }
      }
      Error(sink, "WSV-VAL-001", span,
            "page " + page.name + ": target page " + t +
                " is not declared (the error page may not be an explicit "
                "target)",
            page.name);
    }
  }

  // Input rules: one per positive-arity input relation of the page.
  std::map<std::string, int> options_count;
  for (const InputRule& rule : page.input_rules) {
    const std::string ctx = Where(page, rule.ToString());
    const RelationSymbol* sym = vocab.FindRelation(rule.input);
    if (sym == nullptr || sym->kind != SymbolKind::kInput) {
      Error(sink, "WSV-VAL-001", rule.span, ctx + ": not an input relation",
            page.name);
      continue;
    }
    if (sym->arity == 0) {
      Error(sink, "WSV-VAL-004", rule.span,
            ctx + ": propositional inputs take no options rule", page.name);
    } else if (static_cast<int>(rule.head_vars.size()) != sym->arity) {
      Error(sink, "WSV-VAL-002", rule.span,
            ctx + ": head arity mismatch", page.name,
            "relation " + rule.input + " has arity " +
                std::to_string(sym->arity));
    }
    ++options_count[rule.input];
    CheckHead(rule.head_vars, rule.body, ctx, rule.span, page.name, sink);
    CheckBodyVocabulary(rule.body, page, vocab,
                        /*allow_current_input=*/false, ctx, rule.span, sink);
  }
  for (const std::string& in : page.inputs) {
    const RelationSymbol* sym = vocab.FindRelation(in);
    if (sym != nullptr && sym->kind == SymbolKind::kInput &&
        sym->arity > 0 && options_count[in] != 1) {
      Error(sink, "WSV-VAL-004", page.span,
            "page " + page.name + ": input relation " + in +
                " needs exactly one options rule, found " +
                std::to_string(options_count[in]),
            page.name);
    }
  }

  // State rules: at most one insertion and one deletion per relation.
  std::map<std::pair<std::string, bool>, int> state_count;
  for (const StateRule& rule : page.state_rules) {
    const std::string ctx = Where(page, rule.ToString());
    const RelationSymbol* sym = vocab.FindRelation(rule.state);
    if (sym == nullptr || sym->kind != SymbolKind::kState) {
      Error(sink, "WSV-VAL-001", rule.span, ctx + ": not a state relation",
            page.name);
      continue;
    }
    if (static_cast<int>(rule.head_vars.size()) != sym->arity) {
      Error(sink, "WSV-VAL-002", rule.span, ctx + ": head arity mismatch",
            page.name,
            "relation " + rule.state + " has arity " +
                std::to_string(sym->arity));
    }
    if (++state_count[{rule.state, rule.insert}] > 1) {
      Error(sink, "WSV-VAL-004", rule.span, ctx + ": duplicate state rule",
            page.name);
    }
    CheckHead(rule.head_vars, rule.body, ctx, rule.span, page.name, sink);
    CheckBodyVocabulary(rule.body, page, vocab,
                        /*allow_current_input=*/true, ctx, rule.span, sink);
  }

  // Action rules: one per action relation.
  std::map<std::string, int> action_count;
  for (const ActionRule& rule : page.action_rules) {
    const std::string ctx = Where(page, rule.ToString());
    const RelationSymbol* sym = vocab.FindRelation(rule.action);
    if (sym == nullptr || sym->kind != SymbolKind::kAction) {
      Error(sink, "WSV-VAL-001", rule.span, ctx + ": not an action relation",
            page.name);
      continue;
    }
    if (static_cast<int>(rule.head_vars.size()) != sym->arity) {
      Error(sink, "WSV-VAL-002", rule.span, ctx + ": head arity mismatch",
            page.name,
            "relation " + rule.action + " has arity " +
                std::to_string(sym->arity));
    }
    if (++action_count[rule.action] > 1) {
      Error(sink, "WSV-VAL-004", rule.span, ctx + ": duplicate action rule",
            page.name);
    }
    CheckHead(rule.head_vars, rule.body, ctx, rule.span, page.name, sink);
    CheckBodyVocabulary(rule.body, page, vocab,
                        /*allow_current_input=*/true, ctx, rule.span, sink);
  }

  // Target rules: sentences, one per target page.
  std::map<std::string, int> target_count;
  for (const TargetRule& rule : page.target_rules) {
    const std::string ctx = Where(page, rule.ToString());
    if (service.FindPage(rule.target) == nullptr) {
      Error(sink, "WSV-VAL-001", rule.span, ctx + ": unknown target page",
            page.name);
    }
    if (++target_count[rule.target] > 1) {
      Error(sink, "WSV-VAL-004", rule.span, ctx + ": duplicate target rule",
            page.name);
    }
    if (!rule.body->FreeVariables().empty()) {
      Error(sink, "WSV-VAL-007", rule.span,
            ctx + ": target rule body must be a sentence", page.name,
            "quantify the body's free variables");
    }
    CheckBodyVocabulary(rule.body, page, vocab,
                        /*allow_current_input=*/true, ctx, rule.span, sink);
  }
}

}  // namespace

void ValidateServiceDiagnostics(const WebService& service,
                                analysis::DiagnosticSink* sink) {
  if (service.home_page().empty()) {
    Error(sink, "WSV-VAL-006", Span{}, "no home page declared", "",
          "add 'home <page>;'");
  } else if (service.FindPage(service.home_page()) == nullptr) {
    Error(sink, "WSV-VAL-001", service.home_span(),
          "home page " + service.home_page() + " is not declared");
  }
  if (service.error_page().empty()) {
    Error(sink, "WSV-VAL-006", Span{}, "no error page declared", "",
          "add 'error <page>;'");
  } else if (service.FindPage(service.error_page()) != nullptr) {
    Error(sink, "WSV-VAL-006", service.error_span(),
          "error page " + service.error_page() +
              " must not be a member of the page set (Definition 2.1)");
  }
  if (service.pages().empty()) {
    Error(sink, "WSV-VAL-006", Span{}, "service declares no pages");
  }
  for (const PageSchema& page : service.pages()) {
    ValidatePage(page, service, sink);
  }
}

Status ValidateService(const WebService& service) {
  analysis::DiagnosticSink sink;
  ValidateServiceDiagnostics(service, &sink);
  for (const analysis::Diagnostic& d : sink.diagnostics()) {
    if (d.severity != analysis::Severity::kError) continue;
    // WSV-VAL-001 findings are "unknown/undeclared symbol" — historically
    // reported as NotFound; everything else was InvalidArgument.
    if (d.rule_id == "WSV-VAL-001") return Status::NotFound(d.message);
    return Status::InvalidArgument(d.message);
  }
  return Status::OK();
}

}  // namespace wsv
