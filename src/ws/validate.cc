#include "ws/validate.h"

#include <map>
#include <set>

namespace wsv {

namespace {

// Context strings for diagnostics.
std::string Where(const PageSchema& page, const std::string& rule) {
  return "page " + page.name + ", " + rule;
}

// Checks that all atoms of `body` use relations permitted for this rule
// kind: database, state, prev-input always; current-input atoms only when
// `allow_current_input` and then only relations offered by the page.
Status CheckBodyVocabulary(const FormulaPtr& body, const PageSchema& page,
                           const Vocabulary& vocab, bool allow_current_input,
                           const std::string& context) {
  for (const Atom& atom : body->Atoms()) {
    const RelationSymbol* sym = vocab.FindRelation(atom.relation);
    if (sym == nullptr) {
      return Status::NotFound(context + ": unknown relation " +
                              atom.relation);
    }
    switch (sym->kind) {
      case SymbolKind::kDatabase:
      case SymbolKind::kState:
        if (atom.prev) {
          return Status::InvalidArgument(context +
                                         ": prev. on non-input relation " +
                                         atom.relation);
        }
        break;
      case SymbolKind::kInput:
        if (atom.prev) break;  // Prev_I atoms are always permitted.
        if (!allow_current_input) {
          return Status::InvalidArgument(
              context + ": current input atom " + atom.ToString() +
              " not permitted in an input (options) rule");
        }
        if (!page.HasInputRelation(atom.relation)) {
          return Status::InvalidArgument(
              context + ": input relation " + atom.relation +
              " is not offered by page " + page.name);
        }
        break;
      case SymbolKind::kAction:
        return Status::InvalidArgument(context + ": action atom " +
                                       atom.ToString() +
                                       " not permitted in a rule body");
      case SymbolKind::kPage:
        return Status::InvalidArgument(context + ": page proposition " +
                                       atom.relation +
                                       " not permitted in a rule body");
    }
  }
  return Status::OK();
}

Status CheckHead(const std::vector<std::string>& head_vars,
                 const FormulaPtr& body, const std::string& context) {
  std::set<std::string> heads(head_vars.begin(), head_vars.end());
  if (heads.size() != head_vars.size()) {
    return Status::InvalidArgument(context +
                                   ": repeated head variable (builder "
                                   "desugaring should have removed these)");
  }
  for (const std::string& v : body->FreeVariables()) {
    if (heads.count(v) == 0) {
      return Status::InvalidArgument(context + ": body variable '" + v +
                                     "' does not appear in the rule head");
    }
  }
  return Status::OK();
}

Status ValidatePage(const PageSchema& page, const WebService& service) {
  const Vocabulary& vocab = service.vocab();

  for (const std::string& in : page.inputs) {
    const RelationSymbol* sym = vocab.FindRelation(in);
    if (sym == nullptr || sym->kind != SymbolKind::kInput) {
      return Status::NotFound("page " + page.name +
                              ": undeclared input relation " + in);
    }
  }
  for (const std::string& c : page.input_constants) {
    if (!vocab.IsInputConstant(c)) {
      return Status::NotFound("page " + page.name +
                              ": undeclared input constant " + c);
    }
  }
  for (const std::string& a : page.actions) {
    const RelationSymbol* sym = vocab.FindRelation(a);
    if (sym == nullptr || sym->kind != SymbolKind::kAction) {
      return Status::NotFound("page " + page.name +
                              ": undeclared action relation " + a);
    }
  }
  for (const std::string& t : page.targets) {
    if (service.FindPage(t) == nullptr) {
      return Status::NotFound("page " + page.name + ": target page " + t +
                              " is not declared (the error page may not be "
                              "an explicit target)");
    }
  }

  // Input rules: one per positive-arity input relation of the page.
  std::map<std::string, int> options_count;
  for (const InputRule& rule : page.input_rules) {
    const std::string ctx = Where(page, rule.ToString());
    const RelationSymbol* sym = vocab.FindRelation(rule.input);
    if (sym == nullptr || sym->kind != SymbolKind::kInput) {
      return Status::NotFound(ctx + ": not an input relation");
    }
    if (sym->arity == 0) {
      return Status::InvalidArgument(
          ctx + ": propositional inputs take no options rule");
    }
    if (static_cast<int>(rule.head_vars.size()) != sym->arity) {
      return Status::InvalidArgument(ctx + ": head arity mismatch");
    }
    ++options_count[rule.input];
    WSV_RETURN_IF_ERROR(CheckHead(rule.head_vars, rule.body, ctx));
    WSV_RETURN_IF_ERROR(CheckBodyVocabulary(rule.body, page, vocab,
                                            /*allow_current_input=*/false,
                                            ctx));
  }
  for (const std::string& in : page.inputs) {
    const RelationSymbol* sym = vocab.FindRelation(in);
    if (sym->arity > 0 && options_count[in] != 1) {
      return Status::InvalidArgument(
          "page " + page.name + ": input relation " + in + " needs exactly "
          "one options rule, found " + std::to_string(options_count[in]));
    }
  }

  // State rules: at most one insertion and one deletion per relation.
  std::map<std::pair<std::string, bool>, int> state_count;
  for (const StateRule& rule : page.state_rules) {
    const std::string ctx = Where(page, rule.ToString());
    const RelationSymbol* sym = vocab.FindRelation(rule.state);
    if (sym == nullptr || sym->kind != SymbolKind::kState) {
      return Status::NotFound(ctx + ": not a state relation");
    }
    if (static_cast<int>(rule.head_vars.size()) != sym->arity) {
      return Status::InvalidArgument(ctx + ": head arity mismatch");
    }
    if (++state_count[{rule.state, rule.insert}] > 1) {
      return Status::InvalidArgument(ctx + ": duplicate state rule");
    }
    WSV_RETURN_IF_ERROR(CheckHead(rule.head_vars, rule.body, ctx));
    WSV_RETURN_IF_ERROR(CheckBodyVocabulary(rule.body, page, vocab,
                                            /*allow_current_input=*/true,
                                            ctx));
  }

  // Action rules: one per action relation.
  std::map<std::string, int> action_count;
  for (const ActionRule& rule : page.action_rules) {
    const std::string ctx = Where(page, rule.ToString());
    const RelationSymbol* sym = vocab.FindRelation(rule.action);
    if (sym == nullptr || sym->kind != SymbolKind::kAction) {
      return Status::NotFound(ctx + ": not an action relation");
    }
    if (static_cast<int>(rule.head_vars.size()) != sym->arity) {
      return Status::InvalidArgument(ctx + ": head arity mismatch");
    }
    if (++action_count[rule.action] > 1) {
      return Status::InvalidArgument(ctx + ": duplicate action rule");
    }
    WSV_RETURN_IF_ERROR(CheckHead(rule.head_vars, rule.body, ctx));
    WSV_RETURN_IF_ERROR(CheckBodyVocabulary(rule.body, page, vocab,
                                            /*allow_current_input=*/true,
                                            ctx));
  }

  // Target rules: sentences, one per target page.
  std::map<std::string, int> target_count;
  for (const TargetRule& rule : page.target_rules) {
    const std::string ctx = Where(page, rule.ToString());
    if (service.FindPage(rule.target) == nullptr) {
      return Status::NotFound(ctx + ": unknown target page");
    }
    if (++target_count[rule.target] > 1) {
      return Status::InvalidArgument(ctx + ": duplicate target rule");
    }
    if (!rule.body->FreeVariables().empty()) {
      return Status::InvalidArgument(ctx +
                                     ": target rule body must be a sentence");
    }
    WSV_RETURN_IF_ERROR(CheckBodyVocabulary(rule.body, page, vocab,
                                            /*allow_current_input=*/true,
                                            ctx));
  }
  return Status::OK();
}

}  // namespace

Status ValidateService(const WebService& service) {
  if (service.home_page().empty()) {
    return Status::InvalidArgument("no home page declared");
  }
  if (service.FindPage(service.home_page()) == nullptr) {
    return Status::NotFound("home page " + service.home_page() +
                            " is not declared");
  }
  if (service.error_page().empty()) {
    return Status::InvalidArgument("no error page declared");
  }
  if (service.FindPage(service.error_page()) != nullptr) {
    return Status::InvalidArgument(
        "error page " + service.error_page() +
        " must not be a member of the page set (Definition 2.1)");
  }
  if (service.pages().empty()) {
    return Status::InvalidArgument("service declares no pages");
  }
  for (const PageSchema& page : service.pages()) {
    WSV_RETURN_IF_ERROR(ValidatePage(page, service));
  }
  return Status::OK();
}

}  // namespace wsv
