#include "ws/builder.h"

#include <algorithm>
#include <set>

#include "fo/lexer.h"
#include "fo/parser.h"
#include "ws/validate.h"

namespace wsv {

PageSchema& PageBuilder::page() { return parent_->staged_pages_[page_index_]; }

PageBuilder& PageBuilder::UseInput(const std::string& name) {
  const Vocabulary& vocab = parent_->service_.vocab();
  if (vocab.IsInputConstant(name)) {
    if (!page().HasInputConstant(name)) {
      page().input_constants.push_back(name);
    }
    return *this;
  }
  const RelationSymbol* sym = vocab.FindRelation(name);
  if (sym == nullptr || sym->kind != SymbolKind::kInput) {
    parent_->Record(Status::NotFound("page " + page().name +
                                     ": unknown input: " + name));
    return *this;
  }
  if (!page().HasInputRelation(name)) page().inputs.push_back(name);
  return *this;
}

PageBuilder& PageBuilder::UseAction(const std::string& name) {
  const RelationSymbol* sym = parent_->service_.vocab().FindRelation(name);
  if (sym == nullptr || sym->kind != SymbolKind::kAction) {
    parent_->Record(Status::NotFound("page " + page().name +
                                     ": unknown action: " + name));
    return *this;
  }
  if (std::find(page().actions.begin(), page().actions.end(), name) ==
      page().actions.end()) {
    page().actions.push_back(name);
  }
  return *this;
}

PageBuilder& PageBuilder::Options(const std::string& head,
                                  const std::string& body) {
  InputRule rule;
  Status st = parent_->ParseRuleHead(head, &rule.input, &rule.head_vars,
                                     body, &rule.body);
  if (!st.ok()) {
    parent_->Record(st);
    return *this;
  }
  UseInput(rule.input);
  page().input_rules.push_back(std::move(rule));
  return *this;
}

PageBuilder& PageBuilder::Insert(const std::string& head,
                                 const std::string& body) {
  StateRule rule;
  rule.insert = true;
  Status st = parent_->ParseRuleHead(head, &rule.state, &rule.head_vars,
                                     body, &rule.body);
  if (!st.ok()) {
    parent_->Record(st);
    return *this;
  }
  page().state_rules.push_back(std::move(rule));
  return *this;
}

PageBuilder& PageBuilder::Delete(const std::string& head,
                                 const std::string& body) {
  StateRule rule;
  rule.insert = false;
  Status st = parent_->ParseRuleHead(head, &rule.state, &rule.head_vars,
                                     body, &rule.body);
  if (!st.ok()) {
    parent_->Record(st);
    return *this;
  }
  page().state_rules.push_back(std::move(rule));
  return *this;
}

PageBuilder& PageBuilder::Act(const std::string& head,
                              const std::string& body) {
  ActionRule rule;
  Status st = parent_->ParseRuleHead(head, &rule.action, &rule.head_vars,
                                     body, &rule.body);
  if (!st.ok()) {
    parent_->Record(st);
    return *this;
  }
  UseAction(rule.action);
  page().action_rules.push_back(std::move(rule));
  return *this;
}

PageBuilder& PageBuilder::AddInputRule(InputRule rule) {
  UseInput(rule.input);
  page().input_rules.push_back(std::move(rule));
  return *this;
}

PageBuilder& PageBuilder::AddStateRule(StateRule rule) {
  page().state_rules.push_back(std::move(rule));
  return *this;
}

PageBuilder& PageBuilder::AddActionRule(ActionRule rule) {
  UseAction(rule.action);
  page().action_rules.push_back(std::move(rule));
  return *this;
}

PageBuilder& PageBuilder::AddTargetRule(TargetRule rule) {
  if (std::find(page().targets.begin(), page().targets.end(), rule.target) ==
      page().targets.end()) {
    page().targets.push_back(rule.target);
  }
  page().target_rules.push_back(std::move(rule));
  return *this;
}

PageBuilder& PageBuilder::Target(const std::string& target_page,
                                 const std::string& body) {
  StatusOr<FormulaPtr> parsed =
      ParseFormula(body, &parent_->service_.vocab());
  if (!parsed.ok()) {
    parent_->Record(Status::ParseError("page " + page().name + ", target " +
                                       target_page + ": " +
                                       parsed.status().message()));
    return *this;
  }
  if (std::find(page().targets.begin(), page().targets.end(), target_page) ==
      page().targets.end()) {
    page().targets.push_back(target_page);
  }
  page().target_rules.push_back(TargetRule{target_page, *parsed, Span{}});
  return *this;
}

ServiceBuilder::ServiceBuilder(std::string service_name) {
  service_.set_name(std::move(service_name));
}

void ServiceBuilder::Record(const Status& status) {
  if (first_error_.ok() && !status.ok()) first_error_ = status;
}

ServiceBuilder& ServiceBuilder::Database(const std::string& name, int arity,
                                         Span span) {
  Record(service_.mutable_vocab().AddRelation(name, arity,
                                              SymbolKind::kDatabase, span));
  return *this;
}

ServiceBuilder& ServiceBuilder::State(const std::string& name, int arity,
                                      Span span) {
  Record(service_.mutable_vocab().AddRelation(name, arity,
                                              SymbolKind::kState, span));
  return *this;
}

ServiceBuilder& ServiceBuilder::Input(const std::string& name, int arity,
                                      Span span) {
  Record(service_.mutable_vocab().AddRelation(name, arity,
                                              SymbolKind::kInput, span));
  return *this;
}

ServiceBuilder& ServiceBuilder::Action(const std::string& name, int arity,
                                       Span span) {
  Record(service_.mutable_vocab().AddRelation(name, arity,
                                              SymbolKind::kAction, span));
  return *this;
}

ServiceBuilder& ServiceBuilder::InputConstant(const std::string& name,
                                              Span span) {
  Record(service_.mutable_vocab().AddConstant(name,
                                              /*is_input_constant=*/true,
                                              span));
  return *this;
}

ServiceBuilder& ServiceBuilder::Constant(const std::string& name, Span span) {
  Record(service_.mutable_vocab().AddConstant(name,
                                              /*is_input_constant=*/false,
                                              span));
  return *this;
}

PageBuilder ServiceBuilder::Page(const std::string& name, Span span) {
  PageSchema page;
  page.name = name;
  page.span = span;
  staged_pages_.push_back(std::move(page));
  return PageBuilder(this, staged_pages_.size() - 1);
}

ServiceBuilder& ServiceBuilder::Home(const std::string& name, Span span) {
  service_.set_home_page(name, span);
  return *this;
}

ServiceBuilder& ServiceBuilder::Error(const std::string& name, Span span) {
  service_.set_error_page(name, span);
  return *this;
}

Status ServiceBuilder::ParseRuleHead(const std::string& head,
                                     std::string* relation,
                                     std::vector<std::string>* head_vars,
                                     const std::string& body_text,
                                     FormulaPtr* body) {
  WSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(head));
  TokenStream ts(std::move(tokens));
  WSV_ASSIGN_OR_RETURN(*relation, ts.ExpectIdentText("a relation name"));
  std::vector<Term> head_terms;
  if (ts.TryConsume(TokenKind::kLParen)) {
    if (!ts.TryConsume(TokenKind::kRParen)) {
      do {
        WSV_ASSIGN_OR_RETURN(Term t,
                             ParseTermFrom(ts, &service_.vocab()));
        head_terms.push_back(std::move(t));
      } while (ts.TryConsume(TokenKind::kComma));
      WSV_RETURN_IF_ERROR(ts.Expect(TokenKind::kRParen, "')'"));
    }
  }
  if (!ts.AtEnd()) return ts.ErrorHere("trailing input after rule head");

  WSV_ASSIGN_OR_RETURN(FormulaPtr parsed_body,
                       ParseFormula(body_text, &service_.vocab()));
  WSV_RETURN_IF_ERROR(DesugarHeadTerms(head_terms, &parsed_body, head_vars));
  *body = std::move(parsed_body);
  return Status::OK();
}

Status DesugarHeadTerms(const std::vector<Term>& head_terms,
                        FormulaPtr* body,
                        std::vector<std::string>* head_vars) {
  std::vector<FormulaPtr> extra;
  std::set<std::string> seen;
  head_vars->clear();
  int fresh = 0;
  for (const Term& t : head_terms) {
    if (t.is_variable() && seen.insert(t.name()).second) {
      head_vars->push_back(t.name());
      continue;
    }
    std::string v;
    do {
      v = "_h" + std::to_string(fresh++);
    } while (seen.count(v) > 0);
    seen.insert(v);
    head_vars->push_back(v);
    extra.push_back(Formula::Equals(Term::Variable(v), t));
  }
  if (!extra.empty()) {
    extra.insert(extra.begin(), *body);
    *body = Formula::And(std::move(extra));
  }
  return Status::OK();
}

StatusOr<WebService> ServiceBuilder::BuildWithoutValidation() {
  if (!first_error_.ok()) return first_error_;
  for (PageSchema& page : staged_pages_) {
    WSV_RETURN_IF_ERROR(service_.AddPage(std::move(page)));
  }
  staged_pages_.clear();
  // Register page names (and the error page) as propositional symbols so
  // temporal formulas can reference them.
  for (const PageSchema& page : service_.pages()) {
    WSV_RETURN_IF_ERROR(service_.mutable_vocab().AddRelation(
        page.name, 0, SymbolKind::kPage, page.span));
  }
  if (!service_.error_page().empty()) {
    WSV_RETURN_IF_ERROR(service_.mutable_vocab().AddRelation(
        service_.error_page(), 0, SymbolKind::kPage,
        service_.error_span()));
  }
  return std::move(service_);
}

StatusOr<WebService> ServiceBuilder::Build() {
  WSV_ASSIGN_OR_RETURN(WebService service, BuildWithoutValidation());
  WSV_RETURN_IF_ERROR(ValidateService(service));
  return service;
}

}  // namespace wsv
