// Fluent programmatic construction of Web services.
//
// ServiceBuilder is the C++ counterpart of the .wsv surface syntax: the
// reduction generators (src/reductions/) and tests assemble services with
// it. Declare the four schemas first, then pages; rule bodies are given
// as FO formula text and parsed against the vocabulary immediately.
//
//   ServiceBuilder b("Demo");
//   b.Database("user", 2).State("err", 1).Input("button", 1)
//    .InputConstant("name").InputConstant("password");
//   b.Page("HP")
//       .UseInput("button").UseInput("name").UseInput("password")
//       .Options("button(x)", "x = \"login\" | x = \"register\"")
//       .Insert("err(\"failed\")", "!user(name, password) & button(\"login\")")
//       .Target("CP", "user(name, password) & button(\"login\")");
//   b.Page("CP");
//   b.Home("HP").Error("MP");
//   StatusOr<WebService> ws = b.Build();
//
// Errors are accumulated: the first failure is reported by Build().

#ifndef WSV_WS_BUILDER_H_
#define WSV_WS_BUILDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ws/service.h"

namespace wsv {

class ServiceBuilder;

/// Builds one page schema; returned by ServiceBuilder::Page. All methods
/// return *this for chaining and record the first error in the parent.
class PageBuilder {
 public:
  /// Declares that the page offers an input relation or requests an input
  /// constant (auto-detected from the vocabulary).
  PageBuilder& UseInput(const std::string& name);
  /// Declares that the page may produce an action relation.
  PageBuilder& UseAction(const std::string& name);

  /// Adds an input (options) rule; `head` is atom syntax, e.g. "button(x)".
  /// Also implies UseInput(relation).
  PageBuilder& Options(const std::string& head, const std::string& body);
  /// Adds a state insertion rule +head :- body. Constants in the head are
  /// desugared into equality conjuncts.
  PageBuilder& Insert(const std::string& head, const std::string& body);
  /// Adds a state deletion rule -head :- body.
  PageBuilder& Delete(const std::string& head, const std::string& body);
  /// Adds an action rule head :- body; also implies UseAction(relation).
  PageBuilder& Act(const std::string& head, const std::string& body);
  /// Adds a target rule `page :- body` (and adds `page` to T_W).
  PageBuilder& Target(const std::string& page, const std::string& body);

  /// Lower-level variants taking already-constructed rules (used by the
  /// .wsv parser). Usage lists (I_W, A_W, T_W) are updated accordingly.
  PageBuilder& AddInputRule(InputRule rule);
  PageBuilder& AddStateRule(StateRule rule);
  PageBuilder& AddActionRule(ActionRule rule);
  PageBuilder& AddTargetRule(TargetRule rule);

 private:
  friend class ServiceBuilder;
  PageBuilder(ServiceBuilder* parent, size_t page_index)
      : parent_(parent), page_index_(page_index) {}

  PageSchema& page();

  ServiceBuilder* parent_;
  size_t page_index_;
};

/// Desugars a rule head's term list: non-variable terms and repeated
/// variables become fresh head variables constrained by equality
/// conjuncts appended to `*body`. On return `*head_vars` lists distinct
/// variables matching the head arity.
Status DesugarHeadTerms(const std::vector<Term>& head_terms,
                        FormulaPtr* body,
                        std::vector<std::string>* head_vars);

class ServiceBuilder {
 public:
  explicit ServiceBuilder(std::string service_name);

  /// Declaration methods take an optional source span recorded on the
  /// vocabulary symbol for diagnostics (the .wsv parser supplies it).
  ServiceBuilder& Database(const std::string& name, int arity,
                           Span span = {});
  ServiceBuilder& State(const std::string& name, int arity, Span span = {});
  ServiceBuilder& Input(const std::string& name, int arity, Span span = {});
  ServiceBuilder& Action(const std::string& name, int arity, Span span = {});
  /// Declares a member of const(I): its value is supplied by the user.
  ServiceBuilder& InputConstant(const std::string& name, Span span = {});
  /// Declares a non-input constant (interpreted by the database instance).
  ServiceBuilder& Constant(const std::string& name, Span span = {});

  /// Starts a new page. Pages must come after schema declarations because
  /// rule bodies parse against the vocabulary.
  PageBuilder Page(const std::string& name, Span span = {});

  ServiceBuilder& Home(const std::string& name, Span span = {});
  ServiceBuilder& Error(const std::string& name, Span span = {});

  /// The vocabulary accumulated so far (used by the .wsv parser to parse
  /// rule formulas against the declarations).
  const Vocabulary& vocab() const { return service_.vocab(); }

  /// Finalizes: registers page propositions, validates well-formedness
  /// (ws/validate.h), and returns the service or the first recorded error.
  StatusOr<WebService> Build();

  /// Like Build() but skips ValidateService so static analysis can lint
  /// structurally complete yet ill-formed services and report *every*
  /// violation instead of the first.
  StatusOr<WebService> BuildWithoutValidation();

 private:
  friend class PageBuilder;

  void Record(const Status& status);
  /// Parses "R(t1, ..., tk)" or bare "R"; desugars non-variable head terms
  /// into equality conjuncts appended to `body`.
  Status ParseRuleHead(const std::string& head, std::string* relation,
                       std::vector<std::string>* head_vars,
                       const std::string& body_text, FormulaPtr* body);

  WebService service_;
  std::vector<PageSchema> staged_pages_;
  Status first_error_;
};

}  // namespace wsv

#endif  // WSV_WS_BUILDER_H_
