// Classifiers for the decidable service classes of Sections 3 and 4.
//
//   input-bounded        (Theorem 3.5): state/action/target rules use only
//                        input-bounded quantification; input rules are
//                        existential with ground state atoms.
//   propositional        (Theorem 4.4): input-bounded, all state and
//                        action relations are propositions, and no rule
//                        uses Prev_I atoms. Inputs may be parameterized.
//   fully propositional  (Theorem 4.6): propositional, and additionally
//                        inputs are propositional and no rule mentions the
//                        database; the database plays no role.
//
// Each checker returns OK or a diagnostic pinpointing the first violation,
// so a caller can report *why* a service falls outside a class.

#ifndef WSV_WS_CLASSIFY_H_
#define WSV_WS_CLASSIFY_H_

#include <string>

#include "common/status.h"
#include "ws/service.h"

namespace wsv {

Status CheckInputBoundedService(const WebService& service);
Status CheckPropositionalService(const WebService& service);
Status CheckFullyPropositionalService(const WebService& service);

/// Summary of class membership with diagnostics for the classes a
/// service misses.
struct ServiceClassification {
  bool input_bounded = false;
  std::string input_bounded_diag;
  bool propositional = false;
  std::string propositional_diag;
  bool fully_propositional = false;
  std::string fully_propositional_diag;

  std::string ToString() const;
};

ServiceClassification ClassifyService(const WebService& service);

}  // namespace wsv

#endif  // WSV_WS_CLASSIFY_H_
