// Classifiers for the decidable service classes of Sections 3 and 4.
//
//   input-bounded        (Theorem 3.5): state/action/target rules use only
//                        input-bounded quantification; input rules are
//                        existential with ground state atoms.
//   propositional        (Theorem 4.4): input-bounded, all state and
//                        action relations are propositions, and no rule
//                        uses Prev_I atoms. Inputs may be parameterized.
//   fully propositional  (Theorem 4.6): propositional, and additionally
//                        inputs are propositional and no rule mentions the
//                        database; the database plays no role.
//
// The Status checkers return OK or the *first* violation. The Collect*
// functions report every violation into a DiagnosticSink with rule IDs
// anchored to the theorems (WSV-IB-001/002/003, WSV-CLS-*), so
// ClassifyService can explain all the reasons a service misses a class.

#ifndef WSV_WS_CLASSIFY_H_
#define WSV_WS_CLASSIFY_H_

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "ws/service.h"

namespace wsv {

Status CheckInputBoundedService(const WebService& service);
Status CheckPropositionalService(const WebService& service);
Status CheckFullyPropositionalService(const WebService& service);

/// Every way the service escapes the input-bounded fragment:
///   WSV-IB-001  unguarded quantification        (Theorem 3.5 boundary)
///   WSV-IB-002  non-ground state atom in an options rule  (Theorem 3.7)
///   WSV-IB-003  quantified variable in a state/action atom (Theorem 3.8)
void CollectInputBoundedDiagnostics(const WebService& service,
                                    analysis::DiagnosticSink* sink);

/// Requirements propositional services add on top of input-boundedness
/// (WSV-CLS-001 non-propositional state/action, WSV-CLS-002 Prev_I atom).
void CollectPropositionalDiagnostics(const WebService& service,
                                     analysis::DiagnosticSink* sink);

/// Requirements fully propositional services add on top of propositional
/// ones (WSV-CLS-003 non-propositional input, WSV-CLS-004 database use).
void CollectFullyPropositionalDiagnostics(const WebService& service,
                                          analysis::DiagnosticSink* sink);

/// Summary of class membership. For each class the service misses,
/// `*_diags` lists *every* reason; `*_diag` keeps the historical
/// first-violation string.
struct ServiceClassification {
  bool input_bounded = false;
  std::string input_bounded_diag;
  std::vector<analysis::Diagnostic> input_bounded_diags;
  bool propositional = false;
  std::string propositional_diag;
  /// Reasons beyond the input-bounded ones (which also apply).
  std::vector<analysis::Diagnostic> propositional_diags;
  bool fully_propositional = false;
  std::string fully_propositional_diag;
  /// Reasons beyond the propositional ones (which also apply).
  std::vector<analysis::Diagnostic> fully_propositional_diags;

  std::string ToString() const;
};

ServiceClassification ClassifyService(const WebService& service);

}  // namespace wsv

#endif  // WSV_WS_CLASSIFY_H_
