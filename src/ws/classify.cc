#include "ws/classify.h"

#include "fo/input_bounded.h"

namespace wsv {

namespace {

// Applies `check` to every rule body in the service, attributing failures.
template <typename Check>
Status ForEachRuleBody(const WebService& service, const Check& check) {
  for (const PageSchema& page : service.pages()) {
    for (const InputRule& r : page.input_rules) {
      WSV_RETURN_IF_ERROR(check(page, r.body, /*is_input_rule=*/true,
                                r.ToString()));
    }
    for (const StateRule& r : page.state_rules) {
      WSV_RETURN_IF_ERROR(check(page, r.body, false, r.ToString()));
    }
    for (const ActionRule& r : page.action_rules) {
      WSV_RETURN_IF_ERROR(check(page, r.body, false, r.ToString()));
    }
    for (const TargetRule& r : page.target_rules) {
      WSV_RETURN_IF_ERROR(check(page, r.body, false, r.ToString()));
    }
  }
  return Status::OK();
}

Status Attribute(const PageSchema& page, const std::string& rule,
                 const Status& inner) {
  if (inner.ok()) return inner;
  return Status::NotInputBounded("page " + page.name + ", " + rule + ": " +
                                 inner.message());
}

}  // namespace

Status CheckInputBoundedService(const WebService& service) {
  return ForEachRuleBody(
      service,
      [&](const PageSchema& page, const FormulaPtr& body, bool is_input_rule,
          const std::string& rule) -> Status {
        Status st = is_input_rule
                        ? CheckExistentialInputRule(*body, service.vocab())
                        : CheckInputBounded(*body, service.vocab());
        return Attribute(page, rule, st);
      });
}

Status CheckPropositionalService(const WebService& service) {
  WSV_RETURN_IF_ERROR(CheckInputBoundedService(service));
  for (const RelationSymbol& sym : service.vocab().relations()) {
    if ((sym.kind == SymbolKind::kState || sym.kind == SymbolKind::kAction) &&
        sym.arity > 0) {
      return Status::Unsupported(
          std::string(SymbolKindToString(sym.kind)) + " relation " +
          sym.name + " has arity " + std::to_string(sym.arity) +
          "; propositional services require arity 0");
    }
  }
  return ForEachRuleBody(
      service,
      [&](const PageSchema& page, const FormulaPtr& body, bool,
          const std::string& rule) -> Status {
        for (const Atom& atom : body->Atoms()) {
          if (atom.prev) {
            return Status::Unsupported(
                "page " + page.name + ", " + rule + ": Prev_I atom " +
                atom.ToString() + " not permitted in propositional services");
          }
        }
        return Status::OK();
      });
}

Status CheckFullyPropositionalService(const WebService& service) {
  WSV_RETURN_IF_ERROR(CheckPropositionalService(service));
  for (const RelationSymbol& sym : service.vocab().relations()) {
    if (sym.kind == SymbolKind::kInput && sym.arity > 0) {
      return Status::Unsupported("input relation " + sym.name +
                                 " has arity " + std::to_string(sym.arity) +
                                 "; fully propositional services require "
                                 "propositional inputs");
    }
  }
  if (!service.vocab().InputConstants().empty()) {
    return Status::Unsupported(
        "fully propositional services take no input constants");
  }
  return ForEachRuleBody(
      service,
      [&](const PageSchema& page, const FormulaPtr& body, bool,
          const std::string& rule) -> Status {
        for (const Atom& atom : body->Atoms()) {
          const RelationSymbol* sym =
              service.vocab().FindRelation(atom.relation);
          if (sym != nullptr && sym->kind == SymbolKind::kDatabase) {
            return Status::Unsupported(
                "page " + page.name + ", " + rule + ": database atom " +
                atom.ToString() +
                " not permitted in fully propositional services");
          }
        }
        return Status::OK();
      });
}

std::string ServiceClassification::ToString() const {
  std::string out;
  auto row = [&](const char* label, bool member, const std::string& diag) {
    out += std::string(label) + ": " + (member ? "yes" : "no");
    if (!member && !diag.empty()) out += " (" + diag + ")";
    out += "\n";
  };
  row("input-bounded", input_bounded, input_bounded_diag);
  row("propositional", propositional, propositional_diag);
  row("fully propositional", fully_propositional, fully_propositional_diag);
  return out;
}

ServiceClassification ClassifyService(const WebService& service) {
  ServiceClassification out;
  Status st = CheckInputBoundedService(service);
  out.input_bounded = st.ok();
  out.input_bounded_diag = st.message();
  st = CheckPropositionalService(service);
  out.propositional = st.ok();
  out.propositional_diag = st.message();
  st = CheckFullyPropositionalService(service);
  out.fully_propositional = st.ok();
  out.fully_propositional_diag = st.message();
  return out;
}

}  // namespace wsv
