#include "ws/classify.h"

#include "fo/input_bounded.h"

namespace wsv {

namespace {

using analysis::Diagnostic;
using analysis::DiagnosticSink;
using analysis::FindRule;
using analysis::Severity;

// Applies `check` to every rule body in the service, attributing failures.
template <typename Check>
Status ForEachRuleBody(const WebService& service, const Check& check) {
  for (const PageSchema& page : service.pages()) {
    for (const InputRule& r : page.input_rules) {
      WSV_RETURN_IF_ERROR(check(page, r.body, /*is_input_rule=*/true,
                                r.ToString(), r.span));
    }
    for (const StateRule& r : page.state_rules) {
      WSV_RETURN_IF_ERROR(check(page, r.body, false, r.ToString(), r.span));
    }
    for (const ActionRule& r : page.action_rules) {
      WSV_RETURN_IF_ERROR(check(page, r.body, false, r.ToString(), r.span));
    }
    for (const TargetRule& r : page.target_rules) {
      WSV_RETURN_IF_ERROR(check(page, r.body, false, r.ToString(), r.span));
    }
  }
  return Status::OK();
}

Status Attribute(const PageSchema& page, const std::string& rule,
                 const Status& inner) {
  if (inner.ok()) return inner;
  return Status::NotInputBounded("page " + page.name + ", " + rule + ": " +
                                 inner.message());
}

// Maps an input-boundedness violation onto its lint rule. The kinds
// correspond to the relaxations shown undecidable in Section 3.
const char* RuleIdFor(InputBoundedViolation::Kind kind) {
  switch (kind) {
    case InputBoundedViolation::Kind::kNonGroundStateAtom:
      return "WSV-IB-002";  // Theorem 3.7
    case InputBoundedViolation::Kind::kQuantifiedVarInStateAtom:
      return "WSV-IB-003";  // Theorem 3.8
    case InputBoundedViolation::Kind::kUnguardedQuantifier:
    case InputBoundedViolation::Kind::kUniversalInInputRule:
    case InputBoundedViolation::Kind::kExistentialUnderNegation:
      return "WSV-IB-001";  // Theorem 3.5 boundary
  }
  return "WSV-IB-001";
}

void ReportRule(DiagnosticSink* sink, const char* rule_id,
                const PageSchema& page, const std::string& rule,
                const std::string& message, Span span, std::string hint = "") {
  const analysis::RuleInfo* info = FindRule(rule_id);
  sink->Report(rule_id, info != nullptr ? info->severity : Severity::kNote,
               span, "page " + page.name + ", " + rule + ": " + message,
               std::move(hint),
               info != nullptr ? info->anchor : "", page.name);
}

}  // namespace

Status CheckInputBoundedService(const WebService& service) {
  return ForEachRuleBody(
      service,
      [&](const PageSchema& page, const FormulaPtr& body, bool is_input_rule,
          const std::string& rule, Span) -> Status {
        Status st = is_input_rule
                        ? CheckExistentialInputRule(*body, service.vocab())
                        : CheckInputBounded(*body, service.vocab());
        return Attribute(page, rule, st);
      });
}

Status CheckPropositionalService(const WebService& service) {
  WSV_RETURN_IF_ERROR(CheckInputBoundedService(service));
  for (const RelationSymbol& sym : service.vocab().relations()) {
    if ((sym.kind == SymbolKind::kState || sym.kind == SymbolKind::kAction) &&
        sym.arity > 0) {
      return Status::Unsupported(
          std::string(SymbolKindToString(sym.kind)) + " relation " +
          sym.name + " has arity " + std::to_string(sym.arity) +
          "; propositional services require arity 0");
    }
  }
  return ForEachRuleBody(
      service,
      [&](const PageSchema& page, const FormulaPtr& body, bool,
          const std::string& rule, Span) -> Status {
        for (const Atom& atom : body->Atoms()) {
          if (atom.prev) {
            return Status::Unsupported(
                "page " + page.name + ", " + rule + ": Prev_I atom " +
                atom.ToString() + " not permitted in propositional services");
          }
        }
        return Status::OK();
      });
}

Status CheckFullyPropositionalService(const WebService& service) {
  WSV_RETURN_IF_ERROR(CheckPropositionalService(service));
  for (const RelationSymbol& sym : service.vocab().relations()) {
    if (sym.kind == SymbolKind::kInput && sym.arity > 0) {
      return Status::Unsupported("input relation " + sym.name +
                                 " has arity " + std::to_string(sym.arity) +
                                 "; fully propositional services require "
                                 "propositional inputs");
    }
  }
  if (!service.vocab().InputConstants().empty()) {
    return Status::Unsupported(
        "fully propositional services take no input constants");
  }
  return ForEachRuleBody(
      service,
      [&](const PageSchema& page, const FormulaPtr& body, bool,
          const std::string& rule, Span) -> Status {
        for (const Atom& atom : body->Atoms()) {
          const RelationSymbol* sym =
              service.vocab().FindRelation(atom.relation);
          if (sym != nullptr && sym->kind == SymbolKind::kDatabase) {
            return Status::Unsupported(
                "page " + page.name + ", " + rule + ": database atom " +
                atom.ToString() +
                " not permitted in fully propositional services");
          }
        }
        return Status::OK();
      });
}

void CollectInputBoundedDiagnostics(const WebService& service,
                                    analysis::DiagnosticSink* sink) {
  ForEachRuleBody(
      service,
      [&](const PageSchema& page, const FormulaPtr& body, bool is_input_rule,
          const std::string& rule, Span rule_span) -> Status {
        std::vector<InputBoundedViolation> violations;
        if (is_input_rule) {
          CollectExistentialInputRuleViolations(*body, service.vocab(),
                                                &violations);
        } else {
          CollectInputBoundedViolations(*body, service.vocab(), &violations);
        }
        for (const InputBoundedViolation& v : violations) {
          ReportRule(sink, RuleIdFor(v.kind), page, rule, v.message,
                     v.span.IsValid() ? v.span : rule_span);
        }
        return Status::OK();
      });
}

void CollectPropositionalDiagnostics(const WebService& service,
                                     analysis::DiagnosticSink* sink) {
  for (const RelationSymbol& sym : service.vocab().relations()) {
    if ((sym.kind == SymbolKind::kState || sym.kind == SymbolKind::kAction) &&
        sym.arity > 0) {
      const analysis::RuleInfo* info = FindRule("WSV-CLS-001");
      sink->Report("WSV-CLS-001", info->severity, sym.span,
                   std::string(SymbolKindToString(sym.kind)) + " relation " +
                       sym.name + " has arity " + std::to_string(sym.arity) +
                       "; propositional services require arity 0",
                   "", info->anchor);
    }
  }
  ForEachRuleBody(
      service,
      [&](const PageSchema& page, const FormulaPtr& body, bool,
          const std::string& rule, Span rule_span) -> Status {
        for (const Atom& atom : body->Atoms()) {
          if (atom.prev) {
            ReportRule(sink, "WSV-CLS-002", page, rule,
                       "Prev_I atom " + atom.ToString() +
                           " not permitted in propositional services",
                       atom.span.IsValid() ? atom.span : rule_span);
          }
        }
        return Status::OK();
      });
}

void CollectFullyPropositionalDiagnostics(const WebService& service,
                                          analysis::DiagnosticSink* sink) {
  for (const RelationSymbol& sym : service.vocab().relations()) {
    if (sym.kind == SymbolKind::kInput && sym.arity > 0) {
      const analysis::RuleInfo* info = FindRule("WSV-CLS-003");
      sink->Report("WSV-CLS-003", info->severity, sym.span,
                   "input relation " + sym.name + " has arity " +
                       std::to_string(sym.arity) +
                       "; fully propositional services require "
                       "propositional inputs",
                   "", info->anchor);
    }
  }
  for (const std::string& c : service.vocab().InputConstants()) {
    const analysis::RuleInfo* info = FindRule("WSV-CLS-003");
    sink->Report("WSV-CLS-003", info->severity,
                 service.vocab().ConstantSpan(c),
                 "input constant " + c +
                     " not permitted: fully propositional services take no "
                     "input constants",
                 "", info->anchor);
  }
  ForEachRuleBody(
      service,
      [&](const PageSchema& page, const FormulaPtr& body, bool,
          const std::string& rule, Span rule_span) -> Status {
        for (const Atom& atom : body->Atoms()) {
          const RelationSymbol* sym =
              service.vocab().FindRelation(atom.relation);
          if (sym != nullptr && sym->kind == SymbolKind::kDatabase) {
            ReportRule(sink, "WSV-CLS-004", page, rule,
                       "database atom " + atom.ToString() +
                           " not permitted in fully propositional services",
                       atom.span.IsValid() ? atom.span : rule_span);
          }
        }
        return Status::OK();
      });
}

std::string ServiceClassification::ToString() const {
  std::string out;
  auto row = [&](const char* label, bool member, const std::string& diag,
                 const std::vector<Diagnostic>& diags) {
    out += std::string(label) + ": " + (member ? "yes" : "no");
    out += "\n";
    if (member) return;
    if (diags.empty()) {
      if (!diag.empty()) out += "  - " + diag + "\n";
      return;
    }
    for (const Diagnostic& d : diags) {
      out += "  - [" + d.rule_id + "] " + d.message;
      if (!d.anchor.empty()) out += " (" + d.anchor + ")";
      out += "\n";
    }
  };
  row("input-bounded", input_bounded, input_bounded_diag,
      input_bounded_diags);
  row("propositional", propositional, propositional_diag,
      propositional_diags);
  row("fully propositional", fully_propositional, fully_propositional_diag,
      fully_propositional_diags);
  return out;
}

ServiceClassification ClassifyService(const WebService& service) {
  ServiceClassification out;
  Status st = CheckInputBoundedService(service);
  out.input_bounded = st.ok();
  out.input_bounded_diag = st.message();
  st = CheckPropositionalService(service);
  out.propositional = st.ok();
  out.propositional_diag = st.message();
  st = CheckFullyPropositionalService(service);
  out.fully_propositional = st.ok();
  out.fully_propositional_diag = st.message();

  DiagnosticSink ib, prop, fully;
  CollectInputBoundedDiagnostics(service, &ib);
  CollectPropositionalDiagnostics(service, &prop);
  CollectFullyPropositionalDiagnostics(service, &fully);
  out.input_bounded_diags = ib.diagnostics();
  // A class inherits the reasons of the classes it contains; keep each
  // vector incremental and let ToString report the increments under the
  // class where they first bite.
  out.propositional_diags = prop.diagnostics();
  out.fully_propositional_diags = fully.diagnostics();
  return out;
}

}  // namespace wsv
