#include "ws/spec_parser.h"

#include <optional>
#include <vector>

#include "fo/lexer.h"
#include "fo/parser.h"
#include "ws/builder.h"

namespace wsv {

namespace {

class SpecParser {
 public:
  explicit SpecParser(TokenStream ts) : ts_(std::move(ts)) {}

  StatusOr<WebService> Parse(bool validate) {
    WSV_RETURN_IF_ERROR(ts_.ExpectIdent("service"));
    WSV_ASSIGN_OR_RETURN(std::string name,
                         ts_.ExpectIdentText("a service name"));
    WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kSemicolon, "';'"));
    builder_.emplace(name);

    while (!ts_.AtEnd()) {
      const Token& t = ts_.Peek();
      if (t.kind != TokenKind::kIdent) {
        return ts_.ErrorHere("expected a declaration");
      }
      if (t.text == "database") {
        WSV_RETURN_IF_ERROR(ParseRelationDecls(SymbolKind::kDatabase));
      } else if (t.text == "state") {
        WSV_RETURN_IF_ERROR(ParseRelationDecls(SymbolKind::kState));
      } else if (t.text == "action") {
        WSV_RETURN_IF_ERROR(ParseRelationDecls(SymbolKind::kAction));
      } else if (t.text == "input") {
        WSV_RETURN_IF_ERROR(ParseInputDecls());
      } else if (t.text == "constant") {
        WSV_RETURN_IF_ERROR(ParseConstantDecls());
      } else if (t.text == "page") {
        WSV_RETURN_IF_ERROR(ParsePage());
      } else if (t.text == "home") {
        ts_.Next();
        const Span span = ts_.Peek().span();
        WSV_ASSIGN_OR_RETURN(std::string page,
                             ts_.ExpectIdentText("a page name"));
        builder_->Home(page, span);
        WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kSemicolon, "';'"));
      } else if (t.text == "error") {
        ts_.Next();
        const Span span = ts_.Peek().span();
        WSV_ASSIGN_OR_RETURN(std::string page,
                             ts_.ExpectIdentText("a page name"));
        builder_->Error(page, span);
        WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kSemicolon, "';'"));
      } else {
        return ts_.ErrorHere("unknown declaration keyword '" + t.text + "'");
      }
    }
    return validate ? builder_->Build() : builder_->BuildWithoutValidation();
  }

 private:
  struct RelDecl {
    std::string name;
    int arity = 0;
    Span span;
  };

  // IDENT ['(' attr (',' attr)* ')'] — arity is the attribute count.
  StatusOr<RelDecl> ParseRelDecl() {
    RelDecl decl;
    decl.span = ts_.Peek().span();
    WSV_ASSIGN_OR_RETURN(decl.name, ts_.ExpectIdentText("a relation name"));
    if (ts_.TryConsume(TokenKind::kLParen)) {
      if (!ts_.TryConsume(TokenKind::kRParen)) {
        do {
          WSV_RETURN_IF_ERROR(
              ts_.ExpectIdentText("an attribute name").status());
          ++decl.arity;
        } while (ts_.TryConsume(TokenKind::kComma));
        WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kRParen, "')'"));
      }
    }
    return decl;
  }

  Status ParseRelationDecls(SymbolKind kind) {
    ts_.Next();  // keyword
    do {
      WSV_ASSIGN_OR_RETURN(RelDecl decl, ParseRelDecl());
      switch (kind) {
        case SymbolKind::kDatabase:
          builder_->Database(decl.name, decl.arity, decl.span);
          break;
        case SymbolKind::kState:
          builder_->State(decl.name, decl.arity, decl.span);
          break;
        case SymbolKind::kAction:
          builder_->Action(decl.name, decl.arity, decl.span);
          break;
        default:
          return Status::Internal("unexpected declaration kind");
      }
    } while (ts_.TryConsume(TokenKind::kComma));
    return ts_.Expect(TokenKind::kSemicolon, "';'");
  }

  // input name const; password const; button(label);
  Status ParseInputDecls() {
    ts_.Next();  // 'input'
    do {
      const Span span = ts_.Peek().span();
      WSV_ASSIGN_OR_RETURN(std::string name,
                           ts_.ExpectIdentText("an input name"));
      if (ts_.TryConsumeIdent("const")) {
        builder_->InputConstant(name, span);
        continue;
      }
      int arity = 0;
      if (ts_.TryConsume(TokenKind::kLParen)) {
        if (!ts_.TryConsume(TokenKind::kRParen)) {
          do {
            WSV_RETURN_IF_ERROR(
                ts_.ExpectIdentText("an attribute name").status());
            ++arity;
          } while (ts_.TryConsume(TokenKind::kComma));
          WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kRParen, "')'"));
        }
      }
      builder_->Input(name, arity, span);
    } while (ts_.TryConsume(TokenKind::kComma));
    return ts_.Expect(TokenKind::kSemicolon, "';'");
  }

  Status ParseConstantDecls() {
    ts_.Next();  // 'constant'
    do {
      const Span span = ts_.Peek().span();
      WSV_ASSIGN_OR_RETURN(std::string name,
                           ts_.ExpectIdentText("a constant name"));
      builder_->Constant(name, span);
    } while (ts_.TryConsume(TokenKind::kComma));
    return ts_.Expect(TokenKind::kSemicolon, "';'");
  }

  // Parses "IDENT ['(' term,... ')']" as a rule head; `*span` reports the
  // location of the head relation token.
  Status ParseHead(std::string* relation, std::vector<Term>* terms,
                   Span* span) {
    *span = ts_.Peek().span();
    WSV_ASSIGN_OR_RETURN(*relation, ts_.ExpectIdentText("a relation name"));
    terms->clear();
    if (ts_.TryConsume(TokenKind::kLParen)) {
      if (!ts_.TryConsume(TokenKind::kRParen)) {
        do {
          WSV_ASSIGN_OR_RETURN(Term t, ParseTermFrom(ts_, vocab()));
          terms->push_back(std::move(t));
        } while (ts_.TryConsume(TokenKind::kComma));
        WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kRParen, "')'"));
      }
    }
    return Status::OK();
  }

  StatusOr<FormulaPtr> ParseRuleBody() {
    WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kColonDash, "':-'"));
    WSV_ASSIGN_OR_RETURN(FormulaPtr body, ParseFormulaFrom(ts_, vocab()));
    WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kSemicolon, "';'"));
    return body;
  }

  Status ParsePage() {
    ts_.Next();  // 'page'
    const Span page_span = ts_.Peek().span();
    WSV_ASSIGN_OR_RETURN(std::string name, ts_.ExpectIdentText("a page name"));
    PageBuilder page = builder_->Page(name, page_span);
    WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kLBrace, "'{'"));
    while (!ts_.TryConsume(TokenKind::kRBrace)) {
      if (ts_.AtEnd()) return ts_.ErrorHere("unterminated page block");
      WSV_ASSIGN_OR_RETURN(std::string keyword,
                           ts_.ExpectIdentText("a page statement"));
      if (keyword == "input") {
        do {
          WSV_ASSIGN_OR_RETURN(std::string in,
                               ts_.ExpectIdentText("an input name"));
          page.UseInput(in);
        } while (ts_.TryConsume(TokenKind::kComma));
        WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kSemicolon, "';'"));
      } else if (keyword == "options") {
        std::string relation;
        std::vector<Term> terms;
        Span head_span;
        WSV_RETURN_IF_ERROR(ParseHead(&relation, &terms, &head_span));
        WSV_ASSIGN_OR_RETURN(FormulaPtr body, ParseRuleBody());
        InputRule rule;
        rule.input = std::move(relation);
        rule.body = std::move(body);
        rule.span = head_span;
        WSV_RETURN_IF_ERROR(
            DesugarHeadTerms(terms, &rule.body, &rule.head_vars));
        page.AddInputRule(std::move(rule));
      } else if (keyword == "state") {
        bool insert;
        if (ts_.TryConsume(TokenKind::kPlus)) {
          insert = true;
        } else if (ts_.TryConsume(TokenKind::kMinus)) {
          insert = false;
        } else {
          return ts_.ErrorHere("expected '+' or '-' after 'state'");
        }
        std::string relation;
        std::vector<Term> terms;
        Span head_span;
        WSV_RETURN_IF_ERROR(ParseHead(&relation, &terms, &head_span));
        WSV_ASSIGN_OR_RETURN(FormulaPtr body, ParseRuleBody());
        StateRule rule;
        rule.state = std::move(relation);
        rule.insert = insert;
        rule.body = std::move(body);
        rule.span = head_span;
        WSV_RETURN_IF_ERROR(
            DesugarHeadTerms(terms, &rule.body, &rule.head_vars));
        page.AddStateRule(std::move(rule));
      } else if (keyword == "action") {
        // Either a usage declaration `action a, b;` or a rule
        // `action A(x) :- phi;`. Disambiguate on what follows the name.
        if (ts_.Peek(1).kind == TokenKind::kLParen ||
            ts_.Peek(1).kind == TokenKind::kColonDash) {
          std::string relation;
          std::vector<Term> terms;
          Span head_span;
          WSV_RETURN_IF_ERROR(ParseHead(&relation, &terms, &head_span));
          WSV_ASSIGN_OR_RETURN(FormulaPtr body, ParseRuleBody());
          ActionRule rule;
          rule.action = std::move(relation);
          rule.body = std::move(body);
          rule.span = head_span;
          WSV_RETURN_IF_ERROR(
              DesugarHeadTerms(terms, &rule.body, &rule.head_vars));
          page.AddActionRule(std::move(rule));
        } else {
          do {
            WSV_ASSIGN_OR_RETURN(std::string a,
                                 ts_.ExpectIdentText("an action name"));
            page.UseAction(a);
          } while (ts_.TryConsume(TokenKind::kComma));
          WSV_RETURN_IF_ERROR(ts_.Expect(TokenKind::kSemicolon, "';'"));
        }
      } else if (keyword == "target") {
        const Span target_span = ts_.Peek().span();
        WSV_ASSIGN_OR_RETURN(std::string target,
                             ts_.ExpectIdentText("a page name"));
        WSV_ASSIGN_OR_RETURN(FormulaPtr body, ParseRuleBody());
        TargetRule rule;
        rule.target = std::move(target);
        rule.body = std::move(body);
        rule.span = target_span;
        page.AddTargetRule(std::move(rule));
      } else {
        return ts_.ErrorHere("unknown page statement '" + keyword + "'");
      }
    }
    return Status::OK();
  }

  const Vocabulary* vocab() { return &builder_->vocab(); }

  TokenStream ts_;
  std::optional<ServiceBuilder> builder_;
};

StatusOr<WebService> ParseSpecImpl(std::string_view text, bool validate) {
  WSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  SpecParser parser{TokenStream(std::move(tokens))};
  return parser.Parse(validate);
}

}  // namespace

StatusOr<WebService> ParseServiceSpec(std::string_view text) {
  return ParseSpecImpl(text, /*validate=*/true);
}

StatusOr<WebService> ParseServiceSpecWithoutValidation(std::string_view text) {
  return ParseSpecImpl(text, /*validate=*/false);
}

}  // namespace wsv
