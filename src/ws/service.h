// Web services and Web page schemas (Definition 2.1).
//
// A Web service W = <D, S, I, A, W, W0, W_err> bundles the four relational
// schemas, a set of Web page schemas, a home page W0, and a distinguished
// error page W_err (not a member of W; runs reaching it loop there
// forever). Page names double as propositional symbols in temporal
// properties.

#ifndef WSV_WS_SERVICE_H_
#define WSV_WS_SERVICE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "ws/rules.h"

namespace wsv {

/// A Web page schema W = <I_W, A_W, T_W, R_W>.
struct PageSchema {
  std::string name;
  /// Location of the page-name token in the .wsv source (invalid for
  /// programmatically built pages).
  Span span;
  /// Input relations of this page (subset of I's relations).
  std::vector<std::string> inputs;
  /// Input constants requested on this page (subset of const(I)).
  std::vector<std::string> input_constants;
  /// Action relations this page may produce (subset of A).
  std::vector<std::string> actions;
  /// Target Web pages T_W.
  std::vector<std::string> targets;

  std::vector<InputRule> input_rules;
  std::vector<StateRule> state_rules;
  std::vector<ActionRule> action_rules;
  std::vector<TargetRule> target_rules;

  bool HasInputRelation(const std::string& name) const;
  bool HasInputConstant(const std::string& name) const;

  std::string ToString() const;
};

/// A complete Web service specification.
class WebService {
 public:
  WebService() = default;

  const Vocabulary& vocab() const { return vocab_; }
  Vocabulary& mutable_vocab() { return vocab_; }

  /// Adds a page schema; fails on duplicate names.
  Status AddPage(PageSchema page);

  const PageSchema* FindPage(const std::string& name) const;
  /// All pages (home and ordinary pages; the error page is implicit), in
  /// declaration order.
  const std::vector<PageSchema>& pages() const { return pages_; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& home_page() const { return home_page_; }
  void set_home_page(std::string name, Span span = {}) {
    home_page_ = std::move(name);
    home_span_ = span;
  }
  const Span& home_span() const { return home_span_; }

  /// The error page W_err. It is not a member of pages(); per the paper
  /// its only rule is W_err :- true (a self-loop with no inputs).
  const std::string& error_page() const { return error_page_; }
  void set_error_page(std::string name, Span span = {}) {
    error_page_ = std::move(name);
    error_span_ = span;
  }
  const Span& error_span() const { return error_span_; }

  std::string ToString() const;

 private:
  std::string name_;
  Vocabulary vocab_;
  std::vector<PageSchema> pages_;
  std::map<std::string, size_t> page_index_;
  std::string home_page_;
  Span home_span_;
  std::string error_page_;
  Span error_span_;
};

}  // namespace wsv

#endif  // WSV_WS_SERVICE_H_
