// Parser for the .wsv Web service specification language.
//
// The surface syntax mirrors Definition 2.1 and the paper's listings:
//
//   service Ecommerce;
//   database user(name, password); catalog(pid, price);
//   state    error(msg); logged_in;
//   input    name const; password const; button(label);
//   action   ship(user, pid);
//   constant i0;                       # non-input constant
//
//   page HP {
//     input name, password;            # request these input constants
//     options button(x) :- x = "login" | x = "register" | x = "clear";
//     state +error("failed login") :- !user(name, password)
//                                     & button("login");
//     target RP :- button("register");
//     target CP :- user(name, password) & button("login")
//                  & name != "Admin";
//   }
//   page RP { ... }
//
//   home HP;
//   error MP;
//
// Attribute names in declarations are documentation; only arity matters.
// Schema declarations must precede the first page (rule bodies parse
// against the vocabulary). Comments run from '#' or '//' to end of line.

#ifndef WSV_WS_SPEC_PARSER_H_
#define WSV_WS_SPEC_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "ws/service.h"

namespace wsv {

/// Parses and validates a complete .wsv specification.
StatusOr<WebService> ParseServiceSpec(std::string_view text);

/// Parses a .wsv specification without running ValidateService. Used by
/// the static analyzer (src/analysis/), which re-runs validation on a
/// DiagnosticSink to report every violation rather than the first.
StatusOr<WebService> ParseServiceSpecWithoutValidation(std::string_view text);

}  // namespace wsv

#endif  // WSV_WS_SPEC_PARSER_H_
