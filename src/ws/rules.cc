#include "ws/rules.h"

#include "common/str_util.h"

namespace wsv {

namespace {

std::string Head(const std::string& name,
                 const std::vector<std::string>& vars) {
  if (vars.empty()) return name;
  return name + "(" + Join(vars, ", ") + ")";
}

}  // namespace

std::string InputRule::ToString() const {
  return "options " + Head(input, head_vars) + " :- " + body->ToString();
}

std::string StateRule::ToString() const {
  return std::string("state ") + (insert ? "+" : "-") +
         Head(state, head_vars) + " :- " + body->ToString();
}

std::string ActionRule::ToString() const {
  return "action " + Head(action, head_vars) + " :- " + body->ToString();
}

std::string TargetRule::ToString() const {
  return "target " + target + " :- " + body->ToString();
}

}  // namespace wsv
