// Static well-formedness validation of a Web service (Definition 2.1).
//
// Checks that the specification is structurally sound before any
// verification or execution: pages and rules reference declared symbols,
// rule bodies stay within their permitted vocabularies (input rules over
// D ∪ S ∪ Prev_I ∪ const(I); state/action/target rules additionally over
// the page's own inputs I_W), head variables are distinct and cover the
// body's free variables, and every positive-arity input relation of a
// page has exactly one options rule.
//
// Two entry points share one implementation: ValidateService returns the
// first violation as a Status (the historical behavior Build() relies
// on), while ValidateServiceDiagnostics reports *every* violation into a
// DiagnosticSink with WSV-VAL-* rule IDs and source spans — the linter
// uses it so one run explains everything that is wrong.

#ifndef WSV_WS_VALIDATE_H_
#define WSV_WS_VALIDATE_H_

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "ws/service.h"

namespace wsv {

/// Validates the whole service; returns the first violation found.
Status ValidateService(const WebService& service);

/// Validates the whole service, reporting every violation.
void ValidateServiceDiagnostics(const WebService& service,
                                analysis::DiagnosticSink* sink);

}  // namespace wsv

#endif  // WSV_WS_VALIDATE_H_
