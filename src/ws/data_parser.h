// Parser for database instance files (.wsd).
//
// The format is a list of facts and constant bindings:
//
//   # the product catalog
//   user(alice, pw).
//   prod_prices(p1, 100).
//   criteria(laptop, ram, "4 gb").
//   const i0 = products.
//
// Bare identifiers, numbers, and quoted strings all denote domain
// elements. When a vocabulary is supplied, relation names and arities
// are checked and constants must be declared non-input constants.

#ifndef WSV_WS_DATA_PARSER_H_
#define WSV_WS_DATA_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "relational/instance.h"
#include "relational/schema.h"

namespace wsv {

/// Parses a database instance. `vocab` may be nullptr (no checking).
StatusOr<Instance> ParseDataFile(std::string_view text,
                                 const Vocabulary* vocab = nullptr);

/// Renders an instance in the .wsd format (round-trips through
/// ParseDataFile).
std::string DataFileToString(const Instance& instance);

}  // namespace wsv

#endif  // WSV_WS_DATA_PARSER_H_
