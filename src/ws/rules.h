// Rules of a Web page schema (Definition 2.1).
//
// Each Web page schema carries four kinds of rules:
//   input rules    Options_I(x)  :- phi(x)    (options offered to the user)
//   state rules    +S(x) :- phi(x)  and  -S(x) :- phi(x)
//                  (insertions / deletions, conflicts get no-op semantics)
//   action rules   A(x)  :- phi(x)
//   target rules   V     :- phi                (next Web page)
//
// Heads list distinct variables; the body's free variables must be among
// them. The .wsv surface syntax also allows constants in heads (e.g.
// error("failed login") :- ...), which the parser desugars into equality
// conjuncts.

#ifndef WSV_WS_RULES_H_
#define WSV_WS_RULES_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "fo/formula.h"

namespace wsv {

/// Options_I(head_vars) :- body. `input` names a relation in I of
/// positive arity. `span` locates the rule head in the .wsv source
/// (invalid for rules assembled programmatically).
struct InputRule {
  std::string input;
  std::vector<std::string> head_vars;
  FormulaPtr body;
  Span span;

  std::string ToString() const;
};

/// +S(head_vars) :- body (insert=true) or -S(head_vars) :- body.
struct StateRule {
  std::string state;
  bool insert = true;
  std::vector<std::string> head_vars;
  FormulaPtr body;
  Span span;

  std::string ToString() const;
};

/// A(head_vars) :- body.
struct ActionRule {
  std::string action;
  std::vector<std::string> head_vars;
  FormulaPtr body;
  Span span;

  std::string ToString() const;
};

/// target :- body; fires a transition to Web page `target`.
struct TargetRule {
  std::string target;
  FormulaPtr body;
  Span span;

  std::string ToString() const;
};

}  // namespace wsv

#endif  // WSV_WS_RULES_H_
