#include "ws/data_parser.h"

#include "common/str_util.h"
#include "fo/lexer.h"

namespace wsv {

namespace {

StatusOr<Value> ParseValue(TokenStream& ts) {
  const Token& t = ts.Peek();
  if (t.kind == TokenKind::kIdent || t.kind == TokenKind::kString ||
      t.kind == TokenKind::kNumber) {
    return Value::Intern(ts.Next().text);
  }
  return ts.ErrorHere("expected a domain value");
}

}  // namespace

StatusOr<Instance> ParseDataFile(std::string_view text,
                                 const Vocabulary* vocab) {
  WSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  Instance out;
  while (!ts.AtEnd()) {
    if (ts.TryConsumeIdent("const")) {
      WSV_ASSIGN_OR_RETURN(std::string name,
                           ts.ExpectIdentText("a constant name"));
      WSV_RETURN_IF_ERROR(ts.Expect(TokenKind::kEquals, "'='"));
      WSV_ASSIGN_OR_RETURN(Value v, ParseValue(ts));
      WSV_RETURN_IF_ERROR(ts.Expect(TokenKind::kDot, "'.'"));
      if (vocab != nullptr) {
        if (!vocab->IsConstant(name)) {
          return Status::NotFound("undeclared constant: " + name);
        }
        if (vocab->IsInputConstant(name)) {
          return Status::InvalidArgument(
              "constant " + name +
              " is an input constant; its value comes from the user, not "
              "the database");
        }
      }
      out.SetConstant(name, v);
      continue;
    }
    WSV_ASSIGN_OR_RETURN(std::string rel,
                         ts.ExpectIdentText("a relation name"));
    Tuple tuple;
    if (ts.TryConsume(TokenKind::kLParen)) {
      if (!ts.TryConsume(TokenKind::kRParen)) {
        do {
          WSV_ASSIGN_OR_RETURN(Value v, ParseValue(ts));
          tuple.push_back(v);
        } while (ts.TryConsume(TokenKind::kComma));
        WSV_RETURN_IF_ERROR(ts.Expect(TokenKind::kRParen, "')'"));
      }
    }
    WSV_RETURN_IF_ERROR(ts.Expect(TokenKind::kDot, "'.'"));
    if (vocab != nullptr) {
      const RelationSymbol* sym = vocab->FindRelation(rel);
      if (sym == nullptr || sym->kind != SymbolKind::kDatabase) {
        return Status::NotFound("not a database relation: " + rel);
      }
      if (sym->arity != static_cast<int>(tuple.size())) {
        return Status::InvalidArgument(
            "arity mismatch for " + rel + ": declared " +
            std::to_string(sym->arity) + ", fact has " +
            std::to_string(tuple.size()));
      }
    }
    WSV_RETURN_IF_ERROR(out.AddFact(rel, tuple));
  }
  return out;
}

std::string DataFileToString(const Instance& instance) {
  std::string out;
  for (const auto& [name, rel] : instance.relations()) {
    for (const Tuple& t : rel.tuples()) {
      out += name;
      if (!t.empty()) {
        out += "(";
        for (size_t i = 0; i < t.size(); ++i) {
          if (i > 0) out += ", ";
          // Quote anything that is not a plain identifier.
          const std::string& n = t[i].name();
          out += IsIdentifier(n) ? n : QuoteString(n);
        }
        out += ")";
      }
      out += ".\n";
    }
  }
  for (const auto& [name, v] : instance.constants()) {
    const std::string& n = v.name();
    out += "const " + name + " = " +
           (IsIdentifier(n) ? n : QuoteString(n)) + ".\n";
  }
  return out;
}

}  // namespace wsv
