#include "obs/watchdog.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsv {
namespace obs {

Watchdog::Watchdog(const WatchdogOptions& options)
    : options_(options), start_ns_(MonotonicNowNs()) {
  last_heartbeat_ns_ = start_ns_;
  thread_ = std::thread([this] { Loop(); });
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    joined_ = true;
  }
  // Final sweep on the caller's thread: a run shorter than the sample
  // interval still gets its stall events, and they land in the event
  // log *before* the caller emits the request's terminal event.
  Sweep(/*allow_heartbeat=*/false);
}

void Watchdog::Loop() {
  const uint64_t interval_ms =
      options_.sample_interval_ms == 0 ? 50 : options_.sample_interval_ms;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    Sweep(/*allow_heartbeat=*/true);
    lock.lock();
  }
}

void Watchdog::Sweep(bool allow_heartbeat) {
  const uint64_t now = MonotonicNowNs();
  const MetricsSnapshot snap = SnapshotMetrics();
  const uint64_t steps = snap.CounterValue("fo/bytecode_steps");
  const uint64_t steps_delta = steps >= last_steps_ ? steps - last_steps_ : 0;
  last_steps_ = steps;
  std::FILE* stream = options_.stream != nullptr ? options_.stream : stderr;

  const std::vector<OpenSpan> spans = SnapshotOpenSpans();
  const std::vector<OpenRequestInfo> requests = OpenRequests();

  if (options_.stall_deadline_ns != UINT64_MAX) {
    EventLog& log = EventLog::Get();
    auto report = [&](const std::string& key, const std::string& phase,
                      RequestId request, const std::string& label,
                      uint64_t open_ns) {
      if (!reported_.insert(key).second) return;
      stall_events_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t age = now > open_ns ? now - open_ns : 0;
      if (log.enabled()) {
        WideEvent ev;
        ev.event = "stall";
        ev.phase = phase;
        ev.request = request;
        ev.label = label;
        ev.duration_ns = age;
        ev.nums.emplace_back("deadline_ns", options_.stall_deadline_ns);
        ev.nums.emplace_back("vm_steps", steps);
        ev.nums.emplace_back("vm_steps_delta", steps_delta);
        log.Emit(ev);
      }
      std::fprintf(stream,
                   "[wsv] watchdog: %s open for %.3fs (deadline %.3fs), "
                   "vm_steps+%llu\n",
                   phase.c_str(), double(age) / 1e9,
                   double(options_.stall_deadline_ns) / 1e9,
                   static_cast<unsigned long long>(steps_delta));
      std::fflush(stream);
    };
    for (const OpenSpan& span : spans) {
      const uint64_t age = now > span.start_ns ? now - span.start_ns : 0;
      if (age < options_.stall_deadline_ns) continue;
      report("span:" + std::to_string(span.tid) + ":" + span.name + ":" +
                 std::to_string(span.start_ns),
             span.name, span.request, "", span.start_ns);
    }
    for (const OpenRequestInfo& req : requests) {
      const uint64_t age = now > req.open_ns ? now - req.open_ns : 0;
      if (age < options_.stall_deadline_ns) continue;
      report("request:" + std::to_string(req.id), "request", req.id,
             req.label, req.open_ns);
    }
  }

  if (allow_heartbeat && options_.heartbeat_secs > 0.0) {
    const auto gap_ns =
        static_cast<uint64_t>(options_.heartbeat_secs * 1e9);
    // Half a sample interval of slack so a heartbeat that lands just
    // before the boundary doesn't slip a whole interval.
    const uint64_t slack_ns = options_.sample_interval_ms * 500000;
    if (now - last_heartbeat_ns_ + slack_ns >= gap_ns) {
      last_heartbeat_ns_ = now;
      heartbeats_.fetch_add(1, std::memory_order_relaxed);
      // The innermost open span is the best "where are we" answer.
      const char* where = spans.empty() ? "-" : spans.back().name.c_str();
      std::fprintf(
          stream,
          "[wsv] t=%.1fs requests=%zu phase=%s valuations=%llu "
          "vm_steps=%llu (+%llu)\n",
          double(now - start_ns_) / 1e9, requests.size(), where,
          static_cast<unsigned long long>(
              snap.CounterValue("ltl/valuations_checked")),
          static_cast<unsigned long long>(steps),
          static_cast<unsigned long long>(steps_delta));
      std::fflush(stream);
      if (EventLog::Get().enabled()) {
        WideEvent hb;
        hb.event = "heartbeat";
        hb.request = requests.size() == 1 ? requests.front().id : kNoRequest;
        hb.nums.emplace_back("open_requests", requests.size());
        hb.nums.emplace_back("open_spans", spans.size());
        hb.nums.emplace_back("vm_steps", steps);
        hb.nums.emplace_back("vm_steps_delta", steps_delta);
        hb.nums.emplace_back(
            "valuations_checked",
            snap.CounterValue("ltl/valuations_checked"));
        EventLog::Get().Emit(hb);
      }
    }
  }
}

}  // namespace obs
}  // namespace wsv
