// Request-scoped metric attribution.
//
// A RequestScope marks one logical job (a verify or lint request) for
// the telemetry layer: every counter/histogram write made while the
// scope's id is current — on this thread, or on a pool worker running a
// task submitted under it (common/thread_pool captures the submitter's
// id) — is attributed to the request. Concurrent requests sharing the
// pool stay separable: Delta() is exact at any instant, and the sum of
// all per-request deltas equals the global registry delta over the same
// window.
//
// Lifecycle:
//   obs::RequestScope scope("specs/login.wsv");
//   ... run the verification (pool tasks inherit scope.id()) ...
//   const obs::MetricsSnapshot& delta = scope.Close();  // fold + freeze
//
// Close() folds the request's per-thread shards into its accumulator
// under the registry lock (the satellite fix for the retirement race:
// attribution does not wait for pool teardown) and returns the final
// delta. The destructor closes if the caller didn't and releases the
// accumulator.
//
// Scopes are thread-affine RAII: construct and destroy on the same
// thread; nesting restores the outer scope's id. To carry an id to
// another thread by hand, use RequestBinding.

#ifndef WSV_OBS_REQUEST_H_
#define WSV_OBS_REQUEST_H_

#include <string>

#include "obs/metrics.h"

namespace wsv {
namespace obs {

/// Installs a request id as the thread's current attribution target,
/// restoring the previous one on destruction. The thread-pool worker
/// loop wraps every task in one of these.
class RequestBinding {
 public:
  explicit RequestBinding(RequestId id) : prev_(ExchangeCurrentRequestId(id)) {}
  ~RequestBinding() { ExchangeCurrentRequestId(prev_); }

  RequestBinding(const RequestBinding&) = delete;
  RequestBinding& operator=(const RequestBinding&) = delete;

 private:
  RequestId prev_;
};

/// One logical request: allocates a fresh id, makes it current on the
/// constructing thread, and owns the per-request accumulator.
class RequestScope {
 public:
  /// `label` names the request in telemetry (spec path, job name).
  explicit RequestScope(std::string label = "");
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  RequestId id() const { return id_; }
  const std::string& label() const { return label_; }
  uint64_t start_ns() const { return start_ns_; }
  bool closed() const { return closed_; }

  /// Exact work attributed to this request so far. Safe while pool
  /// workers are still running tasks for it.
  MetricsSnapshot Delta() const;

  /// Ends attribution: restores the outer request id on this thread,
  /// folds the request's shards under the registry lock, and freezes the
  /// final delta (also returned by later calls — idempotent).
  const MetricsSnapshot& Close();

  /// Wall time since construction (until Close once closed).
  uint64_t ElapsedNs() const;

 private:
  RequestId id_ = kNoRequest;
  RequestId prev_ = kNoRequest;
  std::string label_;
  uint64_t start_ns_ = 0;
  uint64_t close_ns_ = 0;
  bool closed_ = false;
  MetricsSnapshot final_;
};

}  // namespace obs
}  // namespace wsv

#endif  // WSV_OBS_REQUEST_H_
