// Scoped spans and Chrome trace-event export.
//
// WSV_SPAN("phase") times the enclosing scope. Every span feeds the
// duration histogram "span/<phase>" in the metrics registry (that is
// what the `--stats` phase table lists); when tracing is enabled
// (StartTracing, driven by `wsvcli verify --trace-out`), the span
// additionally records a begin/end timestamped event tagged with its
// thread, and WriteChromeTrace serializes the collected events as
// trace-event JSON loadable by chrome://tracing and Perfetto
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
//
// Buffering mirrors the metrics shards: each thread appends to its own
// buffer under a per-thread mutex (uncontended on the hot path), and
// buffers of exited threads are folded into a retired list so a pool's
// spans survive its teardown. Compiled out entirely by WSV_OBS_DISABLED.

#ifndef WSV_OBS_TRACE_H_
#define WSV_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace wsv {
namespace obs {

/// One completed span. Timestamps are MonotonicNowNs() values; `tid` is
/// a small dense id assigned per thread on first span.
struct TraceEvent {
  std::string name;
  uint32_t tid = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

/// A span that has started but not yet finished, observed by the
/// watchdog's sampling thread (obs/watchdog.h).
struct OpenSpan {
  std::string name;
  uint32_t tid = 0;
  uint64_t start_ns = 0;
  RequestId request = kNoRequest;
};

/// Point-in-time view of every open span across all threads, outermost
/// first per thread. Lock-free single-writer slots: under concurrent
/// push/pop a sampled entry can transiently mix two spans' fields, which
/// is acceptable for monitoring (both values are real span data).
std::vector<OpenSpan> SnapshotOpenSpans();

/// ScopedSpan's open-span bookkeeping (exposed for hand-rolled phases).
void PushOpenSpan(const char* name, uint64_t start_ns);
void PopOpenSpan();

/// Clears previously collected events and starts recording spans.
void StartTracing();
/// Stops recording (collected events remain available).
void StopTracing();
bool TracingEnabled();

/// Records a completed span directly (ScopedSpan's backend; exposed for
/// tests and for phases measured by hand).
void RecordTraceEvent(const char* name, uint64_t start_ns, uint64_t end_ns);

/// All events recorded since StartTracing, across all threads, sorted by
/// start time.
std::vector<TraceEvent> CollectTraceEvents();

/// Writes the collected events in Chrome trace-event JSON ("X" complete
/// events, microsecond timestamps relative to the earliest span).
void WriteChromeTrace(std::ostream& out);

/// RAII span: always records into `hist` (may be null), and into the
/// trace buffer when tracing is enabled.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, Histogram* hist)
      : name_(name), hist_(hist), start_(MonotonicNowNs()) {
    PushOpenSpan(name_, start_);
  }
  ~ScopedSpan() {
    PopOpenSpan();
    const uint64_t end = MonotonicNowNs();
    if (hist_ != nullptr) hist_->Record(end - start_);
    if (TracingEnabled()) RecordTraceEvent(name_, start_, end);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Histogram* hist_;
  uint64_t start_;
};

}  // namespace obs
}  // namespace wsv

#if defined(WSV_OBS_DISABLED)

#define WSV_SPAN(name) \
  do {                 \
  } while (0)

#else  // !WSV_OBS_DISABLED

/// Times the enclosing scope as the phase `name` (a string literal):
/// histogram "span/<name>" plus a trace event when tracing is on.
#define WSV_SPAN(name)                                                      \
  static ::wsv::obs::Histogram& WSV_OBS_CONCAT(wsv_obs_span_hist_,          \
                                               __LINE__) =                  \
      ::wsv::obs::GetHistogram("span/" name);                               \
  ::wsv::obs::ScopedSpan WSV_OBS_CONCAT(wsv_obs_span_, __LINE__)(           \
      name, &WSV_OBS_CONCAT(wsv_obs_span_hist_, __LINE__))

#endif  // WSV_OBS_DISABLED

#endif  // WSV_OBS_TRACE_H_
