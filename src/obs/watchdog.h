// In-flight watchdog: a sampling thread that watches open spans, open
// requests, and bytecode-VM step counters while a verification runs.
//
// The decision procedures are PSPACE-hard in the worst case; a stuck
// request looks exactly like a slow one unless something *inside* the
// process reports which phase is sitting open and whether the VM is
// still making step progress. The watchdog samples:
//
//   - the open-span stacks (obs/trace.h SnapshotOpenSpans): every
//     in-flight WSV_SPAN with its start time and owning request;
//   - the open requests (obs/metrics.h OpenRequests), treated as a
//     pseudo-phase "request" so a whole job exceeding its deadline is
//     reported even when no span happens to be open;
//   - the global counters (fo/bytecode_steps, ltl/valuations_checked)
//     to distinguish "busy" from "wedged".
//
// When a span or request stays open past `stall_deadline_ns`, the
// watchdog emits one "stall" wide event for it (obs/events.h) and a
// warning line. With `heartbeat_secs > 0` it also prints periodic
// progress lines (wsvcli --heartbeat). Stop() performs a final sweep
// before joining, so even a run shorter than the sample interval gets
// its stall events (deadline 0 deterministically flags the open
// request before the terminal event is written).

#ifndef WSV_OBS_WATCHDOG_H_
#define WSV_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_set>

namespace wsv {
namespace obs {

struct WatchdogOptions {
  /// How often the sampling thread wakes up.
  uint64_t sample_interval_ms = 250;
  /// An open span/request older than this is reported as stalled (once
  /// per span). UINT64_MAX disables stall detection; 0 flags everything
  /// still open at the first sweep — deterministic for tests.
  uint64_t stall_deadline_ns = UINT64_MAX;
  /// Interval for live progress lines; 0 disables them.
  double heartbeat_secs = 0.0;
  /// Where heartbeat/stall lines go (nullptr: stderr).
  std::FILE* stream = nullptr;
};

/// RAII: starts the sampling thread on construction, Stop() (or the
/// destructor) runs a final stall sweep and joins.
class Watchdog {
 public:
  explicit Watchdog(const WatchdogOptions& options);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Final sweep + join. Idempotent.
  void Stop();

  /// How many stall events have been reported so far.
  uint64_t stall_events() const {
    return stall_events_.load(std::memory_order_relaxed);
  }
  /// How many heartbeat lines have been printed so far.
  uint64_t heartbeats() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void Sweep(bool allow_heartbeat);

  WatchdogOptions options_;
  uint64_t start_ns_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool joined_ = false;

  // Sweep-only state (the loop thread and the final Stop() sweep never
  // run concurrently: Stop joins first).
  std::unordered_set<std::string> reported_;
  uint64_t last_heartbeat_ns_ = 0;
  uint64_t last_steps_ = 0;

  std::atomic<uint64_t> stall_events_{0};
  std::atomic<uint64_t> heartbeats_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace wsv

#endif  // WSV_OBS_WATCHDOG_H_
