#include "obs/request.h"

#include <utility>

namespace wsv {
namespace obs {

RequestScope::RequestScope(std::string label)
    : id_(OpenRequestAccounting(label)),
      prev_(ExchangeCurrentRequestId(id_)),
      label_(std::move(label)),
      start_ns_(MonotonicNowNs()) {}

RequestScope::~RequestScope() {
  Close();
  ReleaseRequestAccounting(id_);
}

MetricsSnapshot RequestScope::Delta() const {
  if (closed_) return final_;
  return SnapshotRequestMetrics(id_);
}

const MetricsSnapshot& RequestScope::Close() {
  if (closed_) return final_;
  ExchangeCurrentRequestId(prev_);
  CloseRequestAccounting(id_);
  final_ = SnapshotRequestMetrics(id_);
  close_ns_ = MonotonicNowNs();
  closed_ = true;
  return final_;
}

uint64_t RequestScope::ElapsedNs() const {
  return (closed_ ? close_ns_ : MonotonicNowNs()) - start_ns_;
}

}  // namespace obs
}  // namespace wsv
