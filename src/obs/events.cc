#include "obs/events.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/file_util.h"
#include "obs/request.h"

namespace wsv {
namespace obs {

namespace {

void AppendEscaped(const std::string& s, std::ostream& out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void AppendField(const std::string& key, const std::string& value,
                 std::ostream& out) {
  out << ",\"";
  AppendEscaped(key, out);
  out << "\":\"";
  AppendEscaped(value, out);
  out << "\"";
}

// The singleton's state, separate so EventLog stays trivially
// constructible and leak-safe (same pattern as the metrics registry).
struct LogState {
  std::mutex mu;
  std::ofstream out;
  std::string path;
  std::string tmp_path;
  uint64_t last_ts = 0;
  std::atomic<bool> enabled{false};
};

LogState& State() {
  static LogState* s = new LogState;
  return *s;
}

}  // namespace

std::string SerializeWideEvent(const WideEvent& event) {
  std::ostringstream out;
  out << "{\"event\":\"";
  AppendEscaped(event.event, out);
  out << "\",\"ts_ns\":" << event.ts_ns;
  out << ",\"request\":" << event.request;
  if (!event.label.empty()) AppendField("label", event.label, out);
  if (!event.phase.empty()) AppendField("phase", event.phase, out);
  out << ",\"duration_ns\":" << event.duration_ns;
  for (const auto& [key, value] : event.text) AppendField(key, value, out);
  for (const auto& [key, value] : event.nums) {
    out << ",\"";
    AppendEscaped(key, out);
    out << "\":" << value;
  }
  if (!event.counters.empty()) {
    out << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : event.counters) {
      if (!first) out << ",";
      first = false;
      out << "\"";
      AppendEscaped(name, out);
      out << "\":" << value;
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

EventLog& EventLog::Get() {
  static EventLog* log = new EventLog;
  return *log;
}

Status EventLog::Open(const std::string& path) {
  LogState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.out.is_open()) {
    return Status::InvalidArgument("event log already open: " + s.path);
  }
  s.path = path;
  s.tmp_path = AtomicTempPath(path);
  s.out.open(s.tmp_path, std::ios::binary | std::ios::trunc);
  if (!s.out) {
    return Status::InvalidArgument("cannot open for writing: " + s.tmp_path);
  }
  s.last_ts = 0;
  s.enabled.store(true, std::memory_order_release);
  return Status::OK();
}

bool EventLog::enabled() const {
  return State().enabled.load(std::memory_order_acquire);
}

void EventLog::Emit(const WideEvent& event) {
  LogState& s = State();
  if (!s.enabled.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.out.is_open()) return;
  WideEvent stamped = event;
  if (stamped.ts_ns == 0) stamped.ts_ns = MonotonicNowNs();
  // Monotone file-wide even if a caller pre-stamped an older clock read.
  stamped.ts_ns = std::max(stamped.ts_ns, s.last_ts);
  s.last_ts = stamped.ts_ns;
  s.out << SerializeWideEvent(stamped) << "\n";
  // Flush per event: the temp file stays line-complete, so a crashed
  // run's temp is still inspectable (the final path appears only at
  // Close).
  s.out.flush();
}

Status EventLog::Close() {
  LogState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.out.is_open()) return Status::OK();
  s.enabled.store(false, std::memory_order_release);
  s.out.flush();
  const bool ok = static_cast<bool>(s.out);
  s.out.close();
  if (!ok) {
    std::remove(s.tmp_path.c_str());
    return Status::Internal("short write: " + s.tmp_path);
  }
  if (std::rename(s.tmp_path.c_str(), s.path.c_str()) != 0) {
    std::remove(s.tmp_path.c_str());
    return Status::Internal("rename failed: " + s.tmp_path + " -> " + s.path);
  }
  return Status::OK();
}

void EventLog::Discard() {
  LogState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.out.is_open()) return;
  s.enabled.store(false, std::memory_order_release);
  s.out.close();
  std::remove(s.tmp_path.c_str());
}

std::string ContentHashHex(std::string_view text) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

std::string DeriveOutcome(const Status& status, const MetricsSnapshot& delta) {
  switch (status.code()) {
    case StatusCode::kOk:
      break;
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
    default:
      return "error";
  }
  if (delta.CounterValue("verify/cancellations_signalled") > 0) {
    return "cancelled_early_exit";
  }
  return "completed";
}

void EmitRequestSummary(
    const RequestScope& scope, const MetricsSnapshot& delta,
    std::string_view verdict, std::string_view outcome,
    const std::vector<std::pair<std::string, std::string>>& text) {
  EventLog& log = EventLog::Get();
  if (!log.enabled()) return;
  constexpr std::string_view kSpanPrefix = "span/";
  for (const auto& [name, hist] : delta.histograms) {
    if (hist.count == 0) continue;
    if (name.compare(0, kSpanPrefix.size(), kSpanPrefix) != 0) continue;
    WideEvent ev;
    ev.event = "phase";
    ev.phase = name.substr(kSpanPrefix.size());
    ev.request = scope.id();
    ev.label = scope.label();
    ev.duration_ns = hist.sum;
    ev.text = text;
    ev.nums.emplace_back("count", hist.count);
    ev.nums.emplace_back("max_ns", hist.max);
    log.Emit(ev);
  }
  WideEvent terminal;
  terminal.event = "request";
  terminal.request = scope.id();
  terminal.label = scope.label();
  terminal.duration_ns = scope.ElapsedNs();
  terminal.text = text;
  terminal.text.emplace_back("verdict", std::string(verdict));
  terminal.text.emplace_back("outcome", std::string(outcome));
  for (const auto& [name, value] : delta.counters) {
    if (value != 0) terminal.counters.emplace_back(name, value);
  }
  log.Emit(terminal);
}

}  // namespace obs
}  // namespace wsv
