#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

namespace wsv {
namespace obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

// Tracks live per-thread buffers and the folded events of exited
// threads. Leaked on purpose, like the metrics registry, so thread_local
// destructors can retire into it during process teardown.
class TraceRegistry {
 public:
  static TraceRegistry& Get() {
    static TraceRegistry* r = new TraceRegistry;
    return *r;
  }

  TraceBuffer* LocalBuffer() {
    thread_local BufferHandle handle(*this);
    return handle.buffer.get();
  }

  uint32_t LocalTid() {
    thread_local uint32_t tid = next_tid_.fetch_add(1) + 1;
    return tid;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.clear();
    for (const std::shared_ptr<TraceBuffer>& b : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(b->mu);
      b->events.clear();
    }
  }

  std::vector<TraceEvent> Collect() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceEvent> out = retired_;
    for (const std::shared_ptr<TraceBuffer>& b : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(b->mu);
      out.insert(out.end(), b->events.begin(), b->events.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.start_ns < b.start_ns;
                     });
    return out;
  }

 private:
  struct BufferHandle {
    explicit BufferHandle(TraceRegistry& registry)
        : registry(registry), buffer(std::make_shared<TraceBuffer>()) {
      std::lock_guard<std::mutex> lock(registry.mu_);
      registry.buffers_.push_back(buffer);
    }
    ~BufferHandle() { registry.Retire(buffer); }
    TraceRegistry& registry;
    std::shared_ptr<TraceBuffer> buffer;
  };

  void Retire(const std::shared_ptr<TraceBuffer>& buffer) {
    std::lock_guard<std::mutex> lock(mu_);
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    retired_.insert(retired_.end(), buffer->events.begin(),
                    buffer->events.end());
    for (size_t i = 0; i < buffers_.size(); ++i) {
      if (buffers_[i] == buffer) {
        buffers_.erase(buffers_.begin() + static_cast<long>(i));
        break;
      }
    }
  }

  std::mutex mu_;
  std::vector<std::shared_ptr<TraceBuffer>> buffers_;
  std::vector<TraceEvent> retired_;
  std::atomic<uint32_t> next_tid_{0};
};

// Per-thread stack of in-flight spans, sampled by the watchdog. Single
// writer (the owner thread) pushes/pops with release stores on `depth`;
// the sampler reads depth with acquire then the slots relaxed. A sample
// racing a pop+push can mix two spans' fields in one entry — tolerated:
// both values are real span data and the next sample self-corrects.
constexpr size_t kMaxOpenSpanDepth = 64;

struct OpenSpanStack {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<RequestId> request{kNoRequest};
  };
  Slot slots[kMaxOpenSpanDepth];
  std::atomic<uint32_t> depth{0};
  uint32_t tid = 0;
};

class OpenSpanRegistry {
 public:
  static OpenSpanRegistry& Get() {
    static OpenSpanRegistry* r = new OpenSpanRegistry;
    return *r;
  }

  OpenSpanStack* LocalStack(uint32_t tid) {
    thread_local StackHandle handle(*this, tid);
    return handle.stack.get();
  }

  std::vector<OpenSpan> Snapshot() {
    std::vector<OpenSpan> out;
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::shared_ptr<OpenSpanStack>& stack : stacks_) {
      const uint32_t depth = std::min<uint32_t>(
          stack->depth.load(std::memory_order_acquire), kMaxOpenSpanDepth);
      for (uint32_t i = 0; i < depth; ++i) {
        const char* name =
            stack->slots[i].name.load(std::memory_order_relaxed);
        if (name == nullptr) continue;
        OpenSpan span;
        span.name = name;
        span.tid = stack->tid;
        span.start_ns = stack->slots[i].start_ns.load(std::memory_order_relaxed);
        span.request = stack->slots[i].request.load(std::memory_order_relaxed);
        out.push_back(std::move(span));
      }
    }
    return out;
  }

 private:
  struct StackHandle {
    StackHandle(OpenSpanRegistry& registry, uint32_t tid)
        : registry(registry), stack(std::make_shared<OpenSpanStack>()) {
      stack->tid = tid;
      std::lock_guard<std::mutex> lock(registry.mu_);
      registry.stacks_.push_back(stack);
    }
    // Thread exit: every span on this thread has closed, so just drop
    // the stack (nothing to fold, unlike trace buffers).
    ~StackHandle() {
      std::lock_guard<std::mutex> lock(registry.mu_);
      for (size_t i = 0; i < registry.stacks_.size(); ++i) {
        if (registry.stacks_[i] == stack) {
          registry.stacks_.erase(registry.stacks_.begin() +
                                 static_cast<long>(i));
          break;
        }
      }
    }
    OpenSpanRegistry& registry;
    std::shared_ptr<OpenSpanStack> stack;
  };

  std::mutex mu_;
  std::vector<std::shared_ptr<OpenSpanStack>> stacks_;
};

void AppendJsonEscaped(const std::string& s, std::ostream& out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void StartTracing() {
  TraceRegistry::Get().Clear();
  g_tracing_enabled.store(true, std::memory_order_release);
}

void StopTracing() {
  g_tracing_enabled.store(false, std::memory_order_release);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_acquire);
}

void RecordTraceEvent(const char* name, uint64_t start_ns, uint64_t end_ns) {
  TraceRegistry& registry = TraceRegistry::Get();
  TraceEvent event;
  event.name = name;
  event.tid = registry.LocalTid();
  event.start_ns = start_ns;
  event.end_ns = end_ns;
  TraceBuffer* buffer = registry.LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

void PushOpenSpan(const char* name, uint64_t start_ns) {
  OpenSpanStack* stack =
      OpenSpanRegistry::Get().LocalStack(TraceRegistry::Get().LocalTid());
  const uint32_t d = stack->depth.load(std::memory_order_relaxed);
  if (d < kMaxOpenSpanDepth) {
    OpenSpanStack::Slot& slot = stack->slots[d];
    slot.name.store(name, std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.request.store(CurrentRequestId(), std::memory_order_relaxed);
  }
  // Deeper-than-kMax spans keep counting depth so pops stay balanced;
  // the sampler simply cannot see past the cap.
  stack->depth.store(d + 1, std::memory_order_release);
}

void PopOpenSpan() {
  OpenSpanStack* stack =
      OpenSpanRegistry::Get().LocalStack(TraceRegistry::Get().LocalTid());
  const uint32_t d = stack->depth.load(std::memory_order_relaxed);
  if (d > 0) stack->depth.store(d - 1, std::memory_order_release);
}

std::vector<OpenSpan> SnapshotOpenSpans() {
  return OpenSpanRegistry::Get().Snapshot();
}

std::vector<TraceEvent> CollectTraceEvents() {
  return TraceRegistry::Get().Collect();
}

void WriteChromeTrace(std::ostream& out) {
  std::vector<TraceEvent> events = CollectTraceEvents();
  uint64_t epoch = UINT64_MAX;
  for (const TraceEvent& e : events) epoch = std::min(epoch, e.start_ns);
  if (epoch == UINT64_MAX) epoch = 0;

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"wsv-verifier\"}}";
  char buf[64];
  for (const TraceEvent& e : events) {
    out << ",\n{\"name\":\"";
    AppendJsonEscaped(e.name, out);
    out << "\",\"cat\":\"wsv\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid;
    // Microsecond timestamps relative to the first span, 3 decimals.
    std::snprintf(buf, sizeof(buf), "%.3f",
                  double(e.start_ns - epoch) / 1000.0);
    out << ",\"ts\":" << buf;
    const uint64_t dur = e.end_ns >= e.start_ns ? e.end_ns - e.start_ns : 0;
    std::snprintf(buf, sizeof(buf), "%.3f", double(dur) / 1000.0);
    out << ",\"dur\":" << buf << "}";
  }
  out << "\n]}\n";
}

}  // namespace obs
}  // namespace wsv
