#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace wsv {
namespace obs {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t target = static_cast<uint64_t>(p * double(count));
  if (target == 0) target = 1;
  if (target > count) target = count;
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= target) {
      if (b == 0) return 0;
      if (b >= 64) return UINT64_MAX;
      return (uint64_t{1} << b) - 1;  // bucket upper bound
    }
  }
  return 0;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

MetricsSnapshot DiffSnapshots(const MetricsSnapshot& later,
                              const MetricsSnapshot& earlier) {
  MetricsSnapshot d;
  for (const auto& [name, value] : later.counters) {
    const uint64_t base = earlier.CounterValue(name);
    d.counters[name] = value >= base ? value - base : 0;
  }
  for (const auto& [name, h] : later.histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) {
      d.histograms[name] = h;
      continue;
    }
    const HistogramSnapshot& base = it->second;
    HistogramSnapshot out;
    out.count = h.count >= base.count ? h.count - base.count : 0;
    out.sum = h.sum >= base.sum ? h.sum - base.sum : 0;
    out.max = h.max;  // not subtractable; upper bound for the interval
    out.buckets.resize(kHistogramBuckets, 0);
    const size_t nb = std::min(h.buckets.size(), size_t{kHistogramBuckets});
    for (size_t b = 0; b < nb; ++b) {
      const uint64_t bb = b < base.buckets.size() ? base.buckets[b] : 0;
      out.buckets[b] = h.buckets[b] >= bb ? h.buckets[b] - bb : 0;
    }
    d.histograms[name] = std::move(out);
  }
  for (const auto& [name, value] : later.gauges) {
    auto it = earlier.gauges.find(name);
    d.gauges[name] = value - (it == earlier.gauges.end() ? 0 : it->second);
  }
  return d;
}

namespace {

// Which request this thread's metric writes attribute to.
thread_local RequestId t_current_request = kNoRequest;

size_t BucketOf(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

// Per-histogram block inside a shard. Written only by the shard's owner
// thread; read cross-thread at snapshot time (relaxed atomics).
struct HistBlock {
  std::atomic<uint64_t> buckets[kHistogramBuckets];
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  // Exact running maximum. Single-writer per shard, so a plain
  // load-compare-store (no CAS loop) is race-free; aggregators read it
  // relaxed like every other slot.
  std::atomic<uint64_t> max{0};

  HistBlock() {
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  }
};

// One thread's slot arrays for one request id. Slots are appended (never
// moved: deque) by the owner under `mu` when a new metric id first
// reaches this thread; the fast path indexes below the published size
// without locking. Aggregators take `mu` to serialize against growth,
// then read the atomics relaxed — the owner's unlocked writes race only
// on the atomic slots themselves, which is the point.
struct Shard {
  std::mutex mu;
  // The request this shard's writes attribute to. Immutable after
  // construction: switching requests switches shards, not tags.
  RequestId request = kNoRequest;
  // Set (under the registry lock) when CloseRequestAccounting folded and
  // zeroed this shard. The owner thread drops closed shards lazily; any
  // residual writes in the meantime stay live and exactly counted.
  std::atomic<bool> closed{false};
  std::deque<std::atomic<uint64_t>> counters;
  std::deque<HistBlock> hists;
  std::atomic<size_t> counters_size{0};
  std::atomic<size_t> hists_size{0};

  std::atomic<uint64_t>& CounterSlot(size_t id) {
    if (id >= counters_size.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu);
      while (counters.size() <= id) counters.emplace_back(0);
      counters_size.store(counters.size(), std::memory_order_release);
    }
    return counters[id];
  }

  HistBlock& HistSlot(size_t id) {
    if (id >= hists_size.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu);
      while (hists.size() <= id) hists.emplace_back();
      hists_size.store(hists.size(), std::memory_order_release);
    }
    return hists[id];
  }
};

// Folded totals of one metric id across exited threads.
struct HistAccum {
  uint64_t buckets[kHistogramBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
};

}  // namespace

// The process-wide registry. Never destroyed (leaked on purpose) so
// thread_local shard destructors can retire into it at any point of
// process teardown.
class Registry {
 public:
  static Registry& Get() {
    static Registry* r = new Registry;
    return *r;
  }

  Counter& GetCounter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        counter_ids_.try_emplace(std::string(name),
                                 static_cast<uint32_t>(counter_names_.size()));
    if (inserted) {
      counter_names_.push_back(it->first);
      counter_handles_.push_back(Counter(it->second));
      retired_counters_.push_back(0);
    }
    return counter_handles_[it->second];
  }

  Histogram& GetHistogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        hist_ids_.try_emplace(std::string(name),
                              static_cast<uint32_t>(hist_names_.size()));
    if (inserted) {
      hist_names_.push_back(it->first);
      hist_handles_.push_back(Histogram(it->second));
      retired_hists_.emplace_back();
    }
    return hist_handles_[it->second];
  }

  Gauge& GetGauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        gauge_ids_.try_emplace(std::string(name),
                               static_cast<uint32_t>(gauge_names_.size()));
    if (inserted) {
      gauge_names_.push_back(it->first);
      gauge_slots_.emplace_back(0);
      gauge_handles_.push_back(Gauge(&gauge_slots_.back()));
    }
    return gauge_handles_[it->second];
  }

  // The shard this thread's writes currently go to: one per (thread,
  // current request id), created on first use. The (id, shard) pair is
  // cached so the steady-state write path costs one thread_local read
  // and one compare on top of the slot add.
  Shard* LocalShard() {
    thread_local ThreadShards tls(*this);
    const RequestId rid = t_current_request;
    if (rid == tls.cached_request) return tls.cached_shard;
    return SwitchShard(tls, rid);
  }

  MetricsSnapshot Snapshot() {
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint64_t> counter_totals(retired_counters_);
    std::vector<HistAccum> hist_totals(retired_hists_);
    for (const std::shared_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      AddShardLocked(*shard, &counter_totals, &hist_totals);
    }
    FillSnapshotLocked(counter_totals, hist_totals, &snap);
    for (size_t i = 0; i < gauge_names_.size(); ++i) {
      snap.gauges[gauge_names_[i]] =
          gauge_slots_[i].load(std::memory_order_relaxed);
    }
    return snap;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t& c : retired_counters_) c = 0;
    for (HistAccum& h : retired_hists_) h = HistAccum();
    for (auto& [id, accum] : requests_) {
      std::fill(accum.counters.begin(), accum.counters.end(), 0);
      for (HistAccum& h : accum.hists) h = HistAccum();
    }
    for (const std::shared_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      ZeroShardLocked(shard.get());
    }
    // Gauges are intentionally left alone: they track live occupancy and
    // their Add/Sub bookkeeping must stay balanced across resets.
  }

  RequestId OpenRequest(std::string label) {
    std::lock_guard<std::mutex> lock(mu_);
    const RequestId id = ++next_request_;
    RequestAccum& accum = requests_[id];
    accum.label = std::move(label);
    accum.open_ns = MonotonicNowNs();
    return id;
  }

  MetricsSnapshot SnapshotRequest(RequestId id) {
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint64_t> counter_totals(retired_counters_.size(), 0);
    std::vector<HistAccum> hist_totals(retired_hists_.size());
    auto it = requests_.find(id);
    if (it != requests_.end()) {
      const RequestAccum& accum = it->second;
      const size_t nc = std::min(accum.counters.size(), counter_totals.size());
      for (size_t i = 0; i < nc; ++i) counter_totals[i] += accum.counters[i];
      const size_t nh = std::min(accum.hists.size(), hist_totals.size());
      for (size_t i = 0; i < nh; ++i) {
        AddAccum(accum.hists[i], &hist_totals[i]);
      }
    }
    for (const std::shared_ptr<Shard>& shard : shards_) {
      if (shard->request != id) continue;
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      AddShardLocked(*shard, &counter_totals, &hist_totals);
    }
    FillSnapshotLocked(counter_totals, hist_totals, &snap);
    return snap;
  }

  void CloseRequest(RequestId id) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::shared_ptr<Shard>& shard : shards_) {
      if (shard->request != id) continue;
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      FoldShardLocked(*shard);
      ZeroShardLocked(shard.get());
      shard->closed.store(true, std::memory_order_release);
    }
    auto it = requests_.find(id);
    if (it != requests_.end()) it->second.closed = true;
  }

  void ReleaseRequest(RequestId id) {
    std::lock_guard<std::mutex> lock(mu_);
    requests_.erase(id);
  }

  std::vector<OpenRequestInfo> OpenRequests() {
    std::vector<OpenRequestInfo> out;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, accum] : requests_) {
      if (accum.closed) continue;
      out.push_back(OpenRequestInfo{id, accum.label, accum.open_ns});
    }
    std::sort(out.begin(), out.end(),
              [](const OpenRequestInfo& a, const OpenRequestInfo& b) {
                return a.id < b.id;
              });
    return out;
  }

 private:
  // All shards a thread has written through, one per request id it has
  // served. Retired (folded into the registry) at thread exit; closed
  // shards are additionally pruned whenever the thread switches request.
  struct ThreadShards {
    explicit ThreadShards(Registry& registry) : registry(registry) {}
    ~ThreadShards() {
      for (auto& [id, shard] : shards) registry.Retire(shard);
    }
    Registry& registry;
    std::vector<std::pair<RequestId, std::shared_ptr<Shard>>> shards;
    RequestId cached_request = ~RequestId{0};  // no valid id: miss on first use
    Shard* cached_shard = nullptr;
  };

  // Per-request folded totals, accumulated when the request's shards
  // close or their threads exit.
  struct RequestAccum {
    std::string label;
    uint64_t open_ns = 0;
    bool closed = false;
    std::vector<uint64_t> counters;
    std::vector<HistAccum> hists;
  };

  static void FoldHist(const HistBlock& block, HistAccum* out) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      out->buckets[b] += block.buckets[b].load(std::memory_order_relaxed);
    }
    out->count += block.count.load(std::memory_order_relaxed);
    out->sum += block.sum.load(std::memory_order_relaxed);
    out->max = std::max(out->max, block.max.load(std::memory_order_relaxed));
  }

  static void AddAccum(const HistAccum& in, HistAccum* out) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      out->buckets[b] += in.buckets[b];
    }
    out->count += in.count;
    out->sum += in.sum;
    out->max = std::max(out->max, in.max);
  }

  // Adds a shard's live slots into running totals. Caller holds mu_ and
  // the shard's mu.
  static void AddShardLocked(const Shard& shard,
                             std::vector<uint64_t>* counter_totals,
                             std::vector<HistAccum>* hist_totals) {
    const size_t nc = std::min(shard.counters.size(), counter_totals->size());
    for (size_t i = 0; i < nc; ++i) {
      (*counter_totals)[i] +=
          shard.counters[i].load(std::memory_order_relaxed);
    }
    const size_t nh = std::min(shard.hists.size(), hist_totals->size());
    for (size_t i = 0; i < nh; ++i) {
      FoldHist(shard.hists[i], &(*hist_totals)[i]);
    }
  }

  // Folds a shard into the global retired totals and, if its request is
  // still tracked, into the request accumulator. Caller holds mu_ and
  // the shard's mu; the shard is NOT zeroed (callers that keep it live
  // must zero it to avoid double counting).
  void FoldShardLocked(const Shard& shard) {
    const size_t nc =
        std::min(shard.counters.size(), retired_counters_.size());
    for (size_t i = 0; i < nc; ++i) {
      retired_counters_[i] +=
          shard.counters[i].load(std::memory_order_relaxed);
    }
    const size_t nh = std::min(shard.hists.size(), retired_hists_.size());
    for (size_t i = 0; i < nh; ++i) {
      FoldHist(shard.hists[i], &retired_hists_[i]);
    }
    auto it = requests_.find(shard.request);
    if (it == requests_.end()) return;
    RequestAccum& accum = it->second;
    if (accum.counters.size() < nc) accum.counters.resize(nc, 0);
    for (size_t i = 0; i < nc; ++i) {
      accum.counters[i] += shard.counters[i].load(std::memory_order_relaxed);
    }
    if (accum.hists.size() < nh) accum.hists.resize(nh);
    for (size_t i = 0; i < nh; ++i) {
      FoldHist(shard.hists[i], &accum.hists[i]);
    }
  }

  static void ZeroShardLocked(Shard* shard) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (HistBlock& h : shard->hists) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      h.max.store(0, std::memory_order_relaxed);
    }
  }

  // Caller holds mu_. Renders id-indexed totals into the named maps.
  void FillSnapshotLocked(const std::vector<uint64_t>& counter_totals,
                          const std::vector<HistAccum>& hist_totals,
                          MetricsSnapshot* snap) const {
    for (size_t i = 0; i < counter_totals.size(); ++i) {
      snap->counters[counter_names_[i]] = counter_totals[i];
    }
    for (size_t i = 0; i < hist_totals.size(); ++i) {
      HistogramSnapshot h;
      h.count = hist_totals[i].count;
      h.sum = hist_totals[i].sum;
      h.max = hist_totals[i].max;
      h.buckets.assign(hist_totals[i].buckets,
                       hist_totals[i].buckets + kHistogramBuckets);
      snap->histograms[hist_names_[i]] = std::move(h);
    }
  }

  Shard* SwitchShard(ThreadShards& tls, RequestId rid) {
    // Drop shards whose request accounting closed: their totals were
    // folded at CloseRequest; Retire folds any residual writes made
    // since, so every count lands exactly once. Only the owner thread
    // may drop its own shards (the fast path reads them unlocked).
    for (size_t i = tls.shards.size(); i-- > 0;) {
      if (tls.shards[i].second->closed.load(std::memory_order_acquire)) {
        Retire(tls.shards[i].second);
        tls.shards.erase(tls.shards.begin() + static_cast<long>(i));
      }
    }
    std::shared_ptr<Shard> shard;
    for (auto& [id, s] : tls.shards) {
      if (id == rid) {
        shard = s;
        break;
      }
    }
    if (shard == nullptr) {
      shard = std::make_shared<Shard>();
      shard->request = rid;
      std::lock_guard<std::mutex> lock(mu_);
      shards_.push_back(shard);
      tls.shards.emplace_back(rid, shard);
    }
    tls.cached_request = rid;
    tls.cached_shard = shard.get();
    return tls.cached_shard;
  }

  // Thread exit (or lazy prune of a closed shard): fold into the retired
  // totals — and the request accumulator, if still tracked — so counts
  // survive pool teardown, then stop tracking the shard.
  void Retire(const std::shared_ptr<Shard>& shard) {
    std::lock_guard<std::mutex> lock(mu_);
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    FoldShardLocked(*shard);
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i] == shard) {
        shards_.erase(shards_.begin() + static_cast<long>(i));
        break;
      }
    }
  }

  std::mutex mu_;
  std::unordered_map<std::string, uint32_t> counter_ids_;
  std::vector<std::string> counter_names_;
  std::deque<Counter> counter_handles_;  // stable addresses
  std::vector<uint64_t> retired_counters_;
  std::unordered_map<std::string, uint32_t> hist_ids_;
  std::vector<std::string> hist_names_;
  std::deque<Histogram> hist_handles_;
  std::vector<HistAccum> retired_hists_;
  std::unordered_map<std::string, uint32_t> gauge_ids_;
  std::vector<std::string> gauge_names_;
  std::deque<Gauge> gauge_handles_;
  std::deque<std::atomic<int64_t>> gauge_slots_;  // stable addresses
  std::vector<std::shared_ptr<Shard>> shards_;
  std::unordered_map<RequestId, RequestAccum> requests_;
  RequestId next_request_ = kNoRequest;
};

void Counter::Add(uint64_t n) {
  Registry::Get()
      .LocalShard()
      ->CounterSlot(id_)
      .fetch_add(n, std::memory_order_relaxed);
}

void Histogram::Record(uint64_t value) {
  HistBlock& block = Registry::Get().LocalShard()->HistSlot(id_);
  block.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  block.count.fetch_add(1, std::memory_order_relaxed);
  block.sum.fetch_add(value, std::memory_order_relaxed);
  if (value > block.max.load(std::memory_order_relaxed)) {
    block.max.store(value, std::memory_order_relaxed);
  }
}

Counter& GetCounter(std::string_view name) {
  return Registry::Get().GetCounter(name);
}

Histogram& GetHistogram(std::string_view name) {
  return Registry::Get().GetHistogram(name);
}

Gauge& GetGauge(std::string_view name) {
  return Registry::Get().GetGauge(name);
}

MetricsSnapshot SnapshotMetrics() { return Registry::Get().Snapshot(); }

void ResetMetrics() { Registry::Get().Reset(); }

RequestId CurrentRequestId() { return t_current_request; }

RequestId ExchangeCurrentRequestId(RequestId id) {
  const RequestId prev = t_current_request;
  t_current_request = id;
  return prev;
}

RequestId OpenRequestAccounting(std::string label) {
  return Registry::Get().OpenRequest(std::move(label));
}

MetricsSnapshot SnapshotRequestMetrics(RequestId id) {
  return Registry::Get().SnapshotRequest(id);
}

void CloseRequestAccounting(RequestId id) {
  Registry::Get().CloseRequest(id);
}

void ReleaseRequestAccounting(RequestId id) {
  Registry::Get().ReleaseRequest(id);
}

std::vector<OpenRequestInfo> OpenRequests() {
  return Registry::Get().OpenRequests();
}

}  // namespace obs
}  // namespace wsv
