#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace wsv {
namespace obs {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t target = static_cast<uint64_t>(p * double(count));
  if (target == 0) target = 1;
  if (target > count) target = count;
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= target) {
      if (b == 0) return 0;
      if (b >= 64) return UINT64_MAX;
      return (uint64_t{1} << b) - 1;  // bucket upper bound
    }
  }
  return 0;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

namespace {

size_t BucketOf(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

// Per-histogram block inside a shard. Written only by the shard's owner
// thread; read cross-thread at snapshot time (relaxed atomics).
struct HistBlock {
  std::atomic<uint64_t> buckets[kHistogramBuckets];
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  // Exact running maximum. Single-writer per shard, so a plain
  // load-compare-store (no CAS loop) is race-free; aggregators read it
  // relaxed like every other slot.
  std::atomic<uint64_t> max{0};

  HistBlock() {
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  }
};

// One thread's slot arrays. Slots are appended (never moved: deque) by
// the owner under `mu` when a new metric id first reaches this thread;
// the fast path indexes below the published size without locking.
// Aggregators take `mu` to serialize against growth, then read the
// atomics relaxed — the owner's unlocked writes race only on the atomic
// slots themselves, which is the point.
struct Shard {
  std::mutex mu;
  std::deque<std::atomic<uint64_t>> counters;
  std::deque<HistBlock> hists;
  std::atomic<size_t> counters_size{0};
  std::atomic<size_t> hists_size{0};

  std::atomic<uint64_t>& CounterSlot(size_t id) {
    if (id >= counters_size.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu);
      while (counters.size() <= id) counters.emplace_back(0);
      counters_size.store(counters.size(), std::memory_order_release);
    }
    return counters[id];
  }

  HistBlock& HistSlot(size_t id) {
    if (id >= hists_size.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu);
      while (hists.size() <= id) hists.emplace_back();
      hists_size.store(hists.size(), std::memory_order_release);
    }
    return hists[id];
  }
};

// Folded totals of one metric id across exited threads.
struct HistAccum {
  uint64_t buckets[kHistogramBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
};

}  // namespace

// The process-wide registry. Never destroyed (leaked on purpose) so
// thread_local shard destructors can retire into it at any point of
// process teardown.
class Registry {
 public:
  static Registry& Get() {
    static Registry* r = new Registry;
    return *r;
  }

  Counter& GetCounter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        counter_ids_.try_emplace(std::string(name),
                                 static_cast<uint32_t>(counter_names_.size()));
    if (inserted) {
      counter_names_.push_back(it->first);
      counter_handles_.push_back(Counter(it->second));
      retired_counters_.push_back(0);
    }
    return counter_handles_[it->second];
  }

  Histogram& GetHistogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        hist_ids_.try_emplace(std::string(name),
                              static_cast<uint32_t>(hist_names_.size()));
    if (inserted) {
      hist_names_.push_back(it->first);
      hist_handles_.push_back(Histogram(it->second));
      retired_hists_.emplace_back();
    }
    return hist_handles_[it->second];
  }

  Shard* LocalShard() {
    thread_local ShardHandle handle(*this);
    return handle.shard.get();
  }

  MetricsSnapshot Snapshot() {
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint64_t> counter_totals(retired_counters_);
    std::vector<HistAccum> hist_totals(retired_hists_);
    for (const std::shared_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      const size_t nc =
          std::min(shard->counters.size(), counter_totals.size());
      for (size_t i = 0; i < nc; ++i) {
        counter_totals[i] +=
            shard->counters[i].load(std::memory_order_relaxed);
      }
      const size_t nh = std::min(shard->hists.size(), hist_totals.size());
      for (size_t i = 0; i < nh; ++i) {
        FoldHist(shard->hists[i], &hist_totals[i]);
      }
    }
    for (size_t i = 0; i < counter_totals.size(); ++i) {
      snap.counters[counter_names_[i]] = counter_totals[i];
    }
    for (size_t i = 0; i < hist_totals.size(); ++i) {
      HistogramSnapshot h;
      h.count = hist_totals[i].count;
      h.sum = hist_totals[i].sum;
      h.max = hist_totals[i].max;
      h.buckets.assign(hist_totals[i].buckets,
                       hist_totals[i].buckets + kHistogramBuckets);
      snap.histograms[hist_names_[i]] = std::move(h);
    }
    return snap;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t& c : retired_counters_) c = 0;
    for (HistAccum& h : retired_hists_) h = HistAccum();
    for (const std::shared_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
      for (HistBlock& h : shard->hists) {
        for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
        h.count.store(0, std::memory_order_relaxed);
        h.sum.store(0, std::memory_order_relaxed);
        h.max.store(0, std::memory_order_relaxed);
      }
    }
  }

 private:
  struct ShardHandle {
    explicit ShardHandle(Registry& registry)
        : registry(registry), shard(std::make_shared<Shard>()) {
      std::lock_guard<std::mutex> lock(registry.mu_);
      registry.shards_.push_back(shard);
    }
    // Thread exit: fold this shard into the retired totals so counts
    // survive pool teardown, and stop tracking it.
    ~ShardHandle() { registry.Retire(shard); }
    Registry& registry;
    std::shared_ptr<Shard> shard;
  };

  static void FoldHist(const HistBlock& block, HistAccum* out) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      out->buckets[b] += block.buckets[b].load(std::memory_order_relaxed);
    }
    out->count += block.count.load(std::memory_order_relaxed);
    out->sum += block.sum.load(std::memory_order_relaxed);
    out->max = std::max(out->max, block.max.load(std::memory_order_relaxed));
  }

  void Retire(const std::shared_ptr<Shard>& shard) {
    std::lock_guard<std::mutex> lock(mu_);
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    const size_t nc = std::min(shard->counters.size(),
                               retired_counters_.size());
    for (size_t i = 0; i < nc; ++i) {
      retired_counters_[i] +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    const size_t nh = std::min(shard->hists.size(), retired_hists_.size());
    for (size_t i = 0; i < nh; ++i) {
      FoldHist(shard->hists[i], &retired_hists_[i]);
    }
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i] == shard) {
        shards_.erase(shards_.begin() + static_cast<long>(i));
        break;
      }
    }
  }

  std::mutex mu_;
  std::unordered_map<std::string, uint32_t> counter_ids_;
  std::vector<std::string> counter_names_;
  std::deque<Counter> counter_handles_;  // stable addresses
  std::vector<uint64_t> retired_counters_;
  std::unordered_map<std::string, uint32_t> hist_ids_;
  std::vector<std::string> hist_names_;
  std::deque<Histogram> hist_handles_;
  std::vector<HistAccum> retired_hists_;
  std::vector<std::shared_ptr<Shard>> shards_;
};

void Counter::Add(uint64_t n) {
  Registry::Get()
      .LocalShard()
      ->CounterSlot(id_)
      .fetch_add(n, std::memory_order_relaxed);
}

void Histogram::Record(uint64_t value) {
  HistBlock& block = Registry::Get().LocalShard()->HistSlot(id_);
  block.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  block.count.fetch_add(1, std::memory_order_relaxed);
  block.sum.fetch_add(value, std::memory_order_relaxed);
  if (value > block.max.load(std::memory_order_relaxed)) {
    block.max.store(value, std::memory_order_relaxed);
  }
}

Counter& GetCounter(std::string_view name) {
  return Registry::Get().GetCounter(name);
}

Histogram& GetHistogram(std::string_view name) {
  return Registry::Get().GetHistogram(name);
}

MetricsSnapshot SnapshotMetrics() { return Registry::Get().Snapshot(); }

void ResetMetrics() { Registry::Get().Reset(); }

}  // namespace obs
}  // namespace wsv
