// Rendering of metric snapshots: the human-readable phase/counter table
// behind `wsvcli verify --stats` and the machine-readable JSON behind
// `--stats-json` (also merged into the bench reports).

#ifndef WSV_OBS_REPORT_H_
#define WSV_OBS_REPORT_H_

#include <string>

#include "obs/metrics.h"

namespace wsv {
namespace obs {

/// Human-readable duration, e.g. "412ns", "3.1us", "24.7ms", "1.30s".
std::string FormatDurationNs(uint64_t ns);

/// Human-readable byte count, e.g. "812B", "3.1KB", "24.7MB", "1.30GB".
std::string FormatByteCount(int64_t bytes);

/// The phase table: one row per span histogram (count/total/mean/p90),
/// then every other histogram, then all counters, then the memory
/// gauges (live bytes per subsystem), then derived rates (FO-leaf memo
/// hit rate, program-cache occupancy). Multi-line, trailing newline.
std::string FormatStatsTable(const MetricsSnapshot& snap);

/// {"counters":{...},"histograms":{name:{count,sum_ns,mean_ns,p50_ns,
/// p90_ns,p99_ns}},"gauges":{...},"derived":{...}} with a trailing
/// newline.
std::string StatsToJson(const MetricsSnapshot& snap);

/// hits / (hits + misses) of the FO-leaf truth memo, or -1 when there
/// were no lookups.
double LeafMemoHitRate(const MetricsSnapshot& snap);

/// class_hits / valuations_checked — the fraction of valuations whose
/// product build + emptiness run the equivalence-class collapse
/// skipped. -1 when no valuations were swept.
double ValuationCollapseRate(const MetricsSnapshot& snap);

/// bytecode_execs / (bytecode_execs + interp_evals) — the share of FO
/// evaluations served by the compiled bytecode engine instead of the
/// tree-walking interpreter. -1 when no FO evaluation ran.
double BytecodeCompiledShare(const MetricsSnapshot& snap);

/// cache_hits / (cache_hits + compiles) of the FO program cache, or -1
/// when no formula was ever looked up.
double ProgramCacheHitRate(const MetricsSnapshot& snap);

/// (cache/hits + cache/warm_hits) / cache/requests — the fraction of
/// verification requests served by the cross-request verification
/// cache. -1 when no request went through a cache.
double VerifyCacheHitRate(const MetricsSnapshot& snap);

/// slice/cone_size / (slice/cone_size + slice/relations_dropped) — the
/// share of relation symbols the property cones retained, summed over
/// every sliced request. -1 when the slicer never produced a slice.
double SliceConeRatio(const MetricsSnapshot& snap);

}  // namespace obs
}  // namespace wsv

#endif  // WSV_OBS_REPORT_H_
