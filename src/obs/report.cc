#include "obs/report.h"

#include <cstdio>
#include <string>

namespace wsv {
namespace obs {

namespace {

std::string FormatRate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", rate * 100.0);
  return buf;
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string FormatDurationNs(uint64_t ns) {
  char buf[32];
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", double(ns) / 1e3);
  } else if (ns < 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", double(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", double(ns) / 1e9);
  }
  return buf;
}

std::string FormatByteCount(int64_t bytes) {
  char buf[32];
  const char* sign = bytes < 0 ? "-" : "";
  const uint64_t b = bytes < 0 ? static_cast<uint64_t>(-bytes)
                               : static_cast<uint64_t>(bytes);
  if (b < 1024) {
    std::snprintf(buf, sizeof(buf), "%s%lluB", sign,
                  static_cast<unsigned long long>(b));
  } else if (b < 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%s%.1fKB", sign, double(b) / 1024.0);
  } else if (b < 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%s%.1fMB", sign,
                  double(b) / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.2fGB", sign,
                  double(b) / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

double LeafMemoHitRate(const MetricsSnapshot& snap) {
  const uint64_t hits = snap.CounterValue("ltl/leaf_memo_hits");
  const uint64_t misses = snap.CounterValue("ltl/leaf_memo_misses");
  if (hits + misses == 0) return -1.0;
  return double(hits) / double(hits + misses);
}

double ValuationCollapseRate(const MetricsSnapshot& snap) {
  const uint64_t checked = snap.CounterValue("ltl/valuations_checked");
  if (checked == 0) return -1.0;
  return double(snap.CounterValue("ltl/class_hits")) / double(checked);
}

double BytecodeCompiledShare(const MetricsSnapshot& snap) {
  const uint64_t compiled = snap.CounterValue("fo/bytecode_execs");
  const uint64_t interp = snap.CounterValue("fo/interp_evals");
  if (compiled + interp == 0) return -1.0;
  return double(compiled) / double(compiled + interp);
}

double ProgramCacheHitRate(const MetricsSnapshot& snap) {
  const uint64_t hits = snap.CounterValue("fo/bytecode_cache_hits");
  const uint64_t compiles = snap.CounterValue("fo/bytecode_compiles");
  if (hits + compiles == 0) return -1.0;
  return double(hits) / double(hits + compiles);
}

double SliceConeRatio(const MetricsSnapshot& snap) {
  const uint64_t cone = snap.CounterValue("slice/cone_size");
  const uint64_t dropped = snap.CounterValue("slice/relations_dropped");
  if (snap.CounterValue("slice/sliced") == 0 || cone + dropped == 0) {
    return -1.0;
  }
  return double(cone) / double(cone + dropped);
}

double VerifyCacheHitRate(const MetricsSnapshot& snap) {
  const uint64_t requests = snap.CounterValue("cache/requests");
  if (requests == 0) return -1.0;
  return double(snap.CounterValue("cache/hits") +
                snap.CounterValue("cache/warm_hits")) /
         double(requests);
}

std::string FormatStatsTable(const MetricsSnapshot& snap) {
  std::string out;
  char line[256];
  out += "== verification telemetry ==\n";
  if (snap.counters.empty() && snap.histograms.empty() &&
      snap.gauges.empty()) {
    out += "(no telemetry recorded)\n";
    return out;
  }

  bool header = false;
  for (const auto& [name, h] : snap.histograms) {
    constexpr const char* kSpanPrefix = "span/";
    if (name.rfind(kSpanPrefix, 0) != 0) continue;
    if (!header) {
      std::snprintf(line, sizeof(line), "%-34s %10s %10s %10s %10s\n",
                    "phase", "count", "total", "mean", "p90");
      out += line;
      header = true;
    }
    std::snprintf(line, sizeof(line), "%-34s %10llu %10s %10s %10s\n",
                  name.c_str() + 5,
                  static_cast<unsigned long long>(h.count),
                  FormatDurationNs(h.sum).c_str(),
                  FormatDurationNs(static_cast<uint64_t>(h.Mean())).c_str(),
                  FormatDurationNs(h.Percentile(0.90)).c_str());
    out += line;
  }

  header = false;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("span/", 0) == 0) continue;
    if (!header) {
      std::snprintf(line, sizeof(line), "%-34s %10s %10s %10s %10s %10s\n",
                    "histogram", "count", "total", "mean", "p90", "max");
      out += line;
      header = true;
    }
    // The "_ns" suffix marks duration histograms; everything else is a
    // dimensionless size/depth distribution and renders as raw numbers.
    const bool is_duration =
        name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
    auto fmt = [&](uint64_t v) -> std::string {
      return is_duration ? FormatDurationNs(v) : std::to_string(v);
    };
    std::snprintf(line, sizeof(line), "%-34s %10llu %10s %10s %10s %10s\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  fmt(h.sum).c_str(),
                  fmt(static_cast<uint64_t>(h.Mean())).c_str(),
                  fmt(h.Percentile(0.90)).c_str(), fmt(h.max).c_str());
    out += line;
  }

  if (!snap.counters.empty()) {
    std::snprintf(line, sizeof(line), "%-34s %10s\n", "counter", "value");
    out += line;
    for (const auto& [name, value] : snap.counters) {
      std::snprintf(line, sizeof(line), "%-34s %10llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += line;
    }
  }

  if (!snap.gauges.empty()) {
    std::snprintf(line, sizeof(line), "%-34s %10s\n", "memory gauge",
                  "live");
    out += line;
    for (const auto& [name, value] : snap.gauges) {
      // The "_bytes" suffix marks byte gauges; everything else (entry
      // counts) renders as a raw number.
      const bool is_bytes =
          name.size() >= 6 &&
          name.compare(name.size() - 6, 6, "_bytes") == 0;
      std::snprintf(line, sizeof(line), "%-34s %10s\n", name.c_str(),
                    is_bytes ? FormatByteCount(value).c_str()
                             : std::to_string(value).c_str());
      out += line;
    }
  }

  const double cache_rate = ProgramCacheHitRate(snap);
  if (cache_rate >= 0.0) {
    std::snprintf(
        line, sizeof(line),
        "fo program cache: %llu entries, %s pinned, hit rate %s "
        "(%llu hits / %llu lookups)\n",
        static_cast<unsigned long long>(
            snap.GaugeValue("mem/fo_program_cache_entries")),
        FormatByteCount(snap.GaugeValue("mem/fo_pinned_formula_bytes"))
            .c_str(),
        FormatRate(cache_rate).c_str(),
        static_cast<unsigned long long>(
            snap.CounterValue("fo/bytecode_cache_hits")),
        static_cast<unsigned long long>(
            snap.CounterValue("fo/bytecode_cache_hits") +
            snap.CounterValue("fo/bytecode_compiles")));
    out += line;
  }
  const double memo_rate = LeafMemoHitRate(snap);
  if (memo_rate >= 0.0) {
    std::snprintf(
        line, sizeof(line),
        "fo-leaf memo hit rate: %s (%llu hits / %llu lookups)\n",
        FormatRate(memo_rate).c_str(),
        static_cast<unsigned long long>(
            snap.CounterValue("ltl/leaf_memo_hits")),
        static_cast<unsigned long long>(
            snap.CounterValue("ltl/leaf_memo_hits") +
            snap.CounterValue("ltl/leaf_memo_misses")));
    out += line;
  }
  const double collapse_rate = ValuationCollapseRate(snap);
  if (collapse_rate >= 0.0) {
    std::snprintf(
        line, sizeof(line),
        "valuation collapse rate: %s (%llu of %llu products skipped)\n",
        FormatRate(collapse_rate).c_str(),
        static_cast<unsigned long long>(snap.CounterValue("ltl/class_hits")),
        static_cast<unsigned long long>(
            snap.CounterValue("ltl/valuations_checked")));
    out += line;
  }
  const double compiled_share = BytecodeCompiledShare(snap);
  if (compiled_share >= 0.0) {
    std::snprintf(
        line, sizeof(line),
        "fo eval engine: %s compiled (%llu compiled / %llu interpreted)\n",
        FormatRate(compiled_share).c_str(),
        static_cast<unsigned long long>(
            snap.CounterValue("fo/bytecode_execs")),
        static_cast<unsigned long long>(
            snap.CounterValue("fo/interp_evals")));
    out += line;
  }
  const double cone_ratio = SliceConeRatio(snap);
  if (cone_ratio >= 0.0) {
    std::snprintf(
        line, sizeof(line),
        "slice cone ratio: %s (%llu relations kept / %llu dropped, "
        "%llu rules dropped)\n",
        FormatRate(cone_ratio).c_str(),
        static_cast<unsigned long long>(
            snap.CounterValue("slice/cone_size")),
        static_cast<unsigned long long>(
            snap.CounterValue("slice/relations_dropped")),
        static_cast<unsigned long long>(
            snap.CounterValue("slice/rules_dropped")));
    out += line;
  }
  const double verify_cache_rate = VerifyCacheHitRate(snap);
  if (verify_cache_rate >= 0.0) {
    std::snprintf(
        line, sizeof(line),
        "verify cache hit rate: %s (%llu hit + %llu warm / %llu requests, "
        "%llu entries, %s)\n",
        FormatRate(verify_cache_rate).c_str(),
        static_cast<unsigned long long>(snap.CounterValue("cache/hits")),
        static_cast<unsigned long long>(
            snap.CounterValue("cache/warm_hits")),
        static_cast<unsigned long long>(snap.CounterValue("cache/requests")),
        static_cast<unsigned long long>(
            snap.GaugeValue("mem/verify_cache_entries")),
        FormatByteCount(snap.GaugeValue("mem/verify_cache_bytes")).c_str());
    out += line;
  }
  return out;
}

std::string StatsToJson(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(name, &out);
    out += "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  char buf[64];
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(name, &out);
    out += "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum_ns\": " + std::to_string(h.sum);
    std::snprintf(buf, sizeof(buf), ", \"mean_ns\": %.1f", h.Mean());
    out += buf;
    out += ", \"p50_ns\": " + std::to_string(h.Percentile(0.50)) +
           ", \"p90_ns\": " + std::to_string(h.Percentile(0.90)) +
           ", \"p99_ns\": " + std::to_string(h.Percentile(0.99)) +
           ", \"max\": " + std::to_string(h.max) + "}";
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(name, &out);
    out += "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"derived\": {";
  const double memo_rate = LeafMemoHitRate(snap);
  bool first_derived = true;
  if (memo_rate >= 0.0) {
    std::snprintf(buf, sizeof(buf), "\n    \"fo_leaf_memo_hit_rate\": %.4f",
                  memo_rate);
    out += buf;
    first_derived = false;
  }
  const double collapse_rate = ValuationCollapseRate(snap);
  if (collapse_rate >= 0.0) {
    std::snprintf(buf, sizeof(buf), "%s    \"valuation_collapse_rate\": %.4f",
                  first_derived ? "\n" : ",\n", collapse_rate);
    out += buf;
    first_derived = false;
  }
  const double compiled_share = BytecodeCompiledShare(snap);
  if (compiled_share >= 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "%s    \"fo_bytecode_compiled_share\": %.4f",
                  first_derived ? "\n" : ",\n", compiled_share);
    out += buf;
    first_derived = false;
  }
  const double cache_rate = ProgramCacheHitRate(snap);
  if (cache_rate >= 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "%s    \"fo_program_cache_hit_rate\": %.4f",
                  first_derived ? "\n" : ",\n", cache_rate);
    out += buf;
    first_derived = false;
  }
  const double cone_ratio = SliceConeRatio(snap);
  if (cone_ratio >= 0.0) {
    std::snprintf(buf, sizeof(buf), "%s    \"slice_cone_ratio\": %.4f",
                  first_derived ? "\n" : ",\n", cone_ratio);
    out += buf;
    first_derived = false;
  }
  const double verify_cache_rate = VerifyCacheHitRate(snap);
  if (verify_cache_rate >= 0.0) {
    std::snprintf(buf, sizeof(buf), "%s    \"cache_hit_rate\": %.4f",
                  first_derived ? "\n" : ",\n", verify_cache_rate);
    out += buf;
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace obs
}  // namespace wsv
