// The metrics registry: named monotonic counters, duration histograms,
// and occupancy gauges for the verification pipeline.
//
// The decision procedures hide enormous constant factors (database
// enumeration, valuation fan-out, FO-leaf evaluation); wall-clock alone
// cannot attribute them, especially on shared bench boxes. The registry
// makes the *work* visible: every hot layer bumps counters
// (WSV_COUNT) and records durations (WSV_TIMER / WSV_HIST_NS), and the
// front ends snapshot the totals on demand.
//
// Design: write paths are lock-cheap so `--jobs N` sweeps pay near-zero
// overhead. Each thread owns one shard *per request id* (a flat slot
// array); a counter increment is one thread-local lookup plus one
// relaxed atomic add on a slot no other thread writes. Aggregation
// (SnapshotMetrics) walks the live shards plus the folded totals of
// exited threads, so counter totals are exact and identical between
// serial and parallel runs of the same work.
//
// Request scoping: shards are tagged with the thread's current request
// id (see obs/request.h for the RAII layer). A per-request snapshot
// aggregates exactly the work performed under that id — on any thread —
// so concurrent verifications sharing the pool stay attributable, and
// the per-request deltas sum to the global totals. Closing a request
// folds its shards into a per-request accumulator *under the registry
// lock*, so a snapshot taken mid-retirement can never observe a
// half-folded shard.
//
// Gauges are different: they track current occupancy (bytes held by the
// value interner, program cache, graphs, VM arenas), go up *and* down,
// and are process-global by nature — they appear only in global
// snapshots, never in per-request deltas.
//
// Compile-time kill switch: building with -DWSV_OBS_DISABLED turns every
// instrumentation macro into a no-op, so the instrumented code compiles
// to exactly the uninstrumented code. The registry API itself stays
// linkable (snapshots are simply empty).

#ifndef WSV_OBS_METRICS_H_
#define WSV_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wsv {
namespace obs {

/// Log2 histogram buckets: bucket b counts values v with bit_width(v) == b
/// (bucket 0 holds only v == 0), so b ranges over [0, 64].
inline constexpr size_t kHistogramBuckets = 65;

/// Identifies one logical request (one verify/lint job) for metric
/// attribution. 0 means "no request": ambient work outside any scope.
using RequestId = uint64_t;
inline constexpr RequestId kNoRequest = 0;

/// Aggregated state of one histogram at snapshot time.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;  // exact sum of recorded values (ns for timers)
  uint64_t max = 0;  // exact maximum recorded value (0 when count == 0)
  std::vector<uint64_t> buckets;  // kHistogramBuckets cumulative-free counts

  double Mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }
  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]).
  /// Exact to within a factor of 2 — enough to tell microseconds from
  /// milliseconds, which is what the phase table is for.
  uint64_t Percentile(double p) const;
};

/// A point-in-time aggregation across all threads, live and exited.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Occupancy gauges (global snapshots only; empty in request deltas).
  std::map<std::string, int64_t> gauges;

  /// Value of a counter, 0 if never registered/bumped.
  uint64_t CounterValue(std::string_view name) const;
  /// Value of a gauge, 0 if never registered.
  int64_t GaugeValue(std::string_view name) const;
};

/// later − earlier, per metric. Counters and histogram counts/sums/buckets
/// subtract (saturating at 0); a histogram's `max` is not subtractable, so
/// the diff keeps `later`'s max (an upper bound for the interval). Gauges
/// diff signed. Used for phase-window attribution.
MetricsSnapshot DiffSnapshots(const MetricsSnapshot& later,
                              const MetricsSnapshot& earlier);

/// A monotonic counter handle. Handles are registry-owned, stable for the
/// process lifetime, and safe to share across threads.
class Counter {
 public:
  void Add(uint64_t n);
  void Increment() { Add(1); }

 private:
  friend class Registry;
  explicit Counter(uint32_t id) : id_(id) {}
  uint32_t id_;
};

/// A duration histogram handle (values in nanoseconds by convention).
class Histogram {
 public:
  void Record(uint64_t value);

 private:
  friend class Registry;
  explicit Histogram(uint32_t id) : id_(id) {}
  uint32_t id_;
};

/// An occupancy gauge handle: a signed level that rises and falls (bytes
/// held, entries cached). Writes are single relaxed atomic ops on a
/// process-global slot — gauges are not sharded because they track
/// *current* occupancy, not attributable work.
class Gauge {
 public:
  void Add(int64_t n) { slot_->fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { slot_->fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return slot_->load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<int64_t>* slot) : slot_(slot) {}
  std::atomic<int64_t>* slot_;
};

/// Interns `name` and returns its process-wide counter. Call sites should
/// cache the reference (the WSV_COUNT macro does, via a local static).
Counter& GetCounter(std::string_view name);
Histogram& GetHistogram(std::string_view name);
Gauge& GetGauge(std::string_view name);

/// Aggregates every registered metric across all shards.
MetricsSnapshot SnapshotMetrics();

/// Zeroes every counter and histogram (names stay registered), including
/// open per-request accumulators. Gauges are deliberately *not* reset:
/// they track live occupancy whose Add/Sub bookkeeping would desync.
/// Intended for tests and benchmark iterations; do not race it against
/// writers.
void ResetMetrics();

// --- Request accounting (low-level; prefer obs::RequestScope). ---------

/// The request id writes on this thread currently attribute to.
RequestId CurrentRequestId();

/// Sets the thread's current request id, returning the previous one.
/// Subsequent metric writes on this thread land in a shard tagged with
/// the new id.
RequestId ExchangeCurrentRequestId(RequestId id);

/// Allocates a fresh request id (never 0) and starts tracking a
/// per-request accumulator under it.
RequestId OpenRequestAccounting(std::string label);

/// Exact totals of the work attributed to `id` so far: the request's
/// folded accumulator plus its still-live shards. Safe to call while the
/// request is running on other threads.
MetricsSnapshot SnapshotRequestMetrics(RequestId id);

/// Folds every shard tagged `id` into the request accumulator (and the
/// global retired totals) under the registry lock, zeroing the shards and
/// marking them closed so owner threads lazily drop them. Totals remain
/// exact: a snapshot during or after the fold sees each count exactly
/// once. Idempotent.
void CloseRequestAccounting(RequestId id);

/// Drops the per-request accumulator. After this, SnapshotRequestMetrics
/// for `id` returns only residual live-shard writes (normally none).
void ReleaseRequestAccounting(RequestId id);

/// One tracked, not-yet-closed request (for the watchdog).
struct OpenRequestInfo {
  RequestId id = kNoRequest;
  std::string label;
  uint64_t open_ns = 0;  // MonotonicNowNs at open
};

/// All tracked open requests, ascending by id.
std::vector<OpenRequestInfo> OpenRequests();

/// Monotonic timestamp in nanoseconds (steady clock).
uint64_t MonotonicNowNs();

/// RAII timer recording its lifetime into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(hist), start_(MonotonicNowNs()) {}
  ~ScopedTimer() { hist_.Record(MonotonicNowNs() - start_); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& hist_;
  uint64_t start_;
};

}  // namespace obs
}  // namespace wsv

#define WSV_OBS_CONCAT_INNER(a, b) a##b
#define WSV_OBS_CONCAT(a, b) WSV_OBS_CONCAT_INNER(a, b)

#if defined(WSV_OBS_DISABLED)

#define WSV_COUNT(name, n) \
  do {                     \
  } while (0)
#define WSV_COUNT1(name) \
  do {                   \
  } while (0)
#define WSV_HIST(name, value) \
  do {                        \
  } while (0)
#define WSV_TIMER(name) \
  do {                  \
  } while (0)
#define WSV_GAUGE_ADD(name, n) \
  do {                         \
  } while (0)
#define WSV_GAUGE_SUB(name, n) \
  do {                         \
  } while (0)
#define WSV_OBS_NOW() uint64_t{0}

#else  // !WSV_OBS_DISABLED

/// Bumps the named counter by `n`. The handle lookup happens once per
/// call site (local static).
#define WSV_COUNT(name, n)                                                  \
  do {                                                                      \
    static ::wsv::obs::Counter& wsv_obs_counter =                           \
        ::wsv::obs::GetCounter(name);                                       \
    wsv_obs_counter.Add(static_cast<uint64_t>(n));                          \
  } while (0)
#define WSV_COUNT1(name) WSV_COUNT(name, 1)

/// Records `value` into the named histogram.
#define WSV_HIST(name, value)                                               \
  do {                                                                      \
    static ::wsv::obs::Histogram& wsv_obs_hist =                            \
        ::wsv::obs::GetHistogram(name);                                     \
    wsv_obs_hist.Record(static_cast<uint64_t>(value));                      \
  } while (0)

/// Raises / lowers the named occupancy gauge by `n` bytes (or entries).
#define WSV_GAUGE_ADD(name, n)                                              \
  do {                                                                      \
    static ::wsv::obs::Gauge& wsv_obs_gauge = ::wsv::obs::GetGauge(name);   \
    wsv_obs_gauge.Add(static_cast<int64_t>(n));                             \
  } while (0)
#define WSV_GAUGE_SUB(name, n)                                              \
  do {                                                                      \
    static ::wsv::obs::Gauge& wsv_obs_gauge = ::wsv::obs::GetGauge(name);   \
    wsv_obs_gauge.Sub(static_cast<int64_t>(n));                             \
  } while (0)

/// Times the enclosing scope into the named duration histogram.
#define WSV_TIMER(name)                                                     \
  static ::wsv::obs::Histogram& WSV_OBS_CONCAT(wsv_obs_timer_hist_,         \
                                               __LINE__) =                  \
      ::wsv::obs::GetHistogram(name);                                       \
  ::wsv::obs::ScopedTimer WSV_OBS_CONCAT(wsv_obs_timer_, __LINE__)(         \
      WSV_OBS_CONCAT(wsv_obs_timer_hist_, __LINE__))

/// Monotonic now-ns, compiled to 0 when observability is disabled (for
/// hand-rolled begin/end measurements fed to WSV_HIST).
#define WSV_OBS_NOW() ::wsv::obs::MonotonicNowNs()

#endif  // WSV_OBS_DISABLED

#endif  // WSV_OBS_METRICS_H_
