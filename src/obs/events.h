// Wide-event JSONL log: one self-contained JSON object per line, one
// line per request phase plus one terminal line per request.
//
// The log is the replay/audit record a verification service keys off:
// instead of many narrow log lines that must be joined to reconstruct a
// request, each event carries everything known about its subject —
// request id and label, spec/property content hashes, verdict, wall
// time, and the exact counter delta attributed to the request
// (obs/request.h). `wsvcli verify --log-json <file>` emits it; the
// watchdog (obs/watchdog.h) adds "stall" and "heartbeat" events.
//
// Event kinds:
//   "phase"     one pipeline phase of a request (parse, lint, db_enum,
//               product, emptiness, witness_check, ...). Explicit phases
//               are emitted by the front end; span-derived phases are
//               aggregated from the request's `span/*` histograms at
//               summary time (count / total_ns / max_ns).
//   "stall"     watchdog: an open span (or the whole request) exceeded
//               its deadline.
//   "heartbeat" watchdog: periodic progress sample.
//   "request"   terminal event: verdict, outcome, full counter delta.
//               Every request id appearing in the log has exactly one,
//               and it is the id's last event (check_events.py enforces
//               this).
//
// Timestamps (`ts_ns`) are stamped under the log's mutex from the
// monotonic clock, so they are non-decreasing across the whole file.
// The log streams to a sibling temp file and publishes via atomic
// rename at Close(): a crashed run leaves only the temp, never a
// truncated artifact.

#ifndef WSV_OBS_EVENTS_H_
#define WSV_OBS_EVENTS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace wsv {
namespace obs {

class RequestScope;

/// One JSONL line. Fields with empty/zero defaults are omitted from the
/// serialization (except ts_ns, which Emit stamps).
struct WideEvent {
  std::string event = "phase";  // phase | stall | heartbeat | request
  std::string phase;
  RequestId request = kNoRequest;
  std::string label;      // request label (spec path, job name)
  uint64_t ts_ns = 0;     // stamped at Emit when 0
  uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> text;  // extra strings
  std::vector<std::pair<std::string, uint64_t>> nums;     // extra numbers
  std::vector<std::pair<std::string, uint64_t>> counters;  // counter delta
};

/// The process-wide JSONL sink. Disabled (all Emits dropped) until Open.
class EventLog {
 public:
  static EventLog& Get();

  /// Starts streaming to a temp sibling of `path`; Close() publishes it.
  Status Open(const std::string& path);

  /// Cheap check for emitters (watchdog samples, hot paths).
  bool enabled() const;

  /// Serializes and appends one event (no-op while disabled). Stamps
  /// ts_ns under the log mutex, so timestamps are monotone file-wide.
  void Emit(const WideEvent& event);

  /// Flushes and atomically renames the temp file onto the final path.
  /// Idempotent; returns OK when already closed or never opened.
  Status Close();

  /// Drops the temp file without publishing (error paths, tests).
  void Discard();

 private:
  EventLog() = default;
};

/// JSON-serializes `event` exactly as Emit writes it (exposed for tests).
std::string SerializeWideEvent(const WideEvent& event);

/// 16-hex-digit FNV-1a content hash for spec/property identity in events.
std::string ContentHashHex(std::string_view text);

/// The terminal event's "outcome" vocabulary:
///   completed             ok, no early exit
///   cancelled_early_exit  ok, but the parallel sweep cancelled work
///                         after the winning counterexample (delta shows
///                         verify/cancellations_signalled > 0)
///   resource_exhausted    kResourceExhausted (step/node budgets)
///   cancelled             kCancelled
///   error                 any other failure
std::string DeriveOutcome(const Status& status, const MetricsSnapshot& delta);

/// Emits the span-derived phase events for `delta` (one per `span/*`
/// histogram with samples) followed by the terminal "request" event
/// carrying the verdict, outcome, and nonzero counter delta. `text`
/// fields (spec_hash, property_hash, ...) are attached to every emitted
/// event.
void EmitRequestSummary(
    const RequestScope& scope, const MetricsSnapshot& delta,
    std::string_view verdict, std::string_view outcome,
    const std::vector<std::pair<std::string, std::string>>& text);

}  // namespace obs
}  // namespace wsv

#endif  // WSV_OBS_EVENTS_H_
