// Diagnostic model for the spec linter and validators.
//
// A Diagnostic is one source-located finding: a stable rule ID
// (e.g. "WSV-IB-002"), a severity, a Span into the .wsv source, a
// message, an optional fix-it hint, and an optional "paper anchor"
// naming the theorem of Deutsch-Sui-Vianu that motivates the rule
// (e.g. "Theorem 3.7"). A DiagnosticSink accumulates every finding in
// one pass — unlike the Status-based validators, which stop at the
// first error — so a single lint run explains everything that is wrong
// with a specification.
//
// This header is deliberately dependency-light (common/ only) so that
// ws/validate.cc, ws/classify.cc, and fo/input_bounded.cc can emit
// diagnostics without introducing layering cycles.

#ifndef WSV_ANALYSIS_DIAGNOSTICS_H_
#define WSV_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/span.h"

namespace wsv {
namespace analysis {

enum class Severity {
  kError,    // the specification is ill-formed; tools must reject it
  kWarning,  // almost certainly a mistake, but the spec is well-formed
  kNote,     // informational (e.g. why a decidable fragment is missed)
};

const char* SeverityToString(Severity severity);  // "error" | "warning" | ...

struct Diagnostic {
  std::string rule_id;   // stable ID, e.g. "WSV-IB-002"
  Severity severity = Severity::kWarning;
  Span span;             // invalid span = file-level finding
  std::string message;
  std::string hint;      // optional fix-it suggestion
  std::string anchor;    // optional paper anchor, e.g. "Theorem 3.7"
  std::string page;      // optional page name the finding belongs to
};

/// Accumulates diagnostics across analysis passes. Never stops early:
/// passes report everything they see and the caller renders the lot.
class DiagnosticSink {
 public:
  void Add(Diagnostic diag) { diagnostics_.push_back(std::move(diag)); }

  /// Convenience used by the lint passes.
  void Report(std::string rule_id, Severity severity, Span span,
              std::string message, std::string hint = "",
              std::string anchor = "", std::string page = "");

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }

  size_t error_count() const { return Count(Severity::kError); }
  size_t warning_count() const { return Count(Severity::kWarning); }
  size_t note_count() const { return Count(Severity::kNote); }

  /// Stable-sorts findings into source order (unknown locations last),
  /// keeping insertion order within a location.
  void SortBySpan();

 private:
  size_t Count(Severity severity) const;

  std::vector<Diagnostic> diagnostics_;
};

/// Static metadata for one lint/validation rule. The registry is the
/// single source of truth for severities, paper anchors, and which pass
/// emits each rule; SARIF output lists it under tool.driver.rules and
/// DESIGN.md §7 documents it. Do not maintain rule lists elsewhere —
/// tests/analysis_test.cc enforces that every entry names exactly one
/// known emitting pass (or is explicitly marked "reserved") and that the
/// corpus actually triggers it.
struct RuleInfo {
  const char* id;        // "WSV-IB-002"
  Severity severity;     // default severity for findings of this rule
  const char* summary;   // one-line description
  const char* anchor;    // paper anchor ("Theorem 3.7") or ""
  const char* pass;      // emitting pass, e.g. "LintDeadSymbols", or
                         // "reserved" for IDs held but not yet emitted
};

/// All registered rules, in ID order.
const std::vector<RuleInfo>& RuleRegistry();

/// Looks up a rule by ID; nullptr when unknown.
const RuleInfo* FindRule(const std::string& id);

/// Best-effort extraction of "line N, column M" from a Status message
/// produced by the lexer/parsers. Returns an invalid Span when the
/// message carries no location.
Span SpanFromMessage(const std::string& message);

}  // namespace analysis
}  // namespace wsv

#endif  // WSV_ANALYSIS_DIAGNOSTICS_H_
